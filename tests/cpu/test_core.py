"""Unit tests for the core execution model and store queue."""

import pytest

from repro.config import table3_config
from repro.cpu import StoreQueue
from repro.isa import (
    Compute,
    Fase,
    LockAcquire,
    LockRelease,
    PRead,
    Program,
    PWrite,
    ThreadProgram,
)
from repro.persistency import design_by_name
from repro.runtime import DATA_BASE
from repro.system import build_system


def make_program(ops_per_fase, n_threads=1, fases=2, n_locks=0,
                 think=0):
    threads = []
    fase_id = 0
    for tid in range(n_threads):
        fase_list = []
        for _ in range(fases):
            fase_list.append(Fase(fase_id, ops_per_fase(tid)))
            fase_id += 1
        threads.append(ThreadProgram(tid, fase_list, think_cycles=think))
    return Program("test", threads, n_locks=n_locks,
                   initial_heap={DATA_BASE: 5})


class TestStoreQueue:
    def test_admits_when_free(self):
        sq = StoreQueue(table3_config(), 0)
        assert sq.push(100, service=4) == 100

    def test_full_queue_stalls(self):
        config = table3_config(store_queue_entries=2)
        sq = StoreQueue(config, 0)
        sq.push(0, service=50)
        sq.push(0, service=50)
        accept = sq.push(0, service=50)
        assert accept == 50
        assert sq.stats["full_stalls"] == 1

    def test_entries_complete_independently(self):
        """A long-latency entry must not serialise short ones behind it
        (the exponential-feedback regression this model replaced)."""
        config = table3_config(store_queue_entries=4)
        sq = StoreQueue(config, 0)
        sq.push(0, service=10_000)
        assert sq.push(1, service=4) == 1
        assert sq.push(2, service=4) == 2

    def test_drain_complete_is_max_completion(self):
        sq = StoreQueue(table3_config(), 0)
        sq.push(0, service=100)
        sq.push(0, service=10)
        assert sq.drain_complete_time(0) == 100
        assert sq.drain_complete_time(200) == 200


class TestCoreExecution:
    def test_all_fases_commit(self):
        program = make_program(
            lambda tid: [PRead(DATA_BASE), PWrite(DATA_BASE, 7),
                         Compute(10)])
        system = build_system(program, design_by_name("PMEM-Spec"),
                              table3_config(n_cores=1))
        result = system.run()
        assert result.fases_committed == 2
        assert result.fases_aborted == 0

    def test_architectural_image_reflects_last_write(self):
        program = make_program(
            lambda tid: [PWrite(DATA_BASE, 7), PWrite(DATA_BASE, 9)])
        system = build_system(program, design_by_name("IntelX86"),
                              table3_config(n_cores=1))
        system.run()
        assert system.image.read(DATA_BASE) == 9

    def test_committed_data_is_durable(self):
        """After a committed FASE the device image holds the data
        (durability at the FASE boundary, every design)."""
        for design in ("IntelX86", "DPO", "HOPS", "PMEM-Spec"):
            program = make_program(lambda tid: [PWrite(DATA_BASE, 7)],
                                   fases=1)
            system = build_system(program, design_by_name(design),
                                  table3_config(n_cores=1))
            system.run()
            assert system.device.read(DATA_BASE) == 7, design

    def test_undo_log_written_before_commit(self):
        program = make_program(lambda tid: [PWrite(DATA_BASE, 7)], fases=1)
        system = build_system(program, design_by_name("PMEM-Spec"),
                              table3_config(n_cores=1))
        system.run()
        from repro.runtime.undo_log import UndoLogLayout, unpack_stamp
        layout = UndoLogLayout(0)
        # The entry persisted with the pre-FASE old value and the commit
        # bumped the epoch past the entry's stamp.
        assert system.device.read(layout.entry_old_addr(0)) == 5
        stamped = system.device.read(layout.entry_target_addr(0))
        epoch, target = unpack_stamp(stamped)
        assert target == DATA_BASE
        assert system.device.read(layout.epoch_addr) == epoch + 1

    def test_lock_contention_serialises(self):
        program = make_program(
            lambda tid: [LockAcquire(0), PRead(DATA_BASE),
                         PWrite(DATA_BASE, tid + 1), Compute(50),
                         LockRelease(0)],
            n_threads=4, fases=3, n_locks=1)
        system = build_system(program, design_by_name("PMEM-Spec"),
                              table3_config(n_cores=4))
        result = system.run()
        assert result.fases_committed == 12
        lock = system.locks[0]
        assert lock.acquisitions == 12
        assert lock.contended_acquisitions > 0

    def test_instruction_counts_recorded(self):
        program = make_program(lambda tid: [PWrite(DATA_BASE, 1)], fases=3)
        system = build_system(program, design_by_name("IntelX86"),
                              table3_config(n_cores=1))
        result = system.run()
        assert result.stats["cores"]["core0"]["instructions"] > 9

    def test_think_cycles_add_time(self):
        def build(think):
            program = make_program(lambda tid: [Compute(10)], fases=5,
                                   think=think)
            system = build_system(program, design_by_name("PMEM-Spec"),
                                  table3_config(n_cores=1))
            return system.run().cycles

        assert build(1000) > build(0) + 4000

    def test_design_flavor_mismatch_rejected(self):
        from repro.compiler import lower_program
        from repro.system import System
        program = make_program(lambda tid: [Compute(1)])
        lowered = lower_program(program, "hops")
        with pytest.raises(ValueError):
            System(table3_config(n_cores=1),
                   design_by_name("PMEM-Spec"), lowered)

    def test_thread_count_mismatch_rejected(self):
        program = make_program(lambda tid: [Compute(1)], n_threads=2)
        with pytest.raises(ValueError):
            build_system(program, design_by_name("PMEM-Spec"),
                         table3_config(n_cores=4))
