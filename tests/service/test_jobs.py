"""JobSpec/JobStore semantics: content-hash identity, idempotent
submission, torn-tail-tolerant journals, recovery, cancellation."""

import json
import os

import pytest

from repro.service import JobError, JobSpec, JobStore


def campaign_spec(name: str = "", budget: int = 4) -> JobSpec:
    return JobSpec.campaign(["hashmap"], ["PMEM-Spec"], budget=budget,
                            fases_per_thread=4, snapshot_rungs=4,
                            batch=2, name=name)


class TestJobSpec:
    def test_job_id_excludes_display_name(self):
        assert (campaign_spec(name="alpha").job_id()
                == campaign_spec(name="beta").job_id())

    def test_job_id_tracks_content(self):
        assert (campaign_spec(budget=4).job_id()
                != campaign_spec(budget=8).job_id())

    def test_unknown_kind_rejected(self):
        with pytest.raises(JobError, match="unknown job kind"):
            JobSpec(kind="mapreduce", params={})

    def test_schema_version_pinned(self):
        params = campaign_spec().params
        with pytest.raises(JobError, match="schema"):
            JobSpec(kind="campaign", params=params, schema_version=99)

    def test_campaign_validates_workload_names(self):
        with pytest.raises(ValueError):
            JobSpec.campaign(["no-such-workload"], ["PMEM-Spec"])

    def test_sweep_requires_specs(self):
        with pytest.raises(JobError, match="non-empty"):
            JobSpec(kind="sweep", params={"specs": []})

    def test_round_trip(self):
        spec = campaign_spec(name="rt")
        clone = JobSpec.from_dict(
            json.loads(json.dumps(spec.to_dict())))
        assert clone.job_id() == spec.job_id()
        assert clone.describe() == spec.describe()


class TestJobStore:
    def test_submit_is_idempotent(self, tmp_path):
        store = JobStore(str(tmp_path))
        first = store.submit(campaign_spec())
        second = store.submit(campaign_spec(name="same-content"))
        assert first.job_id == second.job_id
        assert second.state == "queued"
        # The double submit did not journal a second transition.
        assert len(store.journal(first.job_id)) == 1

    def test_terminal_job_needs_force_to_requeue(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(campaign_spec())
        store.set_state(record.job_id, "done")
        assert store.submit(campaign_spec()).state == "done"
        requeued = store.submit(campaign_spec(), force=True)
        assert requeued.state == "queued"
        assert requeued.detail.get("resubmitted") is True

    def test_running_job_submit_is_noop(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(campaign_spec())
        store.set_state(record.job_id, "running", pid=123)
        assert store.submit(campaign_spec()).state == "running"

    def test_journal_tolerates_torn_tail(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(campaign_spec())
        store.set_state(record.job_id, "running")
        with open(store.journal_path(record.job_id), "a") as handle:
            handle.write('{"ts": 1.0, "state": "don')   # SIGKILL tear
        assert store.record(record.job_id).state == "running"

    def test_recover_requeues_unfinished(self, tmp_path):
        store = JobStore(str(tmp_path))
        killed = store.submit(campaign_spec(budget=4))
        store.set_state(killed.job_id, "running", pid=99)
        graceful = store.submit(campaign_spec(budget=8))
        store.set_state(graceful.job_id, "interrupted")
        finished = store.submit(campaign_spec(budget=12))
        store.set_state(finished.job_id, "done")

        resumed = store.recover()
        assert {record.job_id for record in resumed} == {
            killed.job_id, graceful.job_id}
        for record in resumed:
            assert record.state == "queued"
            assert record.detail.get("resumed") is True
        assert store.record(finished.job_id).state == "done"
        assert set(store.queued_ids()) == {killed.job_id,
                                           graceful.job_id}

    def test_task_journal_last_write_wins(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(campaign_spec())
        store.append_task(record.job_id, "k1", {"value": 1})
        store.append_task(record.job_id, "k2", {"value": 2})
        store.append_task(record.job_id, "k1", {"value": 3})
        assert store.tasks(record.job_id) == {
            "k1": {"value": 3}, "k2": {"value": 2}}

    def test_cancel_queued_is_immediate(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(campaign_spec())
        assert store.request_cancel(record.job_id).state == "cancelled"

    def test_cancel_running_leaves_marker(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(campaign_spec())
        store.set_state(record.job_id, "running")
        store.request_cancel(record.job_id)
        assert store.record(record.job_id).state == "running"
        assert store.cancel_requested(record.job_id)
        store.clear_cancel(record.job_id)
        assert not store.cancel_requested(record.job_id)

    def test_report_round_trip(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(campaign_spec())
        assert store.load_report(record.job_id) is None
        store.save_report(record.job_id, {"kind": "campaign", "n": 1})
        assert store.load_report(record.job_id) == {
            "kind": "campaign", "n": 1}

    def test_unknown_job_raises(self, tmp_path):
        store = JobStore(str(tmp_path))
        with pytest.raises(JobError, match="unknown job"):
            store.record("deadbeef")

    def test_shared_tiers_exist(self, tmp_path):
        store = JobStore(str(tmp_path))
        assert os.path.isdir(store.cache_dir)
        assert os.path.isdir(store.snapshot_dir)
