"""WorkStealingPool: ordering, affinity, stealing, retry, quarantine,
hung-task reaping, cancellation.  Task functions live at module level
so the process-pool path can pickle them."""

import os
import time

import pytest

from repro.harness import RetryPolicy
from repro.obsv import EventBus
from repro.service import PoolCancelled, Task, WorkStealingPool

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0)
ONE_SHOT = RetryPolicy(max_attempts=1)


def _square(x):
    return x * x


def _sleep_then(arg):
    delay, value = arg
    time.sleep(delay)
    return value


def _always_fails(x):
    raise ValueError(f"poison task {x}")


def _flaky_once(arg):
    """Fails on the first execution, succeeds after: the marker file
    is the cross-process attempt counter."""
    marker, value = arg
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        raise RuntimeError("transient failure")
    return value


def _collecting_bus():
    events = []
    bus = EventBus()
    bus.subscribe(events.append)
    return bus, events


def _tasks(fn, args, affinity=None):
    return [Task(key=f"t{i}", fn=fn, arg=arg,
                 affinity=(affinity(arg) if affinity else i))
            for i, arg in enumerate(args)]


def test_workers_shed_inherited_signal_handlers():
    # The CLI's graceful-shutdown handlers raise into the dispatch
    # loop; a forked worker inheriting them outlives Pool.terminate()
    # (the parent then hangs in join()).  Worker entry points must put
    # SIGTERM back to its default disposition and ignore SIGINT.
    import signal

    from repro.harness.sweep import reset_worker_signals

    def dummy(signum, frame):
        raise AssertionError("should never fire")

    saved = [(s, signal.signal(s, dummy))
             for s in (signal.SIGINT, signal.SIGTERM)]
    try:
        reset_worker_signals()
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL
        assert signal.getsignal(signal.SIGINT) is signal.SIG_IGN
    finally:
        for signum, handler in saved:
            signal.signal(signum, handler)


class TestInline:
    def test_outcomes_in_submission_order(self):
        pool = WorkStealingPool(workers=1)
        outcomes = pool.run(_tasks(_square, [3, 1, 4, 1, 5]))
        assert [o.value for o in outcomes] == [9, 1, 16, 1, 25]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_retry_then_success(self, tmp_path):
        bus, events = _collecting_bus()
        pool = WorkStealingPool(workers=1, retry=FAST_RETRY, bus=bus)
        marker = str(tmp_path / "marker")
        [outcome] = pool.run(_tasks(_flaky_once, [(marker, 7)]))
        assert outcome.ok and outcome.value == 7
        assert outcome.attempts == 2
        assert [e["kind"] for e in events].count("task_retry") == 1

    def test_quarantine_does_not_sink_the_run(self):
        bus, events = _collecting_bus()
        pool = WorkStealingPool(workers=1, retry=FAST_RETRY, bus=bus)
        outcomes = pool.run(_tasks(_square, [2]) + [
            Task(key="bad", fn=_always_fails, arg=0, affinity=9)]
            + _tasks(_square, [3]))
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].attempts == FAST_RETRY.max_attempts
        kinds = [e["kind"] for e in events]
        assert "task_quarantine" in kinds
        assert "poison task" in outcomes[1].error

    def test_should_stop_raises_pool_cancelled(self):
        pool = WorkStealingPool(workers=1)
        seen = []

        def stop_after_two() -> bool:
            return len(seen) >= 2

        with pytest.raises(PoolCancelled):
            pool.run(_tasks(_square, [1, 2, 3, 4]),
                     on_result=seen.append,
                     should_stop=stop_after_two)
        assert len(seen) == 2


class TestPlan:
    def test_affinity_groups_stay_together(self):
        pool = WorkStealingPool(workers=2)
        tasks = _tasks(_square, list(range(6)),
                       affinity=lambda x: x % 3)
        deques = pool.plan_deques(tasks, 2)
        # Groups round-robin in first-appearance order: affinity 0 and
        # 2 on worker 0, affinity 1 on worker 1, submission order kept.
        assert list(deques[0]) == [0, 3, 2, 5]
        assert list(deques[1]) == [1, 4]

    def test_plan_is_deterministic(self):
        pool = WorkStealingPool(workers=3)
        tasks = _tasks(_square, list(range(10)),
                       affinity=lambda x: x % 4)
        first = [list(d) for d in pool.plan_deques(tasks, 3)]
        second = [list(d) for d in pool.plan_deques(tasks, 3)]
        assert first == second


class TestPool:
    def test_outcomes_in_submission_order(self):
        pool = WorkStealingPool(workers=2)
        outcomes = pool.run(_tasks(_square, list(range(8))))
        assert [o.value for o in outcomes] == [x * x for x in range(8)]
        assert all(o.ok for o in outcomes)
        assert all(o.worker >= 0 for o in outcomes)

    def test_idle_worker_steals_from_straggler(self):
        bus, events = _collecting_bus()
        pool = WorkStealingPool(workers=2, bus=bus)
        # Group "a" (one straggler + four quick tasks behind it) lands
        # on worker 0; group "b" (one quick task) on worker 1.  Worker
        # 1 drains instantly and must steal from the tail of deque 0.
        tasks = [Task(key="slow", fn=_sleep_then, arg=(0.8, "slow"),
                      affinity="a")]
        tasks += [Task(key=f"a{i}", fn=_sleep_then, arg=(0.01, i),
                       affinity="a") for i in range(4)]
        tasks += [Task(key="b0", fn=_sleep_then, arg=(0.01, "b"),
                       affinity="b")]
        outcomes = pool.run(tasks)
        assert [o.value for o in outcomes] == ["slow", 0, 1, 2, 3, "b"]
        steals = [e for e in events if e["kind"] == "steal"]
        assert steals, "idle worker never stole from the straggler"
        assert all(e["thief"] != e["victim"] for e in steals)
        assert any(o.stolen for o in outcomes)

    def test_retry_in_pool_mode(self, tmp_path):
        bus, events = _collecting_bus()
        pool = WorkStealingPool(workers=2, retry=FAST_RETRY, bus=bus)
        marker = str(tmp_path / "marker")
        tasks = _tasks(_flaky_once, [(marker, 11)])
        tasks += _tasks(_square, [2, 3])
        outcomes = pool.run(tasks)
        assert [o.value for o in outcomes][1:] == [4, 9]
        assert outcomes[0].ok and outcomes[0].value == 11
        assert outcomes[0].attempts == 2
        assert "task_retry" in [e["kind"] for e in events]

    def test_quarantine_in_pool_mode(self):
        pool = WorkStealingPool(workers=2, retry=FAST_RETRY)
        outcomes = pool.run(
            _tasks(_square, [5, 6])
            + [Task(key="bad", fn=_always_fails, arg=1, affinity=9)])
        assert [o.ok for o in outcomes] == [True, True, False]
        assert outcomes[2].attempts == FAST_RETRY.max_attempts

    def test_hung_task_is_reaped_and_pool_survives(self):
        bus, events = _collecting_bus()
        pool = WorkStealingPool(workers=2, retry=ONE_SHOT,
                                task_timeout_s=0.5, bus=bus)
        tasks = [Task(key="hang", fn=_sleep_then, arg=(30.0, "never"),
                      affinity="a")]
        tasks += _tasks(_square, [2, 3, 4])
        start = time.monotonic()
        outcomes = pool.run(tasks)
        assert time.monotonic() - start < 15.0
        assert not outcomes[0].ok
        assert "timeout" in outcomes[0].error
        assert [o.value for o in outcomes[1:]] == [4, 9, 16]

    def test_should_stop_cancels_pool_mode(self):
        pool = WorkStealingPool(workers=2)
        with pytest.raises(PoolCancelled):
            pool.run(_tasks(_square, list(range(6))),
                     should_stop=lambda: True)
