"""ServiceExecutor journal short-circuit + JobRunner state machine.

The executor is the resumability hinge: identical work must produce
identical task keys, journaled outcomes must replay instead of
re-simulating, and the runner must tell interrupted (resumable) apart
from cancelled (terminal)."""

import os

import pytest

from repro.harness import RetryPolicy, WorkerTaskError
from repro.harness.sweep import RunSpec, Sweep
from repro.service import (
    JobRunner,
    JobSpec,
    JobStore,
    ServiceExecutor,
    WorkStealingPool,
    report_fingerprint,
    task_key,
)

FAST_RETRY = RetryPolicy(max_attempts=1)


def _double(x):
    return x * 2


def _double_chunk(chunk):
    return [item * 2 for item in chunk]


def _bad_chunk(chunk):
    return [0]                      # wrong length on purpose


def _always_fails(x):
    raise ValueError("poison")


def tiny_campaign(name: str = "") -> JobSpec:
    return JobSpec.campaign(["hashmap"], ["PMEM-Spec"], budget=4,
                            fases_per_thread=4, snapshot_rungs=4,
                            batch=2, name=name)


def make_executor(tmp_path, job="j1"):
    store = JobStore(str(tmp_path))
    os.makedirs(store.job_dir(job), exist_ok=True)
    pool = WorkStealingPool(workers=1, retry=FAST_RETRY)
    return store, ServiceExecutor(store, job, pool)


class TestTaskKey:
    def test_stable_across_dict_ordering(self):
        assert (task_key(_double, {"a": 1, "b": 2})
                == task_key(_double, {"b": 2, "a": 1}))

    def test_distinguishes_fn_and_arg(self):
        assert task_key(_double, 1) != task_key(_double, 2)
        assert task_key(_double, 1) != task_key(_double_chunk, 1)


class TestServiceExecutor:
    def test_map_journals_then_short_circuits(self, tmp_path):
        store, executor = make_executor(tmp_path)
        assert executor.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert executor.stats == {"tasks_from_journal": 0,
                                  "tasks_executed": 3,
                                  "tasks_total": 3}
        # A fresh executor over the same store replays the journal.
        resumed = ServiceExecutor(store, "j1",
                                  WorkStealingPool(workers=1))
        assert resumed.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert resumed.stats == {"tasks_from_journal": 3,
                                 "tasks_executed": 0,
                                 "tasks_total": 3}

    def test_map_batched_scatter_and_resume(self, tmp_path):
        store, executor = make_executor(tmp_path)
        items = list(range(10))
        key = lambda x: x // 5                          # noqa: E731
        out = executor.map_batched(_double_chunk, items, key=key,
                                   chunk_size=3)
        assert out == [x * 2 for x in items]
        assert executor.stats["tasks_executed"] == 4    # 2 per group
        resumed = ServiceExecutor(store, "j1",
                                  WorkStealingPool(workers=1))
        assert resumed.map_batched(_double_chunk, items, key=key,
                                   chunk_size=3) == out
        assert resumed.stats["tasks_executed"] == 0
        assert resumed.stats["tasks_from_journal"] == 4

    def test_partial_journal_runs_only_missing(self, tmp_path):
        store, executor = make_executor(tmp_path)
        executor.map(_double, [1, 2])
        resumed = ServiceExecutor(store, "j1",
                                  WorkStealingPool(workers=1))
        assert resumed.map(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
        assert resumed.stats["tasks_from_journal"] == 2
        assert resumed.stats["tasks_executed"] == 2

    def test_batched_length_mismatch_raises(self, tmp_path):
        _store, executor = make_executor(tmp_path)
        with pytest.raises(WorkerTaskError, match="chunk"):
            executor.map_batched(_bad_chunk, [1, 2, 3], chunk_size=3)

    def test_quarantined_task_fails_the_map(self, tmp_path):
        _store, executor = make_executor(tmp_path)
        with pytest.raises(WorkerTaskError, match="quarantined"):
            executor.map(_always_fails, [1])


class TestReportFingerprint:
    BASE = {"schema_version": 1, "elapsed_s": 1.5,
            "obsv": {"events": 10},
            "params": {"budget": 4, "snapshot_dir": "/tmp/a"},
            "cells": [{"passes": 3}]}

    def test_ignores_wall_clock_and_location(self):
        other = {"schema_version": 1, "elapsed_s": 99.0,
                 "obsv": {"events": 123},
                 "params": {"budget": 4, "snapshot_dir": "/tmp/b"},
                 "cells": [{"passes": 3}]}
        assert (report_fingerprint(self.BASE)
                == report_fingerprint(other))

    def test_tracks_outcomes(self):
        other = {**self.BASE, "cells": [{"passes": 2}]}
        assert (report_fingerprint(self.BASE)
                != report_fingerprint(other))


class TestJobRunner:
    def test_campaign_done_then_forced_rerun_replays(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(tiny_campaign())
        runner = JobRunner(store, workers=1)
        done = runner.run_job(record.job_id)
        assert done.state == "done"
        assert done.detail["tasks_executed"] > 0
        assert done.detail["tasks_from_journal"] == 0
        first = store.load_report(record.job_id)
        assert first["schema_version"] >= 1

        rerun = store.submit(tiny_campaign(), force=True)
        assert rerun.state == "queued"
        again = runner.run_job(record.job_id)
        assert again.state == "done"
        assert again.detail["tasks_executed"] == 0
        assert (again.detail["tasks_from_journal"]
                == done.detail["tasks_executed"])
        assert (report_fingerprint(store.load_report(record.job_id))
                == report_fingerprint(first))

    def test_sweep_resumes_through_cache(self, tmp_path):
        store = JobStore(str(tmp_path))
        sweep = Sweep.grid(benchmarks=("tatp",),
                           designs=("PMEM-Spec",), n_threads=2,
                           seeds=7, fases_per_thread=5)
        spec = JobSpec.sweep(sweep.specs, name="tiny")
        record = store.submit(spec)
        runner = JobRunner(store, workers=1)
        done = runner.run_job(record.job_id)
        assert done.state == "done"
        assert done.detail["cache_misses"] == 1
        report = store.load_report(record.job_id)
        assert report["kind"] == "sweep" and report["n_specs"] == 1

        store.submit(spec, force=True)
        again = runner.run_job(record.job_id)
        assert again.state == "done"
        assert again.detail["cache_hits"] == 1
        assert again.detail["cache_misses"] == 0

    def test_cancel_marker_terminates_job(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(tiny_campaign())
        with open(os.path.join(store.job_dir(record.job_id),
                               "CANCEL"), "w") as handle:
            handle.write("now")
        outcome = JobRunner(store, workers=1).run_job(record.job_id)
        assert outcome.state == "cancelled"
        assert not store.cancel_requested(record.job_id)
        # Terminal: recovery must not resurrect it.
        assert store.recover() == []

    def test_interrupt_is_resumable(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(tiny_campaign())
        stopped = JobRunner(store, workers=1,
                            interrupt=lambda: True).run_job(
                                record.job_id)
        assert stopped.state == "interrupted"
        [requeued] = store.recover()
        assert requeued.job_id == record.job_id
        assert requeued.state == "queued"
        finished = JobRunner(store, workers=1).run_job(record.job_id)
        assert finished.state == "done"

    def test_failed_job_records_error(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = store.submit(tiny_campaign())
        runner = JobRunner(store, workers=1)
        original = runner._run_campaign

        def explode(*args, **kwargs):
            raise RuntimeError("engine fell over")

        runner._run_campaign = explode
        try:
            outcome = runner.run_job(record.job_id)
        finally:
            runner._run_campaign = original
        assert outcome.state == "failed"
        assert "engine fell over" in outcome.detail["error"]
