"""Kill-and-resume acceptance: the service's durability contract.

A 160-trial stratified campaign (the ``bench_campaign`` fixture:
hashmap + queue x PMEM-Spec + IntelX86, budget 40 per cell) runs as a
service job in a subprocess and is SIGKILLed mid-flight.  Restarting
over the same store must (a) re-queue the job via
:meth:`JobStore.recover`, (b) re-execute *only* the chunks whose
outcomes never reached the task journal (asserted via the
``tasks_from_journal`` / ``tasks_executed`` counters the runner writes
into the terminal journal entry), and (c) produce a
:class:`CampaignReport` byte-identical to an uninterrupted run modulo
wall-clock (:func:`report_fingerprint`)."""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.service import (
    JobRunner,
    JobSpec,
    JobStore,
    report_fingerprint,
)

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

# The bench_campaign 160-trial fixture, verbatim.
WORKLOADS = ["hashmap", "queue"]
DESIGNS = ["PMEM-Spec", "IntelX86"]
BUDGET = 40
N_THREADS = 2
FASES = 400
SEED = 42
RUNGS = 16
CHUNK = 10

#: 4 cells x ceil(40/10) trial chunks, plus two profiling passes
#: (ladder sizing + cache seeding) of one probe per cell.
EXPECTED_TASKS = 4 * (BUDGET // CHUNK) + 2 * 4

#: Journaled outcomes to wait for before pulling the plug.
KILL_AFTER_TASKS = 6

VICTIM = """\
import sys
from repro.service import JobRunner, JobSpec, JobStore
from tests.service.test_resume import fixture_spec
store = JobStore(sys.argv[1])
record = store.submit(fixture_spec())
JobRunner(store, workers=2).run_job(record.job_id)
"""


def fixture_spec() -> JobSpec:
    return JobSpec.campaign(WORKLOADS, DESIGNS, budget=BUDGET,
                            seed=SEED, n_threads=N_THREADS,
                            fases_per_thread=FASES,
                            snapshot_rungs=RUNGS, batch=CHUNK)


@pytest.fixture(scope="module")
def reference_fingerprint(tmp_path_factory):
    """An uninterrupted run of the same job: the ground truth."""
    store = JobStore(str(tmp_path_factory.mktemp("reference")))
    record = store.submit(fixture_spec())
    done = JobRunner(store, workers=2).run_job(record.job_id)
    assert done.state == "done", done.detail
    assert done.detail["tasks_total"] == EXPECTED_TASKS
    return report_fingerprint(store.load_report(record.job_id))


def _count_lines(path: str) -> int:
    try:
        with open(path) as handle:
            return sum(1 for line in handle if line.strip())
    except OSError:
        return 0


def test_kill_mid_campaign_then_resume_byte_identical(
        tmp_path, reference_fingerprint):
    root = str(tmp_path / "store")
    store = JobStore(root)
    job_id = fixture_spec().job_id()

    env = dict(os.environ)
    env["PYTHONPATH"] = (SRC + os.pathsep
                         + os.path.dirname(os.path.dirname(
                             os.path.abspath(__file__)))
                         + os.pathsep + env.get("PYTHONPATH", ""))
    victim = subprocess.Popen([sys.executable, "-c", VICTIM, root],
                              env=env, stdout=subprocess.DEVNULL,
                              stderr=subprocess.DEVNULL)
    tasks_path = store.tasks_path(job_id)
    deadline = time.monotonic() + 120.0
    while _count_lines(tasks_path) < KILL_AFTER_TASKS:
        if victim.poll() is not None:
            pytest.fail("victim finished before it could be killed; "
                        "raise KILL_AFTER_TASKS")
        if time.monotonic() > deadline:
            victim.kill()
            pytest.fail("victim never journaled enough tasks")
        time.sleep(0.02)
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)

    # The kill left the journal tail at `running`; recovery re-queues.
    assert store.record(job_id).state == "running"
    [requeued] = store.recover()
    assert requeued.job_id == job_id
    assert requeued.state == "queued"
    assert requeued.detail == {"resumed": True, "previous": "running"}

    journaled = len(store.tasks(job_id))
    assert 0 < journaled < EXPECTED_TASKS, (
        f"kill landed outside the window ({journaled} of "
        f"{EXPECTED_TASKS} tasks journaled)")

    done = JobRunner(store, workers=2).run_job(job_id)
    assert done.state == "done", done.detail

    # Only the missing work re-simulated, attributed exactly.
    assert done.detail["tasks_total"] == EXPECTED_TASKS
    assert done.detail["tasks_from_journal"] == journaled
    assert done.detail["tasks_executed"] == EXPECTED_TASKS - journaled

    # The resumed report is byte-identical modulo wall-clock.
    resumed = report_fingerprint(store.load_report(job_id))
    assert resumed == reference_fingerprint
