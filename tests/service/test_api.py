"""HTTP surface end-to-end: one real ``repro serve`` subprocess per
module, driven through :class:`ServiceClient` -- submit, poll, stream
NDJSON events (schema-validated), scrape metrics, and shut down
gracefully on SIGTERM (exit ``128 + 15``)."""

import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.obsv import validate_events
from repro.service import JobSpec, ServiceClient, ServiceError

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def tiny_campaign() -> JobSpec:
    return JobSpec.campaign(["hashmap"], ["PMEM-Spec"], budget=4,
                            fases_per_thread=4, snapshot_rungs=4,
                            batch=2, name="api-test")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("service")
    ready = root / "ready.txt"
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.harness", "serve",
         "--service-root", str(root / "store"), "--port", "0",
         "--ready-file", str(ready), "--jobs", "2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
    deadline = time.monotonic() + 30.0
    while not (ready.exists() and ready.read_text().strip()):
        if proc.poll() is not None:
            raise RuntimeError("serve exited early:\n"
                               + proc.stderr.read().decode())
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("serve never wrote the ready file")
        time.sleep(0.05)
    host, port = ready.read_text().split()
    try:
        yield ServiceClient(f"http://{host}:{port}", timeout_s=10.0)
    finally:
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=20)
        assert code == 128 + signal.SIGTERM, (
            f"graceful shutdown exit code was {code}")


@pytest.fixture(scope="module")
def done_job(server):
    accepted = server.submit(tiny_campaign())
    record = server.wait(accepted["job_id"], timeout_s=120.0)
    assert record["state"] == "done", record
    return record["job_id"]


def test_healthz(server):
    health = server.health()
    assert health["ok"] is True
    assert health["api_version"] == 1


def test_submitted_job_runs_to_done(server, done_job):
    record = server.job(done_job)
    assert record["state"] == "done"
    assert record["detail"]["tasks_executed"] > 0
    assert any(item["job_id"] == done_job for item in server.jobs())


def test_report_is_served(server, done_job):
    report = server.report(done_job)
    assert report["schema_version"] >= 1
    assert report["cells"]


def test_resubmit_is_idempotent(server, done_job):
    accepted = server.submit(tiny_campaign())
    assert accepted["job_id"] == done_job
    assert accepted["state"] == "done"


def test_event_stream_is_schema_valid(server, done_job):
    events = list(server.events(done_job, timeout_s=30.0))
    assert validate_events(events) == []
    kinds = {event["kind"] for event in events}
    assert {"job_submitted", "job_start", "job_progress",
            "job_finish", "trial_finish"} <= kinds


def test_metrics_scrape(server, done_job):
    text = server.metrics()
    assert "repro_jobs_total" in text
    assert "repro_job_seconds" in text


def test_unknown_job_is_404(server):
    with pytest.raises(ServiceError) as excinfo:
        server.job("deadbeefdeadbeefdeadbeef")
    assert excinfo.value.status == 404


def test_bad_submit_is_400(server):
    with pytest.raises(ServiceError) as excinfo:
        server._json("POST", "/jobs", {"kind": "mapreduce",
                                       "params": {}})
    assert excinfo.value.status == 400


def test_cancel_of_terminal_job_is_noop(server, done_job):
    assert server.cancel(done_job)["state"] == "done"
