"""Unit tests for the three baseline designs and the design registry."""

import pytest

from repro.config import table3_config
from repro.isa import Compute, Fase, Program, PWrite, ThreadProgram
from repro.persistency import (
    DPO,
    HOPS,
    CountingBloom,
    Design,
    IntelX86Epoch,
    UnsupportedOp,
    design_by_name,
)
from repro.runtime import DATA_BASE
from repro.system import build_system


def one_write_program(n_threads=1, fases=2):
    threads = []
    fase_id = 0
    for tid in range(n_threads):
        fs = []
        for _ in range(fases):
            fs.append(Fase(fase_id, [PWrite(DATA_BASE + tid * 64, 7),
                                     Compute(10)]))
            fase_id += 1
        threads.append(ThreadProgram(tid, fs))
    return Program("p", threads, initial_heap={DATA_BASE: 0})


def run_design(name, program=None, **config_overrides):
    program = program or one_write_program()
    config = table3_config(n_cores=program.n_threads, **config_overrides)
    system = build_system(program, design_by_name(name), config)
    return system, system.run()


class TestRegistry:
    def test_all_four_designs_resolvable(self):
        for name in ("IntelX86", "DPO", "HOPS", "PMEM-Spec"):
            assert isinstance(design_by_name(name), Design)

    def test_alias(self):
        assert design_by_name("PMEMSpec").name == "PMEM-Spec"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            design_by_name("ARM")

    def test_flavors(self):
        assert design_by_name("IntelX86").flavor == "x86"
        assert design_by_name("DPO").flavor == "x86"
        assert design_by_name("HOPS").flavor == "hops"
        assert design_by_name("PMEM-Spec").flavor == "pmemspec"


class TestUnsupportedOps:
    def test_x86_has_no_custom_fences(self):
        design = IntelX86Epoch()
        with pytest.raises(UnsupportedOp):
            design.ofence(0, 0)
        with pytest.raises(UnsupportedOp):
            design.spec_barrier(0, 0)

    def test_hops_has_no_clwb(self):
        with pytest.raises(UnsupportedOp):
            HOPS().clwb(0, 0, 0)

    def test_dpo_has_no_spec_ops(self):
        with pytest.raises(UnsupportedOp):
            DPO().spec_assign(0, 0)


class TestIntelX86:
    def test_sfence_stalls_for_clwb(self):
        system, result = run_design("IntelX86")
        stats = result.stats["design"]
        assert stats["clwbs"] > 0
        assert stats["sfences"] > 0
        assert stats["sfence_stall_cycles"] > 0

    def test_writebacks_persist(self):
        system, _ = run_design("IntelX86")
        assert system.device.read(DATA_BASE) == 7


class TestDPO:
    def test_below_baseline_under_contention(self):
        program = one_write_program(n_threads=4, fases=8)
        _, base = run_design("IntelX86", program)
        program = one_write_program(n_threads=4, fases=8)
        _, dpo = run_design("DPO", program)
        assert dpo.throughput <= base.throughput * 1.05

    def test_volatile_barrier_ordering_counted(self):
        from repro.isa import LockAcquire, LockRelease
        fase = Fase(0, [LockAcquire(0), PWrite(DATA_BASE, 1),
                        LockRelease(0)])
        program = Program("p", [ThreadProgram(0, [fase])], n_locks=1)
        system, _ = run_design("DPO", program)
        assert "volatile_barrier_stalls" in system.design.stats.as_dict()


class TestHOPS:
    def test_ofence_never_stalls(self):
        system, result = run_design("HOPS")
        stats = result.stats["design"]
        assert stats["ofences"] > 0
        # ofence issues in one cycle; only dfence accumulates stall.
        assert stats["dfences"] > 0

    def test_persist_buffer_carries_data(self):
        system, _ = run_design("HOPS")
        assert system.device.read(DATA_BASE) == 7

    def test_bloom_lookup_on_every_pm_read(self):
        program = one_write_program()
        config = table3_config(n_cores=1)
        system = build_system(program, design_by_name("HOPS"), config)
        system.run()
        policy = system.pmc.policy
        assert policy.lookups == system.pmc.stats["reads"]

    def test_sticky_bus_extra_latency(self):
        system, _ = run_design("HOPS")
        base = table3_config(n_cores=1)
        assert system.hierarchy.l2_lat > base.ns(base.l2_hit_ns)


class TestCountingBloom:
    def test_insert_query_remove(self):
        bloom = CountingBloom(256, 2)
        assert not bloom.query(42)
        bloom.insert(42)
        assert bloom.query(42)
        bloom.remove(42)
        assert not bloom.query(42)

    def test_counting_handles_duplicates(self):
        bloom = CountingBloom(256, 2)
        bloom.insert(42)
        bloom.insert(42)
        bloom.remove(42)
        assert bloom.query(42)

    def test_remove_never_goes_negative(self):
        bloom = CountingBloom(256, 2)
        bloom.remove(42)
        bloom.insert(42)
        assert bloom.query(42)

    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            CountingBloom(4, 2)
        with pytest.raises(ValueError):
            CountingBloom(256, 0)


class TestPMEMSpecDesign:
    def test_every_pm_store_rides_persist_path(self):
        system, result = run_design("PMEM-Spec")
        stats = result.stats["design"]
        assert stats["persist_path_stores"] == system.pmc.stats["persists"]
        assert stats["spec_barriers"] > 0

    def test_llc_writebacks_dropped(self):
        """Force LLC dirty evictions; the dropped data must not persist
        via the regular path (only the persist path updates PM)."""
        fases = [Fase(i, [PWrite(DATA_BASE + i * 64, i + 1)])
                 for i in range(20)]
        program = Program("p", [ThreadProgram(0, fases)])
        config = table3_config(n_cores=1, l2_size_bytes=64 * 16,
                               l2_ways=16, l1_size_bytes=64 * 4, l1_ways=4)
        system = build_system(program, design_by_name("PMEM-Spec"), config)
        system.run()
        # Every value still correct in PM -- via the persist path.
        for i in range(20):
            assert system.device.read(DATA_BASE + i * 64) == i + 1
        assert system.hierarchy.stats["llc_dirty_writebacks"] > 0

    def test_quiesce_time_covers_last_persist(self):
        system, result = run_design("PMEM-Spec")
        assert system.design.quiesce_time(0) > 0


class TestStrandWeaver:
    def test_registry_and_flavor(self):
        design = design_by_name("StrandWeaver")
        assert design.flavor == "strand"
        assert design.drops_llc_writebacks

    def test_data_durable_through_strand_buffers(self):
        system, _ = run_design("StrandWeaver")
        assert system.device.read(DATA_BASE) == 7

    def test_strand_ops_counted(self):
        system, result = run_design("StrandWeaver")
        stats = result.stats["design"]
        assert stats["new_strands"] > 0
        assert stats["strand_barriers"] > 0
        assert stats["joins"] > 0
        assert stats["dfences"] > 0

    def test_at_least_as_fast_as_hops_on_multi_group_fases(self):
        """Strand persistency's point: independent groups drain in
        parallel instead of FIFO (Gogte et al.; §9's comparison)."""
        from repro.workloads import TPCC

        def run(design_name):
            workload = TPCC(seed=3)
            program = workload.build(4, 15)
            config = table3_config(n_cores=4)
            system = build_system(program, design_by_name(design_name),
                                  config)
            return system.run()

        strand = run("StrandWeaver")
        hops = run("HOPS")
        assert strand.cycles <= hops.cycles * 1.02

    def test_crash_consistent(self):
        from repro.runtime import crash_sweep
        from repro.workloads import TPCC
        outcomes = crash_sweep(TPCC, "StrandWeaver", n_points=4,
                               n_threads=2, fases_per_thread=8, seed=5)
        assert all(outcome.consistent for outcome in outcomes)

    def test_baseline_designs_reject_strand_ops(self):
        with pytest.raises(UnsupportedOp):
            IntelX86Epoch().new_strand(0, 0)
        with pytest.raises(UnsupportedOp):
            HOPS().join_strand(0, 0)
