"""Canonical-encoding unit tests: the fingerprint must be a pure
function of *state*, not of dict insertion order or container flavor."""

import pytest

from repro.snapshot import canonical_bytes, fingerprint_state
from repro.snapshot.fingerprint import FingerprintError


class TestCanonicalBytes:
    def test_dict_order_irrelevant(self):
        assert canonical_bytes({"a": 1, "b": 2}) == \
            canonical_bytes({"b": 2, "a": 1})

    def test_int_keys_sorted(self):
        assert canonical_bytes({2: "x", 10: "y"}) == \
            canonical_bytes({10: "y", 2: "x"})

    def test_list_and_tuple_equivalent(self):
        assert canonical_bytes([1, 2, 3]) == canonical_bytes((1, 2, 3))

    def test_scalars_distinguished(self):
        blobs = {canonical_bytes(v) for v in
                 (None, True, False, 0, 1, "", "0", 0.0)}
        assert len(blobs) == 8

    def test_int_float_distinguished(self):
        # 1 and 1.0 compare equal in Python but are different state.
        assert canonical_bytes(1) != canonical_bytes(1.0)

    def test_string_prefix_unambiguous(self):
        # Length prefixes prevent ["ab","c"] == ["a","bc"] collisions.
        assert canonical_bytes(["ab", "c"]) != canonical_bytes(["a", "bc"])

    def test_nested_containers(self):
        a = {"outer": [{"k": (1, 2)}, {"k": (3,)}]}
        b = {"outer": [{"k": [1, 2]}, {"k": [3]}]}
        assert canonical_bytes(a) == canonical_bytes(b)

    def test_float_precision_exact(self):
        assert canonical_bytes(0.1 + 0.2) != canonical_bytes(0.3)

    def test_unsupported_type_raises(self):
        with pytest.raises(FingerprintError):
            canonical_bytes(object())

    def test_set_rejected(self):
        # Sets have no canonical order; capture code must emit lists.
        with pytest.raises(FingerprintError):
            canonical_bytes({1, 2})


class TestFingerprintState:
    def test_covers_cycle_and_components_only(self):
        base = {"cycle": 5, "components": {"a": 1}, "ladder": {"x": 1}}
        without_extras = {"cycle": 5, "components": {"a": 1}}
        assert fingerprint_state(base) == fingerprint_state(without_extras)

    def test_cycle_matters(self):
        a = {"cycle": 5, "components": {}}
        b = {"cycle": 6, "components": {}}
        assert fingerprint_state(a) != fingerprint_state(b)

    def test_component_state_matters(self):
        a = {"cycle": 5, "components": {"core": {"cursor": 1}}}
        b = {"cycle": 5, "components": {"core": {"cursor": 2}}}
        assert fingerprint_state(a) != fingerprint_state(b)

    def test_stable_hex_digest(self):
        digest = fingerprint_state({"cycle": 0, "components": {}})
        assert isinstance(digest, str)
        assert len(digest) == 64
        int(digest, 16)  # valid hex
