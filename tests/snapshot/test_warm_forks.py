"""Warm-start sweep forks: identity forks reproduce the base exactly,
timing variants run their own tails, structural changes are refused."""

import pytest

from repro.harness import RunSpec, fork_warm_starts, structural_mismatches
from repro.harness.configs import default_config
from repro.snapshot import SnapshotError


def base_spec(**overrides):
    kwargs = dict(benchmark="queue", design="PMEM-Spec", n_threads=2,
                  fases_per_thread=5, seed=7)
    kwargs.update(overrides)
    return RunSpec(**kwargs)


class TestForkWarmStarts:
    def test_identity_fork_equals_base(self):
        base = base_spec()
        base_result, [forked] = fork_warm_starts(
            base, [base_spec()], snapshot_every=5)
        assert forked.cycles == base_result.cycles
        assert forked.stats["warm_fork"]["rung"] == 0

    def test_latency_variants_diverge_monotonically(self):
        variants = [base_spec(config_overrides={"persist_path_ns": ns})
                    for ns in (10.0, 40.0)]
        _base, [fast, slow] = fork_warm_starts(
            base_spec(), variants, snapshot_every=5)
        assert fast.cycles < slow.cycles

    def test_last_rung_fork(self):
        base_result, [forked] = fork_warm_starts(
            base_spec(), [base_spec()], snapshot_every=5, rung_index=-1)
        assert forked.cycles == base_result.cycles

    def test_structural_change_refused(self):
        bad = base_spec(config_overrides={"spec_buffer_entries": 8})
        with pytest.raises(SnapshotError, match="structural"):
            fork_warm_starts(base_spec(), [bad], snapshot_every=5)

    def test_program_identity_change_refused(self):
        other = base_spec(seed=8)
        with pytest.raises(SnapshotError, match="seed"):
            fork_warm_starts(base_spec(), [other], snapshot_every=5)

    def test_design_change_refused(self):
        other = base_spec(design="HOPS")
        with pytest.raises(SnapshotError, match="design"):
            fork_warm_starts(base_spec(), [other], snapshot_every=5)

    def test_interval_longer_than_run_raises(self):
        with pytest.raises(SnapshotError, match="no rungs"):
            fork_warm_starts(base_spec(), [base_spec()],
                             snapshot_every=10_000_000)

    def test_zero_interval_rejected(self):
        with pytest.raises(ValueError):
            fork_warm_starts(base_spec(), [base_spec()], snapshot_every=0)


class TestStructuralMismatches:
    def test_identical_configs_clean(self):
        config = default_config(n_cores=2)
        assert structural_mismatches(config, config) == []

    def test_timing_change_is_not_structural(self):
        base = default_config(n_cores=2)
        variant = base.with_overrides(persist_path_ns=99.0,
                                      pm_write_ns=50.0)
        assert structural_mismatches(base, variant) == []

    def test_capacity_change_is_structural(self):
        base = default_config(n_cores=2)
        variant = base.with_overrides(pmc_write_queue=128,
                                      spec_buffer_entries=16)
        assert sorted(structural_mismatches(base, variant)) == \
            ["pmc_write_queue", "spec_buffer_entries"]
