"""Snapshot-accelerated campaigns: warm trials equal cold trials, and a
damaged store degrades to a cold start instead of changing outcomes."""

import os
from dataclasses import replace

import pytest

from repro.snapshot import SnapshotStore
from repro.validation.campaign import (TrialSpec, _cell_index_name,
                                       profile_cell, run_trial,
                                       verify_cell)


@pytest.fixture
def warm_cell(tmp_path):
    """A profiled hashmap/PMEM-Spec cell with rungs on disk."""
    spec = TrialSpec(workload="hashmap", design="PMEM-Spec", n_threads=2,
                     fases_per_thread=6, seed=11, snapshot_every=6,
                     snapshot_dir=str(tmp_path / "snaps"))
    profile = profile_cell(spec)
    return spec, profile


def _strip(outcome):
    outcome = dict(outcome)
    outcome.pop("restored_from_cycle")
    outcome["spec"] = {k: v for k, v in outcome["spec"].items()
                       if k != "snapshot_dir"}
    return outcome


class TestWarmTrialParity:
    def test_warm_equals_cold(self, warm_cell):
        spec, profile = warm_cell
        crash = profile.total_cycles // 2
        cold_spec = replace(spec, snapshot_dir=None, crash_cycle=crash)
        warm = run_trial(replace(spec, crash_cycle=crash))
        cold = run_trial(cold_spec)
        assert warm["restored_from_cycle"] is not None
        assert _strip(warm) == _strip(cold)

    def test_early_crash_runs_cold(self, warm_cell):
        spec, _profile = warm_cell
        outcome = run_trial(replace(spec, crash_cycle=1))
        assert outcome["restored_from_cycle"] is None

    def test_trial_without_store_is_cold(self, warm_cell):
        spec, profile = warm_cell
        outcome = run_trial(replace(spec, snapshot_dir=None,
                                    crash_cycle=profile.total_cycles // 2))
        assert outcome["restored_from_cycle"] is None


class TestStoreDamageFallback:
    def test_missing_index_falls_back_cold(self, warm_cell, tmp_path):
        spec, profile = warm_cell
        crash = profile.total_cycles // 2
        reference = _strip(run_trial(replace(
            spec, snapshot_dir=None, crash_cycle=crash)))
        store = SnapshotStore(spec.snapshot_dir)
        os.unlink(store._index_path(_cell_index_name(spec)))
        outcome = run_trial(replace(spec, crash_cycle=crash))
        assert outcome["restored_from_cycle"] is None
        assert _strip(outcome) == reference

    def test_truncated_object_falls_back_cold(self, warm_cell):
        spec, profile = warm_cell
        crash = profile.total_cycles // 2
        reference = _strip(run_trial(replace(
            spec, snapshot_dir=None, crash_cycle=crash)))
        store = SnapshotStore(spec.snapshot_dir)
        for rung in store.load_index(_cell_index_name(spec)):
            path = store._object_path(rung["key"])
            with open(path, "r+b") as handle:
                handle.truncate(16)
        outcome = run_trial(replace(spec, crash_cycle=crash))
        assert outcome["restored_from_cycle"] is None
        assert _strip(outcome) == reference


class TestVerifyCell:
    def test_healthy_ladder_verifies(self, warm_cell):
        spec, _profile = warm_cell
        outcome = verify_cell(spec)
        assert outcome["ok"]
        assert all(check["fingerprint_ok"]
                   for check in outcome["checks"])

    def test_verify_requires_snapshot_config(self):
        spec = TrialSpec(workload="queue", design="PMEM-Spec",
                         n_threads=2, fases_per_thread=4)
        with pytest.raises(ValueError, match="snapshot"):
            verify_cell(spec)


class TestBuildCaches:
    """The per-cell program cache and the lowering cache must keep
    trials pure functions of their spec: no order dependence, no
    warm-vs-fresh divergence."""

    SPEC = TrialSpec(workload="queue", design="IntelX86", n_threads=2,
                     fases_per_thread=8, seed=7, crash_cycle=2000)

    def test_trials_are_order_independent(self):
        first = run_trial(self.SPEC)
        run_trial(replace(self.SPEC, crash_cycle=4000))
        assert run_trial(self.SPEC) == first

    def test_warm_caches_match_fresh_caches(self):
        from repro.compiler.lowering import clear_lowered_memo
        from repro.validation.campaign import _PROGRAM_CACHE
        warm = run_trial(self.SPEC)
        for _workload, program in _PROGRAM_CACHE.values():
            clear_lowered_memo(program)
        _PROGRAM_CACHE.clear()
        assert run_trial(self.SPEC) == warm


class TestSpecValidation:
    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError, match="snapshot_every"):
            TrialSpec(workload="queue", design="PMEM-Spec",
                      snapshot_every=-1)

    def test_cell_index_excludes_crash_cycle_and_dir(self):
        a = TrialSpec(workload="queue", design="PMEM-Spec",
                      crash_cycle=10, snapshot_every=5, snapshot_dir="/x")
        b = TrialSpec(workload="queue", design="PMEM-Spec",
                      crash_cycle=99, snapshot_every=5, snapshot_dir="/y")
        assert _cell_index_name(a) == _cell_index_name(b)

    def test_cell_index_depends_on_interval(self):
        a = TrialSpec(workload="queue", design="PMEM-Spec",
                      snapshot_every=5)
        b = TrialSpec(workload="queue", design="PMEM-Spec",
                      snapshot_every=10)
        assert _cell_index_name(a) != _cell_index_name(b)
