"""SnapshotStore: content addressing, atomicity, corruption, LRU cap."""

import os
import time

import pytest

from repro.snapshot import SnapshotError, SnapshotStore


@pytest.fixture
def store(tmp_path):
    return SnapshotStore(str(tmp_path / "snaps"))


class TestContentAddressing:
    def test_round_trip(self, store):
        payload = {"cycle": 42, "components": {"core": [1, 2, 3]}}
        key = store.put(payload)
        assert store.get(key) == payload

    def test_same_content_same_key(self, store):
        assert store.put({"a": 1}) == store.put({"a": 1})

    def test_different_content_different_key(self, store):
        assert store.put({"a": 1}) != store.put({"a": 2})

    def test_has(self, store):
        key = store.put({"x": 1})
        assert store.has(key)
        assert not store.has("0" * 64)

    def test_missing_key_raises(self, store):
        with pytest.raises(SnapshotError, match="unavailable"):
            store.get("f" * 64)


class TestCorruption:
    def test_truncated_object_raises_clean_error(self, store):
        key = store.put({"cycle": 1, "big": list(range(1000))})
        path = store._object_path(key)
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        with pytest.raises(SnapshotError, match="corrupt"):
            store.get(key)

    def test_bitflip_detected(self, store):
        key = store.put({"cycle": 7})
        path = store._object_path(key)
        with open(path, "r+b") as handle:
            handle.seek(3)
            byte = handle.read(1)
            handle.seek(3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(SnapshotError, match="corrupt"):
            store.get(key)

    def test_no_temp_litter_after_put(self, store):
        store.put({"cycle": 1})
        leftovers = [name for _dir, _sub, names in os.walk(store.root)
                     for name in names if name.endswith(".tmp")]
        assert leftovers == []

    def test_unpicklable_payload_raises(self, store):
        with pytest.raises(SnapshotError, match="unpicklable"):
            store.put({"fn": lambda: None})


class TestLRUCap:
    def test_cap_evicts_oldest(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        first = store.put({"n": 1, "pad": list(range(100))})
        # Cap fits one object but not two; age the first so mtime
        # ordering is unambiguous even on coarse filesystems.
        store.max_bytes = store.total_bytes() + 10
        os.utime(store._object_path(first),
                 (time.time() - 10, time.time() - 10))
        second = store.put({"n": 2, "pad": list(range(100))})
        assert not store.has(first)
        assert store.has(second)

    def test_no_cap_keeps_everything(self, store):
        keys = [store.put({"n": n, "pad": list(range(50))})
                for n in range(5)]
        assert all(store.has(key) for key in keys)
        assert store.total_bytes() > 0


class TestReadCache:
    """The process-wide read cache: hot rungs skip the filesystem, the
    sha256 is checked on first read only, and `put` never pre-warms."""

    def test_second_read_skips_disk(self, store):
        key = store.put({"cycle": 1, "pad": list(range(200))})
        first = store.get(key)
        os.unlink(store._object_path(key))   # disk gone, cache hot
        assert store.get(key) == first
        stats = SnapshotStore.read_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cache_shared_across_store_instances(self, store, tmp_path):
        key = store.put({"cycle": 2})
        store.get(key)
        other = SnapshotStore(str(tmp_path / "elsewhere"))
        # Content addressing makes the blob location-independent: the
        # second store serves it from the shared cache without ever
        # having held the object on disk.
        assert other.get(key) == {"cycle": 2}

    def test_put_does_not_populate_cache(self, store):
        key = store.put({"cycle": 3})
        assert SnapshotStore.read_cache_stats()["entries"] == 0
        path = store._object_path(key)
        with open(path, "r+b") as handle:
            handle.truncate(4)
        with pytest.raises(SnapshotError, match="corrupt"):
            store.get(key)

    def test_clear_forgets_everything(self, store):
        key = store.put({"cycle": 4})
        store.get(key)
        os.unlink(store._object_path(key))
        SnapshotStore.clear_read_cache()
        with pytest.raises(SnapshotError, match="unavailable"):
            store.get(key)

    def test_sha_verified_once(self, store):
        key = store.put({"cycle": 5})
        store.get(key)
        # Evict the blob but keep the verified memo: the re-read hits
        # disk without recomputing the hash.
        SnapshotStore._read_cache.clear()
        SnapshotStore._read_cache_bytes = 0
        store.get(key)
        assert SnapshotStore.read_cache_stats()["sha_skips"] == 1

    def test_byte_cap_evicts_lru(self, store):
        SnapshotStore.READ_CACHE_MAX_BYTES, saved = \
            4096, SnapshotStore.READ_CACHE_MAX_BYTES
        try:
            keys = [store.put({"n": n, "pad": list(range(400))})
                    for n in range(8)]
            for key in keys:
                store.get(key)
            stats = SnapshotStore.read_cache_stats()
            assert stats["evictions"] > 0
            assert stats["bytes"] <= 4096
        finally:
            SnapshotStore.READ_CACHE_MAX_BYTES = saved

    def test_disk_eviction_drops_cached_blob(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        first = store.put({"n": 1, "pad": list(range(100))})
        store.get(first)
        store.max_bytes = store.total_bytes() + 10
        os.utime(store._object_path(first),
                 (time.time() - 10, time.time() - 10))
        store.put({"n": 2, "pad": list(range(100))})
        # The disk LRU evicted `first`; the read cache must not keep
        # serving an object the store claims not to have.
        assert not store.has(first)
        with pytest.raises(SnapshotError, match="unavailable"):
            store.get(first)


class TestIndexes:
    def test_round_trip(self, store):
        rungs = [{"cycle": 10, "rung": 0, "key": "a" * 64,
                  "fingerprint": "b" * 64}]
        store.save_index("cell1", rungs)
        assert store.load_index("cell1") == rungs
        assert store.indexes() == ["cell1"]

    def test_missing_index_raises(self, store):
        with pytest.raises(SnapshotError, match="unavailable"):
            store.load_index("nope")

    def test_wrong_schema_raises(self, store, tmp_path):
        store.save_index("cell", [])
        path = store._index_path("cell")
        with open(path, "w") as handle:
            handle.write('{"schema_version": 999, "rungs": []}')
        with pytest.raises(SnapshotError, match="schema"):
            store.load_index("cell")

    def test_garbage_index_raises(self, store):
        with open(store._index_path("bad"), "w") as handle:
            handle.write("not json {")
        with pytest.raises(SnapshotError, match="unavailable"):
            store.load_index("bad")
