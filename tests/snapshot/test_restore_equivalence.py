"""The tentpole property: restore-then-replay is bit-identical.

For every design x benchmark pair, a canonical laddered run is compared
against a replay restored from each captured rung: the end-of-run state
fingerprint AND the full serialised SimResult must match exactly.
"""

import pytest

from repro.snapshot import SnapshotError, SnapshotLadder, nearest_rung
from repro.validation.campaign import BENCHMARKS, build_crash_system

DESIGNS = ["PMEM-Spec", "IntelX86", "DPO", "HOPS"]
WORKLOADS = ["array_swaps", "queue", "hashmap"]


def laddered_run(design, workload, capture=True, every=5):
    _workload, system = build_crash_system(
        BENCHMARKS[workload], design, 2, 5, seed=7)
    ladder = SnapshotLadder(system, every=every, capture=capture,
                            keep_in_memory=True).install()
    result = system.run()
    return system, ladder, result


def replay_from(rung, design, workload, every=5):
    _workload, system = build_crash_system(
        BENCHMARKS[workload], design, 2, 5, seed=7)
    SnapshotLadder(system, every=every, capture=False).install()
    system.restore_state(rung["payload"])
    done = system.launch()
    system.advance(stop_event=done)
    system.advance()
    return system


@pytest.mark.parametrize("design", DESIGNS)
@pytest.mark.parametrize("workload", WORKLOADS)
def test_restore_then_replay_bit_identical(design, workload):
    system, ladder, result = laddered_run(design, workload)
    assert ladder.rungs, "ladder captured no rungs; shrink `every`"
    reference_fp = system.state_fingerprint()
    reference_result = result.to_dict()
    for rung in ladder.rungs:
        replayed = replay_from(rung, design, workload)
        assert replayed.state_fingerprint() == reference_fp, \
            f"fingerprint diverged after restoring rung @{rung['cycle']}"
        assert replayed.result().to_dict() == reference_result, \
            f"result diverged after restoring rung @{rung['cycle']}"


def test_restored_payload_fingerprint_matches_recorded():
    _system, ladder, _result = laddered_run("PMEM-Spec", "queue")
    for rung in ladder.rungs:
        from repro.snapshot import fingerprint_state
        assert fingerprint_state(rung["payload"]) == rung["fingerprint"]


def test_ladder_off_preserves_plain_run():
    # every=0 must not perturb timing at all vs. no ladder installed.
    _w, plain = build_crash_system(
        BENCHMARKS["queue"], "PMEM-Spec", 2, 5, seed=7)
    plain_result = plain.run()
    _w, laddered = build_crash_system(
        BENCHMARKS["queue"], "PMEM-Spec", 2, 5, seed=7)
    SnapshotLadder(laddered, every=0).install()
    assert laddered.run().to_dict() == plain_result.to_dict()


def test_capture_refused_mid_flight():
    _w, system = build_crash_system(
        BENCHMARKS["queue"], "PMEM-Spec", 2, 5, seed=7)
    done = system.launch()
    system.advance(until=50, stop_event=done)
    with pytest.raises(SnapshotError, match="not empty"):
        system.capture_state()


def test_restore_rejects_future_schema():
    system, ladder, _result = laddered_run("PMEM-Spec", "queue")
    payload = dict(ladder.rungs[0]["payload"])
    payload["schema_version"] = 999
    _w, fresh = build_crash_system(
        BENCHMARKS["queue"], "PMEM-Spec", 2, 5, seed=7)
    with pytest.raises(SnapshotError, match="schema"):
        fresh.restore_state(payload)


class TestNearestRung:
    RUNGS = [{"cycle": 100}, {"cycle": 300}, {"cycle": 200}]

    def test_exact_hit(self):
        assert nearest_rung(self.RUNGS, 200)["cycle"] == 200

    def test_between_rungs(self):
        assert nearest_rung(self.RUNGS, 299)["cycle"] == 200

    def test_past_last(self):
        assert nearest_rung(self.RUNGS, 10_000)["cycle"] == 300

    def test_before_first_is_cold(self):
        assert nearest_rung(self.RUNGS, 99) is None

    def test_empty(self):
        assert nearest_rung([], 500) is None
