"""Shared snapshot-test hygiene.

The store's read cache is process-wide and content-addressed, so two
tests that build byte-identical ladders (same spec, fresh tmp dirs)
share cache entries.  Damage-injection tests tamper with the *disk*
copy and assert the cold-fallback path runs, which it only does when
the read cache is cold -- so every test starts with an empty one.
"""

import pytest

from repro.snapshot import SnapshotStore


@pytest.fixture(autouse=True)
def _cold_read_cache():
    SnapshotStore.clear_read_cache()
    yield
    SnapshotStore.clear_read_cache()
