"""End-to-end misspeculation tests (§8.4): detection fires exactly when
it should, the OS relays it, and recovery converges to a correct state."""

import pytest

from repro.persistency import design_by_name
from repro.system import build_system
from repro.workloads import LoadMisspecProbe, StoreMisspecProbe


def run_load_probe(slow_path, fases=10, recovery_mode="lazy"):
    probe = LoadMisspecProbe(seed=1)
    config = LoadMisspecProbe.recommended_config(2, slow_path=slow_path)
    program = probe.build(2, fases)
    system = build_system(program, design_by_name("PMEM-Spec"), config,
                          recovery_mode=recovery_mode)
    return probe, system, system.run()


def run_store_probe(extra=None, fases=20, recovery_mode="lazy"):
    probe = StoreMisspecProbe(seed=1)
    config = StoreMisspecProbe.recommended_config(2)
    program = probe.build(2, fases)
    system = build_system(program, design_by_name("PMEM-Spec"), config,
                          recovery_mode=recovery_mode)
    if extra is None:
        extra = StoreMisspecProbe.slow_core_extra_cycles()
    if extra:
        system.persist_path.set_core_extra(0, extra)
    return probe, system, system.run()


class TestLoadMisspeculation:
    def test_slow_path_triggers_detection(self):
        _probe, _system, result = run_load_probe(slow_path=True)
        assert result.load_misspeculations > 0
        assert result.stale_loads > 0

    def test_paper_latency_never_misspeculates(self):
        """§8.4: at 20 ns (shorter than the regular path) load
        misspeculation never occurs."""
        _probe, _system, result = run_load_probe(slow_path=False)
        assert result.load_misspeculations == 0
        assert result.stale_loads == 0

    def test_recovery_converges_all_fases_commit(self):
        probe, _system, result = run_load_probe(slow_path=True)
        assert result.fases_committed == 20
        assert result.fases_aborted > 0

    def test_interrupt_path_relays_to_runtime(self):
        """HW detect -> OS interrupt -> reverse map -> runtime handler."""
        _probe, system, result = run_load_probe(slow_path=True)
        interrupts = result.stats["interrupts"]
        assert interrupts["relayed_interrupts"] == result.misspeculations
        assert interrupts["interrupts_load"] == result.load_misspeculations
        assert len(system.runtime.misspec_events) == result.misspeculations
        assert system.interrupts.designated_space  # HW wrote the address

    def test_final_state_consistent_after_recovery(self):
        probe, system, _result = run_load_probe(slow_path=True)
        assert probe.validate_recovered(system.image.snapshot()) == []


class TestStoreMisspeculation:
    def test_congested_ring_triggers_detection(self):
        _probe, _system, result = run_store_probe()
        assert result.store_misspeculations > 0

    def test_symmetric_ring_is_clean(self):
        _probe, _system, result = run_store_probe(extra=0)
        assert result.store_misspeculations == 0
        assert result.fases_aborted == 0

    def test_conservative_rollback_flags_all_in_fase_threads(self):
        """§6.2: hardware cannot attribute blame, so every in-FASE thread
        rolls back -- aborts exceed detections."""
        _probe, _system, result = run_store_probe()
        assert result.fases_aborted >= result.store_misspeculations

    def test_all_fases_commit_after_retries(self):
        _probe, _system, result = run_store_probe()
        assert result.fases_committed == 40

    def test_shared_word_survives(self):
        probe, system, _result = run_store_probe()
        assert probe.validate_recovered(system.image.snapshot()) == []


class TestEagerRecovery:
    def test_eager_mode_also_converges(self):
        _probe, _system, result = run_store_probe(recovery_mode="eager")
        assert result.fases_committed == 40
        assert result.store_misspeculations > 0

    def test_eager_aborts_can_fire_mid_fase(self):
        _probe, system, result = run_store_probe(recovery_mode="eager",
                                                 fases=40)
        core_stats = result.stats["cores"]
        eager = sum(stats.get("eager_aborts", 0)
                    for stats in core_stats.values())
        lazy = sum(stats.get("lazy_aborts", 0)
                   for stats in core_stats.values())
        assert eager + lazy == result.fases_aborted


class TestVirtualPowerFailureEquivalence:
    """§4.4: misspeculation recovery uses the same machinery as real
    power failure -- a crash immediately after heavy misspeculation
    still recovers to a consistent state."""

    def test_crash_during_misspec_storm(self):
        probe = StoreMisspecProbe(seed=1)
        config = StoreMisspecProbe.recommended_config(2)
        program = probe.build(2, 20)
        system = build_system(program, design_by_name("PMEM-Spec"), config)
        system.persist_path.set_core_extra(
            0, StoreMisspecProbe.slow_core_extra_cycles())
        full = system.run()
        assert full.store_misspeculations > 0
        # Re-run and crash in the middle of the storm.
        from repro.runtime import run_recovery
        probe2 = StoreMisspecProbe(seed=1)
        program2 = probe2.build(2, 20)
        system2 = build_system(program2, design_by_name("PMEM-Spec"),
                               StoreMisspecProbe.recommended_config(2))
        system2.persist_path.set_core_extra(
            0, StoreMisspecProbe.slow_core_extra_cycles())
        system2.run(until=full.cycles // 2)
        report = run_recovery(system2.persisted_snapshot(), 2)
        assert probe2.validate_recovered(report.data_image()) == []


class TestSpecBufferPressure:
    def test_single_entry_buffer_stalls_cores(self):
        """Figure 11's mechanism: a 1-entry buffer overflows and pauses
        all cores, costing throughput."""
        from repro.config import table3_config
        from repro.workloads import Hashmap

        def run(entries):
            workload = Hashmap(seed=5)
            program = workload.build(4, 30)
            config = table3_config(n_cores=4, spec_buffer_entries=entries)
            system = build_system(program, design_by_name("PMEM-Spec"),
                                  config)
            return system.run()

        small = run(1)
        large = run(16)
        assert large.spec_buffer_overflows == 0
        assert small.spec_buffer_overflows > 0
        assert small.cycles >= large.cycles


class TestWindowSoundness:
    """§5.1.2: 'This window must be long enough to capture the
    worst-case persist-path latency.  Otherwise, the stale read problem
    goes undetected.'  Demonstrated by shrinking the window below the
    (slow) path latency."""

    def run_with_window(self, window_ns):
        probe = LoadMisspecProbe(seed=1)
        config = LoadMisspecProbe.recommended_config(
            2, slow_path=True).with_overrides(spec_window_ns=window_ns)
        program = probe.build(2, 10)
        system = build_system(program, design_by_name("PMEM-Spec"),
                              config)
        return system.run()

    def test_adequate_window_detects_every_stale_read(self):
        result = self.run_with_window(window_ns=None)  # §8.1 rule
        assert result.stale_loads > 0
        assert result.load_misspeculations >= result.stale_loads

    def test_short_window_misses_stale_reads(self):
        """A 100 ns window against a 2500 ns path: the monitored entry
        expires before the persist lands -- stale reads happen but are
        never detected (the unsound configuration the paper warns
        about)."""
        result = self.run_with_window(window_ns=100.0)
        assert result.stale_loads > 0
        assert result.load_misspeculations < result.stale_loads
