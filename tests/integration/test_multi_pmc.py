"""System-level §7 tests: with multiple PM controllers, PMEM-Spec's
strict intra-thread persist order silently breaks -- a crash between the
out-of-order acceptances leaves an unrecoverable tear -- and the paper's
proposed ordered-NoC extension repairs it."""

import pytest

from repro.config import table3_config
from repro.isa import Fase, PRead, Program, PWrite, ThreadProgram
from repro.persistency import design_by_name
from repro.runtime import DATA_BASE, run_recovery
from repro.system import build_system


class PairWorkloadOracle:
    """A FASE family whose invariant is `A == B`: each FASE writes the
    same fresh value to two addresses in *different* controllers (even
    and odd block).  A torn FASE that recovery cannot undo leaves
    A != B."""

    def __init__(self, fases=12):
        self.addr_a = DATA_BASE            # block even -> controller 0
        self.addr_b = DATA_BASE + 64       # block odd  -> controller 1
        self.fases = fases

    def build(self) -> Program:
        ops = []
        for index in range(self.fases):
            ops.append(Fase(index, [
                PRead(self.addr_a),
                PWrite(self.addr_a, index + 1),
                PWrite(self.addr_b, index + 1),
            ]))
        return Program("pair", [ThreadProgram(0, ops, think_cycles=50)],
                       initial_heap={self.addr_a: 0, self.addr_b: 0})

    def violations(self, image):
        a = image.get(self.addr_a, 0)
        b = image.get(self.addr_b, 0)
        if a != b:
            return [f"torn pair: A={a} B={b}"]
        return []


def crash_sweep(n_pmcs, ordered, skew=400, points=None):
    """Crash the pair workload densely; returns violation counts."""
    oracle = PairWorkloadOracle()
    total_system = build_system(
        oracle.build(), design_by_name("PMEM-Spec"),
        table3_config(n_cores=1, n_pm_controllers=n_pmcs,
                      ordered_noc=ordered))
    if n_pmcs > 1 and skew:
        total_system.pmc.set_controller_extra(1, skew)
    total = total_system.run().cycles
    points = points or range(50, total, max(1, total // 120))
    bad = 0
    for crash_cycle in points:
        oracle = PairWorkloadOracle()
        system = build_system(
            oracle.build(), design_by_name("PMEM-Spec"),
            table3_config(n_cores=1, n_pm_controllers=n_pmcs,
                          ordered_noc=ordered))
        if n_pmcs > 1 and skew:
            system.pmc.set_controller_extra(1, skew)
        system.run(until=crash_cycle)
        report = run_recovery(system.persisted_snapshot(), 1)
        bad += bool(oracle.violations(report.data_image()))
    return bad


class TestSection7:
    def test_single_controller_is_always_recoverable(self):
        assert crash_sweep(n_pmcs=1, ordered=False) == 0

    def test_two_controllers_expose_unrecoverable_tears(self):
        """The §7 limitation, made concrete: the undo entry (odd log
        block, delayed controller) can become durable after its data
        write (even block, fast controller); crashing in the window
        leaves a tear recovery cannot see."""
        assert crash_sweep(n_pmcs=2, ordered=False) > 0

    def test_ordered_noc_restores_recoverability(self):
        """The paper's future-work extension, implemented: an
        order-respecting NoC closes the window completely."""
        assert crash_sweep(n_pmcs=2, ordered=True) == 0

    def test_multi_pmc_runs_complete_normally(self):
        """Absent crashes, multi-PMC systems still execute correctly."""
        oracle = PairWorkloadOracle()
        system = build_system(
            oracle.build(), design_by_name("PMEM-Spec"),
            table3_config(n_cores=1, n_pm_controllers=2))
        result = system.run()
        assert result.fases_committed == oracle.fases
        assert oracle.violations(system.device.snapshot()) == []

    def test_detection_still_works_per_controller(self):
        """Each controller keeps its own speculation buffer; violations
        local to one controller are still caught."""
        from repro.workloads import StoreMisspecProbe
        probe = StoreMisspecProbe(seed=1)
        program = probe.build(2, 20)
        config = StoreMisspecProbe.recommended_config(2).with_overrides(
            n_pm_controllers=2, spec_buffer_entries=16)
        system = build_system(program, design_by_name("PMEM-Spec"), config)
        system.persist_path.set_core_extra(
            0, StoreMisspecProbe.slow_core_extra_cycles())
        result = system.run()
        assert result.store_misspeculations > 0
        assert result.fases_committed == 40
