"""Crash-injection tests: power failure at arbitrary points must always
recover to a structurally consistent state (§2.1's failure atomicity),
for every design, on every workload's invariants."""

import pytest

from repro.runtime import crash_sweep, run_with_crash
from repro.workloads import (
    ArraySwaps,
    ConcurrentQueue,
    Hashmap,
    Memcached,
    RBTree,
    TATP,
    TPCC,
    Vacation,
)

DESIGNS = ("IntelX86", "DPO", "HOPS", "PMEM-Spec")

# Keep the matrix affordable: every workload crashes under PMEM-Spec and
# the x86 baseline; the structurally richest workloads (rbtree, tpcc)
# also crash under the buffered designs.
FAST_MATRIX = [
    (ArraySwaps, "IntelX86"), (ArraySwaps, "PMEM-Spec"),
    (ConcurrentQueue, "IntelX86"), (ConcurrentQueue, "PMEM-Spec"),
    (Hashmap, "IntelX86"), (Hashmap, "PMEM-Spec"),
    (TATP, "IntelX86"), (TATP, "PMEM-Spec"),
    (Vacation, "IntelX86"), (Vacation, "PMEM-Spec"),
    (Memcached, "PMEM-Spec"),
    (RBTree, "IntelX86"), (RBTree, "PMEM-Spec"),
    (RBTree, "HOPS"), (RBTree, "DPO"),
    (TPCC, "IntelX86"), (TPCC, "PMEM-Spec"),
    (TPCC, "HOPS"), (TPCC, "DPO"),
]


@pytest.mark.parametrize(
    "workload_cls,design", FAST_MATRIX,
    ids=[f"{w.__name__}-{d}" for w, d in FAST_MATRIX])
def test_crash_anywhere_recovers_consistently(workload_cls, design):
    outcomes = crash_sweep(workload_cls, design, n_points=5,
                           n_threads=2, fases_per_thread=10, seed=17)
    for outcome in outcomes:
        assert outcome.consistent, (
            f"{workload_cls.__name__}/{design} @ {outcome.crash_cycle}: "
            f"{outcome.violations[:3]}")


def test_crash_at_cycle_one_is_initial_state():
    outcome = run_with_crash(ArraySwaps, "PMEM-Spec", crash_cycle=1,
                             n_threads=2, fases_per_thread=5, seed=17)
    assert outcome.consistent
    assert outcome.commits_before_crash == 0


def test_mid_fase_crash_rolls_back_partial_writes():
    """Find a crash point that lands mid-FASE (commits < total) and show
    recovery actually applied undo writes at least once somewhere."""
    from repro.runtime import measure_run_cycles
    total = measure_run_cycles(TPCC, "PMEM-Spec", 2, 10, 17)
    rolled_back = 0
    for fraction in (0.1, 0.2, 0.375, 0.5, 0.675):
        outcome = run_with_crash(TPCC, "PMEM-Spec",
                                 crash_cycle=int(total * fraction),
                                 n_threads=2, fases_per_thread=10, seed=17)
        assert outcome.consistent
        rolled_back += outcome.report.total_undo_writes
    assert rolled_back > 0, "no crash point ever landed mid-FASE"


def test_recovery_counts_match_rolled_back_threads():
    from repro.runtime import measure_run_cycles
    total = measure_run_cycles(Hashmap, "IntelX86", 2, 10, 17)
    outcome = run_with_crash(Hashmap, "IntelX86",
                             crash_cycle=total // 2,
                             n_threads=2, fases_per_thread=10, seed=17)
    assert outcome.consistent
    assert set(outcome.report.rolled_back_threads) <= {0, 1}


def test_dense_crash_points_on_one_fase_window():
    """Carpet-bomb a narrow window with crash points: every single cycle
    offset must recover (the strongest atomicity check)."""
    from repro.runtime import measure_run_cycles
    total = measure_run_cycles(ArraySwaps, "PMEM-Spec", 2, 8, 23)
    center = total // 2
    points = [center + delta for delta in range(-400, 401, 100)]
    outcomes = crash_sweep(ArraySwaps, "PMEM-Spec", crash_points=points,
                           n_threads=2, fases_per_thread=8, seed=23)
    assert all(outcome.consistent for outcome in outcomes)
