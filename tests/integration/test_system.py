"""End-to-end system tests: every benchmark under every design."""

import pytest

from repro.config import table3_config
from repro.harness import (ParallelExecutor, RunSpec, Sweep,
                           normalized_throughput)
from repro.persistency import design_by_name
from repro.system import build_system
from repro.workloads import BENCHMARKS, workload_by_name

DESIGNS = ("IntelX86", "DPO", "HOPS", "PMEM-Spec")
SMALL = dict(n_threads=2, fases_per_thread=8)


@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
@pytest.mark.parametrize("design", DESIGNS)
class TestEveryPair:
    def test_runs_to_completion_and_validates(self, bench_name, design):
        workload = workload_by_name(bench_name, seed=11)
        program = workload.build(**SMALL)
        system = build_system(program, design_by_name(design),
                              table3_config(n_cores=2))
        result = system.run()
        assert result.fases_committed == program.total_fases
        assert result.fases_aborted == 0
        assert result.misspeculations == 0
        # Architectural end state is structurally consistent.
        assert workload.validate_recovered(system.image.snapshot()) == []
        # Durable end state too: every FASE committed with durability.
        assert workload.validate_recovered(system.device.snapshot()) == []


class TestFigure9Shape:
    """The headline comparison's qualitative shape on a fast subset."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        executor = ParallelExecutor(jobs=1)
        for benchmark in ("queue", "rbtree", "tpcc"):
            sweep = Sweep([RunSpec(benchmark=benchmark, design=design,
                                   n_threads=4, fases_per_thread=15,
                                   seed=42,
                                   config=table3_config(n_cores=4))
                           for design in DESIGNS], name="fig9-shape")
            runs = {spec.design: result
                    for spec, result in executor.run(sweep)}
            out[benchmark] = normalized_throughput(runs)
        return out

    def test_baseline_normalises_to_one(self, results):
        for rows in results.values():
            assert rows["IntelX86"] == pytest.approx(1.0)

    def test_pmem_spec_beats_baseline_on_long_fases(self, results):
        assert results["rbtree"]["PMEM-Spec"] > 1.0
        assert results["tpcc"]["PMEM-Spec"] > 1.0

    def test_dpo_does_not_beat_baseline_meaningfully(self, results):
        for rows in results.values():
            assert rows["DPO"] < 1.10

    def test_hops_beats_baseline_on_long_fases(self, results):
        assert results["tpcc"]["HOPS"] > 1.0


class TestDeterminism:
    def test_same_seed_same_cycles(self):
        def run_once():
            workload = workload_by_name("hashmap", seed=9)
            program = workload.build(2, 10)
            system = build_system(program, design_by_name("PMEM-Spec"),
                                  table3_config(n_cores=2))
            return system.run().cycles

        assert run_once() == run_once()

    def test_crash_prefix_matches_full_run(self):
        """Stopping at cycle T observes exactly the prefix of the full
        run (event determinism)."""
        def build():
            workload = workload_by_name("array_swaps", seed=9)
            program = workload.build(2, 10)
            return build_system(program, design_by_name("IntelX86"),
                                table3_config(n_cores=2))

        full = build()
        full_result = full.run()
        half = build()
        half.run(until=full_result.cycles // 2)
        snapshot = half.persisted_snapshot()
        # Every persisted value at T exists in the full run's history
        # semantics: committed FASEs at T are a prefix of the full run's.
        assert half.runtime.total_commits <= full.runtime.total_commits
        assert snapshot  # something persisted by mid-run


class TestSimResult:
    def test_throughput_units(self):
        workload = workload_by_name("tatp", seed=3)
        program = workload.build(2, 10)
        system = build_system(program, design_by_name("PMEM-Spec"),
                              table3_config(n_cores=2))
        result = system.run()
        assert result.seconds == pytest.approx(
            result.cycles / 2e9)  # 2 GHz
        assert result.throughput == pytest.approx(
            result.fases_committed / result.seconds)

    def test_stats_sections_present(self):
        workload = workload_by_name("queue", seed=3)
        program = workload.build(2, 5)
        system = build_system(program, design_by_name("HOPS"),
                              table3_config(n_cores=2))
        result = system.run()
        for section in ("design", "runtime", "pmc", "hierarchy",
                        "spec_buffer", "cores"):
            assert section in result.stats
