"""System-level persist-order properties, checked against the PM
device's persist history (``record_history=True``).

These are the invariants the crash-consistency protocols rest on, so
they get their own direct checks in addition to the crash sweeps:

* strict intra-thread persist order under PMEM-Spec: one core's PM
  stores reach durability in commit order;
* the undo protocol's (A): an entry is durable no later than the first
  persist of the data write it protects;
* commit ordering (B)+(C): the epoch bump persists after the FASE's
  last data persist.
"""

from repro.compiler import lower_program
from repro.config import table3_config
from repro.isa import Fase, Program, PWrite, ThreadProgram
from repro.persistency import design_by_name
from repro.runtime import DATA_BASE
from repro.runtime.undo_log import UndoLogLayout, unpack_stamp
from repro.system import System
from repro.workloads import workload_by_name


def run_with_history(design_name, program, **config_overrides):
    config = table3_config(n_cores=program.n_threads, **config_overrides)
    design = design_by_name(design_name)
    lowered = lower_program(program, design.flavor)
    system = System(config, design, lowered, record_history=True)
    system.run()
    return system


def spread_writes_program(n_threads=2, fases=8, writes_per_fase=3):
    threads = []
    fase_id = 0
    for tid in range(n_threads):
        fase_list = []
        for index in range(fases):
            base = DATA_BASE + (tid * fases + index) * 4096
            ops = [PWrite(base + i * 64, fase_id * 100 + i + 1)
                   for i in range(writes_per_fase)]
            fase_list.append(Fase(fase_id, ops))
            fase_id += 1
        threads.append(ThreadProgram(tid, fase_list, think_cycles=30))
    return Program("order", threads)


class TestStrictIntraThreadOrder:
    def test_pmem_spec_persists_in_commit_order(self):
        """For a single-core run, the device's persist-path history must
        be monotone in program order (strict persistency, §4.2)."""
        program = spread_writes_program(n_threads=1, fases=10)
        system = run_with_history("PMEM-Spec", program)
        # Persist-path origins carry core/spec-ID attribution
        # ("persist:c<core>:s<spec>") for the durable-state models.
        history = [record for record in system.device.history
                   if record[3].startswith("persist")]
        assert history, "no persist-path history recorded"
        times = [record[0] for record in history]
        assert times == sorted(times)
        # Data writes appear in issue order per address sequence.
        data_addrs = [record[1] for record in history
                      if record[1] < UndoLogLayout(0).base]
        issue_order = []
        for thread in program.threads:
            for fase in thread.fases:
                issue_order.extend(fase.writes)
        # Every address is written once, so the persist sequence of data
        # addresses must be exactly the program-order write sequence.
        seen = set(data_addrs)
        assert data_addrs == [addr for addr in issue_order
                              if addr in seen]


class TestUndoProtocolOrdering:
    def _first_persist_times(self, system):
        first = {}
        for time, addr, _value, _origin in system.device.history:
            first.setdefault(addr, time)
        return first

    def _check_entries_before_data(self, system, thread_ids):
        first = self._first_persist_times(system)
        checked = 0
        for tid in thread_ids:
            layout = UndoLogLayout(tid)
            for index in range(layout.max_entries):
                marker_addr = layout.entry_target_addr(index)
                if marker_addr not in first:
                    break
                stamped = system.device.read(marker_addr)
                _epoch, target = unpack_stamp(stamped)
                if target in first:
                    assert first[marker_addr] <= first[target], (
                        f"entry {index} of thread {tid} persisted after "
                        f"its data write")
                    checked += 1
        assert checked > 0, "no (entry, data) pairs to check"

    def test_entries_persist_before_data_pmem_spec(self):
        program = spread_writes_program()
        system = run_with_history("PMEM-Spec", program)
        self._check_entries_before_data(system, range(2))

    def test_entries_persist_before_data_x86(self):
        program = spread_writes_program()
        system = run_with_history("IntelX86", program)
        self._check_entries_before_data(system, range(2))

    def test_entries_persist_before_data_hops(self):
        program = spread_writes_program()
        system = run_with_history("HOPS", program)
        self._check_entries_before_data(system, range(2))


class TestCommitOrdering:
    def test_epoch_bump_after_fase_data(self):
        """(B)+(C): by each epoch-bump persist, every data write of that
        FASE has already persisted at least once."""
        workload = workload_by_name("tatp", seed=5)
        program = workload.build(2, 8)
        system = run_with_history("PMEM-Spec", program)
        lowered_threads = system.lowered.threads
        history = system.device.history
        for thread in lowered_threads:
            tid = thread.thread_id
            epoch_addr = UndoLogLayout(tid).epoch_addr
            bump_times = {}
            for time, addr, value, _origin in history:
                if addr == epoch_addr and value not in bump_times:
                    bump_times[value] = time
            first = {}
            for time, addr, _value, _origin in history:
                first.setdefault(addr, time)
            epoch = 0
            for fase in thread.fases:
                writes = fase.fase.writes
                if not writes:
                    continue
                bump = bump_times.get(epoch + 1)
                assert bump is not None
                for addr in writes:
                    assert first[addr] <= bump, (
                        f"data 0x{addr:x} persisted only after the "
                        f"epoch-{epoch + 1} bump")
                epoch += 1
