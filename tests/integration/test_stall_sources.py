"""End-to-end tests for each stall source the comparison turns on:
store-queue pressure, MLP exhaustion, WPQ backpressure, ring
contention, and DPO's serial flush channel."""

from repro.config import table3_config
from repro.isa import Compute, Fase, PRead, Program, PWrite, ThreadProgram
from repro.persistency import design_by_name
from repro.runtime import DATA_BASE
from repro.system import build_system


def program_of(ops_fn, n_threads=1, fases=4, think=0, initial=None):
    threads = []
    fase_id = 0
    for tid in range(n_threads):
        fase_list = []
        for index in range(fases):
            fase_list.append(Fase(fase_id, ops_fn(tid, index)))
            fase_id += 1
        threads.append(ThreadProgram(tid, fase_list, think_cycles=think))
    return Program("stalls", threads, initial_heap=initial or {})


class TestStoreQueuePressure:
    def test_tiny_store_queue_stalls_the_core(self):
        """§8.2.1: CLWB and SFENCE consume store-queue entries."""
        def burst(tid, index):
            base = DATA_BASE + index * 4096
            return [PWrite(base + i * 64, i + 1) for i in range(24)]

        def run(entries):
            program = program_of(burst)
            config = table3_config(n_cores=1,
                                   store_queue_entries=entries)
            system = build_system(program, design_by_name("IntelX86"),
                                  config)
            result = system.run()
            stalls = result.stats["cores"]["core0"].get(
                "full_stall_cycles", 0)
            sq = system.cores[0].store_queue.stats
            return result.cycles, sq["full_stalls"]

        cycles_small, stalls_small = run(entries=2)
        cycles_big, stalls_big = run(entries=64)
        assert stalls_small > stalls_big
        assert cycles_small >= cycles_big


class TestMLPBudget:
    def test_mlp_one_serialises_pm_misses(self):
        """Independent PM misses overlap up to the MSHR budget; budget
        1 degenerates to blocking loads."""
        def scatter(tid, index):
            base = DATA_BASE + index * (1 << 16)
            return [PRead(base + i * 64) for i in range(12)]

        def run(budget):
            program = program_of(scatter, fases=3)
            config = table3_config(n_cores=1, mlp_misses=budget)
            system = build_system(program, design_by_name("PMEM-Spec"),
                                  config)
            return system.run().cycles

        serial = run(1)
        parallel = run(8)
        assert serial > parallel * 2


class TestWPQBackpressure:
    def test_tiny_write_queue_throttles_flush_heavy_code(self):
        def writer(tid, index):
            base = DATA_BASE + index * 8192
            return [PWrite(base + i * 64, 1) for i in range(16)]

        def run(capacity, banks):
            program = program_of(writer, fases=4)
            config = table3_config(n_cores=1, pmc_write_queue=capacity,
                                   pmc_write_banks=banks)
            system = build_system(program, design_by_name("IntelX86"),
                                  config)
            result = system.run()
            return result.cycles, system.pmc.write_queue.stalled_pushes

        slow_cycles, slow_stalls = run(capacity=2, banks=1)
        fast_cycles, fast_stalls = run(capacity=64, banks=8)
        assert slow_stalls > fast_stalls
        assert slow_cycles > fast_cycles


class TestRingContention:
    def test_narrow_ring_slows_pmem_spec_write_bursts(self):
        def writer(tid, index):
            base = DATA_BASE + (tid * 64 + index) * 8192
            return [PWrite(base + i * 8, 1) for i in range(64)]

        def run(lanes):
            program = program_of(writer, n_threads=4, fases=3)
            config = table3_config(n_cores=4, persist_path_lanes=lanes)
            system = build_system(program, design_by_name("PMEM-Spec"),
                                  config)
            result = system.run()
            return result.cycles, system.persist_path.stats[
                "cycles_waited"]

        narrow_cycles, narrow_wait = run(lanes=1)
        wide_cycles, wide_wait = run(lanes=8)
        assert narrow_wait > wide_wait
        assert narrow_cycles >= wide_cycles


class TestDPOSerialChannel:
    def test_contention_scales_dpo_fence_stalls(self):
        def writer(tid, index):
            base = DATA_BASE + tid * (1 << 14) + index * 256
            return [PWrite(base, 1), PWrite(base + 64, 2)]

        def run(n_threads):
            program = program_of(writer, n_threads=n_threads, fases=6)
            config = table3_config(n_cores=n_threads)
            system = build_system(program, design_by_name("DPO"), config)
            result = system.run()
            stats = result.stats["design"]
            return (stats["sfence_stall_cycles"]
                    / max(1, stats["sfences"]))

        assert run(8) > run(1)
