"""Unit tests for instruction definitions and address helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    CACHE_BLOCK_BYTES,
    Clwb,
    Comp,
    Compute,
    Dfence,
    Ld,
    Ofence,
    Sfence,
    SpecAssign,
    SpecBarrier,
    SpecRevoke,
    St,
    block_base,
    block_of,
    describe,
    is_barrier,
)


class TestAddressHelpers:
    def test_block_of_grid(self):
        assert block_of(0) == 0
        assert block_of(63) == 0
        assert block_of(64) == 1
        assert block_of(130) == 2

    def test_block_base(self):
        assert block_base(0) == 0
        assert block_base(63) == 0
        assert block_base(64) == 64
        assert block_base(200) == 192

    @given(st.integers(min_value=0, max_value=2**48))
    def test_base_is_aligned_and_contains_addr(self, addr):
        base = block_base(addr)
        assert base % CACHE_BLOCK_BYTES == 0
        assert base <= addr < base + CACHE_BLOCK_BYTES
        assert block_of(addr) == base // CACHE_BLOCK_BYTES

    @given(st.integers(min_value=0, max_value=2**48),
           st.integers(min_value=0, max_value=63))
    def test_same_block_for_offsets(self, base_block, offset):
        addr = base_block * CACHE_BLOCK_BYTES + offset
        assert block_of(addr) == base_block


class TestInstructions:
    def test_store_defaults(self):
        st_op = St(0x100, 7)
        assert st_op.to_pm is True
        assert st_op.kind == "data"

    def test_store_kinds(self):
        assert St(0x0, 0, kind="log").kind == "log"
        assert St(0x0, 0, kind="commit").kind == "commit"

    def test_compute_rejects_negative(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_barrier_classification(self):
        assert is_barrier(Sfence())
        assert is_barrier(Ofence())
        assert is_barrier(Dfence())
        assert is_barrier(SpecBarrier())
        assert not is_barrier(Ld(0))
        assert not is_barrier(St(0, 0))
        assert not is_barrier(Clwb(0))
        assert not is_barrier(SpecAssign())
        assert not is_barrier(SpecRevoke())

    def test_describe_includes_address(self):
        assert describe(Ld(0x40)) == "ld 0x40"
        assert describe(Clwb(0x80)) == "clwb 0x80"
        assert describe(Sfence()) == "sfence"

    def test_mnemonics_unique_for_fences(self):
        mnems = {op().mnemonic
                 for op in (Sfence, Ofence, Dfence, SpecBarrier)}
        assert len(mnems) == 4

    def test_comp_repr(self):
        assert repr(Comp(12)) == "Comp(12)"
