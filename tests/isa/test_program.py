"""Unit tests for Fase / ThreadProgram / Program containers."""

import pytest

from repro.isa import (
    Compute,
    Fase,
    LockAcquire,
    LockRelease,
    PRead,
    PWrite,
    Program,
    ProgramError,
    ThreadProgram,
    op_histogram,
    sequential_reference_heap,
)


def simple_fase(fase_id=0, addr=0x100, value=1):
    return Fase(fase_id, [PRead(addr), PWrite(addr, value)])


class TestFase:
    def test_writes_in_first_write_order(self):
        fase = Fase(0, [PWrite(0x80, 1), PWrite(0x40, 2), PWrite(0x80, 3)])
        assert fase.writes == [0x80, 0x40]

    def test_reads_deduplicated(self):
        fase = Fase(0, [PRead(0x40), PRead(0x40), PRead(0x80)])
        assert fase.reads == [0x40, 0x80]

    def test_final_values_last_write_wins(self):
        fase = Fase(0, [PWrite(0x40, 1), PWrite(0x40, 9)])
        assert fase.final_values() == {0x40: 9}

    def test_balanced_locks_ok(self):
        Fase(0, [LockAcquire(0), PWrite(0x40, 1), LockRelease(0)])

    def test_unreleased_lock_rejected(self):
        with pytest.raises(ProgramError):
            Fase(0, [LockAcquire(0), PWrite(0x40, 1)])

    def test_mismatched_release_rejected(self):
        with pytest.raises(ProgramError):
            Fase(0, [LockAcquire(0), LockRelease(1)])

    def test_recursive_lock_rejected(self):
        with pytest.raises(ProgramError):
            Fase(0, [LockAcquire(0), LockAcquire(0),
                     LockRelease(0), LockRelease(0)])

    def test_nested_distinct_locks_ok(self):
        Fase(0, [LockAcquire(0), LockAcquire(1),
                 LockRelease(1), LockRelease(0)])

    def test_count_by_type(self):
        fase = Fase(0, [PRead(0), PWrite(0, 1), PWrite(64, 2), Compute(5)])
        assert fase.count(PWrite) == 2
        assert fase.count(PRead) == 1
        assert len(fase) == 4


class TestThreadProgram:
    def test_total_ops(self):
        tp = ThreadProgram(0, [simple_fase(0), simple_fase(1)])
        assert tp.total_ops == 4

    def test_negative_think_rejected(self):
        with pytest.raises(ProgramError):
            ThreadProgram(0, [], think_cycles=-1)


class TestProgram:
    def test_thread_ids_must_be_dense(self):
        with pytest.raises(ProgramError):
            Program("p", [ThreadProgram(1, [simple_fase()])])

    def test_empty_program_rejected(self):
        with pytest.raises(ProgramError):
            Program("p", [])

    def test_lock_table_sized(self):
        fase = Fase(0, [LockAcquire(3), LockRelease(3)])
        with pytest.raises(ProgramError):
            Program("p", [ThreadProgram(0, [fase])], n_locks=3)
        Program("p", [ThreadProgram(0, [fase])], n_locks=4)

    def test_counts(self):
        prog = Program("p", [
            ThreadProgram(0, [simple_fase(0), simple_fase(1)]),
            ThreadProgram(1, [simple_fase(2)]),
        ])
        assert prog.n_threads == 2
        assert prog.total_fases == 3

    def test_expected_final_heap_order_matters(self):
        f1 = Fase(0, [PWrite(0x40, 1)])
        f2 = Fase(1, [PWrite(0x40, 2)])
        prog = Program("p", [ThreadProgram(0, [f1, f2])],
                       initial_heap={0x40: 0})
        assert prog.expected_final_heap([f1, f2]) == {0x40: 2}
        assert prog.expected_final_heap([f2, f1]) == {0x40: 1}

    def test_sequential_reference_heap(self):
        f1 = Fase(0, [PWrite(0x40, 5)])
        f2 = Fase(1, [PWrite(0x80, 6)])
        prog = Program("p", [ThreadProgram(0, [f1]), ThreadProgram(1, [f2])],
                       initial_heap={0x40: 0, 0x80: 0, 0xC0: 9})
        assert sequential_reference_heap(prog) == {0x40: 5, 0x80: 6, 0xC0: 9}

    def test_op_histogram(self):
        fase = Fase(0, [PRead(0), PWrite(0, 1), Compute(3),
                        LockAcquire(0), LockRelease(0)])
        prog = Program("p", [ThreadProgram(0, [fase])], n_locks=1)
        hist = op_histogram(prog)
        assert hist == {"pread": 1, "pwrite": 1, "compute": 1,
                        "lock_acquire": 1, "lock_release": 1}
