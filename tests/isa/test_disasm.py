"""Unit tests for the trace disassembler."""

import json

from repro.compiler import lower_fase
from repro.config import table3_config
from repro.isa import (
    Fase,
    LockAcquire,
    LockRelease,
    PRead,
    PWrite,
    compare_flavors,
    disassemble,
    disassemble_fase,
)
from repro.persistency import design_by_name
from repro.runtime import DATA_BASE
from repro.system import build_system


def sample_fase():
    return Fase(3, [LockAcquire(0), PRead(DATA_BASE),
                    PWrite(DATA_BASE, 9), LockRelease(0)])


class TestDisassembly:
    def test_fase_header_and_ops(self):
        lowered = lower_fase(sample_fase(), 1, "pmemspec", epoch=2)
        text = disassemble_fase(lowered)
        assert "fase 3 thread 1 flavor pmemspec" in text
        assert "SPEC_BARRIER" in text
        assert "fase_begin" in text

    def test_log_stores_annotated(self):
        lowered = lower_fase(sample_fase(), 0, "x86")
        text = "\n".join(disassemble(lowered.ops))
        assert "log[t0]" in text
        assert "old-of" in text
        assert "SFENCE" in text

    def test_private_stores_marked(self):
        fase = Fase(0, [PWrite(DATA_BASE, 1, shared=False)])
        lowered = lower_fase(fase, 0, "pmemspec")
        text = "\n".join(disassemble(lowered.ops))
        assert "private" in text

    def test_compare_flavors_columns(self):
        text = compare_flavors(sample_fase())
        assert "x86" in text and "hops" in text and "pmemspec" in text
        assert "clwb" in text
        assert "OFENCE" in text

    def test_strand_flavor_renders(self):
        text = compare_flavors(sample_fase(), flavors=("strand",))
        assert "new_strand" in text
        assert "STRAND_BARRIER" in text


class TestResultExport:
    def test_to_json_round_trips(self):
        from repro.workloads import workload_by_name
        workload = workload_by_name("tatp", seed=3)
        program = workload.build(1, 3)
        system = build_system(program, design_by_name("PMEM-Spec"),
                              table3_config(n_cores=1))
        result = system.run()
        data = json.loads(result.to_json())
        assert data["design"] == "PMEM-Spec"
        assert data["fases_committed"] == 3
        assert "stats" in data and "design" in data["stats"]
