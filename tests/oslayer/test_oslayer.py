"""Unit tests for the OS layer: reverse map, interrupts, context switching."""

import pytest

from repro.core import MisspeculationEvent, SpecIdFile
from repro.oslayer import (
    ContextSwitcher,
    InterruptController,
    ReverseMap,
    SimProcess,
)


def event(block=4, kind="load"):
    return MisspeculationEvent(kind, block=block, core_id=0, time=10)


class TestSimProcess:
    def test_owns_range(self):
        proc = SimProcess(1)
        proc.map_range(0x1000, 0x2000)
        assert proc.owns(0x1000)
        assert proc.owns(0x1FFF)
        assert not proc.owns(0x2000)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            SimProcess(1).map_range(0x10, 0x10)

    def test_negative_pid_rejected(self):
        with pytest.raises(ValueError):
            SimProcess(-1)


class TestReverseMap:
    def test_lookup_finds_owner(self):
        rmap = ReverseMap()
        proc = SimProcess(3)
        proc.map_range(0x100, 0x200)
        rmap.register(proc)
        assert rmap.lookup(0x150) is proc
        assert rmap.lookup(0x900) is None

    def test_duplicate_pid_rejected(self):
        rmap = ReverseMap()
        rmap.register(SimProcess(1))
        with pytest.raises(ValueError):
            rmap.register(SimProcess(1))

    def test_unregister(self):
        rmap = ReverseMap()
        proc = SimProcess(1)
        proc.map_range(0, 10)
        rmap.register(proc)
        rmap.unregister(1)
        assert rmap.lookup(5) is None
        assert len(rmap) == 0


class TestInterruptController:
    def make(self):
        controller = InterruptController()
        received = []
        proc = SimProcess(7)
        proc.map_range(0, 0x10000)
        controller.register_process(
            proc, lambda ev, now: received.append((ev, now)))
        return controller, received

    def test_relay_to_owning_runtime(self):
        controller, received = self.make()
        assert controller.raise_misspeculation(event(block=4), now=99)
        assert len(received) == 1
        assert received[0][1] == 99
        assert controller.stats["relayed_interrupts"] == 1

    def test_designated_space_records_address(self):
        controller, _ = self.make()
        controller.raise_misspeculation(event(block=4), now=0)
        assert controller.designated_space[-1] == 4 * 64

    def test_unowned_address_dropped(self):
        controller, received = self.make()
        assert not controller.raise_misspeculation(
            MisspeculationEvent("load", block=10**6, core_id=0, time=0), 0)
        assert received == []
        assert controller.stats["unowned_interrupts"] == 1

    def test_kind_counted(self):
        controller, _ = self.make()
        controller.raise_misspeculation(event(kind="store"), 0)
        assert controller.stats["interrupts_store"] == 1

    def test_unregistered_process_not_signalled(self):
        controller, received = self.make()
        controller.unregister_process(7)
        assert not controller.raise_misspeculation(event(), 0)
        assert received == []

    def test_designated_space_bounded(self):
        controller, _ = self.make()
        for _ in range(100):
            controller.raise_misspeculation(event(), 0)
        assert len(controller.designated_space) == 64


class TestContextSwitcher:
    def test_spec_id_survives_descheduling(self):
        ids = SpecIdFile(2)
        switcher = ContextSwitcher(ids, 2)
        switcher.schedule(0, thread_id=10)
        tagged = ids.assign(0)           # thread 10 enters critical section
        previous = switcher.schedule(0, thread_id=11)
        assert previous == 10
        assert ids.current(0) == 0       # thread 11 starts untagged
        switcher.schedule(1, thread_id=10)
        assert ids.current(1) == tagged  # restored on another core

    def test_switch_count(self):
        ids = SpecIdFile(1)
        switcher = ContextSwitcher(ids, 1)
        switcher.schedule(0, 1)
        switcher.schedule(0, 2)
        assert switcher.switches == 2
