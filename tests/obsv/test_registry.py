"""Metrics registry: families, exposition, event derivations."""

import os

import pytest

from repro.obsv.bus import EventBus
from repro.obsv.registry import (
    DEPTH_BUCKETS,
    Histogram,
    MetricsRegistry,
    TextfileExporter,
    parse_prometheus_text,
)


class TestFamilies:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("c", "help").inc()
        reg.counter("c").inc(2, labels={"kind": "x"})
        text = reg.to_prometheus()
        assert "# TYPE c counter" in text
        assert "c 1" in text
        assert 'c{kind="x"} 2' in text

    def test_gauge_set(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(4.5)
        assert parse_prometheus_text(reg.to_prometheus())["g"] == 4.5

    def test_histogram_buckets_cumulative(self):
        hist = Histogram("h", "help", buckets=(1, 10))
        for value in (0.5, 5, 500):
            hist.observe(value)
        text = "\n".join(hist.exposition())
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="10"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_histogram_percentile_interpolates(self):
        hist = Histogram("h", "help", buckets=DEPTH_BUCKETS)
        for depth in (1, 2, 2, 3, 3, 3, 50, 100):
            hist.observe(depth)
        p50 = hist.percentile(50)
        p99 = hist.percentile(99)
        assert 1 <= p50 <= 4
        assert p99 > p50

    def test_type_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")
        with pytest.raises(ValueError):
            reg.histogram("m")


class TestEventDerivations:
    def feed(self, reg, *events):
        for event in events:
            reg.observe_event(event)

    def test_sweep_flow(self):
        reg = MetricsRegistry()
        self.feed(
            reg,
            {"kind": "sweep_start", "n_specs": 2, "jobs": 2, "ts": 0.0},
            {"kind": "cache_miss"},
            {"kind": "cache_miss"},
            {"kind": "spec_finish", "source": "pool", "elapsed_s": 2.0,
             "cache_hit": False, "retried": False, "cycles": 1_000_000},
            {"kind": "spec_finish", "source": "retry", "elapsed_s": 1.0,
             "cache_hit": False, "retried": True, "cycles": 500_000},
            {"kind": "sweep_finish", "n_specs": 2, "cache_hits": 0,
             "cache_misses": 2, "retries": 1, "elapsed_s": 2.0,
             "busy_s": 3.0},
        )
        values = parse_prometheus_text(reg.to_prometheus())
        assert values['repro_specs_total{source="pool"}'] == 1
        assert values['repro_specs_total{source="retry"}'] == 1
        assert values["repro_spec_retries_total"] == 1
        assert values["repro_cache_misses_total"] == 2
        assert values["repro_spec_seconds_count"] == 2
        assert values["repro_engine_cycles_per_sec_count"] == 2
        # busy 3.0s over 2.0s wall x 2 jobs = 0.75 utilization.
        assert values["repro_worker_utilization"] == 0.75
        assert values["repro_specs_per_sec"] == 1.0

    def test_cache_hit_ratio_countable(self):
        reg = MetricsRegistry()
        self.feed(reg, {"kind": "cache_hit"}, {"kind": "cache_hit"},
                  {"kind": "cache_miss"})
        values = parse_prometheus_text(reg.to_prometheus())
        hits = values["repro_cache_hits_total"]
        misses = values["repro_cache_misses_total"]
        assert hits / (hits + misses) == pytest.approx(2 / 3)

    def test_trial_and_violation_flow(self):
        reg = MetricsRegistry()
        self.feed(
            reg,
            {"kind": "trial_finish", "consistent": True, "violations": 0},
            {"kind": "trial_finish", "consistent": False,
             "violations": 2},
            {"kind": "oracle_violation", "violation_kind": "epoch-order"},
            {"kind": "campaign_finish", "trials": 2, "elapsed_s": 4.0},
        )
        values = parse_prometheus_text(reg.to_prometheus())
        assert values['repro_trials_total{consistent="true"}'] == 1
        assert values['repro_trials_total{consistent="false"}'] == 1
        assert values["repro_trial_violations_total"] == 2
        assert (values['repro_oracle_violations_total'
                       '{kind="epoch-order"}'] == 1)
        assert values["repro_trials_per_sec"] == 0.5

    def test_snapshot_flow(self):
        reg = MetricsRegistry()
        self.feed(
            reg,
            {"kind": "rung_capture", "cycle": 100, "rung": 0},
            {"kind": "snapshot_restore", "crash_cycle": 900,
             "rung_cycle": 800, "rung": 3},
        )
        values = parse_prometheus_text(reg.to_prometheus())
        assert values["repro_rungs_captured_total"] == 1
        assert values['repro_snapshot_restores_total{source="store"}'] == 1
        assert values["repro_snapshot_restore_depth_cycles_count"] == 1
        assert values["repro_rung_cache_hit_ratio"] == 1

    def test_restore_sources_and_fallbacks(self):
        reg = MetricsRegistry()
        self.feed(
            reg,
            {"kind": "snapshot_restore", "crash_cycle": 900,
             "rung_cycle": 800, "rung": 3, "source": "resident"},
            {"kind": "snapshot_restore", "crash_cycle": 900,
             "rung_cycle": 800, "rung": 3, "source": "store"},
            {"kind": "snapshot_restore", "crash_cycle": 10,
             "rung_cycle": None, "rung": None, "source": "cold"},
            {"kind": "snapshot_restore", "crash_cycle": 900,
             "rung_cycle": None, "rung": None,
             "outcome": "cold_fallback", "error": "boom"},
        )
        values = parse_prometheus_text(reg.to_prometheus())
        assert values['repro_snapshot_restores_total{source="resident"}'] == 1
        assert values['repro_snapshot_restores_total{source="store"}'] == 1
        assert values['repro_snapshot_restores_total{source="cold"}'] == 1
        assert values["repro_snapshot_cold_fallbacks_total"] == 1
        # 2 warm of 3 restores; the fallback is tracked separately.
        assert values["repro_rung_cache_hit_ratio"] == round(2 / 3, 4)

    def test_batch_flow(self):
        reg = MetricsRegistry()
        self.feed(
            reg,
            {"kind": "batch_start", "index": 0, "label": "cell x20",
             "size": 20},
            {"kind": "batch_finish", "index": 0, "label": "cell x20",
             "size": 20, "elapsed_s": 2.0, "source": "pool"},
            {"kind": "batch_finish", "index": 1, "label": "cell x10",
             "size": 10, "elapsed_s": 1.0, "source": "pool"},
        )
        values = parse_prometheus_text(reg.to_prometheus())
        assert values["repro_batches_total"] == 2
        assert values["repro_batch_size_count"] == 2
        assert values["repro_batch_size_sum"] == 30
        assert values["repro_batch_seconds_count"] == 2

    def test_wpq_depth_histogram(self):
        reg = MetricsRegistry()
        self.feed(reg, {"kind": "spec_finish", "source": "profile",
                        "elapsed_s": 1.0, "cache_hit": False,
                        "wpq_depth_means": [1.0, 3.0, 9.0]})
        values = parse_prometheus_text(reg.to_prometheus())
        assert values["repro_wpq_depth_count"] == 3

    def test_unknown_kind_counts_events_only(self):
        reg = MetricsRegistry()
        reg.observe_event({"kind": "some_future_kind"})
        values = parse_prometheus_text(reg.to_prometheus())
        assert (values['repro_events_total{kind="some_future_kind"}']
                == 1)

    def test_half_filled_events_never_raise(self):
        reg = MetricsRegistry()
        for kind in ("sweep_start", "sweep_finish", "spec_finish",
                     "trial_finish", "campaign_finish",
                     "snapshot_restore", "oracle_violation",
                     "batch_finish"):
            reg.observe_event({"kind": kind})


class TestSnapshotAndParse:
    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc(3)
        reg.histogram("repro_y_seconds").observe(0.2)
        snap = reg.snapshot()
        assert snap["repro_x_total"]["type"] == "counter"
        assert snap["repro_x_total"]["series"]["_"] == 3
        y = snap["repro_y_seconds"]["series"]["_"]
        assert y["count"] == 1
        assert set(y) >= {"count", "sum", "p50", "p90", "p99"}

    def test_parse_handles_inf_and_comments(self):
        text = ("# HELP x y\n# TYPE x histogram\n"
                'x_bucket{le="+Inf"} 3\nx_count 3\nx_sum 1.5\n')
        values = parse_prometheus_text(text)
        assert values['x_bucket{le="+Inf"}'] == 3
        assert values["x_sum"] == 1.5


class TestTextfileExporter:
    def test_periodic_and_final_write(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        reg = MetricsRegistry()
        bus = EventBus()
        bus.subscribe(reg.observe_event)
        exporter = TextfileExporter(reg, path, every_s=0.0)
        bus.subscribe(exporter.on_event)
        bus.emit("cache_miss", index=0, describe="d")
        assert os.path.exists(path)
        values = parse_prometheus_text(open(path).read())
        assert values["repro_cache_misses_total"] == 1
        # No stray tempfiles from the atomic write.
        assert os.listdir(str(tmp_path)) == ["metrics.prom"]

    def test_rate_limited(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        reg = MetricsRegistry()
        exporter = TextfileExporter(reg, path, every_s=3600.0)
        exporter.on_event({"kind": "note"})
        first = open(path).read()
        reg.counter("repro_late_total").inc()
        exporter.on_event({"kind": "note"})
        # Inside the rate window nothing is rewritten...
        assert open(path).read() == first
        exporter.write()
        # ...but an explicit final write flushes everything.
        assert "repro_late_total" in open(path).read()
