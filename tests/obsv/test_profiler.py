"""Cycle-attribution profiler: partition property, priorities, split."""

import pytest

from repro.harness import RunSpec, execute_spec
from repro.obsv.profiler import CycleProfile, profile_run
from repro.sim.trace import TraceRecorder


def recorder_with(*spans, instants=()):
    """Build a TraceRecorder holding the given complete-spans.

    Each span is ``(track, name, ts, dur)`` or
    ``(track, name, ts, dur, args)``."""
    rec = TraceRecorder()
    for span in spans:
        track, name, ts, dur = span[:4]
        args = span[4] if len(span) > 4 else None
        rec.complete(track, name, ts, dur, args=args)
    for track, name, ts in instants:
        rec.instant(track, name, ts)
    return rec


class TestPartitionProperty:
    def test_sums_to_total_cycles(self):
        rec = recorder_with(("core0", "commit", 0, 40),
                            ("persist-path", "store", 20, 30))
        profile = profile_run(rec, total_cycles=100)
        assert sum(profile.stacks.values()) == 100
        profile.check_partition()  # must not raise

    def test_empty_trace_is_all_idle(self):
        profile = profile_run(TraceRecorder(), total_cycles=50)
        assert profile.stacks == {"idle": 50}
        assert profile.components == {"idle": 50}

    def test_zero_cycles(self):
        profile = profile_run(TraceRecorder(), total_cycles=0)
        assert profile.stacks == {}
        profile.check_partition()

    def test_spans_clamped_to_run_length(self):
        # Span runs past the end of the run; attribution must not.
        rec = recorder_with(("core0", "commit", 90, 50))
        profile = profile_run(rec, total_cycles=100)
        assert sum(profile.stacks.values()) == 100
        assert profile.components["core"] == 10

    def test_check_partition_raises_on_loss(self):
        profile = CycleProfile({"core;core0;x": 5}, total_cycles=10,
                               occupancy={}, instants={})
        with pytest.raises(AssertionError):
            profile.check_partition()


class TestPriority:
    def test_persist_path_beats_core(self):
        rec = recorder_with(("core0", "commit", 0, 100),
                            ("persist-path", "store", 40, 20))
        profile = profile_run(rec, total_cycles=100)
        assert profile.components["persist-path"] == 20
        assert profile.components["core"] == 80

    def test_spec_buffer_between_core_and_persist(self):
        rec = recorder_with(("core0", "commit", 0, 100),
                            ("spec-buffer0", "drain", 0, 100),
                            ("persist-path", "store", 0, 10))
        profile = profile_run(rec, total_cycles=100)
        assert profile.components["persist-path"] == 10
        assert profile.components["spec-buffer"] == 90
        assert "core" not in profile.components

    def test_overlapping_cores_tie_break_deterministic(self):
        # Same priority: latest-started span wins the overlap.
        rec = recorder_with(("core0", "a", 0, 100),
                            ("core1", "b", 50, 50))
        profile = profile_run(rec, total_cycles=100)
        assert profile.stacks["core;core0;a"] == 50
        assert profile.stacks["core;core1;b"] == 50

    def test_idle_fills_gaps(self):
        rec = recorder_with(("core0", "a", 10, 10),
                            ("core0", "b", 80, 10))
        profile = profile_run(rec, total_cycles=100)
        assert profile.components["idle"] == 80


class TestPersistSplit:
    def test_split_at_arrival(self):
        rec = recorder_with(
            ("persist-path", "store 0x10", 100, 50,
             {"arrival": 130, "accept": 150}))
        profile = profile_run(rec, total_cycles=200)
        assert profile.stacks["persist-path;ring"] == 30
        assert profile.stacks["pmc;wpq-wait"] == 20
        assert profile.components["pmc"] == 20

    def test_no_split_when_arrival_equals_end(self):
        # Immediate WPQ accept: the whole span is ring traversal.
        rec = recorder_with(
            ("persist-path", "store 0x10", 100, 50,
             {"arrival": 150, "accept": 150}))
        profile = profile_run(rec, total_cycles=200)
        assert profile.stacks["persist-path;ring"] == 50
        assert "pmc;wpq-wait" not in profile.stacks


class TestOutputs:
    def test_collapsed_format_and_stability(self):
        rec = recorder_with(("core0", "commit", 0, 10))
        profile = profile_run(rec, total_cycles=20)
        lines = profile.collapsed().splitlines()
        assert sorted(lines) == lines
        assert "repro;core;core0;commit 10" in lines
        assert "repro;idle 10" in lines
        # Every line parses as "stack cycles".
        total = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        assert total == 20

    def test_save_collapsed(self, tmp_path):
        rec = recorder_with(("core0", "commit", 0, 10))
        profile = profile_run(rec, total_cycles=20)
        path = str(tmp_path / "out.folded")
        assert profile.save_collapsed(path) == path
        assert open(path).read() == profile.collapsed()

    def test_table_lists_instant_only_components(self):
        rec = recorder_with(("core0", "commit", 0, 10),
                            instants=[("pmc", "accept", 5)])
        profile = profile_run(rec, total_cycles=10)
        table = profile.table()
        assert "pmc" in table
        assert "core" in table

    def test_occupancy_reports_overlap_union(self):
        rec = recorder_with(("core0", "a", 0, 60),
                            ("core1", "b", 40, 60))
        profile = profile_run(rec, total_cycles=100)
        # Union of [0,60) and [40,100) is the whole run.
        assert profile.occupancy["core"] == 100

    def test_to_dict_shape(self):
        rec = recorder_with(("core0", "a", 0, 10))
        profile = profile_run(rec, total_cycles=10, wall_s=0.5,
                              label="x")
        payload = profile.to_dict()
        assert payload["total_cycles"] == 10
        assert payload["wall_s"] == 0.5
        assert payload["components"] == {"core": 10}
        assert payload["stacks"] == {"core;core0;a": 10}


class TestRealRun:
    def test_real_traced_run_partitions(self):
        spec = RunSpec(benchmark="queue", design="PMEM-Spec",
                       n_threads=2, fases_per_thread=4, seed=7)
        tracer = TraceRecorder()
        result = execute_spec(spec, tracer=tracer)
        profile = profile_run(tracer, result.cycles)
        profile.check_partition()
        assert sum(profile.components.values()) == result.cycles
        assert profile.components.get("core", 0) > 0

    def test_deterministic_bit_for_bit(self):
        spec = RunSpec(benchmark="queue", design="PMEM-Spec",
                       n_threads=2, fases_per_thread=4, seed=7)
        outputs = []
        for _ in range(2):
            tracer = TraceRecorder()
            result = execute_spec(spec, tracer=tracer)
            outputs.append(
                profile_run(tracer, result.cycles).collapsed())
        assert outputs[0] == outputs[1]
