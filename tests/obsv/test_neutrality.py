"""Observability is provably neutral: same simulation, watched or not.

The acceptance property for the whole obsv stack: enabling the event
bus, the metrics registry, the textfile exporter, and the JSONL sink
must not change a single simulated bit -- SimResult payloads and
snapshot fingerprints are compared byte for byte against an unobserved
run.
"""

import json

import pytest

from repro.harness import ParallelExecutor, RunSpec
from repro.obsv.bus import EventBus, JsonlSink, bus_scope, set_bus
from repro.obsv.registry import MetricsRegistry, TextfileExporter
from repro.snapshot import SnapshotLadder
from repro.validation.campaign import (
    BENCHMARKS,
    build_crash_system,
    run_campaign,
)


@pytest.fixture(autouse=True)
def _restore_current_bus():
    yield
    set_bus(None)


def observed_bus(tmp_path, tag):
    """A fully-loaded bus: sink + registry + exporter, like the CLI."""
    bus = EventBus()
    sink = JsonlSink(str(tmp_path / f"{tag}-events.jsonl"))
    bus.subscribe(sink)
    registry = MetricsRegistry()
    bus.registry = registry
    bus.subscribe(registry.observe_event)
    exporter = TextfileExporter(registry,
                                str(tmp_path / f"{tag}.prom"),
                                every_s=0.0)
    bus.subscribe(exporter.on_event)
    return bus


def sim_payloads(outcome):
    """Deterministic serialisation of every result, with the
    host-specific executor section (wall-clock timings) dropped."""
    payloads = []
    for result in outcome.results:
        payload = result.to_dict()
        payload["stats"] = {k: v for k, v in payload["stats"].items()
                            if k != "executor"}
        payloads.append(json.dumps(payload, sort_keys=True))
    return payloads


SPECS = [RunSpec(benchmark="queue", design="PMEM-Spec", n_threads=2,
                 fases_per_thread=2, seed=7),
         RunSpec(benchmark="array_swaps", design="IntelX86",
                 n_threads=2, fases_per_thread=2, seed=7)]


class TestSweepNeutrality:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_results_bit_identical_with_full_observability(
            self, tmp_path, jobs):
        plain = ParallelExecutor(jobs=jobs).run(SPECS)
        bus = observed_bus(tmp_path, "sweep")
        watched = ParallelExecutor(jobs=jobs, bus=bus).run(SPECS)
        assert sim_payloads(watched) == sim_payloads(plain)

    def test_current_bus_scope_neutral_too(self, tmp_path):
        plain = ParallelExecutor(jobs=1).run(SPECS)
        with bus_scope(observed_bus(tmp_path, "scope")):
            watched = ParallelExecutor(jobs=1).run(SPECS)
        assert sim_payloads(watched) == sim_payloads(plain)


class TestSnapshotNeutrality:
    def laddered(self, bus=None):
        _workload, system = build_crash_system(
            BENCHMARKS["queue"], "PMEM-Spec", 2, 5, seed=7)
        ladder = SnapshotLadder(system, every=5,
                                keep_in_memory=True).install()
        if bus is not None:
            with bus_scope(bus):
                system.run()
        else:
            system.run()
        return system, ladder

    def test_rung_fingerprints_bit_identical(self, tmp_path):
        plain_system, plain_ladder = self.laddered()
        bus = observed_bus(tmp_path, "ladder")
        watched_system, watched_ladder = self.laddered(bus)
        assert plain_ladder.rungs, "no rungs captured; shrink `every`"
        assert ([r["fingerprint"] for r in watched_ladder.rungs]
                == [r["fingerprint"] for r in plain_ladder.rungs])
        assert (watched_system.state_fingerprint()
                == plain_system.state_fingerprint())
        # And the bus really was live: rung captures were narrated.
        assert bus.registry.counter(
            "repro_rungs_captured_total").value() == len(
                watched_ladder.rungs)


class TestCampaignNeutrality:
    def campaign(self, bus=None):
        scope = bus_scope(bus) if bus is not None else None
        kwargs = dict(workloads=["queue"], designs=["PMEM-Spec"],
                      budget=6, seed=11, fases_per_thread=5,
                      shrink=False)
        if scope is not None:
            with scope:
                return run_campaign(**kwargs)
        return run_campaign(**kwargs)

    def test_report_rows_identical(self, tmp_path):
        plain = self.campaign()
        watched = self.campaign(observed_bus(tmp_path, "campaign"))
        assert watched.rows() == plain.rows()
        assert watched.obsv is not None and plain.obsv is None
