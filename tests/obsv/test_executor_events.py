"""Executor-to-bus integration: the sweep's event stream."""

import pytest

from repro.harness import ParallelExecutor, RunSpec
from repro.obsv.bus import EventBus, set_bus, validate_events
from repro.obsv.registry import MetricsRegistry


def tiny_specs(count=2):
    return [RunSpec(benchmark="queue", design="PMEM-Spec",
                    n_threads=2, fases_per_thread=2, seed=seed)
            for seed in range(count)]


def observed_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    return bus, seen


@pytest.fixture(autouse=True)
def _restore_current_bus():
    yield
    set_bus(None)


class TestSweepEvents:
    def test_serial_sweep_emits_valid_ordered_log(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=1, bus=bus)
        executor.run(tiny_specs(2))
        assert validate_events(seen) == []
        kinds = [e["kind"] for e in seen]
        assert kinds[0] == "sweep_start"
        assert kinds[-1] == "sweep_finish"
        assert kinds.count("cache_miss") == 2
        assert kinds.count("spec_start") == 2
        assert kinds.count("spec_finish") == 2

    def test_pool_sweep_ships_worker_events(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=2, bus=bus)
        executor.run(tiny_specs(2))
        assert validate_events(seen) == []
        starts = [e for e in seen if e["kind"] == "spec_start"]
        finishes = [e for e in seen if e["kind"] == "spec_finish"]
        assert len(starts) == 2 and len(finishes) == 2
        # Worker-side events carry the worker pid and its local seq.
        parent_origin = seen[0]["origin"]
        assert any(e["origin"] != parent_origin for e in starts)
        assert all("worker_seq" in e for e in starts
                   if e["origin"] != parent_origin)
        # Parent-side authoritative finish carries the cycle count.
        assert all(e["cycles"] > 0 for e in finishes)

    def test_cache_hits_emit_events(self, tmp_path):
        bus, seen = observed_bus()
        cache = str(tmp_path / "cache")
        specs = tiny_specs(2)
        ParallelExecutor(jobs=1, cache_dir=cache, bus=bus).run(specs)
        del seen[:]
        ParallelExecutor(jobs=1, cache_dir=cache, bus=bus).run(specs)
        kinds = [e["kind"] for e in seen]
        assert kinds.count("cache_hit") == 2
        assert kinds.count("cache_miss") == 0
        sources = [e["source"] for e in seen
                   if e["kind"] == "spec_finish"]
        assert sources == ["cache", "cache"]

    def test_stats_derived_from_events(self, tmp_path):
        bus, _seen = observed_bus()
        cache = str(tmp_path / "cache")
        specs = tiny_specs(2)
        ParallelExecutor(jobs=1, cache_dir=cache, bus=bus).run(specs)
        outcome = ParallelExecutor(jobs=1, cache_dir=cache,
                                   bus=bus).run(specs)
        assert outcome.stats["cache_hits"] == 2
        assert outcome.stats["cache_misses"] == 0
        assert outcome.stats["retries"] == 0

    def test_registry_snapshot_folded_into_stats(self):
        bus = EventBus()
        registry = MetricsRegistry()
        bus.registry = registry
        bus.subscribe(registry.observe_event)
        outcome = ParallelExecutor(jobs=1, bus=bus).run(tiny_specs(1))
        obsv = outcome.stats["obsv"]
        assert obsv["repro_specs_per_sec"]["series"]["_"] > 0
        assert (obsv["repro_events_total"]["series"]
                ['{kind="sweep_finish"}'] == 1)

    def test_no_external_bus_leaks_no_events(self):
        # The executor's private fallback bus must never publish to
        # the (disabled) current bus.
        bus, seen = observed_bus()
        outcome = ParallelExecutor(jobs=1).run(tiny_specs(1))
        assert seen == []
        assert outcome.stats["cache_misses"] == 1
        assert "obsv" not in outcome.stats


class TestProgressAdapter:
    def test_legacy_progress_lines_unchanged(self):
        lines = []
        executor = ParallelExecutor(jobs=1, progress=lines.append)
        specs = tiny_specs(2)
        executor.run(specs)
        assert len(lines) == 2
        assert lines[0].startswith(f"[1/2] {specs[0].describe()} (")
        assert lines[0].endswith("s)")
        assert lines[1].startswith(f"[2/2] {specs[1].describe()} (")

    def test_cached_line_says_cached(self, tmp_path):
        cache = str(tmp_path / "cache")
        specs = tiny_specs(1)
        ParallelExecutor(jobs=1, cache_dir=cache).run(specs)
        lines = []
        ParallelExecutor(jobs=1, cache_dir=cache,
                         progress=lines.append).run(specs)
        assert lines == [f"[1/1] {specs[0].describe()} (cached)"]


class TestMapEvents:
    def test_serial_map_task_events(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=1, bus=bus)
        out = executor.map(abs, [-1, -2, -3])
        assert out == [1, 2, 3]
        finishes = [e for e in seen if e["kind"] == "task_finish"]
        assert [e["index"] for e in finishes] == [0, 1, 2]
        assert all(e["source"] == "serial" for e in finishes)
        assert validate_events(seen) == []

    def test_pool_map_task_events(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=2, bus=bus)
        out = executor.map(abs, [-1, -2, -3, -4])
        assert out == [1, 2, 3, 4]
        finishes = [e for e in seen if e["kind"] == "task_finish"]
        assert sorted(e["index"] for e in finishes) == [0, 1, 2, 3]
        assert validate_events(seen) == []

    def test_map_describe_labels_events(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=1, bus=bus)
        executor.map(abs, [-5], describe=lambda item: f"abs({item})")
        finish = [e for e in seen if e["kind"] == "task_finish"][0]
        assert finish["label"] == "abs(-5)"
