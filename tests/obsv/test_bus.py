"""Event bus: envelope stamping, ordering, merging, validation."""

import json
import queue

import pytest

from repro.obsv.bus import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    NULL_BUS,
    EventBus,
    JsonlSink,
    NullBus,
    QueueEmitter,
    bus_scope,
    drain_queue,
    get_bus,
    set_bus,
    validate_event_log,
    validate_events,
)
from repro.telemetry import run_context


class TestEnvelope:
    def test_emit_stamps_envelope(self):
        bus = EventBus(clock=lambda: 123.0)
        event = bus.emit("note", text="hello")
        assert event["schema"] == EVENT_SCHEMA_VERSION
        assert event["kind"] == "note"
        assert event["seq"] == 0
        assert event["ts"] == 123.0
        assert event["run_id"] == "-" and event["spec_hash"] == "-"
        assert isinstance(event["origin"], int)

    def test_run_context_flows_into_events(self):
        bus = EventBus()
        with run_context(run_id="fig9", spec_hash="abc123"):
            event = bus.emit("note", text="x")
        assert event["run_id"] == "fig9"
        assert event["spec_hash"] == "abc123"

    def test_seq_strictly_increases(self):
        bus = EventBus()
        seqs = [bus.emit("note", text=str(i))["seq"] for i in range(5)]
        assert seqs == [0, 1, 2, 3, 4]

    def test_payload_fields_ride_along(self):
        bus = EventBus()
        event = bus.emit("sweep_start", n_specs=7, jobs=2)
        assert event["n_specs"] == 7 and event["jobs"] == 2


class TestSubscribers:
    def test_fanout(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(seen_b.append)
        bus.emit("note", text="x")
        assert len(seen_a) == 1 and len(seen_b) == 1

    def test_raising_subscriber_unsubscribed_not_fatal(self):
        bus = EventBus()
        seen = []

        def bad(event):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        bus.subscribe(seen.append)
        bus.emit("note", text="1")
        bus.emit("note", text="2")
        # Both events reached the healthy subscriber; the bad one was
        # dropped after its first failure rather than sinking the run.
        assert [e["text"] for e in seen] == ["1", "2"]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        bus.emit("note", text="x")
        assert seen == []


class TestNullBus:
    def test_disabled_and_silent(self):
        assert NullBus.enabled is False
        assert NULL_BUS.emit("note", text="x") is None

    def test_current_bus_defaults_to_null(self):
        assert get_bus() is NULL_BUS

    def test_bus_scope_installs_and_restores(self):
        bus = EventBus()
        with bus_scope(bus):
            assert get_bus() is bus
        assert get_bus() is NULL_BUS

    def test_set_bus_none_restores_null(self):
        bus = EventBus()
        previous = set_bus(bus)
        try:
            assert get_bus() is bus
        finally:
            set_bus(previous)
        assert get_bus() is NULL_BUS


class TestQueueEmitterAndMerge:
    def test_worker_events_merge_with_global_seq(self):
        channel = queue.Queue()
        worker = QueueEmitter(channel)
        worker.emit("note", text="w0")
        worker.emit("note", text="w1")
        bus = EventBus()
        bus.emit("note", text="p0")
        merged = drain_queue(channel, bus)
        assert merged == 2
        seen = []
        bus.subscribe(seen.append)
        bus.emit("note", text="p1")
        # Global seq keeps increasing across parent + merged events.
        assert seen[0]["seq"] == 3

    def test_worker_seq_preserved(self):
        channel = queue.Queue()
        worker = QueueEmitter(channel)
        worker.emit("note", text="a")
        worker.emit("note", text="b")
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        drain_queue(channel, bus)
        assert [e["worker_seq"] for e in seen] == [0, 1]

    def test_drain_into_null_bus_is_noop(self):
        channel = queue.Queue()
        QueueEmitter(channel).emit("note", text="x")
        assert drain_queue(channel, NULL_BUS) == 0

    def test_drain_none_queue(self):
        assert drain_queue(None, EventBus()) == 0


class TestJsonlSink:
    def test_round_trip_and_validation(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus()
        with JsonlSink(path) as sink:
            bus.subscribe(sink)
            bus.emit("sweep_start", n_specs=1, jobs=1)
            bus.emit("spec_finish", index=0, describe="d", elapsed_s=0.1,
                     cache_hit=False, retried=False, source="serial")
            bus.emit("sweep_finish", n_specs=1, cache_hits=0,
                     cache_misses=1, retries=0, elapsed_s=0.1)
        assert sink.written == 3
        assert validate_event_log(path) == []
        lines = open(path).read().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == [
            "sweep_start", "spec_finish", "sweep_finish"]

    def test_write_after_close_is_noop(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "e.jsonl"))
        sink.close()
        sink({"kind": "note"})  # must not raise
        assert sink.written == 0


class TestValidation:
    def good(self, **overrides):
        event = {"schema": EVENT_SCHEMA_VERSION, "seq": 0, "ts": 1.0,
                 "kind": "note", "text": "x", "run_id": "-",
                 "spec_hash": "-", "origin": 1}
        event.update(overrides)
        return event

    def test_valid_stream(self):
        events = [self.good(), self.good(seq=1), self.good(seq=5)]
        assert validate_events(events) == []

    def test_unknown_kind(self):
        problems = validate_events([self.good(kind="nope")])
        assert any("unknown kind" in p for p in problems)

    def test_missing_required_payload_field(self):
        event = self.good(kind="sweep_start", n_specs=3)  # jobs missing
        problems = validate_events([event])
        assert any("missing field 'jobs'" in p for p in problems)

    def test_every_declared_kind_is_checkable(self):
        for kind, fields in EVENT_KINDS.items():
            event = self.good(kind=kind)
            event.pop("text", None)
            event.update({name: 0 for name in fields})
            assert validate_events([event]) == []

    def test_non_increasing_seq_flagged(self):
        problems = validate_events([self.good(seq=4), self.good(seq=4)])
        assert any("not greater" in p for p in problems)

    def test_wrong_schema_version(self):
        problems = validate_events([self.good(schema=999)])
        assert any("schema" in p for p in problems)

    def test_missing_envelope_field(self):
        event = self.good()
        del event["origin"]
        problems = validate_events([event])
        assert any("origin" in p for p in problems)

    def test_unparseable_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "note"\n')
        problems = validate_event_log(str(path))
        assert problems and "not valid JSON" in problems[0]

    def test_missing_file(self, tmp_path):
        problems = validate_event_log(str(tmp_path / "absent.jsonl"))
        assert len(problems) == 1


@pytest.fixture(autouse=True)
def _restore_current_bus():
    yield
    set_bus(None)
