"""Bench-history ingestion and trend rendering."""

import json
import os

from repro.obsv.bus import EventBus, JsonlSink
from repro.obsv.history import (
    BenchRecord,
    HistoryReport,
    collect_records,
    load_bench_file,
)


def write_bench(path, bench, **scalars):
    payload = {"bench": bench, "notes": "not a number"}
    payload.update(scalars)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return str(path)


def write_events(path):
    bus = EventBus()
    with JsonlSink(str(path)) as sink:
        bus.subscribe(sink)
        bus.emit("sweep_start", n_specs=4, jobs=2)
        bus.emit("sweep_finish", n_specs=4, cache_hits=1,
                 cache_misses=3, retries=0, elapsed_s=2.0)
        bus.emit("campaign_finish", trials=10, elapsed_s=5.0,
                 failures=1)
    return str(path)


class TestIngestion:
    def test_load_bench_file_numeric_scalars_only(self, tmp_path):
        path = write_bench(tmp_path / "BENCH_engine.json", "engine",
                           cycles_per_sec=1e6, speedup=3.5)
        record = load_bench_file(path)
        assert record.series == "engine"
        assert record.metrics == {"cycles_per_sec": 1e6,
                                  "speedup": 3.5}

    def test_load_bench_file_unreadable_returns_none(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{nope")
        assert load_bench_file(str(bad)) is None
        assert load_bench_file(str(tmp_path / "absent.json")) is None

    def test_collect_walks_bench_and_event_logs(self, tmp_path):
        write_bench(tmp_path / "BENCH_engine.json", "engine",
                    cycles_per_sec=1e6)
        sub = tmp_path / "ci" / "run1"
        os.makedirs(str(sub))
        write_bench(sub / "BENCH_engine.json", "engine",
                    cycles_per_sec=2e6)
        write_events(sub / "fig9-events.jsonl")
        records = collect_records(str(tmp_path))
        by_series = {}
        for record in records:
            by_series.setdefault(record.series, []).append(record)
        assert len(by_series["engine"]) == 2
        assert len(by_series["sweep"]) == 1
        assert len(by_series["campaign"]) == 1
        sweep = by_series["sweep"][0]
        assert sweep.metrics["specs_per_sec"] == 2.0
        assert sweep.metrics["cache_hit_ratio"] == 0.25
        assert by_series["campaign"][0].metrics["trials_per_sec"] == 2.0

    def test_collect_single_file(self, tmp_path):
        path = write_bench(tmp_path / "BENCH_x.json", "x", v=1.0)
        records = collect_records(path)
        assert len(records) == 1

    def test_collect_ignores_unrelated_files(self, tmp_path):
        (tmp_path / "README.md").write_text("hi")
        (tmp_path / "data.json").write_text("{}")
        assert collect_records(str(tmp_path)) == []


class TestReport:
    def records(self):
        return [
            BenchRecord("engine", "a.json",
                        {"cycles_per_sec": 1e6}, (1, "a")),
            BenchRecord("engine", "b.json",
                        {"cycles_per_sec": 1.5e6}, (2, "b")),
        ]

    def test_trends_chronological(self):
        report = HistoryReport(self.records())
        assert report.trends["engine"]["cycles_per_sec"] == [1e6, 1.5e6]

    def test_terminal_render(self):
        out = HistoryReport(self.records()).render_terminal()
        assert "engine  (2 runs)" in out
        assert "cycles_per_sec" in out
        assert "(+50.0%)" in out

    def test_terminal_render_empty(self):
        out = HistoryReport([]).render_terminal()
        assert "no BENCH_*.json" in out

    def test_html_render_and_save(self, tmp_path):
        report = HistoryReport(self.records())
        page = report.render_html()
        assert "<svg" in page and "polyline" in page
        assert "engine" in page
        path = str(tmp_path / "history.html")
        assert report.save_html(path) == path
        assert open(path).read() == page

    def test_html_render_empty(self):
        assert "(no records)" in HistoryReport([]).render_html()

    def test_single_sample_series_renders(self):
        # One run: no delta possible, must still render without a
        # divide-by-zero in the SVG x spacing.
        record = BenchRecord("solo", "s.json", {"v": 2.0}, (1, "s"))
        report = HistoryReport([record])
        assert "solo" in report.render_terminal()
        assert "<svg" in report.render_html()

    def test_to_dict(self):
        payload = HistoryReport(self.records()).to_dict()
        assert payload["series"]["engine"]["cycles_per_sec"] == [
            1e6, 1.5e6]
        assert payload["sources"]["engine"] == ["a.json", "b.json"]
