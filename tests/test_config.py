"""Unit tests for the Table 3 configuration."""

import pytest

from repro.config import SystemConfig, table3_config


class TestSystemConfig:
    def test_ns_conversion_at_2ghz(self):
        config = table3_config()
        assert config.ns(1.0) == 2
        assert config.ns(20.0) == 40
        assert config.ns(175.0) == 350
        assert config.ns(0.0) == 0

    def test_ns_rounds(self):
        assert table3_config().ns(0.6) == 1

    def test_cycle_ns(self):
        assert table3_config().cycle_ns == pytest.approx(0.5)

    def test_speculation_window_is_cores_times_path(self):
        # §8.1: 8 cores x 20 ns = 160 ns = 320 cycles.
        assert table3_config(n_cores=8).speculation_window_cycles == 320
        assert table3_config(n_cores=16).speculation_window_cycles == 640

    def test_cache_geometry(self):
        config = table3_config()
        assert config.l1_sets == 64 * 1024 // (64 * 4)
        assert config.l2_sets == 16 * 1024 * 1024 // (64 * 16)

    def test_with_overrides_is_a_copy(self):
        base = table3_config()
        other = base.with_overrides(n_cores=64)
        assert other.n_cores == 64
        assert base.n_cores == 8

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            table3_config(n_cores=0)
        with pytest.raises(ValueError):
            table3_config(spec_buffer_entries=0)
        with pytest.raises(ValueError):
            table3_config(pm_read_ns=-1.0)
        with pytest.raises(ValueError):
            SystemConfig(l1_size_bytes=64, l1_ways=4).validate()

    def test_table3_defaults_match_paper(self):
        config = table3_config()
        assert config.n_cores == 8
        assert config.rob_entries == 192
        assert config.store_queue_entries == 32
        assert config.l1_hit_ns == 2.0
        assert config.l2_hit_ns == 20.0
        assert config.pmc_read_queue == 32
        assert config.pmc_write_queue == 64
        assert config.spec_buffer_entries == 4
        assert config.pm_read_ns == 175.0
        assert config.pm_write_ns == 94.0
        assert config.persist_path_ns == 20.0
        assert config.l1_to_pmc_ns == 11.0
