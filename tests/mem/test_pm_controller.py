"""Unit tests for the PM controller: queueing, policy hooks, timing order."""

from repro.config import table3_config
from repro.mem import PMController, PMCPolicy, PMDevice, PersistMessage
from repro.sim import Environment


def make_pmc(policy=None, initial=None, **overrides):
    env = Environment()
    config = table3_config(**overrides)
    device = PMDevice(initial)
    pmc = PMController(env, config, device, policy=policy)
    return env, pmc


class TestReads:
    def test_read_latency_is_device_read(self):
        env, pmc = make_pmc(initial={0x40: 7})
        results = []

        def proc():
            content, done = yield pmc.read_block(1, env.now)[0]
            results.append((content, done))

        env.process(proc())
        env.run()
        config = table3_config()
        assert results[0][1] == config.ns(config.pm_read_ns)
        assert results[0][0] == {0x40: 7}

    def test_read_snapshot_taken_at_arrival(self):
        """A persist accepted after the read's arrival must NOT be visible:
        the stale-read semantics of §5.1."""
        env, pmc = make_pmc()
        seen = []

        def reader():
            content, _done = yield pmc.read_block(1, 0)[0]
            seen.append(content.get(0x40, 0))

        def late_writer():
            yield env.timeout(50)  # after read arrival (0), before done (350)
            pmc.accept_persist(PersistMessage(0, 0x40, 99), arrival=env.now)

        env.process(reader())
        env.process(late_writer())
        env.run()
        assert seen == [0]

    def test_read_sees_earlier_persist(self):
        env, pmc = make_pmc()
        seen = []

        def writer_then_reader():
            pmc.accept_persist(PersistMessage(0, 0x40, 42), arrival=0)
            yield env.timeout(10)
            content, _ = yield pmc.read_block(1, env.now)[0]
            seen.append(content[0x40])

        env.process(writer_then_reader())
        env.run()
        assert seen == [42]

    def test_read_queue_backpressure(self):
        env, pmc = make_pmc(pmc_read_queue=2, pmc_banks=1)
        done_times = []

        def proc():
            events = [pmc.read_block(i, 0)[0] for i in range(3)]
            for event in events:
                _content, done = yield event
                done_times.append(done)

        env.process(proc())
        env.run()
        read = table3_config().ns(table3_config().pm_read_ns)
        assert done_times == [read, 2 * read, 3 * read]


class TestWritebacks:
    def test_writeback_persists_by_default(self):
        env, pmc = make_pmc()
        pmc.accept_writeback(0x40, {0x40: 3, 0x48: 4}, arrival=5)
        env.run()
        assert pmc.device.read(0x40) == 3
        assert pmc.device.read(0x48) == 4

    def test_acceptance_time_is_admission(self):
        env, pmc = make_pmc()
        accept = pmc.accept_writeback(0x40, {0x40: 1}, arrival=17)
        assert accept == 17  # empty WPQ admits immediately

    def test_wpq_backpressure_delays_acceptance(self):
        env, pmc = make_pmc(pmc_write_queue=1, pmc_banks=1)
        first = pmc.accept_writeback(0x40, {0x40: 1}, arrival=0)
        second = pmc.accept_writeback(0x80, {0x80: 2}, arrival=0)
        write = table3_config().ns(table3_config().pm_write_ns)
        assert first == 0
        assert second == write


class TestPersists:
    def test_persist_updates_device_at_accept_time(self):
        env, pmc = make_pmc()
        pmc.accept_persist(PersistMessage(2, 0x80, 11), arrival=30)
        assert pmc.device.read(0x80) == 0  # not yet processed
        env.run()
        assert pmc.device.read(0x80) == 11

    def test_stats_counted(self):
        env, pmc = make_pmc()
        pmc.accept_persist(PersistMessage(0, 0x40, 1), arrival=0)
        pmc.accept_writeback(0x80, {0x80: 2}, arrival=0)
        env.run()
        assert pmc.stats["persists"] == 1
        assert pmc.stats["writebacks"] == 1


class RecordingPolicy(PMCPolicy):
    """Captures hook invocation order with timestamps."""

    def __init__(self):
        self.trace = []

    def read_delay(self, block, now):
        return 7

    def on_read(self, block, now):
        self.trace.append(("read", block, now))

    def on_writeback(self, block_addr, data, now):
        self.trace.append(("writeback", block_addr, now))

    def on_persist(self, msg, now):
        self.trace.append(("persist", msg.addr, now))


class TestPolicyDispatch:
    def test_hooks_fire_in_global_time_order(self):
        """The WriteBack-Read-Persist pattern must reach the policy in
        arrival order regardless of host call order."""
        policy = RecordingPolicy()
        env, pmc = make_pmc(policy=policy)
        # Host call order: persist first, but with the LATEST arrival.
        pmc.accept_persist(PersistMessage(0, 0x40, 1), arrival=500)
        pmc.accept_writeback(0x40, {0x40: 0}, arrival=100)
        event, _done = pmc.read_block(1, 200)

        def proc():
            yield event

        env.process(proc())
        env.run()
        kinds = [entry[0] for entry in policy.trace]
        assert kinds == ["writeback", "read", "persist"]

    def test_read_delay_charged(self):
        policy = RecordingPolicy()
        env, pmc = make_pmc(policy=policy)
        done_holder = []

        def proc():
            _content, done = yield pmc.read_block(1, 0)[0]
            done_holder.append(done)

        env.process(proc())
        env.run()
        base = table3_config().ns(table3_config().pm_read_ns)
        assert done_holder[0] == base + 7
        assert pmc.stats["read_delay_cycles"] == 7

    def test_overriding_policy_suppresses_default_persist(self):
        policy = RecordingPolicy()  # does not call device.persist_*
        env, pmc = make_pmc(policy=policy)
        pmc.accept_writeback(0x40, {0x40: 9}, arrival=0)
        env.run()
        assert pmc.device.read(0x40) == 0
