"""Unit tests for the multi-PM-controller complex (§7)."""

import pytest

from repro.config import table3_config
from repro.mem import PMDevice, PersistMessage
from repro.mem.pm_complex import PMCComplex
from repro.sim import Environment


def make_complex(n=2, ordered=False, **overrides):
    env = Environment()
    config = table3_config(n_pm_controllers=n, ordered_noc=ordered,
                           **overrides)
    device = PMDevice()
    complex_ = PMCComplex(env, config, device)
    return env, complex_


class TestRouting:
    def test_blocks_interleave(self):
        _env, pmc = make_complex(n=2)
        assert pmc.route(0) == 0
        assert pmc.route(1) == 1
        assert pmc.route(2) == 0

    def test_single_controller_routes_everything_to_zero(self):
        _env, pmc = make_complex(n=1)
        assert pmc.route(12345) == 0

    def test_policy_count_must_match(self):
        from repro.mem import PMCPolicy
        env = Environment()
        config = table3_config(n_pm_controllers=2)
        with pytest.raises(ValueError):
            PMCComplex(env, config, PMDevice(), policies=[PMCPolicy()])

    def test_zero_controllers_rejected(self):
        with pytest.raises(ValueError):
            table3_config(n_pm_controllers=0)


class TestOrderingHazard:
    def persist(self, pmc, core, block, value, arrival):
        return pmc.accept_persist(
            PersistMessage(core, block * 64, value), arrival)

    def test_cross_pmc_reordering_without_ordered_noc(self):
        """§7: a core's stores to different controllers can become
        durable out of program order."""
        _env, pmc = make_complex(n=2, ordered=False)
        pmc.set_controller_extra(0, 500)   # even blocks delayed
        first = self.persist(pmc, core=0, block=0, value=1, arrival=10)
        second = self.persist(pmc, core=0, block=1, value=2, arrival=20)
        assert second < first               # the hazard
        assert pmc.stats["cross_pmc_reorderings"] >= 1

    def test_ordered_noc_restores_program_order(self):
        """The paper's future-work fix: the NoC respects store order."""
        _env, pmc = make_complex(n=2, ordered=True)
        pmc.set_controller_extra(0, 500)
        first = self.persist(pmc, core=0, block=0, value=1, arrival=10)
        second = self.persist(pmc, core=0, block=1, value=2, arrival=20)
        assert second >= first
        assert pmc.stats["noc_order_clamps"] >= 1
        assert pmc.stats.as_dict().get("cross_pmc_reorderings", 0) == 0

    def test_single_controller_never_reorders(self):
        _env, pmc = make_complex(n=1)
        first = self.persist(pmc, 0, 0, 1, arrival=10)
        second = self.persist(pmc, 0, 1, 2, arrival=20)
        assert second >= first

    def test_other_cores_unaffected_by_clamp(self):
        _env, pmc = make_complex(n=2, ordered=True)
        pmc.set_controller_extra(0, 500)
        self.persist(pmc, core=0, block=0, value=1, arrival=10)
        other = self.persist(pmc, core=1, block=1, value=2, arrival=20)
        assert other < 500  # core 1 has no earlier delayed store


class TestComplexAPI:
    def test_reads_and_writebacks_route(self):
        env, pmc = make_complex(n=2)
        pmc.device.persist_store(64, 7, 0)
        results = []

        def proc():
            content, _done = yield pmc.read_block(1, 0)[0]
            results.append(content)

        env.process(proc())
        env.run()
        assert results[0] == {64: 7}
        pmc.accept_writeback(128, {128: 9}, arrival=env.now)
        env.run()
        assert pmc.device.read(128) == 9

    def test_merged_stats(self):
        env, pmc = make_complex(n=2)
        pmc.accept_persist(PersistMessage(0, 0, 1), arrival=0)
        pmc.accept_persist(PersistMessage(0, 64, 2), arrival=0)
        env.run()
        assert pmc.stats["persists"] == 2

    def test_extra_latency_validation(self):
        _env, pmc = make_complex(n=2)
        with pytest.raises(ValueError):
            pmc.set_controller_extra(0, -1)
