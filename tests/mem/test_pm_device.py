"""Unit tests for the PM device model."""

import pytest

from repro.mem import PMDevice


class TestPMDevice:
    def test_unwritten_reads_zero(self):
        assert PMDevice().read(0x1234) == 0

    def test_initial_image(self):
        device = PMDevice({0x40: 7})
        assert device.read(0x40) == 7

    def test_persist_store(self):
        device = PMDevice()
        device.persist_store(0x80, 5, now=100)
        assert device.read(0x80) == 5
        assert device.stores_persisted == 1

    def test_persist_block(self):
        device = PMDevice()
        device.persist_block(0x40, {0x40: 1, 0x48: 2}, now=50)
        assert device.read(0x40) == 1
        assert device.read(0x48) == 2
        assert device.blocks_persisted == 1

    def test_persist_block_rejects_out_of_block_addresses(self):
        device = PMDevice()
        with pytest.raises(ValueError):
            device.persist_block(0x40, {0x100: 1}, now=0)

    def test_block_content(self):
        device = PMDevice({0x40: 1, 0x7F: 2, 0x80: 3})
        assert device.block_content(1) == {0x40: 1, 0x7F: 2}
        assert device.block_content(2) == {0x80: 3}
        assert device.block_content(9) == {}

    def test_history_recorded_when_enabled(self):
        device = PMDevice(record_history=True)
        device.persist_store(0x40, 1, now=10)
        device.persist_block(0x80, {0x80: 2}, now=20)
        assert device.history == [(10, 0x40, 1, "persist-path"),
                                  (20, 0x80, 2, "writeback")]

    def test_history_off_by_default(self):
        device = PMDevice()
        device.persist_store(0x40, 1, now=10)
        assert device.history == []

    def test_snapshot_is_a_copy(self):
        device = PMDevice({0x40: 1})
        snap = device.snapshot()
        snap[0x40] = 99
        assert device.read(0x40) == 1

    def test_len_counts_addresses(self):
        device = PMDevice()
        device.persist_store(0, 1, 0)
        device.persist_store(8, 2, 0)
        device.persist_store(8, 3, 0)
        assert len(device) == 2
