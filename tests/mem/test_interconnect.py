"""Unit tests for persist path, flush path, spec-ID counter, lock network."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import table3_config
from repro.mem import (
    FlushPath,
    LockNetwork,
    PersistMessage,
    PersistPath,
    SpecIdCounter,
)


def make_path(n_cores=8, **overrides):
    config = table3_config(n_cores=n_cores, **overrides)
    return PersistPath(config, n_cores)


class TestPersistPath:
    def test_idle_latency_is_traversal_plus_slot(self):
        path = make_path()
        config = table3_config()
        arrival = path.send(0, now=0)
        assert arrival == config.ns(config.ring_slot_ns) + config.ns(
            config.persist_path_ns)

    def test_per_core_fifo_order(self):
        path = make_path()
        first = path.send(0, now=0)
        second = path.send(0, now=0)
        third = path.send(0, now=1000)
        assert first < second < third

    def test_fifo_even_when_later_injection_could_overtake(self):
        path = make_path()
        # Saturate the bus so core 0's first message queues behind others.
        for _ in range(20):
            path.send(1, now=0)
        first = path.send(0, now=0)
        # With an empty bus later, the raw arrival would beat `first`
        # without the FIFO guard.
        second = path.send(0, now=first - 30)
        assert second > first

    def test_bus_contention_serialises_slots(self):
        config = table3_config()
        path = make_path()
        arrivals = [path.send(core, now=0) for core in range(8)]
        spread = max(arrivals) - min(arrivals)
        slot = max(1, config.ns(config.ring_slot_ns))
        expected_waves = 8 // config.persist_path_lanes - 1
        assert spread >= expected_waves * slot

    def test_global_fifo_mode(self):
        config = table3_config()
        path = PersistPath(config, 8, global_fifo=True)
        a = path.send(0, now=0)
        b = path.send(1, now=0)
        c = path.send(2, now=0)
        assert a < b < c

    def test_bad_core_rejected(self):
        with pytest.raises(ValueError):
            make_path(n_cores=4).send(4, now=0)

    def test_last_arrival_tracks_per_core(self):
        path = make_path()
        arrival = path.send(3, now=10)
        assert path.last_arrival(3) == arrival
        assert path.last_arrival(0) == 0

    def test_idle_window_matches_paper(self):
        # 8 cores x 20 ns = 160 ns = 320 cycles at 2 GHz (§8.1).
        path = make_path()
        assert path.idle_window() == 320

    @settings(max_examples=30)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=7),
                              st.integers(min_value=0, max_value=10000)),
                    min_size=1, max_size=60))
    def test_arrivals_monotonic_per_core(self, sends):
        path = make_path()
        last = {}
        clock = 0
        for core, gap in sends:
            clock += gap
            arrival = path.send(core, now=clock)
            assert arrival > last.get(core, -1)
            last[core] = arrival


class TestFlushPath:
    def test_idle_traversal(self):
        config = table3_config()
        path = FlushPath(config)
        arrival = path.send(0)
        assert arrival == config.ns(config.ring_slot_ns) + config.ns(
            config.l1_to_pmc_ns)

    def test_width_parallelism(self):
        config = table3_config()
        path = FlushPath(config, width=4)
        arrivals = [path.send(0) for _ in range(4)]
        assert len(set(arrivals)) == 1


class TestSpecIdCounter:
    def test_ids_monotonic_from_one(self):
        counter = SpecIdCounter()
        assert [counter.assign() for _ in range(3)] == [1, 2, 3]

    def test_untagged_is_zero(self):
        assert SpecIdCounter.UNTAGGED == 0
        counter = SpecIdCounter()
        assert counter.assign() != SpecIdCounter.UNTAGGED


class TestPersistMessage:
    def test_untagged_by_default(self):
        msg = PersistMessage(0, 0x40, 1)
        assert not msg.tagged

    def test_tagged(self):
        msg = PersistMessage(0, 0x40, 1, spec_id=5)
        assert msg.tagged
        assert "spec_id=5" in repr(msg)


class TestLockNetwork:
    def test_first_acquire_free(self):
        net = LockNetwork(table3_config())
        assert net.transfer_cost(0, core_id=2) == 0

    def test_same_owner_free(self):
        net = LockNetwork(table3_config())
        net.transfer_cost(0, 1)
        assert net.transfer_cost(0, 1) == 0

    def test_migration_costs_handoff(self):
        config = table3_config()
        net = LockNetwork(config)
        net.transfer_cost(0, 1)
        assert net.transfer_cost(0, 2) == config.ns(config.lock_handoff_ns)
