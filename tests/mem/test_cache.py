"""Unit and property tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import EXCLUSIVE, MODIFIED, SHARED, Cache


def make_cache(sets=4, ways=2):
    return Cache("test", sets, ways)


class TestGeometry:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache("c", 0, 2)
        with pytest.raises(ValueError):
            Cache("c", 2, 0)

    def test_set_mapping_by_modulo(self):
        cache = make_cache(sets=4, ways=1)
        cache.insert(0, {}, EXCLUSIVE)
        cache.insert(1, {}, EXCLUSIVE)
        # Blocks 0 and 4 share set 0; block 1 is untouched.
        victim = cache.insert(4, {}, EXCLUSIVE)
        assert victim is not None and victim.block == 0
        assert 1 in cache


class TestLookupInsert:
    def test_miss_returns_none(self):
        assert make_cache().lookup(7) is None

    def test_hit_after_insert(self):
        cache = make_cache()
        cache.insert(7, {448: 5}, SHARED)
        line = cache.lookup(7)
        assert line is not None
        assert line.data == {448: 5}
        assert line.state == SHARED

    def test_insert_invalid_state_rejected(self):
        with pytest.raises(ValueError):
            make_cache().insert(1, {}, "I")

    def test_reinsert_replaces_in_place(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(0, {0: 1}, EXCLUSIVE)
        cache.insert(1, {64: 2}, EXCLUSIVE)
        victim = cache.insert(0, {0: 9}, MODIFIED)
        assert victim is None
        assert cache.lookup(0).data == {0: 9}
        assert cache.occupancy == 2

    def test_lru_eviction_order(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(0, {}, EXCLUSIVE)
        cache.insert(1, {}, EXCLUSIVE)
        cache.lookup(0)  # block 0 most recent; 1 is the LRU victim
        victim = cache.insert(2, {}, EXCLUSIVE)
        assert victim.block == 1

    def test_lookup_without_touch_preserves_lru(self):
        cache = make_cache(sets=1, ways=2)
        cache.insert(0, {}, EXCLUSIVE)
        cache.insert(1, {}, EXCLUSIVE)
        cache.lookup(0, touch=False)  # 0 stays LRU
        victim = cache.insert(2, {}, EXCLUSIVE)
        assert victim.block == 0

    def test_dirty_eviction_counted(self):
        cache = make_cache(sets=1, ways=1)
        cache.insert(0, {0: 1}, MODIFIED)
        victim = cache.insert(1, {}, EXCLUSIVE)
        assert victim.dirty
        assert cache.stats["dirty_evictions"] == 1


class TestWriteInvalidate:
    def test_write_marks_modified(self):
        cache = make_cache()
        cache.insert(3, {192: 0}, EXCLUSIVE)
        cache.write(3, 196, 42)
        line = cache.lookup(3)
        assert line.state == MODIFIED
        assert line.data[196] == 42

    def test_write_nonresident_raises(self):
        with pytest.raises(KeyError):
            make_cache().write(5, 320, 1)

    def test_invalidate_returns_contents(self):
        cache = make_cache()
        cache.insert(2, {128: 7}, MODIFIED)
        victim = cache.invalidate(2)
        assert victim.dirty and victim.data == {128: 7}
        assert 2 not in cache

    def test_invalidate_missing_returns_none(self):
        assert make_cache().invalidate(9) is None

    def test_downgrade(self):
        cache = make_cache()
        cache.insert(1, {}, MODIFIED)
        cache.downgrade(1, SHARED)
        assert cache.lookup(1).state == SHARED


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                    max_size=200))
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = make_cache(sets=4, ways=2)
        for block in blocks:
            cache.insert(block, {}, EXCLUSIVE)
        assert cache.occupancy <= 8
        # Every resident block is findable.
        for block in cache.resident_blocks():
            assert cache.lookup(block, touch=False) is not None

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                    max_size=100))
    def test_most_recent_insert_always_resident(self, blocks):
        cache = make_cache(sets=8, ways=2)
        for block in blocks:
            cache.insert(block, {}, EXCLUSIVE)
            assert block in cache
