"""Unit tests for the cache hierarchy: hits, misses, coherence, evictions."""

import pytest

from repro.config import table3_config
from repro.mem import CacheHierarchy, MemoryImage, PMController, PMDevice
from repro.sim import Environment


def make_system(initial=None, **overrides):
    env = Environment()
    config = table3_config(**overrides)
    device = PMDevice(initial)
    pmc = PMController(env, config, device)
    image = MemoryImage(initial)
    hier = CacheHierarchy(env, config, pmc, image)
    return env, config, hier


def run_load(env, hier, core, addr, now=0):
    """Drive one load to completion; returns the LoadResult."""
    out = []

    def proc():
        res = hier.load(core, addr, now)
        if res.event is not None:
            res = yield res.event
        out.append(res)

    env.process(proc())
    env.run()
    return out[0]


class TestLoadPath:
    def test_cold_load_goes_to_pm(self):
        env, config, hier = make_system({0x40: 5})
        res = run_load(env, hier, 0, 0x40)
        assert res.level == "pm"
        assert res.value == 5
        assert not res.stale
        assert res.done >= config.ns(config.pm_read_ns)

    def test_second_load_hits_l1(self):
        env, config, hier = make_system({0x40: 5})
        run_load(env, hier, 0, 0x40)
        res = hier.load(0, 0x40, 1000)
        assert res.event is None
        assert res.level == "l1"
        assert res.value == 5
        assert res.done == 1000 + config.ns(config.l1_hit_ns)

    def test_peer_fill_hits_llc(self):
        env, config, hier = make_system({0x40: 5})
        run_load(env, hier, 0, 0x40)
        # Core 1 misses its L1 but the inclusive LLC has the block.
        res = hier.load(1, 0x40, 2000)
        assert res.event is None
        assert res.level == "llc"
        assert res.value == 5

    def test_load_after_peer_store_uses_c2c(self):
        env, config, hier = make_system()
        hier.store(0, 0x40, 77, 0)
        res = hier.load(1, 0x40, 100)
        assert res.event is None
        assert res.level in ("c2c", "llc")
        assert res.value == 77

    def test_unwritten_address_reads_zero(self):
        env, _config, hier = make_system()
        res = run_load(env, hier, 0, 0x9999)
        assert res.value == 0


class TestStorePath:
    def test_store_then_load_same_core(self):
        env, _config, hier = make_system()
        hier.store(0, 0x40, 9, 0)
        res = hier.load(0, 0x40, 10)
        assert res.event is None
        assert res.value == 9

    def test_store_updates_architectural_image(self):
        env, _config, hier = make_system()
        hier.store(0, 0x40, 3, 0)
        assert hier.image.read(0x40) == 3

    def test_store_hit_latency_is_l1(self):
        env, config, hier = make_system()
        hier.store(0, 0x40, 1, 0)          # allocate
        done = hier.store(0, 0x44, 2, 100)  # now an L1 M hit
        assert done == 100 + config.ns(config.l1_hit_ns)

    def test_store_invalidates_sharers(self):
        env, _config, hier = make_system({0x40: 1})
        run_load(env, hier, 0, 0x40)
        res = hier.load(1, 0x40, 500)
        assert res.event is None  # LLC hit
        hier.store(1, 0x40, 2, 600)
        # Core 0's copy must be gone: its next load refetches and sees 2.
        res0 = hier.load(0, 0x40, 700)
        assert res0.value == 2

    def test_store_migrates_dirty_peer_line(self):
        env, _config, hier = make_system()
        hier.store(0, 0x40, 1, 0)
        hier.store(1, 0x40, 2, 100)
        assert hier.image.read(0x40) == 2
        res = hier.load(1, 0x40, 200)
        assert res.value == 2
        # Core 0 no longer owns it.
        assert hier.stats["coherence_invalidations"] >= 1

    def test_write_allocate_fetch_counts_pm_read(self):
        env, _config, hier = make_system()
        hier.store(0, 0x40, 1, 0)
        env.run()
        assert hier.stats["store_pm_fetches"] == 1
        assert hier.pmc.stats["reads"] == 1


class TestClwb:
    def test_clwb_persists_dirty_line(self):
        env, _config, hier = make_system()
        hier.store(0, 0x40, 5, 0)
        accept = hier.clwb(0, 0x40, 100)
        env.run()
        assert hier.pmc.device.read(0x40) == 5
        assert accept > 100

    def test_clwb_clean_is_cheap(self):
        env, config, hier = make_system({0x40: 1})
        run_load(env, hier, 0, 0x40)
        done = hier.clwb(0, 0x40, 1000)
        assert done == 1000 + config.ns(config.l1_hit_ns)
        assert hier.stats["clwb_clean"] == 1

    def test_clwb_keeps_line_resident(self):
        env, config, hier = make_system()
        hier.store(0, 0x40, 5, 0)
        hier.clwb(0, 0x40, 100)
        res = hier.load(0, 0x40, 2000)
        assert res.level == "l1"
        assert res.value == 5

    def test_clwb_flushes_llc_copy_when_l1_clean(self):
        env, _config, hier = make_system()
        hier.store(0, 0x40, 5, 0)
        # Dirty data demoted to LLC via peer read (c2c merge).
        hier.load(1, 0x40, 50)
        # Invalidate both L1 copies so only the LLC holds the dirty line.
        hier.l1s[0].invalidate(1)
        hier.l1s[1].invalidate(1)
        hier.clwb(0, 0x40, 100)
        env.run()
        assert hier.pmc.device.read(0x40) == 5


class TestEvictions:
    def test_llc_dirty_eviction_reaches_pmc(self):
        env, _config, hier = make_system(l2_size_bytes=64 * 16,
                                         l2_ways=16, l1_size_bytes=64 * 4,
                                         l1_ways=4)
        # Fill one LLC set (all 16 blocks map to set 0) with dirty lines,
        # then one more to force a dirty eviction.
        for i in range(17):
            hier.store(0, i * 64, i, i * 1000)
        env.run()
        assert hier.stats["llc_dirty_writebacks"] >= 1
        assert hier.pmc.stats["writebacks"] >= 1

    def test_inclusive_back_invalidation_preserves_dirty_data(self):
        env, _config, hier = make_system(l2_size_bytes=64 * 16,
                                         l2_ways=16)
        hier.store(0, 0, 111, 0)  # dirty in L1, block 0
        # Evict block 0 from the LLC by filling its set.
        for i in range(1, 17):
            hier.store(0, i * 64, i, i * 1000)
        env.run()
        # The L1 copy was pulled back; its data must have been written back.
        assert hier.pmc.device.read(0) == 111

    def test_stale_read_detected_when_pm_behind(self):
        """If PM never receives the new value (writebacks dropped), a PM
        load observes the stale value and the hierarchy counts it."""
        from repro.mem import PMCPolicy

        class DroppingPolicy(PMCPolicy):
            def on_writeback(self, block_addr, data, now):
                pass  # silently drop, like PMEM-Spec's persist-less PMC

        env = Environment()
        config = table3_config(l2_size_bytes=64 * 16, l2_ways=16,
                               l1_size_bytes=64 * 4, l1_ways=4)
        device = PMDevice()
        pmc = PMController(env, config, device, policy=DroppingPolicy())
        image = MemoryImage()
        hier = CacheHierarchy(env, config, pmc, image)

        hier.store(0, 0, 42, 0)
        # Push block 0 out of both L1 (4 ways) and LLC (16 ways).
        for i in range(1, 18):
            hier.store(0, i * 64, i, i * 100)
        env.run()
        res = run_load(env, hier, 0, 0, now=env.now)
        assert res.level == "pm"
        assert res.value == 0          # stale: the 42 was dropped
        assert res.stale
        assert hier.stats["stale_reads"] == 1
