"""Property-based coherence tests: the cache hierarchy, under arbitrary
interleavings of loads and stores from multiple cores, must always be
coherent with a flat reference memory (single-writer semantics are
guaranteed here by spacing operations in time, so every load has one
well-defined expected value)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import table3_config
from repro.mem import CacheHierarchy, MemoryImage, PMController, PMDevice
from repro.sim import Environment

N_CORES = 3
N_BLOCKS = 6
BASE = 0x1000_0000

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["load", "store"]),
        st.integers(min_value=0, max_value=N_CORES - 1),
        st.integers(min_value=0, max_value=N_BLOCKS - 1),
        st.integers(min_value=0, max_value=7),      # word within block
        st.integers(min_value=1, max_value=1000),   # store value
    ),
    min_size=1, max_size=60)


def build(tiny=False):
    env = Environment()
    overrides = {}
    if tiny:
        overrides = dict(l1_size_bytes=64 * 4, l1_ways=2,
                         l2_size_bytes=64 * 8, l2_ways=4)
    config = table3_config(n_cores=N_CORES, **overrides)
    device = PMDevice()
    pmc = PMController(env, config, device)
    image = MemoryImage()
    hierarchy = CacheHierarchy(env, config, pmc, image)
    return env, hierarchy


def run_sequence(ops, tiny):
    """Apply ops well-separated in time; check every load against the
    reference; returns (mismatches, hierarchy)."""
    env, hierarchy = build(tiny)
    reference = {}
    mismatches = []
    clock = [0]

    def next_time():
        clock[0] = max(clock[0] + 2000, env.now + 1)
        return clock[0]

    for kind, core, block, word, value in ops:
        addr = BASE + block * 64 + word * 8
        t = next_time()
        if kind == "store":
            hierarchy.store(core, addr, value, t)
            reference[addr] = value
            env.run(until=t + 1900)
        else:
            result = hierarchy.load(core, addr, t)
            expected = reference.get(addr, 0)
            if result.event is None:
                if result.value != expected:
                    mismatches.append((addr, result.value, expected))
            else:
                def check(event, expected=expected, addr=addr):
                    if event.value.value != expected:
                        mismatches.append(
                            (addr, event.value.value, expected))
                result.event.add_callback(check)
            env.run(until=t + 1900)
    env.run()
    return mismatches, hierarchy


class TestExclusiveDowngradeRegression:
    def test_read_snoop_downgrades_clean_exclusive_peer(self):
        """Minimal Hypothesis counterexample (PR 3 era): core 0 holds a
        block EXCLUSIVE, core 1's LLC-hit load must downgrade it to
        SHARED -- otherwise core 0's next store takes the silent
        exclusive-hit path and core 1 keeps reading the stale copy."""
        ops = [
            ("load", 0, 0, 0, 1),   # core 0 fills L1[0] EXCLUSIVE via PM
            ("load", 1, 0, 0, 1),   # core 1 LLC hit: must snoop-downgrade
            ("store", 0, 0, 0, 7),  # would silently hit if still E
            ("load", 1, 0, 0, 1),   # must see 7, not the stale 0
        ]
        mismatches, hierarchy = run_sequence(ops, tiny=False)
        assert mismatches == []
        # Both copies coherent and non-exclusive after the sharing load.
        line0 = hierarchy.l1s[0].lookup(BASE >> 6, touch=False)
        assert line0 is not None and line0.data[BASE] == 7


class TestCoherenceAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(ops_strategy)
    def test_big_caches_always_coherent(self, ops):
        mismatches, _ = run_sequence(ops, tiny=False)
        assert mismatches == []

    @settings(max_examples=40, deadline=None)
    @given(ops_strategy)
    def test_tiny_caches_with_evictions_still_coherent(self, ops):
        """Constant evictions/writebacks/refetches must never lose data
        under the default (persist-everything) PMC policy."""
        mismatches, hierarchy = run_sequence(ops, tiny=True)
        assert mismatches == []

    @settings(max_examples=25, deadline=None)
    @given(ops_strategy)
    def test_architectural_image_tracks_reference(self, ops):
        _mismatches, hierarchy = run_sequence(ops, tiny=True)
        for kind, core, block, word, value in ops:
            addr = BASE + block * 64 + word * 8
        reference = {}
        for kind, core, block, word, value in ops:
            if kind == "store":
                reference[BASE + block * 64 + word * 8] = value
        for addr, value in reference.items():
            assert hierarchy.image.read(addr) == value

    @settings(max_examples=25, deadline=None)
    @given(ops_strategy)
    def test_durable_image_converges_to_reference(self, ops):
        """After quiescing, PM holds the final values (default policy:
        everything persists via CLWB-free writebacks at eviction, so we
        flush explicitly via clwb for blocks still cached)."""
        _mismatches, hierarchy = run_sequence(ops, tiny=True)
        reference = {}
        for kind, core, block, word, value in ops:
            if kind == "store":
                reference[BASE + block * 64 + word * 8] = value
        env = hierarchy.env
        t = env.now + 1000
        for addr in reference:
            for core in range(N_CORES):
                hierarchy.clwb(core, addr, t)
                t += 100
        env.run()
        for addr, value in reference.items():
            assert hierarchy.pmc.device.read(addr) == value
