"""Pin the stale-read window boundary: the oracle's lazy-expiry
predicate must match the hardware's exactly, at the exact cycle.

Both sides expire an entry when ``now - start >= window`` (the entry's
window-th cycle is already dead).  A drift to ``>`` on either side
would make the oracle flag patterns the hardware legitimately forgot
(false positives) or miss patterns the hardware still tracks (false
negatives) -- one cycle apart, and only at the boundary, which is why
this regression test exists.
"""

from repro.core import automata
from repro.core.spec_buffer import SpecBufferEntry
from repro.validation.history import persist, read, writeback
from repro.validation.oracle import STALE_READ, PersistOrderOracle

WINDOW = 320


class TestExpiryPredicateEquivalence:
    def test_boundary_agreement(self):
        """oracle._expired == SpecBufferEntry.expired at, around, and
        far from the boundary."""
        oracle = PersistOrderOracle(window=WINDOW)
        entry = SpecBufferEntry(block=0, state=automata.EVICT, inserted=0)
        for now in (0, 1, WINDOW - 1, WINDOW, WINDOW + 1, 10 * WINDOW):
            assert (oracle._expired(0, now)
                    == entry.expired(now, WINDOW)), now

    def test_both_are_inclusive(self):
        """The shared convention is ``>=``: the entry is dead exactly
        at start + window, not one cycle later."""
        oracle = PersistOrderOracle(window=WINDOW)
        entry = SpecBufferEntry(block=0, state=automata.EVICT, inserted=100)
        assert not oracle._expired(100, 100 + WINDOW - 1)
        assert oracle._expired(100, 100 + WINDOW)
        assert not entry.expired(100 + WINDOW - 1, WINDOW)
        assert entry.expired(100 + WINDOW, WINDOW)


class TestBehaviouralBoundary:
    def history_with_persist_at(self, persist_cycle):
        """WriteBack at 0, Read at 1, Persist at ``persist_cycle``:
        stale-read iff the entry is still live at the persist."""
        return [writeback(0, 0), read(0, 1),
                persist(0, persist_cycle, core=0)]

    def kinds_at(self, persist_cycle):
        oracle = PersistOrderOracle(window=WINDOW)
        history = self.history_with_persist_at(persist_cycle)
        return {v.kind for v in oracle.check(history)}

    def test_stale_read_inside_the_window(self):
        assert self.kinds_at(WINDOW - 1) == {STALE_READ}

    def test_no_stale_read_at_the_boundary(self):
        """At exactly ``start + window`` the entry has lazily expired:
        the hardware would not flag this persist, so the oracle must
        not either."""
        assert self.kinds_at(WINDOW) == set()

    def test_no_stale_read_past_the_boundary(self):
        assert self.kinds_at(WINDOW + 1) == set()
