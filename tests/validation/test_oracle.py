"""Oracle regression suite: hand-crafted histories with known verdicts.

Each test builds the smallest history exhibiting (or deliberately not
exhibiting) one invariant violation, so a change to the oracle's replay
semantics fails loudly and names the invariant it broke.
"""

from repro.validation import (
    FASE_ATOMICITY,
    INTRA_THREAD_ORDER,
    SPEC_ID_ORDER,
    STALE_READ,
    PersistOrderOracle,
    detection,
    fase_span,
    persist,
    read,
    writeback,
)


def kinds_of(violations):
    return sorted({violation.kind for violation in violations})


# ------------------------------------------------------ clean histories


def test_clean_history_has_no_false_positives():
    """A well-behaved run: monitored writeback retired by its persist,
    in-order persists, tagged persists with rising spec-IDs, and a
    commit/abort/retry FASE sequence."""
    history = [
        fase_span(core=0, fase=0, start=0, end=40, outcome="commit"),
        writeback(block=0x10, cycle=5),
        persist(block=0x20, cycle=10, core=0, spec_id=1),
        persist(block=0x21, cycle=12, core=0, spec_id=1),
        persist(block=0x10, cycle=14, core=0),  # retires the writeback
        persist(block=0x20, cycle=20, core=0, spec_id=2),
        fase_span(core=0, fase=1, start=41, end=80, outcome="abort"),
        fase_span(core=0, fase=1, start=81, end=120, outcome="commit",
                  attempt=2),
        fase_span(core=1, fase=0, start=0, end=60, outcome="commit"),
    ]
    assert PersistOrderOracle().check(history) == []


def test_equal_cycle_persists_are_in_order():
    """The PMC can accept two stores in the same cycle (different
    banks); equal acceptance cycles respect issue order."""
    history = [persist(block=1, cycle=10, core=0),
               persist(block=2, cycle=10, core=0)]
    assert PersistOrderOracle().check(history) == []


# ----------------------------------------------- intra-thread FIFO order


def test_out_of_order_persist_acceptance_is_flagged():
    history = [persist(block=1, cycle=100, core=0),
               persist(block=2, cycle=90, core=0)]
    violations = PersistOrderOracle().check(history)
    assert kinds_of(violations) == [INTRA_THREAD_ORDER]
    assert "0x2" in violations[0].detail and "0x1" in violations[0].detail


def test_reordering_across_cores_is_allowed():
    """The FIFO property is per core; cross-core acceptance order is
    unconstrained."""
    history = [persist(block=1, cycle=100, core=0),
               persist(block=2, cycle=90, core=1)]
    assert PersistOrderOracle().check(history) == []


# ------------------------------------------------------------ stale read


def test_undetected_writeback_read_persist_is_stale_read():
    """Figure 5's WriteBack-Read-Persist pattern with no detection event
    means a regular-path read returned stale data silently."""
    history = [writeback(block=0x40, cycle=10),
               read(block=0x40, cycle=12),
               persist(block=0x40, cycle=14, core=0)]
    violations = PersistOrderOracle().check(history)
    assert kinds_of(violations) == [STALE_READ]
    assert violations[0].cycle == 14


def test_detected_stale_read_is_clean():
    """Same pattern, but the hardware flagged it at the persist's
    acceptance cycle -- recovery takes over, nothing to report."""
    history = [writeback(block=0x40, cycle=10),
               read(block=0x40, cycle=12),
               detection(block=0x40, cycle=14),
               persist(block=0x40, cycle=14, core=0)]
    assert PersistOrderOracle().check(history) == []


def test_read_without_prior_writeback_is_clean():
    """Read-then-persist with no dropped writeback involved: the read
    could not have been stale."""
    history = [read(block=0x40, cycle=12),
               persist(block=0x40, cycle=14, core=0)]
    assert PersistOrderOracle().check(history) == []


def test_expired_entry_is_not_flagged():
    """With a finite window the entry lazily expires before the persist
    arrives -- the hardware would have forgotten the block, so the
    oracle must too (this mirrors the speculation-window guarantee that
    the persist wave front has passed by then)."""
    history = [writeback(block=0x40, cycle=10),
               read(block=0x40, cycle=12),
               persist(block=0x40, cycle=300, core=0)]
    assert PersistOrderOracle(window=100).check(history) == []
    # The same history with an infinite window IS a stale read.
    assert kinds_of(PersistOrderOracle().check(history)) == [STALE_READ]


def test_stale_read_check_can_be_disabled():
    """Baseline designs persist their writebacks; the pattern has no
    meaning there and the campaign disables the replay."""
    history = [writeback(block=0x40, cycle=10),
               read(block=0x40, cycle=12),
               persist(block=0x40, cycle=14, core=0)]
    oracle = PersistOrderOracle(check_stale_reads=False)
    assert oracle.check(history) == []


# ------------------------------------------------- spec-ID monotonicity


def test_out_of_order_spec_ids_are_flagged():
    history = [persist(block=0x80, cycle=10, core=0, spec_id=5),
               persist(block=0x80, cycle=20, core=0, spec_id=3)]
    violations = PersistOrderOracle().check(history)
    assert kinds_of(violations) == [SPEC_ID_ORDER]
    assert "spec-id 3" in violations[0].detail


def test_detected_spec_id_inversion_is_clean():
    history = [persist(block=0x80, cycle=10, core=0, spec_id=5),
               detection(block=0x80, cycle=20),
               persist(block=0x80, cycle=20, core=0, spec_id=3)]
    assert PersistOrderOracle().check(history) == []


def test_rising_and_repeated_spec_ids_are_clean():
    history = [persist(block=0x80, cycle=10, core=0, spec_id=3),
               persist(block=0x80, cycle=20, core=0, spec_id=3),
               persist(block=0x80, cycle=30, core=0, spec_id=7)]
    assert PersistOrderOracle().check(history) == []


def test_deallocated_entry_forgets_its_spec_id():
    """An untagged persist in Evict state deallocates the entry (the
    hardware's memory of the block is gone); a later lower spec-ID is
    legitimately invisible and must not be flagged."""
    history = [persist(block=0x80, cycle=10, core=0, spec_id=5),
               writeback(block=0x80, cycle=15),
               persist(block=0x80, cycle=20, core=0),  # deallocates
               persist(block=0x80, cycle=30, core=0, spec_id=3)]
    assert PersistOrderOracle().check(history) == []


# -------------------------------------------------------- FASE atomicity


def test_overlapping_fase_attempts_are_flagged():
    history = [fase_span(core=0, fase=0, start=0, end=100),
               fase_span(core=0, fase=1, start=50, end=150)]
    violations = PersistOrderOracle().check(history)
    assert kinds_of(violations) == [FASE_ATOMICITY]


def test_one_cycle_span_overlap_is_tolerated():
    """The tracer widens zero-length spans to 1 cycle, so back-to-back
    attempts may nominally overlap by one cycle."""
    history = [fase_span(core=0, fase=0, start=0, end=100),
               fase_span(core=0, fase=1, start=99, end=150)]
    assert PersistOrderOracle().check(history) == []


def test_abort_must_be_reexecuted_next():
    history = [fase_span(core=0, fase=0, start=0, end=100,
                         outcome="abort"),
               fase_span(core=0, fase=1, start=101, end=200,
                         outcome="commit")]
    violations = PersistOrderOracle().check(history)
    assert kinds_of(violations) == [FASE_ATOMICITY]
    assert "re-execution" in violations[0].detail


def test_retry_must_increment_attempt():
    history = [fase_span(core=0, fase=0, start=0, end=100,
                         outcome="abort"),
               fase_span(core=0, fase=0, start=101, end=200,
                         outcome="commit", attempt=1)]
    violations = PersistOrderOracle().check(history)
    assert kinds_of(violations) == [FASE_ATOMICITY]


def test_committed_fase_must_not_run_again():
    history = [fase_span(core=0, fase=0, start=0, end=100,
                         outcome="commit"),
               fase_span(core=0, fase=0, start=101, end=200,
                         outcome="commit", attempt=2)]
    violations = PersistOrderOracle().check(history)
    assert kinds_of(violations) == [FASE_ATOMICITY]
    assert "after committing" in violations[0].detail


def test_retry_pending_at_crash_is_clean():
    """A crash between the abort and its re-execution is exactly what
    recovery handles; no violation."""
    history = [fase_span(core=0, fase=0, start=0, end=100,
                         outcome="abort")]
    assert PersistOrderOracle().check(history) == []
