"""Planner behavior on synthetic run profiles (no simulator involved)."""

import random

import pytest

from repro.validation import (
    AdaptivePlanner,
    ExhaustivePlanner,
    RunProfile,
    StratifiedPlanner,
    planner_by_name,
)
from repro.validation.planners import COMMIT_HALO, FAILURE_HALO


def make_profile(with_boundaries=True):
    """Two FASEs, two commits, a drain tail, and (optionally) the
    persist acceptance boundaries of the run."""
    boundaries = [55, 60, 90, 95, 380, 400, 760, 790, 930]
    return RunProfile(
        total_cycles=1000,
        fase_intervals=[(50, 400), (700, 800)],
        commit_cycles=[395, 795],
        issue_end=800,
        persist_cycles=boundaries if with_boundaries else [],
    )


def test_phase_classification():
    profile = make_profile()
    assert profile.phase_of(60) == "inside-fase"
    assert profile.phase_of(395) == "at-commit"
    assert profile.phase_of(395 - COMMIT_HALO) == "at-commit"
    assert profile.phase_of(900) == "during-drain"
    assert profile.phase_of(500) == "between-fases"


def test_strata_use_persist_boundaries_when_known():
    """Boundary cycles are the distinct crash states; each stratum is
    exactly its classified boundaries."""
    strata = make_profile().stratum_cycles()
    assert strata["inside-fase"] == [55, 60, 90, 95, 760]
    assert strata["at-commit"] == [380, 400, 790]
    assert strata["during-drain"] == [930]


def test_strata_fall_back_to_ranges_without_boundaries():
    strata = make_profile(with_boundaries=False).stratum_cycles()
    assert 60 in strata["inside-fase"]
    assert 395 in strata["at-commit"]
    assert 900 in strata["during-drain"]
    # Uniform fallback is dense, not boundary-sparse.
    assert len(strata["inside-fase"]) > 100


def test_exhaustive_covers_every_cycle_within_budget():
    profile = RunProfile(total_cycles=50)
    plan = ExhaustivePlanner().plan(profile, budget=100,
                                    rng=random.Random(0))
    assert plan == list(range(1, 50))


def test_exhaustive_combs_evenly_over_budget():
    profile = RunProfile(total_cycles=10_000)
    plan = ExhaustivePlanner().plan(profile, budget=100,
                                    rng=random.Random(0))
    assert len(plan) <= 100
    assert plan == sorted(set(plan))
    assert plan[-1] == 9999
    gaps = [b - a for a, b in zip(plan, plan[1:])]
    assert max(gaps) - min(gaps) <= 1  # evenly spaced


def test_stratified_is_deterministic_and_budgeted():
    profile = make_profile()
    plan_a = StratifiedPlanner().plan(profile, 6, random.Random("seed"))
    plan_b = StratifiedPlanner().plan(profile, 6, random.Random("seed"))
    assert plan_a == plan_b
    assert len(plan_a) <= 6
    assert all(1 <= cycle < 1000 for cycle in plan_a)


def test_stratified_samples_every_nonempty_stratum():
    profile = make_profile()
    plan = StratifiedPlanner().plan(profile, 9, random.Random(1))
    strata = profile.stratum_cycles()
    for name, cycles in strata.items():
        assert set(plan) & set(cycles), f"stratum {name} unsampled"


def test_stratified_donates_budget_from_small_strata():
    """The drain stratum has one candidate; its unused share must flow
    to the bigger strata instead of shrinking the plan."""
    profile = make_profile()
    plan = StratifiedPlanner().plan(profile, 9, random.Random(2))
    assert len(plan) == 9  # all nine boundaries fit a budget of nine


def test_adaptive_without_failures_matches_stratified():
    profile = make_profile()
    adaptive = AdaptivePlanner().plan(profile, 6, random.Random("x"))
    stratified = StratifiedPlanner().plan(profile, 6, random.Random("x"))
    assert adaptive == stratified


def test_adaptive_clusters_around_failures():
    profile = make_profile()
    plan = AdaptivePlanner().plan(profile, 20, random.Random(3),
                                  failures=[760])
    near = [c for c in plan if abs(c - 760) <= FAILURE_HALO]
    assert len(near) >= 5


def test_planner_by_name_rejects_unknown():
    with pytest.raises(KeyError):
        planner_by_name("clairvoyant")
    assert planner_by_name("stratified").name == "stratified"
