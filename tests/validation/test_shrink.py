"""Shrinking a failing crash cycle to a minimal reproducer."""

from repro.validation import shrink_crash_cycle


def counting(predicate):
    calls = []

    def fails(cycle):
        calls.append(cycle)
        return predicate(cycle)

    fails.calls = calls
    return fails


def test_monotone_failure_shrinks_to_threshold():
    """If every cycle >= 50 fails, bisection must land exactly on 50."""
    fails = counting(lambda cycle: cycle >= 50)
    result = shrink_crash_cycle(fails, failing_cycle=473)
    assert result.minimal_cycle == 50
    assert result.reduced
    assert result.original_cycle == 473


def test_isolated_failure_returns_itself():
    """A single failing cycle with passing neighbors cannot be reduced;
    the original witness must survive shrinking."""
    fails = counting(lambda cycle: cycle == 137)
    result = shrink_crash_cycle(fails, failing_cycle=137)
    assert result.minimal_cycle == 137
    assert not result.reduced


def test_nonmonotone_failure_returns_a_witnessed_failure():
    """With scattered failing cycles the result must still be a cycle
    the predicate actually failed on, never an untested guess."""
    failing = {30, 137, 400}
    fails = counting(lambda cycle: cycle in failing)
    result = shrink_crash_cycle(fails, failing_cycle=400)
    assert result.minimal_cycle in failing
    assert result.minimal_cycle <= 400


def test_probe_budget_is_respected():
    fails = counting(lambda cycle: cycle >= 3)
    result = shrink_crash_cycle(fails, failing_cycle=1_000_000,
                                max_trials=10)
    assert len(fails.calls) <= 10
    assert result.trials == len(fails.calls)


def test_trusts_the_original_witness():
    """The failing cycle handed in was already observed failing; shrink
    must not spend a trial re-running it."""
    fails = counting(lambda cycle: cycle >= 50)
    shrink_crash_cycle(fails, failing_cycle=473)
    assert 473 not in fails.calls


def test_result_serialises():
    fails = counting(lambda cycle: cycle >= 5)
    payload = shrink_crash_cycle(fails, failing_cycle=20).to_dict()
    assert payload["minimal_cycle"] == 5
    assert {"original_cycle", "trials", "reduced"} <= set(payload)
