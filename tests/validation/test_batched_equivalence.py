"""Batched-vs-serial campaign equivalence (the tentpole invariant).

Cell-affine batching with resident warm systems changes *where* trials
run and *what they cost* -- never what they produce.  This suite pins
that down three ways: every trial dict byte-identical between
:func:`run_trial` and :func:`run_trial_batch`, whole
:class:`CampaignReport` JSON (minus timing/stats) byte-identical across
``jobs=1`` / pooled trial-at-a-time / batched execution, and the
damaged-store fixture degrading both paths to the same cold outcome
with a structured ``cold_fallback`` event.
"""

import json
from dataclasses import replace

import pytest

from repro.harness import ParallelExecutor
from repro.obsv.bus import EventBus, set_bus, validate_events
from repro.snapshot import SnapshotStore
from repro.validation.campaign import (TrialSpec, _CAPTURED_PAYLOADS,
                                       _RESIDENT_CELLS,
                                       _cell_index_name, profile_cell,
                                       run_campaign, run_trial,
                                       run_trial_batch)

GRID = dict(planner="stratified", fault="torn-log", budget=5, seed=42,
            n_threads=2, fases_per_thread=6, snapshot_rungs=4)


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Resident systems and the store read cache persist per process;
    equivalence tests must not inherit another test's warm state."""
    _RESIDENT_CELLS.clear()
    _CAPTURED_PAYLOADS.clear()
    SnapshotStore.clear_read_cache()
    yield
    _RESIDENT_CELLS.clear()
    _CAPTURED_PAYLOADS.clear()
    SnapshotStore.clear_read_cache()
    set_bus(None)


@pytest.fixture
def warm_cell(tmp_path):
    spec = TrialSpec(workload="hashmap", design="PMEM-Spec", n_threads=2,
                     fases_per_thread=6, seed=11, snapshot_every=6,
                     snapshot_dir=str(tmp_path / "snaps"))
    return spec, profile_cell(spec)


def canonical(report):
    """Report JSON minus timing/stats and store-location params."""
    payload = report.to_dict()
    payload.pop("elapsed_s")
    payload.pop("obsv", None)
    payload["params"] = {k: v for k, v in payload["params"].items()
                        if k not in ("batch", "snapshot_dir")}
    for cell in payload["cells"]:
        for failure in cell["failures"]:
            failure["spec"] = {k: v for k, v in failure["spec"].items()
                              if k != "snapshot_dir"}
    return json.dumps(payload, sort_keys=True)


class TestTrialDictEquivalence:
    def test_batch_equals_serial_per_trial(self, warm_cell):
        spec, profile = warm_cell
        step = max(1, profile.total_cycles // 6)
        specs = [replace(spec, crash_cycle=cycle)
                 for cycle in range(1, profile.total_cycles, step)]
        specs.append(specs[len(specs) // 2])   # resident-LRU repeat
        assert run_trial_batch(specs) == [run_trial(s) for s in specs]

    def test_batch_mixed_cells(self, warm_cell, tmp_path):
        spec_a, profile = warm_cell
        spec_b = TrialSpec(workload="queue", design="IntelX86",
                           n_threads=2, fases_per_thread=6, seed=11)
        crash = profile.total_cycles // 2
        specs = [replace(spec_a, crash_cycle=crash),
                 replace(spec_b, crash_cycle=2000),
                 replace(spec_a, crash_cycle=crash + 1)]
        assert run_trial_batch(specs) == [run_trial(s) for s in specs]

    def test_no_snapshot_cell_is_served_cold(self):
        spec = TrialSpec(workload="queue", design="PMEM-Spec",
                         n_threads=2, fases_per_thread=6, seed=7)
        specs = [replace(spec, crash_cycle=c) for c in (500, 1500, 500)]
        outcomes = run_trial_batch(specs)
        assert outcomes == [run_trial(s) for s in specs]
        assert all(o["restored_from_cycle"] is None for o in outcomes)


def run_modes(tmp_path, **overrides):
    kw = dict(GRID)
    kw.update(overrides)
    reports = {}
    for mode, (executor, batch) in {
            "serial": (None, 0),
            "pooled": (ParallelExecutor(jobs=2), 0),
            "batched-serial": (ParallelExecutor(jobs=1), 3),
            "batched-pool": (ParallelExecutor(jobs=2), 3)}.items():
        _RESIDENT_CELLS.clear()
        _CAPTURED_PAYLOADS.clear()
        reports[mode] = run_campaign(
            ["hashmap"], ["PMEM-Spec", "IntelX86"],
            snapshot_dir=str(tmp_path / mode), executor=executor,
            batch=batch, **kw)
    return reports


class TestCampaignReportEquivalence:
    def test_reports_byte_identical_across_modes(self, tmp_path):
        reports = run_modes(tmp_path)
        reference = canonical(reports["serial"])
        assert reports["serial"].total_trials > 0
        assert reports["serial"].total_failures > 0  # torn-log bites
        for mode, report in reports.items():
            assert canonical(report) == reference, mode

    def test_batched_records_batch_param(self, tmp_path):
        report = run_campaign(
            ["queue"], ["PMEM-Spec"], planner="stratified",
            fault="power-cut", budget=3, seed=42, n_threads=2,
            fases_per_thread=6, shrink=False,
            executor=ParallelExecutor(jobs=1), batch=2)
        assert report.params["batch"] == 2


class TestDamagedStoreFallback:
    def _damage(self, spec):
        store = SnapshotStore(spec.snapshot_dir)
        for rung in store.load_index(_cell_index_name(spec)):
            path = store._object_path(rung["key"])
            with open(path, "r+b") as handle:
                handle.truncate(16)
        SnapshotStore.clear_read_cache()

    def test_batched_damage_equals_serial_damage(self, warm_cell):
        spec, profile = warm_cell
        crash = profile.total_cycles // 2
        self._damage(spec)
        specs = [replace(spec, crash_cycle=crash),
                 replace(spec, crash_cycle=crash + 1)]
        serial = [run_trial(s) for s in specs]
        _RESIDENT_CELLS.clear()
        batched = run_trial_batch(specs)
        assert batched == serial
        assert all(o["restored_from_cycle"] is None for o in batched)

    def test_cold_fallback_emits_structured_event(self, warm_cell):
        spec, profile = warm_cell
        self._damage(spec)
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        set_bus(bus)
        run_trial(replace(spec, crash_cycle=profile.total_cycles // 2))
        assert validate_events(seen) == []
        falls = [e for e in seen if e["kind"] == "snapshot_restore"]
        assert len(falls) == 1
        assert falls[0]["outcome"] == "cold_fallback"
        assert falls[0]["rung_cycle"] is None
        assert "corrupt" in falls[0]["error"]

    def test_batched_cold_fallback_emits_event_too(self, warm_cell):
        spec, profile = warm_cell
        self._damage(spec)
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        set_bus(bus)
        run_trial_batch([replace(spec,
                                 crash_cycle=profile.total_cycles // 2)])
        falls = [e for e in seen if e.get("outcome") == "cold_fallback"]
        assert len(falls) == 1


class TestRestoreSourceEvents:
    def test_batched_trials_attribute_their_restores(self, warm_cell):
        spec, profile = warm_cell
        crash = profile.total_cycles // 2
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        set_bus(bus)
        run_trial_batch([replace(spec, crash_cycle=crash),
                         replace(spec, crash_cycle=crash),   # LRU hit
                         replace(spec, crash_cycle=1)])      # pre-rung
        sources = [e["source"] for e in seen
                   if e["kind"] == "snapshot_restore"]
        assert sources == ["store", "resident", "cold"]

    def test_batched_campaign_never_rereads_its_own_rungs(self, tmp_path):
        """The zero-re-read path: a batched campaign profiles, captures,
        and then serves every warm trial from the seeded in-process
        payloads -- no trial ever reads back a rung the profiling run
        just wrote."""
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        set_bus(bus)
        run_campaign(["hashmap"], ["PMEM-Spec"],
                     snapshot_dir=str(tmp_path / "seeded"), batch=3,
                     **GRID)
        sources = [e["source"] for e in seen
                   if e["kind"] == "snapshot_restore"
                   and "source" in e]
        assert "store" not in sources
        assert "resident" in sources
