"""Campaign engine: trials, profiling, fault injection, shrinking, and
the report artifact -- including the deliberate-bug acceptance fixture
(a torn undo log must be caught, shrunk, and named in the report)."""

import json

import pytest

from repro.validation import (
    DEFAULT_FAULTS,
    CampaignReport,
    TrialSpec,
    fault_by_name,
    profile_cell,
    run_campaign,
    run_trial,
)

CELL = dict(workload="array_swaps", design="PMEM-Spec")


def test_trial_spec_validates_names():
    with pytest.raises(ValueError):
        TrialSpec(workload="nope", design="PMEM-Spec")
    with pytest.raises(ValueError):
        TrialSpec(workload="array_swaps", design="PMEM-Speculative")
    with pytest.raises(ValueError):
        TrialSpec(workload="array_swaps", design="PMEM-Spec",
                  fault="gamma-ray")


@pytest.mark.parametrize("fault", DEFAULT_FAULTS)
def test_default_faults_keep_recovery_consistent(fault):
    """Every stock fault model, injected mid-run, must recover clean:
    these are the campaign's steady-state expectation."""
    outcome = run_trial(TrialSpec(fault=fault, crash_cycle=900, **CELL))
    assert outcome["consistent"], outcome["violations"]
    assert outcome["history_events"] > 0
    assert outcome["spec"]["fault"] == fault


def test_virtual_misspec_runs_to_completion():
    """A misspeculation is a *virtual* power failure (§4.4): the machine
    stays on and the runtime's abort/retry carries the run to a clean
    finish, so the horizon extends past the injection cycle."""
    outcome = run_trial(TrialSpec(fault="virtual-misspec",
                                  crash_cycle=900, **CELL))
    assert outcome["consistent"]
    assert outcome["horizon"] > 900


def test_profile_cell_exposes_run_structure():
    profile = profile_cell(TrialSpec(**CELL))
    assert profile.total_cycles > 0
    assert profile.fase_intervals and profile.commit_cycles
    assert profile.issue_end <= profile.total_cycles
    assert profile.persist_cycles == sorted(set(profile.persist_cycles))
    assert profile.persist_cycles[-1] <= profile.total_cycles


def test_fault_registry_round_trips():
    for name in DEFAULT_FAULTS + ("torn-log",):
        assert fault_by_name(name).name == name
    with pytest.raises(KeyError):
        fault_by_name("cosmic")


def test_power_cut_campaign_is_clean():
    report = run_campaign(["queue"], ["IntelX86", "PMEM-Spec"],
                          planner="stratified", budget=8, shrink=True)
    assert report.consistent
    assert report.total_trials > 0
    assert report.violation_kinds() == []
    rows = report.rows()
    assert {row["design"] for row in rows} == {"IntelX86", "PMEM-Spec"}
    assert all(row["failures"] == 0 for row in rows)


def test_campaigns_are_reproducible():
    kwargs = dict(planner="stratified", budget=6, shrink=False)
    first = run_campaign(["array_swaps"], ["PMEM-Spec"], **kwargs)
    second = run_campaign(["array_swaps"], ["PMEM-Spec"], **kwargs)
    crash_cycles = lambda report: [  # noqa: E731
        failure["crash_cycle"] for cell in report.cells
        for failure in cell["failures"]]
    assert first.total_trials == second.total_trials
    assert crash_cycles(first) == crash_cycles(second)
    assert first.cells[0]["trials"] == second.cells[0]["trials"]


def test_torn_log_campaign_catches_shrinks_and_names_the_bug():
    """The acceptance fixture: a deliberately torn undo log (newest live
    entry dropped from the snapshot) must produce failing trials, a
    shrunk minimal crash cycle, and a machine-readable report naming the
    violated invariant."""
    report = run_campaign(["array_swaps"], ["PMEM-Spec"],
                          planner="stratified", fault="torn-log",
                          budget=40, shrink=True)
    assert not report.consistent
    assert "structural" in report.violation_kinds()

    (cell,) = report.cells
    assert cell["failures"]
    failure = cell["failures"][0]
    assert any("dropped undo-log entry" in note
               for note in failure["fault_notes"])

    shrunk = cell["shrink"]
    assert shrunk is not None
    assert 1 <= shrunk["minimal_cycle"] <= shrunk["original_cycle"]
    assert shrunk["minimal_violations"]
    assert shrunk["minimal_violations"][0]["kind"] == "structural"

    # The artifact is machine-readable end to end.
    payload = json.loads(report.to_json())
    assert payload["schema_version"] == report.schema_version
    assert payload["consistent"] is False
    assert payload["violation_kinds"] == ["structural"]
    assert payload["cells"][0]["shrink"]["minimal_cycle"] == \
        shrunk["minimal_cycle"]


def test_adaptive_planner_refines_around_failures():
    """Round two of an adaptive torn-log campaign samples the failing
    neighborhoods, so it finds at least as many failures as stratified
    did with the same budget."""
    stratified = run_campaign(["array_swaps"], ["PMEM-Spec"],
                              planner="stratified", fault="torn-log",
                              budget=30, shrink=False)
    adaptive = run_campaign(["array_swaps"], ["PMEM-Spec"],
                            planner="adaptive", fault="torn-log",
                            budget=30, shrink=False)
    assert adaptive.total_failures >= stratified.total_failures
    assert adaptive.total_failures > 0


def test_report_rows_and_save(tmp_path):
    report = CampaignReport(
        params={"planner": "stratified"},
        cells=[{"workload": "queue", "design": "HOPS", "fault": "power-cut",
                "total_cycles": 100, "trials": 3, "failures": [],
                "violation_kinds": [], "shrink": None}])
    (row,) = report.rows()
    assert row["violation_kinds"] == "-"
    assert row["minimal_cycle"] is None
    path = report.save(str(tmp_path / "report.json"))
    assert json.loads(open(path).read())["total_trials"] == 3
