"""Unit tests for the DES kernel."""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Event,
    Interrupted,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5)
        log.append(env.now)
        yield env.timeout(7)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5, 12]


def test_zero_timeout_runs_same_time():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(0)
        seen.append(env.now)

    env.process(proc())
    env.run()
    assert seen == [0]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_event_value_passes_to_process():
    env = Environment()
    gate = env.event()
    got = []

    def waiter():
        value = yield gate
        got.append((env.now, value))

    def poker():
        yield env.timeout(3)
        gate.succeed("hello")

    env.process(waiter())
    env.process(poker())
    env.run()
    assert got == [(3, "hello")]


def test_event_double_trigger_is_error():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_value_before_trigger_is_error():
    env = Environment()
    gate = env.event()
    with pytest.raises(SimulationError):
        _ = gate.value


def test_process_return_value_becomes_event_value():
    env = Environment()
    results = []

    def child():
        yield env.timeout(2)
        return 42

    def parent():
        value = yield env.process(child())
        results.append((env.now, value))

    env.process(parent())
    env.run()
    assert results == [(2, 42)]


def test_all_of_waits_for_slowest():
    env = Environment()
    done = []

    def parent():
        values = yield env.all_of([env.timeout(3), env.timeout(9), env.timeout(1)])
        done.append((env.now, len(values)))

    env.process(parent())
    env.run()
    assert done == [(9, 3)]


def test_all_of_empty_fires_immediately():
    env = Environment()
    joined = AllOf(env, [])
    env.run()
    assert joined.triggered and joined.value == []


def test_any_of_fires_on_first():
    env = Environment()
    done = []

    def parent():
        yield env.any_of([env.timeout(5), env.timeout(2)])
        done.append(env.now)

    env.process(parent())
    env.run()
    assert done == [2]


def test_run_until_stops_clock_at_bound():
    env = Environment()

    def proc():
        yield env.timeout(100)

    env.process(proc())
    final = env.run(until=30)
    assert final == 30
    assert env.now == 30


def test_run_with_stop_event():
    env = Environment()
    stop = env.event()
    trace = []

    def proc():
        for _ in range(10):
            yield env.timeout(10)
            trace.append(env.now)
            if env.now == 30:
                stop.succeed()

    env.process(proc())
    env.run(stop_event=stop)
    assert trace[-1] == 30


def test_call_at_runs_callback():
    env = Environment()
    fired = []
    env.call_at(17, lambda: fired.append(env.now))

    def proc():
        yield env.timeout(50)

    env.process(proc())
    env.run()
    assert fired == [17]


def test_call_at_past_rejected():
    env = Environment()

    def proc():
        yield env.timeout(10)

    env.process(proc())
    env.run()
    with pytest.raises(SimulationError):
        env.call_at(5, lambda: None)


def test_fifo_order_for_simultaneous_events():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in "abc":
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_interrupt_delivers_exception():
    env = Environment()
    caught = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupted as exc:
            caught.append((env.now, exc.reason))
            yield env.timeout(1)

    def attacker(proc):
        yield env.timeout(4)
        proc.interrupt("abort")

    victim_proc = env.process(victim())
    env.process(attacker(victim_proc))
    env.run()
    assert caught == [(4, "abort")]


def test_yielding_non_event_is_error():
    env = Environment()

    def bad():
        yield 17

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_peek_reports_next_event_time():
    env = Environment()

    def proc():
        yield env.timeout(8)

    env.process(proc())
    # The process start marker is scheduled at time 0 first.
    assert env.peek() == 0
    env.step()
    assert env.peek() == 8


def test_many_processes_independent_clocks():
    env = Environment()
    finish = {}

    def proc(pid, delay):
        yield env.timeout(delay)
        finish[pid] = env.now

    for pid in range(50):
        env.process(proc(pid, pid * 3))
    env.run()
    assert finish == {pid: pid * 3 for pid in range(50)}


def test_any_of_retains_children():
    env = Environment()
    first, second = env.timeout(5), env.timeout(2)
    race = env.any_of([first, second])
    assert race.children == [first, second]
    env.run()
    # Children survive the trigger (mirrors AllOf).
    assert race.children == [first, second]


def test_any_of_exposes_first_fired():
    env = Environment()
    slow, fast = env.timeout(5), env.timeout(2)
    race = env.any_of([slow, fast])
    assert race.first_fired is None
    env.run()
    assert race.first_fired is fast
    assert race.triggered


def test_any_of_first_fired_value_matches():
    env = Environment()
    manual = env.event()
    timeout = env.timeout(50)
    race = env.any_of([manual, timeout])

    def trigger():
        yield env.timeout(1)
        manual.succeed("winner")

    env.process(trigger())
    env.run()
    assert race.first_fired is manual
    assert race.value == "winner"


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.any_of([])


def test_all_of_retains_children():
    env = Environment()
    a, b = env.timeout(1), env.timeout(2)
    joined = env.all_of([a, b])
    assert joined.children == [a, b]
    env.run()
    assert joined.children == [a, b]
