"""Unit and property tests for statistics containers."""

import math
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Counter, Histogram, RunningStat, geomean


class TestCounter:
    def test_default_zero(self):
        c = Counter()
        assert c["missing"] == 0
        assert "missing" not in c

    def test_add_and_read(self):
        c = Counter()
        c.add("loads")
        c.add("loads", 4)
        assert c["loads"] == 5
        assert "loads" in c

    def test_merge(self):
        a, b = Counter(), Counter()
        a.add("x", 2)
        b.add("x", 3)
        b.add("y", 1)
        a.merge(b)
        assert a.as_dict() == {"x": 5, "y": 1}

    def test_repr_sorted(self):
        c = Counter()
        c.add("b")
        c.add("a")
        assert repr(c) == "Counter(a=1, b=1)"


class TestRunningStat:
    def test_empty(self):
        s = RunningStat()
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_known_values(self):
        s = RunningStat()
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            s.record(v)
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.0)
        assert s.minimum == 2.0
        assert s.maximum == 9.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    def test_matches_statistics_module(self, values):
        s = RunningStat()
        for v in values:
            s.record(v)
        assert s.mean == pytest.approx(statistics.fmean(values), abs=1e-6)
        assert s.count == len(values)


class TestHistogram:
    def test_bucketing(self):
        h = Histogram(bucket_width=10, max_buckets=4)
        for v in [0, 5, 15, 100]:
            h.record(v)
        assert h.buckets[0] == 2
        assert h.buckets[1] == 1
        assert h.overflow == 1
        assert h.count == 4

    def test_percentile_midpoint(self):
        h = Histogram(bucket_width=10, max_buckets=10)
        for _ in range(100):
            h.record(12)
        assert h.percentile(0.5) == pytest.approx(15.0)

    def test_percentile_bounds_checked(self):
        h = Histogram(bucket_width=1)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_empty_percentile_zero(self):
        assert Histogram(bucket_width=1).percentile(0.9) == 0.0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            Histogram(bucket_width=0)


class TestGeomean:
    def test_known(self):
        assert geomean([1, 4, 16]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=50))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1,
                    max_size=20), st.floats(min_value=0.1, max_value=10.0))
    def test_scale_invariance(self, values, k):
        scaled = geomean([v * k for v in values])
        assert scaled == pytest.approx(geomean(values) * k, rel=1e-6)

    def test_log_identity(self):
        values = [2.0, 8.0, 32.0]
        assert math.log(geomean(values)) == pytest.approx(
            sum(math.log(v) for v in values) / 3)


class TestHistogramOverflowPercentile:
    """Regression: percentile() must account for overflow records.

    Overflow records are part of ``count`` but live past the last
    bucket; a rank landing in that mass must report the stream maximum,
    not whatever the bucket scan falls back to, and low fractions must
    not report an *empty* leading bucket's midpoint."""

    def test_rank_in_overflow_reports_maximum(self):
        h = Histogram(bucket_width=10, max_buckets=4)
        for v in [5, 15, 25]:
            h.record(v)
        for v in [100, 200, 300]:  # overflow (>= 40)
            h.record(v)
        # p99 of 6 records: rank 5.94 > 3 in-range records.
        assert h.percentile(0.99) == 300
        assert h.percentile(0.75) == 300
        # Ranks inside the bucketed range still use midpoints
        # (rank 3 of 6 is the third in-range record, bucket 2).
        assert h.percentile(0.5) == pytest.approx(25.0)
        assert h.percentile(1 / 6) == pytest.approx(5.0)

    def test_all_overflow(self):
        h = Histogram(bucket_width=1, max_buckets=2)
        for v in [10, 20, 30]:
            h.record(v)
        assert h.percentile(0.5) == 30
        assert h.percentile(0.99) == 30

    def test_low_fraction_skips_empty_leading_buckets(self):
        h = Histogram(bucket_width=10, max_buckets=10)
        for _ in range(10):
            h.record(55)  # bucket 5 only
        # fraction=0 -> target rank 0: first populated bucket, not
        # bucket 0's midpoint.
        assert h.percentile(0.0) == pytest.approx(55.0)
        assert h.percentile(0.1) == pytest.approx(55.0)

    def test_no_overflow_unchanged(self):
        h = Histogram(bucket_width=10, max_buckets=10)
        for v in [5, 15, 25, 35]:
            h.record(v)
        assert h.percentile(1.0) == pytest.approx(35.0)
        assert h.percentile(0.25) == pytest.approx(5.0)

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                    max_size=60),
           st.floats(min_value=0.0, max_value=1.0))
    def test_percentile_never_exceeds_maximum(self, values, fraction):
        h = Histogram(bucket_width=10, max_buckets=4)
        for v in values:
            h.record(v)
        p = h.percentile(fraction)
        # Midpoint approximation can round up by at most half a bucket.
        assert p <= max(values) + h.bucket_width / 2
