"""Windowed metrics collector unit tests."""

import pytest

from repro.harness.sweep import RunSpec, execute_spec
from repro.sim import (
    Metrics,
    MetricsCollector,
    NULL_METRICS,
    NullMetrics,
)


class TestNullMetrics:
    def test_disabled(self):
        assert Metrics.enabled is False
        assert NullMetrics.enabled is False
        assert NULL_METRICS.enabled is False

    def test_methods_are_noops(self):
        NULL_METRICS.sample("x", 1, 2.0)
        NULL_METRICS.count("x", 1)


class TestMetricsCollector:
    def test_enabled(self):
        assert MetricsCollector().enabled is True

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(window_cycles=0)
        with pytest.raises(ValueError):
            MetricsCollector(max_windows=0)

    def test_gauge_window_aggregation(self):
        m = MetricsCollector(window_cycles=100)
        m.sample("depth", 10, 4)
        m.sample("depth", 90, 8)
        m.sample("depth", 150, 2)
        windows = m.windows("depth")
        assert len(windows) == 2
        first, second = windows
        assert first["start"] == 0
        assert first["n"] == 2
        assert first["mean"] == pytest.approx(6.0)
        assert first["min"] == 4 and first["max"] == 8
        assert second["start"] == 100
        assert second["mean"] == pytest.approx(2.0)

    def test_count_windows(self):
        m = MetricsCollector(window_cycles=50)
        m.count("misspec", 10)
        m.count("misspec", 20, amount=2)
        m.count("misspec", 60)
        windows = m.windows("misspec")
        assert [w["count"] for w in windows] == [3, 1]
        assert [w["start"] for w in windows] == [0, 50]

    def test_kind_conflict_rejected(self):
        m = MetricsCollector()
        m.sample("x", 1, 1.0)
        with pytest.raises(ValueError):
            m.count("x", 2)

    def test_ring_buffer_evicts_oldest(self):
        m = MetricsCollector(window_cycles=10, max_windows=3)
        for cycle in range(0, 60, 10):  # six windows
            m.sample("g", cycle, cycle)
        windows = m.windows("g")
        # 3 closed (ring) + the open current window.
        assert len(windows) == 4
        assert windows[0]["start"] == 20
        assert m.to_dict()["series"]["g"]["evicted_windows"] == 2

    def test_unknown_series_empty(self):
        assert MetricsCollector().windows("nope") == []

    def test_to_dict_shape(self):
        m = MetricsCollector(window_cycles=10)
        m.sample("gauge_series", 5, 1.0)
        m.count("count_series", 5)
        payload = m.to_dict()
        assert payload["window_cycles"] == 10
        assert set(payload["series"]) == {"gauge_series", "count_series"}
        assert payload["series"]["gauge_series"]["kind"] == "gauge"
        assert payload["series"]["count_series"]["kind"] == "count"

    def test_series_names_sorted(self):
        m = MetricsCollector()
        m.sample("zeta", 1, 1)
        m.sample("alpha", 1, 1)
        assert m.series_names == ["alpha", "zeta"]


class TestCollectedSimulation:
    def test_run_folds_timeseries_into_result(self):
        metrics = MetricsCollector(window_cycles=5000)
        result = execute_spec(
            RunSpec(benchmark="array_swaps", design="PMEM-Spec",
                    n_threads=2, fases_per_thread=30, seed=7),
            metrics=metrics)
        assert result.timeseries is not None
        series = result.timeseries["series"]
        assert "persist_path_depth" in series
        assert "wpq_depth" in series
        assert "spec_buffer_occupancy" in series
        # Serialises: the payload is part of to_dict() under schema v3.
        payload = result.to_dict()
        assert payload["schema_version"] == 3
        assert payload["timeseries"] == result.timeseries

    def test_uncollected_run_has_no_timeseries(self):
        result = execute_spec(
            RunSpec(benchmark="array_swaps", design="PMEM-Spec",
                    n_threads=2, fases_per_thread=10, seed=7))
        assert result.timeseries is None

    def test_collection_does_not_change_timing(self):
        spec = RunSpec(benchmark="queue", design="PMEM-Spec",
                       n_threads=2, fases_per_thread=20, seed=11)
        plain = execute_spec(spec)
        collected = execute_spec(spec, metrics=MetricsCollector())
        assert collected.cycles == plain.cycles

    def test_misspeculation_counts_match_series(self):
        from repro.workloads import LoadMisspecProbe
        metrics = MetricsCollector(window_cycles=5000)
        result = execute_spec(
            RunSpec(benchmark=LoadMisspecProbe.name, design="PMEM-Spec",
                    n_threads=2, fases_per_thread=10, seed=42,
                    config=LoadMisspecProbe.recommended_config(2, True)),
            metrics=metrics)
        assert result.load_misspeculations >= 1
        series = result.timeseries["series"]["misspeculations"]
        assert series["kind"] == "count"
        total = sum(w["count"] for w in series["windows"])
        assert total == result.misspeculations
