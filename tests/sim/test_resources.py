"""Unit tests for Mutex, TimelineResource, CapacityQueue."""

import pytest

from repro.sim import CapacityQueue, Environment, Mutex, TimelineResource


class TestMutex:
    def test_uncontended_acquire_immediate(self):
        env = Environment()
        lock = Mutex(env)
        grants = []

        def proc():
            yield lock.acquire("t0")
            grants.append(env.now)
            lock.release("t0")

        env.process(proc())
        env.run()
        assert grants == [0]
        assert not lock.locked

    def test_fifo_handoff(self):
        env = Environment()
        lock = Mutex(env)
        order = []

        def proc(tid, hold):
            yield lock.acquire(tid)
            order.append((tid, env.now))
            yield env.timeout(hold)
            lock.release(tid)

        env.process(proc("a", 10))
        env.process(proc("b", 5))
        env.process(proc("c", 1))
        env.run()
        assert order == [("a", 0), ("b", 10), ("c", 15)]

    def test_release_unlocked_raises(self):
        env = Environment()
        lock = Mutex(env)
        with pytest.raises(RuntimeError):
            lock.release()

    def test_contention_counters(self):
        env = Environment()
        lock = Mutex(env)

        def proc(tid):
            yield lock.acquire(tid)
            yield env.timeout(2)
            lock.release(tid)

        for tid in range(4):
            env.process(proc(tid))
        env.run()
        assert lock.acquisitions == 4
        assert lock.contended_acquisitions == 3

    def test_queue_length_visible(self):
        env = Environment()
        lock = Mutex(env)
        lock.acquire("holder")
        lock.acquire("w1")
        lock.acquire("w2")
        assert lock.queue_length == 2


class TestTimelineResource:
    def test_serial_unit_serialises(self):
        res = TimelineResource(width=1)
        s1, f1 = res.reserve(0, 10)
        s2, f2 = res.reserve(0, 10)
        assert (s1, f1) == (0, 10)
        assert (s2, f2) == (10, 20)

    def test_idle_unit_starts_at_now(self):
        res = TimelineResource()
        res.reserve(0, 5)
        start, finish = res.reserve(100, 5)
        assert (start, finish) == (100, 105)

    def test_width_allows_parallel_service(self):
        res = TimelineResource(width=2)
        assert res.reserve(0, 10)[0] == 0
        assert res.reserve(0, 10)[0] == 0
        assert res.reserve(0, 10)[0] == 10

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            TimelineResource().reserve(0, -1)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            TimelineResource(width=0)

    def test_wait_accounting(self):
        res = TimelineResource()
        res.reserve(0, 10)
        res.reserve(0, 10)
        assert res.total_wait == 10
        assert res.total_requests == 2
        assert res.total_busy == 20

    def test_utilization(self):
        res = TimelineResource()
        res.reserve(0, 50)
        assert res.utilization(100) == pytest.approx(0.5)
        assert res.utilization(0) == 0.0


class TestCapacityQueue:
    def test_accepts_until_full_without_stall(self):
        q = CapacityQueue(capacity=4, drain_latency=100)
        for _ in range(4):
            accept, _finish = q.push(0)
            assert accept == 0

    def test_backpressure_when_full(self):
        q = CapacityQueue(capacity=2, drain_latency=100)
        q.push(0)   # drains at 100
        q.push(0)   # drains at 200 (serial drain)
        accept, _ = q.push(0)
        assert accept == 100
        assert q.stalled_pushes == 1
        assert q.total_stall == 100

    def test_entries_freed_over_time(self):
        q = CapacityQueue(capacity=1, drain_latency=10)
        q.push(0)
        assert q.occupancy(5) == 1
        assert q.occupancy(10) == 0
        accept, _ = q.push(20)
        assert accept == 20

    def test_wide_drain_parallelism(self):
        q = CapacityQueue(capacity=8, drain_latency=10, width=4)
        finishes = [q.push(0)[1] for _ in range(8)]
        assert sorted(finishes) == [10, 10, 10, 10, 20, 20, 20, 20]

    def test_drain_complete_time(self):
        q = CapacityQueue(capacity=8, drain_latency=10)
        q.push(0)
        q.push(0)
        q.push(0)
        assert q.drain_complete_time(0) == 30
        assert q.drain_complete_time(35) == 35

    def test_admission_time_when_empty(self):
        q = CapacityQueue(capacity=2, drain_latency=10)
        assert q.admission_time(7) == 7

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CapacityQueue(capacity=0, drain_latency=1)

    def test_custom_service_time(self):
        q = CapacityQueue(capacity=2, drain_latency=10)
        _, finish = q.push(0, service=25)
        assert finish == 25


class TestOccupancyQueue:
    def make(self, capacity=4):
        from repro.sim.resources import OccupancyQueue
        return OccupancyQueue(capacity=capacity)

    def test_admits_until_full(self):
        q = self.make(capacity=2)
        assert q.push(0, completion=100) == 0
        assert q.push(0, completion=200) == 0

    def test_full_queue_waits_for_oldest_completion(self):
        q = self.make(capacity=2)
        q.push(0, completion=100)
        q.push(0, completion=200)
        assert q.push(0, completion=300) == 100
        assert q.stalled_pushes == 1
        assert q.total_stall == 100

    def test_entries_complete_independently(self):
        """No head-of-line blocking: a long entry must not delay short
        ones (the store-queue feedback-loop regression)."""
        q = self.make(capacity=3)
        q.push(0, completion=1_000_000)
        assert q.push(1, completion=5) == 1
        assert q.push(2, completion=6) == 2
        # Queue full: the OLDEST completion (5) gates admission.
        assert q.push(3, completion=7) == 5

    def test_occupancy_decays(self):
        q = self.make()
        q.push(0, completion=10)
        q.push(0, completion=20)
        assert q.occupancy(5) == 2
        assert q.occupancy(15) == 1
        assert q.occupancy(25) == 0

    def test_drain_complete_time(self):
        q = self.make()
        q.push(0, completion=10)
        q.push(0, completion=50)
        assert q.drain_complete_time(0) == 50
        assert q.drain_complete_time(60) == 60

    def test_completion_never_before_push(self):
        q = self.make()
        q.push(100, completion=50)  # clamped to now
        assert q.drain_complete_time(99) == 100

    def test_invalid_capacity(self):
        import pytest
        from repro.sim.resources import OccupancyQueue
        with pytest.raises(ValueError):
            OccupancyQueue(capacity=0)
