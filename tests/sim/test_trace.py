"""Tracer unit tests: recording, export schema, overhead, determinism."""

import json
import time

import pytest

from repro.harness.sweep import RunSpec, execute_spec
from repro.sim import (
    NULL_TRACER,
    NullTracer,
    TraceRecorder,
    Tracer,
    validate_trace_document,
)


class TestNullTracer:
    def test_disabled(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is False

    def test_methods_are_noops(self):
        NULL_TRACER.instant("t", "x", 1)
        NULL_TRACER.complete("t", "x", 1, 2)
        NULL_TRACER.counter("t", "x", 1, 3.0)


class TestTraceRecorder:
    def test_enabled(self):
        assert TraceRecorder().enabled is True

    def test_records_and_counts(self):
        t = TraceRecorder()
        t.instant("a", "tick", 10)
        t.complete("a", "span", 20, 5)
        t.counter("b", "depth", 30, 7)
        assert len(t) == 3
        assert t.tracks == ["a", "b"]

    def test_track_ids_stable(self):
        t = TraceRecorder()
        assert t.track_id("x") == 0
        assert t.track_id("y") == 1
        assert t.track_id("x") == 0

    def test_max_events_drops(self):
        t = TraceRecorder(max_events=2)
        for i in range(5):
            t.instant("a", "tick", i)
        assert len(t) == 2
        assert t.dropped == 3
        assert t.to_dict()["otherData"]["dropped_events"] == 3

    def test_cycles_convert_to_microseconds(self):
        t = TraceRecorder(cycle_ns=0.5)
        t.complete("a", "span", 2000, 4000)  # 1 us in, 2 us long
        events = [e for e in t.to_dict()["traceEvents"] if e["ph"] == "X"]
        assert events[0]["ts"] == pytest.approx(1.0)
        assert events[0]["dur"] == pytest.approx(2.0)

    def test_export_passes_schema_check(self):
        t = TraceRecorder()
        t.instant("spec-buffer", "Evict->Speculated", 5,
                  args={"block": 3})
        t.complete("persist-path", "persist", 1, 9,
                   args={"core": 0})
        t.counter("pmc", "wpq", 4, 2)
        document = t.to_dict()
        assert validate_trace_document(document) == []
        # Metadata rows label every track.
        names = {e["args"]["name"] for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"spec-buffer", "persist-path", "pmc"}

    def test_instant_has_scope(self):
        t = TraceRecorder()
        t.instant("a", "x", 1)
        instants = [e for e in t.to_dict()["traceEvents"]
                    if e["ph"] == "i"]
        assert instants[0]["s"] == "t"

    def test_save_round_trips(self, tmp_path):
        t = TraceRecorder()
        t.instant("a", "x", 1)
        path = t.save(str(tmp_path / "trace.json"))
        loaded = json.loads(open(path).read())
        assert validate_trace_document(loaded) == []

    def test_validation_rejects_garbage(self):
        assert validate_trace_document([]) != []
        assert validate_trace_document({}) != []
        bad = {"traceEvents": [{"ph": "X"}]}
        assert any("missing" in p for p in validate_trace_document(bad))


class TestTracedSimulation:
    """End-to-end: a misspeculating run emits the promised events."""

    @pytest.fixture(scope="class")
    def traced(self):
        from repro.workloads import LoadMisspecProbe
        spec = RunSpec(benchmark=LoadMisspecProbe.name, design="PMEM-Spec",
                       n_threads=2, fases_per_thread=10, seed=42,
                       config=LoadMisspecProbe.recommended_config(2, True))
        tracer = TraceRecorder()
        result = execute_spec(spec, tracer=tracer)
        return tracer, result

    def test_run_misspeculates(self, traced):
        _tracer, result = traced
        assert result.load_misspeculations >= 1

    def test_schema_valid(self, traced):
        tracer, _result = traced
        assert validate_trace_document(tracer.to_dict()) == []

    def test_persist_path_spans_present(self, traced):
        tracer, _result = traced
        spans = [e for e in tracer.to_dict()["traceEvents"]
                 if e["ph"] == "X" and e.get("cat") == "persist-path"]
        assert len(spans) >= 1
        assert all(e["dur"] > 0 for e in spans)

    def test_spec_buffer_transitions_present(self, traced):
        tracer, result = traced
        instants = [e["name"] for e in tracer.to_dict()["traceEvents"]
                    if e.get("cat") == "spec-buffer"]
        assert "Initial->Evict" in instants
        assert "Evict->Speculated" in instants
        misspecs = [n for n in instants if n.endswith("->Misspeculation")]
        assert len(misspecs) >= result.load_misspeculations

    def test_fase_lifecycle_present(self, traced):
        tracer, result = traced
        events = [e for e in tracer.to_dict()["traceEvents"]
                  if e.get("cat") == "fase"]
        commits = [e for e in events
                   if e.get("args", {}).get("outcome") == "commit"]
        aborts = [e for e in events
                  if e.get("args", {}).get("outcome") == "abort"]
        reexec = [e for e in events if e["name"] == "fase-re-execute"]
        assert len(commits) == result.fases_committed
        assert len(aborts) == result.fases_aborted
        assert len(reexec) == result.fases_aborted

    def test_per_core_tracks(self, traced):
        tracer, _result = traced
        assert "core0" in tracer.tracks
        assert "core1" in tracer.tracks
        assert "pmc" in tracer.tracks


class TestTracingIsPassive:
    """Tracing must observe timing, never change it."""

    SPEC = dict(benchmark="array_swaps", design="PMEM-Spec",
                n_threads=2, fases_per_thread=30, seed=7)

    def test_cycles_identical_with_and_without_tracing(self):
        plain = execute_spec(RunSpec(**self.SPEC))
        traced = execute_spec(RunSpec(**self.SPEC),
                              tracer=TraceRecorder())
        assert traced.cycles == plain.cycles
        assert traced.fases_committed == plain.fases_committed

    def test_disabled_path_overhead_within_noise(self):
        """The NullTracer run must not be meaningfully slower than ...
        itself; compared against a *recording* run it must be faster or
        within 5%.  Medians over repeats keep the check stable."""
        spec = RunSpec(**self.SPEC)

        def timed(tracer):
            samples = []
            for _ in range(3):
                start = time.perf_counter()
                execute_spec(spec, tracer=tracer)
                samples.append(time.perf_counter() - start)
            return sorted(samples)[1]

        timed(None)  # warm caches/JIT-free but warms allocator paths
        disabled = timed(None)
        enabled = timed(TraceRecorder())
        # Recording strictly does more work, so the disabled path must
        # come in at most 5% above it (i.e. the guard itself is noise).
        assert disabled <= enabled * 1.05
