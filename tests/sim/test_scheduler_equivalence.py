"""Scheduler A/B contract: heap and calendar fire identically.

The :mod:`repro.sim.engine` Scheduler protocol promises a total order
-- ascending cycle, FIFO among same-cycle entries -- regardless of the
queue implementation behind it.  These tests generate random event
programs (timeouts, manual events, interrupts, same-cycle ties,
``call_at`` callbacks) and assert the *exact* firing order matches
between :class:`HeapScheduler` and :class:`CalendarScheduler`, plus
the snapshot-facing invariants the ladder relies on.
"""

import random

import pytest

from repro.sim import (
    CalendarScheduler,
    Environment,
    HeapScheduler,
    Interrupted,
    SimulationError,
    make_scheduler,
)
from repro.snapshot.store import SnapshotError

SEEDS = [0, 1, 2, 3, 17, 99, 1234, 777777]


def random_program(env, rng, log):
    """Spawn a random mess of processes against ``env``.

    Every observable step appends ``(now, tag)`` to ``log``; two
    schedulers agree iff their logs are equal element-for-element.
    """
    gates = [env.event() for _ in range(rng.randint(1, 4))]
    interruptibles = []

    def worker(pid):
        try:
            for step in range(rng.randint(1, 6)):
                choice = rng.random()
                if choice < 0.45:
                    delay = rng.randint(0, 5)   # 0 => same-cycle tie
                    yield env.timeout(delay)
                    log.append((env.now, f"w{pid}.t{step}"))
                elif choice < 0.60:
                    gate = rng.choice(gates)
                    if not gate.triggered:
                        gate.succeed((pid, step))
                    log.append((env.now, f"w{pid}.g{step}"))
                    yield env.timeout(1)
                elif choice < 0.75:
                    when = env.now + rng.randint(0, 7)
                    env.call_at(
                        when,
                        lambda pid=pid, step=step:
                            log.append((env.now, f"w{pid}.c{step}")))
                    yield env.timeout(rng.randint(1, 3))
                else:
                    yield env.timeout(rng.randint(2, 9))
                    log.append((env.now, f"w{pid}.s{step}"))
        except Interrupted as exc:
            log.append((env.now, f"w{pid}.i{exc.reason}"))
        log.append((env.now, f"w{pid}.done"))
        return pid

    def waiter(wid, gate):
        value = yield gate
        log.append((env.now, f"g{wid}={value}"))

    def attacker(victims):
        yield env.timeout(rng.randint(1, 4))
        target = rng.choice(victims)
        if not target.triggered:
            target.interrupt(reason="x")
        log.append((env.now, "attack"))

    procs = [env.process(worker(pid))
             for pid in range(rng.randint(2, 6))]
    interruptibles.extend(procs)
    for wid, gate in enumerate(gates):
        env.process(waiter(wid, gate))
    env.process(attacker(interruptibles))
    # Unblock any waiter whose gate no worker happened to fire.
    def sweeper():
        yield env.timeout(100)
        for gate in gates:
            if not gate.triggered:
                gate.succeed(None)
    env.process(sweeper())


def run_program(scheduler, seed):
    env = Environment(scheduler=scheduler)
    log = []
    random_program(env, random.Random(seed), log)
    env.run()
    return log, env.now


@pytest.mark.parametrize("seed", SEEDS)
def test_random_programs_fire_identically(seed):
    heap_log, heap_end = run_program("heap", seed)
    cal_log, cal_end = run_program("calendar", seed)
    assert heap_log == cal_log
    assert heap_end == cal_end
    assert len(heap_log) > 0


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_same_cycle_fifo_is_insertion_order(scheduler):
    env = Environment(scheduler=scheduler)
    order = []

    def proc(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in "abcdef":
        env.process(proc(tag))
    env.call_at(5, lambda: order.append("cb"))
    env.run()
    # The callback is queued for cycle 5 immediately; the processes
    # only schedule their timeouts when their start markers fire at
    # cycle 0, so the callback is first in cycle 5's FIFO, then the
    # wakeups in process-start order.
    assert order == ["cb"] + list("abcdef")


def test_make_scheduler_accepts_names_and_instances():
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    assert isinstance(make_scheduler("calendar"), CalendarScheduler)
    assert isinstance(make_scheduler(None),
                      (HeapScheduler, CalendarScheduler))
    custom = CalendarScheduler()
    assert make_scheduler(custom) is custom
    with pytest.raises(SimulationError, match="unknown scheduler"):
        make_scheduler("splay-tree")


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_capture_refuses_non_empty_queue(scheduler):
    env = Environment(scheduler=scheduler)

    def proc():
        yield env.timeout(10)

    env.process(proc())
    env.run(until=5)
    with pytest.raises(SnapshotError, match="not empty"):
        env.capture_state()
    # After draining, capture is legal again.
    env.run()
    state = env.capture_state()
    assert state["now"] == 10


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_call_at_rearms_after_restore(scheduler):
    """Satellite: absolute-time callbacks must fire correctly in a
    restored run -- the calendar's drain cursor survives a full drain
    and must be cleared by ``restore_state``."""
    env = Environment(scheduler=scheduler)
    fired = []
    env.call_at(5, lambda: fired.append(env.now))
    env.run()
    assert fired == [5]
    state = env.capture_state()

    # Restore into an environment whose queue has already drained much
    # later cycles: a stale drain cursor would corrupt ordering.
    target = Environment(scheduler=scheduler)
    target.call_at(50, lambda: None)
    target.run()
    assert target.now == 50
    target.restore_state(state)
    assert target.now == 5
    refired = []
    target.call_at(12, lambda: refired.append(target.now))
    target.call_at(7, lambda: refired.append(target.now))
    target.run()
    assert refired == [7, 12]
    assert target.now == 12


def test_restored_env_keeps_sequence_continuity():
    """Restore carries the scheduling sequence number, so a restored
    run numbers subsequent events exactly as the original would."""
    env = Environment()
    env.call_at(3, lambda: None)
    env.run()
    state = env.capture_state()

    fresh = Environment()
    fresh.restore_state(state)
    assert fresh.capture_state() == state
