"""Telemetry: logger hierarchy, run context stamping, console output."""

import logging
import multiprocessing

import pytest

from repro.telemetry import (
    RunContextFilter,
    configure_logging,
    console,
    current_context,
    get_logger,
    run_context,
    seed_context,
)


class TestGetLogger:
    def test_prefixes_short_names(self):
        assert get_logger("harness").name == "repro.harness"

    def test_keeps_full_names(self):
        assert get_logger("repro.sim").name == "repro.sim"
        assert get_logger("repro").name == "repro"


class TestRunContext:
    def record(self):
        record = logging.LogRecord("repro.t", logging.INFO, __file__, 1,
                                   "msg", (), None)
        RunContextFilter().filter(record)
        return record

    def test_default_dashes(self):
        record = self.record()
        assert record.run_id == "-"
        assert record.spec_hash == "-"

    def test_context_stamps_records(self):
        with run_context(run_id="fig9", spec_hash="abc123"):
            record = self.record()
        assert record.run_id == "fig9"
        assert record.spec_hash == "abc123"

    def test_context_restores_on_exit(self):
        with run_context(run_id="outer"):
            with run_context(run_id="inner"):
                assert self.record().run_id == "inner"
            assert self.record().run_id == "outer"
        assert self.record().run_id == "-"

    def test_partial_context(self):
        with run_context(spec_hash="only-hash"):
            record = self.record()
        assert record.run_id == "-"
        assert record.spec_hash == "only-hash"


class TestConfigureLogging:
    def test_idempotent_handler_install(self):
        root = configure_logging(logging.INFO)
        configure_logging(logging.DEBUG)
        ours = [h for h in root.handlers
                if getattr(h, "_repro_telemetry", False)]
        assert len(ours) == 1
        assert root.level == logging.DEBUG

    def test_diagnostics_go_to_stderr_not_stdout(self, capsys):
        configure_logging(logging.INFO)
        get_logger("test").info("diagnostic line")
        captured = capsys.readouterr()
        assert "diagnostic line" not in captured.out
        assert "diagnostic line" in captured.err

    def test_format_includes_run_context(self, capsys):
        configure_logging(logging.INFO)
        with run_context(run_id="fig9", spec_hash="deadbeef"):
            get_logger("test").info("hello")
        assert "[fig9 deadbeef]" in capsys.readouterr().err


class TestConsole:
    def test_writes_to_stdout_at_call_time(self, capsys):
        console("data line")
        console()
        captured = capsys.readouterr()
        assert captured.out == "data line\n\n"
        assert captured.err == ""


class TestCurrentAndSeedContext:
    def test_current_context_reflects_scope(self):
        assert current_context() == {"run_id": "-", "spec_hash": "-"}
        with run_context(run_id="fig9"):
            assert current_context()["run_id"] == "fig9"

    def test_current_context_returns_a_copy(self):
        snapshot = current_context()
        snapshot["run_id"] = "mutated"
        assert current_context()["run_id"] == "-"

    def test_seed_context_ignores_unknown_keys(self):
        with run_context(run_id="base"):
            seed_context({"run_id": "seeded", "bogus": "nope"})
            record = logging.LogRecord("repro.t", logging.INFO,
                                       __file__, 1, "m", (), None)
            RunContextFilter().filter(record)
            assert record.run_id == "seeded"
            assert not hasattr(record, "bogus")


def _worker_probe(_arg):
    """Runs in a pool worker: report the ambient context a filtered
    log record sees there."""
    record = logging.LogRecord("repro.w", logging.INFO, __file__, 1,
                               "m", (), None)
    RunContextFilter().filter(record)
    return {"record_run_id": record.run_id,
            "record_spec_hash": record.spec_hash,
            "context": current_context()}


class TestContextUnderMultiprocessing:
    """The parent's run context must reach pool workers -- the
    propagation contract the sweep's worker initializer relies on."""

    def probe(self):
        context = multiprocessing.get_context()
        if context.get_start_method() != "fork":
            pytest.skip("context inheritance test needs fork workers")
        with context.Pool(processes=1, initializer=seed_context,
                          initargs=(current_context(),)) as pool:
            return pool.map(_worker_probe, [None])[0]

    def test_worker_records_carry_parent_context(self, capsys):
        with run_context(run_id="fig9", spec_hash="abc123"):
            probe = self.probe()
        assert probe["record_run_id"] == "fig9"
        assert probe["record_spec_hash"] == "abc123"
        assert probe["context"] == {"run_id": "fig9",
                                    "spec_hash": "abc123"}
        # capsys stays intact across the fork/join.
        console("after pool")
        assert capsys.readouterr().out == "after pool\n"

    def test_worker_defaults_without_scope(self):
        probe = self.probe()
        assert probe["record_run_id"] == "-"

    def test_sweep_worker_events_carry_parent_run_id(self):
        # End to end: a pooled sweep under run_context ships events
        # whose run_id is the parent's and whose spec_hash is the
        # worker's own (set per spec inside the worker).
        from repro.harness import ParallelExecutor, RunSpec
        from repro.obsv.bus import EventBus, set_bus
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        specs = [RunSpec(benchmark="queue", design="PMEM-Spec",
                         n_threads=2, fases_per_thread=2, seed=seed)
                 for seed in (1, 2)]
        try:
            with run_context(run_id="fig9-sweep"):
                ParallelExecutor(jobs=2, bus=bus).run(specs)
        finally:
            set_bus(None)
        parent_origin = seen[0]["origin"]
        shipped = [e for e in seen if e["origin"] != parent_origin]
        assert shipped, "no worker-side events were shipped"
        assert all(e["run_id"] == "fig9-sweep" for e in shipped)
        hashes = {e["spec_hash"] for e in shipped
                  if e["kind"] == "spec_start"}
        assert hashes == {spec.cache_key()[:12] for spec in specs}
