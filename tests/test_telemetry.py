"""Telemetry: logger hierarchy, run context stamping, console output."""

import logging

from repro.telemetry import (
    RunContextFilter,
    configure_logging,
    console,
    get_logger,
    run_context,
)


class TestGetLogger:
    def test_prefixes_short_names(self):
        assert get_logger("harness").name == "repro.harness"

    def test_keeps_full_names(self):
        assert get_logger("repro.sim").name == "repro.sim"
        assert get_logger("repro").name == "repro"


class TestRunContext:
    def record(self):
        record = logging.LogRecord("repro.t", logging.INFO, __file__, 1,
                                   "msg", (), None)
        RunContextFilter().filter(record)
        return record

    def test_default_dashes(self):
        record = self.record()
        assert record.run_id == "-"
        assert record.spec_hash == "-"

    def test_context_stamps_records(self):
        with run_context(run_id="fig9", spec_hash="abc123"):
            record = self.record()
        assert record.run_id == "fig9"
        assert record.spec_hash == "abc123"

    def test_context_restores_on_exit(self):
        with run_context(run_id="outer"):
            with run_context(run_id="inner"):
                assert self.record().run_id == "inner"
            assert self.record().run_id == "outer"
        assert self.record().run_id == "-"

    def test_partial_context(self):
        with run_context(spec_hash="only-hash"):
            record = self.record()
        assert record.run_id == "-"
        assert record.spec_hash == "only-hash"


class TestConfigureLogging:
    def test_idempotent_handler_install(self):
        root = configure_logging(logging.INFO)
        configure_logging(logging.DEBUG)
        ours = [h for h in root.handlers
                if getattr(h, "_repro_telemetry", False)]
        assert len(ours) == 1
        assert root.level == logging.DEBUG

    def test_diagnostics_go_to_stderr_not_stdout(self, capsys):
        configure_logging(logging.INFO)
        get_logger("test").info("diagnostic line")
        captured = capsys.readouterr()
        assert "diagnostic line" not in captured.out
        assert "diagnostic line" in captured.err

    def test_format_includes_run_context(self, capsys):
        configure_logging(logging.INFO)
        with run_context(run_id="fig9", spec_hash="deadbeef"):
            get_logger("test").info("hello")
        assert "[fig9 deadbeef]" in capsys.readouterr().err


class TestConsole:
    def test_writes_to_stdout_at_call_time(self, capsys):
        console("data line")
        console()
        captured = capsys.readouterr()
        assert captured.out == "data line\n\n"
        assert captured.err == ""
