"""Golden-string and edge-case tests for the ASCII report renderers."""

import pytest

from repro.harness.report import (
    format_bar_chart,
    format_normalized_table,
    format_series,
    format_timeseries,
    sparkline,
)


class TestFormatNormalizedTable:
    ROWS = {
        "tpcc": {"IntelX86": 1.0, "PMEM-Spec": 1.5},
        "queue": {"IntelX86": 1.0, "PMEM-Spec": 2.0},
    }

    def test_golden(self):
        out = format_normalized_table(self.ROWS, ["IntelX86", "PMEM-Spec"],
                                      "Title")
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert lines[2].split() == ["benchmark", "IntelX86", "PMEM-Spec"]
        assert lines[4].split() == ["tpcc", "1.000", "1.500"]
        assert lines[5].split() == ["queue", "1.000", "2.000"]
        # Geomean row: sqrt(1.5 * 2.0) = 1.732.
        assert lines[7].split() == ["geomean", "1.000", "1.732"]

    def test_column_alignment(self):
        out = format_normalized_table(self.ROWS, ["IntelX86"], "T")
        data_lines = [l for l in out.splitlines()
                      if l and l[0] not in "T=-"]
        assert len({len(l) for l in data_lines}) == 1


class TestFormatSeries:
    def test_scalar_values(self):
        out = format_series({8: 1.25, 16: 2.5}, "cores", "speedup", "S")
        assert "               8 | 1.250" in out
        assert "              16 | 2.500" in out
        assert out.splitlines()[2] == f"{'cores':>16} | speedup"

    def test_dict_values(self):
        out = format_series({"x": {"a": 1.0, "b": 2.0}}, "k", "v", "S")
        assert "a=1.000  b=2.000" in out

    def test_empty_points_render_header_only(self):
        out = format_series({}, "x", "y", "Empty")
        assert out.splitlines()[0] == "Empty"
        assert len(out.splitlines()) == 4


class TestFormatBarChart:
    def test_golden_proportions(self):
        out = format_bar_chart({"a": 1.0, "b": 2.0}, "Bars", width=10)
        lines = out.splitlines()
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 10

    def test_reference_tick(self):
        out = format_bar_chart({"a": 2.0}, "Bars", width=10, reference=1.0)
        bar_line = out.splitlines()[2]
        assert "|" in bar_line

    def test_reference_past_bar_padded(self):
        out = format_bar_chart({"short": 0.2, "long": 2.0}, "B",
                               width=10, reference=1.0)
        short_line = out.splitlines()[3 if "short" in
                                      out.splitlines()[3] else 2]
        assert "|" in short_line

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart({}, "nope")

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart({"a": 0.0}, "nope")


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series_lowest_tick(self):
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_monotone_ramp(self):
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out == "▁▂▃▄▅▆▇█"

    def test_downsamples_long_series(self):
        out = sparkline(list(range(1000)), width=20)
        assert len(out) == 20
        assert out[0] == "▁" and out[-1] == "█"

    def test_short_series_one_tick_per_value(self):
        assert len(sparkline([1, 2], width=60)) == 2

    def test_zero_width_clamped_not_crash(self):
        # Regression: width=0 with a longer series used to chunk into
        # an empty list and crash on min([]).
        assert sparkline([1, 2, 3], width=0) == "▁"

    def test_negative_width_clamped(self):
        assert sparkline([5, 9], width=-3) == "▁"

    def test_single_value(self):
        assert sparkline([7.0]) == "▁"

    def test_constant_long_series_no_zero_span_division(self):
        out = sparkline([4.2] * 500, width=30)
        assert out == "▁" * 30

    def test_empty_with_zero_width(self):
        assert sparkline([], width=0) == ""


class TestFormatTimeseries:
    PAYLOAD = {
        "window_cycles": 100,
        "series": {
            "depth": {"kind": "gauge", "evicted_windows": 0,
                      "windows": [
                          {"start": 0, "n": 2, "mean": 1.0,
                           "min": 0, "max": 2},
                          {"start": 100, "n": 1, "mean": 3.0,
                           "min": 3, "max": 3},
                      ]},
            "events": {"kind": "count", "evicted_windows": 2,
                       "windows": [{"start": 0, "count": 4}]},
        },
    }

    def test_renders_each_series(self):
        out = format_timeseries(self.PAYLOAD, "TS")
        assert "window: 100 cycles" in out
        assert "depth" in out and "events" in out
        assert "min=1 max=3" in out
        assert "(+2 evicted)" in out

    def test_empty_payload(self):
        out = format_timeseries({}, "TS")
        assert "no time-series data" in out
        out = format_timeseries(None, "TS")
        assert "no time-series data" in out

    def test_empty_series_window_list(self):
        out = format_timeseries(
            {"window_cycles": 10,
             "series": {"x": {"kind": "gauge", "windows": []}}}, "TS")
        assert "(empty)" in out

    def test_constant_series_renders_flat(self):
        out = format_timeseries(
            {"window_cycles": 10,
             "series": {"flat": {"kind": "gauge", "windows": [
                 {"start": 0, "mean": 2.0}, {"start": 10, "mean": 2.0},
             ]}}}, "TS")
        assert "▁▁" in out
        assert "min=2 max=2" in out

    def test_aggregate_evicted_line(self):
        out = format_timeseries(self.PAYLOAD, "TS")
        assert "ring buffer: 2 windows evicted across 2 series" in out

    def test_no_aggregate_line_without_evictions(self):
        payload = {"window_cycles": 10, "series": {
            "x": {"kind": "gauge", "evicted_windows": 0,
                  "windows": [{"start": 0, "mean": 1.0}]}}}
        assert "ring buffer" not in format_timeseries(payload, "TS")
