"""Tier-1 smoke test: the CLI end-to-end with --jobs and the cache.

Drives ``python -m repro.harness fig9`` at a tiny scale through the
parallel executor, saves the artifact, and checks it loads and diffs
clean against itself; a second run must be served from the result cache
and produce an identical artifact.
"""

from repro.harness import BENCHMARK_ORDER, diff_artifacts, load_artifact
from repro.harness.__main__ import main


def test_cli_fig9_parallel_save_and_cache(tmp_path, capsys):
    save_first = tmp_path / "artifacts-1"
    save_second = tmp_path / "artifacts-2"
    cache = tmp_path / "cache"
    base = ["fig9", "--scale", "0.1", "--threads", "2", "--seed", "3",
            "--jobs", "2", "--cache-dir", str(cache)]

    assert main(base + ["--save", str(save_first)]) == 0
    assert "Figure 9" in capsys.readouterr().out
    first = load_artifact(str(save_first / "fig9.json"))
    assert set(first["data"]) == set(BENCHMARK_ORDER)
    assert diff_artifacts(first, first) == []

    # One cache entry per grid cell was written.
    assert len(list(cache.glob("*.json"))) == len(BENCHMARK_ORDER) * 4

    # Second run: all cells come from the cache, artifact identical.
    assert main(base + ["--save", str(save_second)]) == 0
    second = load_artifact(str(save_second / "fig9.json"))
    assert diff_artifacts(first, second, tolerance=0.0) == []


def test_cli_no_cache_flag(tmp_path):
    save = tmp_path / "artifacts"
    assert main(["fig9", "--scale", "0.1", "--threads", "2", "--seed",
                 "3", "--no-cache", "--save", str(save)]) == 0
    assert (save / "fig9.json").exists()
    assert not list(tmp_path.glob("**/cache*"))


def test_cli_trace_writes_valid_chrome_trace(tmp_path, capsys):
    """Acceptance: the trace command emits schema-valid trace JSON."""
    import json

    from repro.sim import validate_trace_document

    out = tmp_path / "t.json"
    assert main(["trace", "array_swaps", "--design", "PMEMSpec",
                 "--trace-out", str(out)]) == 0
    assert "trace written to" in capsys.readouterr().out
    document = json.loads(out.read_text())
    assert validate_trace_document(document) == []
    spans = [e for e in document["traceEvents"]
             if e.get("ph") == "X" and e.get("cat") == "persist-path"]
    assert len(spans) >= 1


def test_cli_metrics_summary_sparklines(capsys):
    assert main(["metrics", "array_swaps", "--design", "PMEM-Spec",
                 "--threads", "2", "--summary",
                 "--metrics-window", "5000"]) == 0
    out = capsys.readouterr().out
    assert "Time series" in out
    assert "wpq_depth" in out


def test_cli_metrics_json(capsys):
    import json

    assert main(["metrics", "array_swaps", "--design", "PMEM-Spec",
                 "--threads", "2"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "series" in payload and "window_cycles" in payload


def test_cli_trace_unknown_benchmark_is_user_error(capsys):
    assert main(["trace", "not_a_benchmark"]) == 2


def test_cli_validate_clean_campaign(tmp_path, capsys):
    """A tiny power-cut campaign is consistent, exits 0, and writes the
    CampaignReport artifact."""
    import json

    out = tmp_path / "campaign.json"
    assert main(["validate", "--planner", "stratified", "--budget", "6",
                 "--benchmarks", "array_swaps", "--designs",
                 "IntelX86,PMEM-Spec", "--report-out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "Crash-consistency campaign" in printed
    assert "CONSISTENT" in printed
    payload = json.loads(out.read_text())
    assert payload["consistent"] is True
    assert payload["total_trials"] > 0


def test_cli_validate_exits_nonzero_on_violations(capsys):
    """The torn-log fault (the deliberate-bug fixture) must gate: the
    command exits 1 and the table names the violated invariant."""
    assert main(["validate", "--fault", "torn-log", "--budget", "40",
                 "--benchmarks", "array_swaps", "--designs", "PMEM-Spec",
                 "--no-shrink"]) == 1
    printed = capsys.readouterr().out
    assert "structural" in printed
    assert "FAILING" in printed
