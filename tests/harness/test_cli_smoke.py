"""Tier-1 smoke test: the CLI end-to-end with --jobs and the cache.

Drives ``python -m repro.harness fig9`` at a tiny scale through the
parallel executor, saves the artifact, and checks it loads and diffs
clean against itself; a second run must be served from the result cache
and produce an identical artifact.
"""

from repro.harness import BENCHMARK_ORDER, diff_artifacts, load_artifact
from repro.harness.__main__ import main


def test_cli_fig9_parallel_save_and_cache(tmp_path, capsys):
    save_first = tmp_path / "artifacts-1"
    save_second = tmp_path / "artifacts-2"
    cache = tmp_path / "cache"
    base = ["fig9", "--scale", "0.1", "--threads", "2", "--seed", "3",
            "--jobs", "2", "--cache-dir", str(cache)]

    assert main(base + ["--save", str(save_first)]) == 0
    assert "Figure 9" in capsys.readouterr().out
    first = load_artifact(str(save_first / "fig9.json"))
    assert set(first["data"]) == set(BENCHMARK_ORDER)
    assert diff_artifacts(first, first) == []

    # One cache entry per grid cell was written.
    assert len(list(cache.glob("*.json"))) == len(BENCHMARK_ORDER) * 4

    # Second run: all cells come from the cache, artifact identical.
    assert main(base + ["--save", str(save_second)]) == 0
    second = load_artifact(str(save_second / "fig9.json"))
    assert diff_artifacts(first, second, tolerance=0.0) == []


def test_cli_no_cache_flag(tmp_path):
    save = tmp_path / "artifacts"
    assert main(["fig9", "--scale", "0.1", "--threads", "2", "--seed",
                 "3", "--no-cache", "--save", str(save)]) == 0
    assert (save / "fig9.json").exists()
    assert not list(tmp_path.glob("**/cache*"))
