"""Tests for the declarative sweep API and the parallel executor."""

import json
import os

import pytest

import repro.harness.sweep as sweep_mod
from repro.config import table3_config
from repro.harness import (
    ParallelExecutor,
    RunSpec,
    Sweep,
    SweepError,
)
from repro.harness.sweep import _execute_spec
from repro.system import RESULT_SCHEMA_VERSION, SimResult
from repro.workloads import BENCHMARKS

SMALL_GRID = Sweep.grid(benchmarks=("tatp", "queue"),
                        designs=("IntelX86", "PMEM-Spec"),
                        n_threads=2, seeds=7, fases_per_thread=5)


@pytest.fixture(scope="module")
def one_result():
    return _execute_spec(RunSpec(benchmark="tatp", design="PMEM-Spec",
                                 n_threads=2, fases_per_thread=5, seed=7))


class TestRunSpecValidation:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            RunSpec(benchmark="nope", design="HOPS")

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError, match="unknown design"):
            RunSpec(benchmark="tatp", design="nope")

    def test_bad_modes_rejected(self):
        with pytest.raises(ValueError, match="recovery_mode"):
            RunSpec(benchmark="tatp", design="HOPS",
                    recovery_mode="sometimes")
        with pytest.raises(ValueError, match="log_mode"):
            RunSpec(benchmark="tatp", design="HOPS", log_mode="wal")

    def test_config_core_mismatch_rejected(self):
        """The old run_benchmark silently rewrote config.n_cores to
        n_threads; RunSpec refuses the mismatch instead."""
        with pytest.raises(ValueError, match="never rewrites"):
            RunSpec(benchmark="tatp", design="HOPS", n_threads=2,
                    config=table3_config(n_cores=4))

    def test_explicit_core_override_accepted(self):
        spec = RunSpec(benchmark="tatp", design="HOPS", n_threads=2,
                       config=table3_config(n_cores=4),
                       config_overrides={"n_cores": 2})
        assert spec.resolved_config().n_cores == 2

    def test_probes_are_runnable(self):
        spec = RunSpec(benchmark="load_misspec_probe", design="PMEM-Spec",
                       n_threads=2)
        assert spec.resolved_fases() > 0


class TestRunSpecResolution:
    def test_default_fases_come_from_workload(self):
        spec = RunSpec(benchmark="tatp", design="HOPS", n_threads=2)
        assert spec.resolved_fases() == BENCHMARKS["tatp"].default_fases

    def test_overrides_apply_to_resolved_config(self):
        spec = RunSpec(benchmark="tatp", design="HOPS", n_threads=2,
                       config_overrides={"spec_buffer_entries": 16})
        assert spec.resolved_config().spec_buffer_entries == 16

    def test_cache_key_ignores_label(self):
        a = RunSpec(benchmark="tatp", design="HOPS", n_threads=2,
                    label="x")
        b = RunSpec(benchmark="tatp", design="HOPS", n_threads=2,
                    label="y")
        assert a.cache_key() == b.cache_key()

    def test_cache_key_tracks_config(self):
        a = RunSpec(benchmark="tatp", design="HOPS", n_threads=2)
        b = RunSpec(benchmark="tatp", design="HOPS", n_threads=2,
                    config_overrides={"persist_path_ns": 40.0})
        assert a.cache_key() != b.cache_key()

    def test_spec_round_trips_through_dict(self):
        spec = RunSpec(benchmark="tatp", design="HOPS", n_threads=2,
                       config_overrides={"spec_buffer_entries": 8},
                       core_extra_cycles=(0, 100), label="t")
        again = RunSpec.from_dict(spec.to_dict())
        assert again.cache_key() == spec.cache_key()
        assert again.core_extra_cycles == (0, 100)


class TestSweepGrid:
    def test_cartesian_order_is_deterministic(self):
        sweep = Sweep.grid(benchmarks=("tatp", "queue"),
                           designs=("HOPS",), n_threads=2, seeds=(1, 2))
        keys = [(s.benchmark, s.seed) for s in sweep]
        assert keys == [("tatp", 1), ("tatp", 2),
                        ("queue", 1), ("queue", 2)]

    def test_thread_counts_outermost(self):
        sweep = Sweep.grid(benchmarks=("tatp",), designs=("HOPS",),
                           n_threads=(2, 4))
        assert [s.n_threads for s in sweep] == [2, 4]

    def test_per_benchmark_fases_mapping(self):
        sweep = Sweep.grid(benchmarks=("tatp", "queue"),
                           designs=("HOPS",), n_threads=2,
                           fases_per_thread={"tatp": 7})
        by_bench = {s.benchmark: s for s in sweep}
        assert by_bench["tatp"].resolved_fases() == 7
        assert (by_bench["queue"].resolved_fases()
                == BENCHMARKS["queue"].default_fases)

    def test_concat(self):
        sweep = SMALL_GRID + SMALL_GRID
        assert len(sweep) == 2 * len(SMALL_GRID)


class TestResultSchema:
    def test_to_dict_is_versioned(self, one_result):
        payload = one_result.to_dict()
        assert payload["schema_version"] == RESULT_SCHEMA_VERSION
        assert payload["freq_ghz"] == one_result.freq_ghz

    def test_json_round_trip_is_lossless(self, one_result):
        payload = json.loads(json.dumps(one_result.to_dict()))
        again = SimResult.from_dict(payload)
        assert again.to_dict() == one_result.to_dict()
        assert again.throughput == one_result.throughput

    def test_v1_payload_still_loads(self, one_result):
        payload = one_result.to_dict()
        for legacy_missing in ("schema_version", "freq_ghz", "seconds",
                               "throughput"):
            payload.pop(legacy_missing)
        again = SimResult.from_dict(payload)
        assert again.cycles == one_result.cycles
        assert again.freq_ghz == 2.0

    def test_executor_stats_excluded_from_payload(self, one_result):
        one_result.stats["executor"] = {"elapsed_s": 1.23, "cache_hit": 0}
        try:
            assert "executor" not in one_result.to_dict()["stats"]
        finally:
            del one_result.stats["executor"]


class TestExecutor:
    def test_parallel_matches_serial_bit_for_bit(self):
        serial = ParallelExecutor(jobs=1).run(SMALL_GRID)
        parallel = ParallelExecutor(jobs=4).run(SMALL_GRID)
        assert [r.to_dict() for r in serial.results] == \
            [r.to_dict() for r in parallel.results]
        assert serial.specs == parallel.specs

    def test_single_spec_accepted(self):
        spec = SMALL_GRID[0]
        done = ParallelExecutor(jobs=1).run(spec)
        assert len(done) == 1
        assert done[0].workload == spec.benchmark

    def test_timing_stats_attached(self):
        done = ParallelExecutor(jobs=1).run(SMALL_GRID)
        for _, result in done:
            info = result.stats["executor"]
            assert info["cache_hit"] == 0
            assert info["elapsed_s"] >= 0.0

    def test_progress_callback_fires_per_spec(self):
        lines = []
        ParallelExecutor(jobs=1, progress=lines.append).run(SMALL_GRID)
        assert len(lines) == len(SMALL_GRID)
        assert f"[{len(SMALL_GRID)}/{len(SMALL_GRID)}]" in lines[-1]


class TestCache:
    def test_second_run_served_entirely_from_cache(self, tmp_path):
        executor = ParallelExecutor(jobs=1, cache_dir=str(tmp_path))
        first = executor.run(SMALL_GRID)
        assert first.stats["cache_hits"] == 0
        second = executor.run(SMALL_GRID)
        assert second.stats["cache_hits"] == len(SMALL_GRID)
        assert second.stats["cache_misses"] == 0
        assert [r.to_dict() for r in second.results] == \
            [r.to_dict() for r in first.results]
        assert all(r.stats["executor"]["cache_hit"] == 1
                   for r in second.results)

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        ParallelExecutor(jobs=4, cache_dir=str(tmp_path)).run(SMALL_GRID)
        done = ParallelExecutor(jobs=1,
                                cache_dir=str(tmp_path)).run(SMALL_GRID)
        assert done.stats["cache_hits"] == len(SMALL_GRID)

    def test_corrupt_cache_entry_is_recomputed(self, tmp_path):
        executor = ParallelExecutor(jobs=1, cache_dir=str(tmp_path))
        executor.run(SMALL_GRID)
        victim = os.path.join(str(tmp_path),
                              f"{SMALL_GRID[0].cache_key()}.json")
        with open(victim, "w") as handle:
            handle.write("{not json")
        done = executor.run(SMALL_GRID)
        assert done.stats["cache_hits"] == len(SMALL_GRID) - 1
        assert done[0].fases_committed > 0


class TestFailureHandling:
    def test_worker_failure_falls_back_to_serial(self, monkeypatch):
        """A spec whose *worker* dies is retried serially in the parent
        (fork children see the patched module; the parent pid check
        keeps the serial retry healthy)."""
        parent = os.getpid()
        real = _execute_spec

        def flaky(spec):
            if os.getpid() != parent:
                raise RuntimeError("worker crashed")
            return real(spec)

        monkeypatch.setattr(sweep_mod, "_execute_spec", flaky)
        done = ParallelExecutor(jobs=2).run(SMALL_GRID)
        assert done.stats["retries"] == len(SMALL_GRID)
        assert all(r.fases_committed > 0 for r in done.results)
        assert all(r.stats["executor"]["retried"] == 1
                   for r in done.results)

    def test_deterministic_failure_surfaces_spec_and_traceback(
            self, monkeypatch):
        def broken(spec):
            raise RuntimeError("always broken")

        monkeypatch.setattr(sweep_mod, "_execute_spec", broken)
        with pytest.raises(SweepError) as excinfo:
            ParallelExecutor(jobs=2).run(SMALL_GRID)
        message = str(excinfo.value)
        assert "always broken" in message
        assert "worker traceback" in message
        assert excinfo.value.spec in list(SMALL_GRID)

    def test_serial_failure_surfaces_too(self, monkeypatch):
        def broken(spec):
            raise RuntimeError("always broken")

        monkeypatch.setattr(sweep_mod, "_execute_spec", broken)
        with pytest.raises(SweepError, match="always broken"):
            ParallelExecutor(jobs=1).run(SMALL_GRID)


class TestShimRemoval:
    def test_legacy_drivers_are_gone(self):
        """The PR 1 deprecation shims had one release of warnings and
        are now deleted outright, not silently aliased."""
        import repro.harness as harness
        for name in ("run_benchmark", "compare_designs",
                     "full_comparison"):
            assert not hasattr(harness, name)
            assert name not in harness.__all__
