"""ParallelExecutor.map_batched: grouping, ordering, events, failure
handling.  The batched fan-out must be a drop-in for ``map`` apart from
how work is shipped: same results, same order, per-chunk retry."""

import pytest

from repro.harness import ParallelExecutor
from repro.obsv.bus import EventBus, set_bus, validate_events


def double_all(chunk):
    return [2 * item for item in chunk]


def parity(item):
    return item % 2


def boom_on_odd_batch(chunk):
    if any(item % 2 for item in chunk):
        raise RuntimeError("odd batch")
    return list(chunk)


def wrong_length(chunk):
    return list(chunk)[:-1]


@pytest.fixture(autouse=True)
def _restore_current_bus():
    yield
    set_bus(None)


def observed_bus():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    return bus, seen


class TestResults:
    def test_results_in_input_order(self):
        executor = ParallelExecutor(jobs=1)
        items = [5, 2, 9, 4, 7, 0]  # parity-interleaved on purpose
        assert executor.map_batched(double_all, items, key=parity) == \
            [10, 4, 18, 8, 14, 0]

    def test_pool_matches_serial(self):
        items = list(range(23))
        serial = ParallelExecutor(jobs=1).map_batched(
            double_all, items, key=parity, chunk_size=4)
        pooled = ParallelExecutor(jobs=2).map_batched(
            double_all, items, key=parity, chunk_size=4)
        assert serial == pooled == [2 * n for n in items]

    def test_no_key_single_group(self):
        executor = ParallelExecutor(jobs=1)
        assert executor.map_batched(double_all, [1, 2, 3]) == [2, 4, 6]

    def test_empty_items(self):
        assert ParallelExecutor(jobs=1).map_batched(double_all, []) == []

    def test_wrong_result_length_raises(self):
        with pytest.raises(RuntimeError, match="2-item batch"):
            ParallelExecutor(jobs=1).map_batched(wrong_length, [1, 2])


class TestChunking:
    def test_chunk_size_bounds_batches(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=1, bus=bus)
        executor.map_batched(double_all, list(range(10)), chunk_size=4)
        sizes = [e["size"] for e in seen if e["kind"] == "batch_finish"]
        assert sizes == [4, 4, 2]

    def test_groups_never_share_a_chunk(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=1, bus=bus)
        items = [0, 1, 0, 1, 0]
        executor.map_batched(double_all, items, key=parity)
        sizes = sorted(e["size"] for e in seen
                       if e["kind"] == "batch_finish")
        assert sizes == [2, 3]


class TestEvents:
    def test_serial_emits_batch_finish_only(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=1, bus=bus)
        executor.map_batched(double_all, list(range(6)), chunk_size=3,
                             describe=lambda chunk: f"x{len(chunk)}")
        assert validate_events(seen) == []
        finishes = [e for e in seen if e["kind"] == "batch_finish"]
        assert [e["label"] for e in finishes] == ["x3", "x3"]
        assert all(e["source"] == "serial" for e in finishes)

    def test_pool_ships_batch_start_from_workers(self):
        bus, seen = observed_bus()
        executor = ParallelExecutor(jobs=2, bus=bus)
        executor.map_batched(double_all, list(range(8)), chunk_size=2)
        assert validate_events(seen) == []
        starts = [e for e in seen if e["kind"] == "batch_start"]
        finishes = [e for e in seen if e["kind"] == "batch_finish"]
        assert len(starts) == 4 and len(finishes) == 4
        parent_origin = finishes[0]["origin"]
        assert any(e["origin"] != parent_origin for e in starts)

    def test_progress_counts_batches(self):
        lines = []
        executor = ParallelExecutor(jobs=1, progress=lines.append)
        executor.map_batched(double_all, list(range(6)), chunk_size=2)
        assert len(lines) == 3
        assert lines[-1].startswith("[3/3]")


class TestFailureHandling:
    def test_worker_failure_retries_chunk_serially(self):
        # boom_on_odd_batch fails in the pool *and* in the parent, so
        # the error must surface with the worker traceback attached.
        executor = ParallelExecutor(jobs=2)
        with pytest.raises(RuntimeError, match="failed in the worker and in serial retry"):
            executor.map_batched(boom_on_odd_batch, [1, 3, 2, 4],
                                 key=parity, chunk_size=2)

    def test_serial_failure_propagates(self):
        executor = ParallelExecutor(jobs=1)
        with pytest.raises(RuntimeError, match="odd batch"):
            executor.map_batched(boom_on_odd_batch, [1, 3])
