"""Unit tests for experiment artifact save/load/diff."""

import math

import pytest

from repro.harness import diff_artifacts, load_artifact, save_artifact


def doc(data, name="fig9"):
    return {"experiment": name, "meta": {}, "data": data}


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        payload = {"queue": {"PMEM-Spec": 1.4, "DPO": 0.9}}
        path = save_artifact(str(tmp_path), "fig9", payload,
                             meta={"scale": 0.5})
        loaded = load_artifact(path)
        assert loaded["experiment"] == "fig9"
        assert loaded["data"]["queue"]["PMEM-Spec"] == 1.4
        assert loaded["meta"]["scale"] == 0.5

    def test_non_string_keys_normalised(self, tmp_path):
        path = save_artifact(str(tmp_path), "fig11", {1: 0.9, 16: 1.0})
        loaded = load_artifact(path)
        assert loaded["data"] == {"1": 0.9, "16": 1.0}

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_artifact(str(path))


class TestDiff:
    def test_unchanged_within_tolerance(self):
        old = doc({"a": {"x": 1.00}})
        new = doc({"a": {"x": 1.01}})
        assert diff_artifacts(old, new, tolerance=0.02) == []

    def test_moved_leaf_reported(self):
        old = doc({"a": {"x": 1.0}})
        new = doc({"a": {"x": 1.2}})
        moved = diff_artifacts(old, new, tolerance=0.02)
        assert moved == [("a/x", 1.0, 1.2)]

    def test_missing_leaf_reported_as_nan(self):
        old = doc({"a": {"x": 1.0, "y": 2.0}})
        new = doc({"a": {"x": 1.0}})
        moved = diff_artifacts(old, new)
        assert len(moved) == 1
        path, before, after = moved[0]
        assert path == "a/y" and before == 2.0 and math.isnan(after)

    def test_different_experiments_rejected(self):
        with pytest.raises(ValueError):
            diff_artifacts(doc({}, "fig9"), doc({}, "fig10"))


class TestCLISave:
    def test_fig9_save_flag(self, tmp_path, capsys):
        from repro.harness.__main__ import main
        assert main(["fig9", "--scale", "0.1", "--threads", "2",
                     "--seed", "3", "--save", str(tmp_path)]) == 0
        saved = list(tmp_path.glob("fig9.json"))
        assert len(saved) == 1
        loaded = load_artifact(str(saved[0]))
        assert "queue" in loaded["data"]
