"""Tests for the experiment harness: runners, experiments, reports, CLI."""

import pytest

from repro.harness import (
    BENCHMARK_ORDER,
    DESIGNS,
    ParallelExecutor,
    RunSpec,
    Sweep,
    figure9,
    figure10_summary,
    figure11,
    figure12,
    format_misspec_table,
    format_normalized_table,
    format_series,
    format_table3,
    lazy_vs_eager_recovery,
    misspeculation_rates,
    normalized_throughput,
    table3_rows,
)
from repro.harness.__main__ import main

FAST = dict(scale=0.2, seed=7)


def run_by_design(benchmark, designs=DESIGNS, **spec_kwargs):
    """One benchmark under several designs, keyed by design name."""
    sweep = Sweep([RunSpec(benchmark=benchmark, design=design,
                           **spec_kwargs)
                   for design in designs], name="by-design")
    return {spec.design: result
            for spec, result in ParallelExecutor(jobs=1).run(sweep)}


class TestRunner:
    def test_single_spec_returns_result(self):
        result = ParallelExecutor(jobs=1).run(
            RunSpec(benchmark="tatp", design="PMEM-Spec", n_threads=2,
                    fases_per_thread=5))[0]
        assert result.design == "PMEM-Spec"
        assert result.workload == "tatp"
        assert result.fases_committed == 10

    def test_sweep_by_design_same_workload(self):
        results = run_by_design("queue", n_threads=2, fases_per_thread=5)
        committed = {r.fases_committed for r in results.values()}
        assert committed == {10}

    def test_normalized_throughput_baseline_is_one(self):
        results = run_by_design("queue", n_threads=2, fases_per_thread=5)
        normalized = normalized_throughput(results)
        assert normalized["IntelX86"] == pytest.approx(1.0)
        assert set(normalized) == set(DESIGNS)


class TestExperiments:
    def test_figure9_covers_grid(self):
        rows = figure9(n_threads=2, benchmarks=("tatp", "queue"), **FAST)
        assert set(rows) == {"tatp", "queue"}
        for values in rows.values():
            assert set(values) == set(DESIGNS)

    def test_figure10_summary_geomeans(self):
        rows = {4: {"a": {"IntelX86": 1.0, "PMEM-Spec": 1.2},
                    "b": {"IntelX86": 1.0, "PMEM-Spec": 1.3}}}
        summary = figure10_summary(rows)
        assert summary[4]["IntelX86"] == pytest.approx(1.0)
        assert summary[4]["PMEM-Spec"] == pytest.approx(
            (1.2 * 1.3) ** 0.5)

    def test_figure11_normalised_to_largest(self):
        series = figure11(buffer_sizes=(1, 16), n_threads=2,
                          benchmarks=("hashmap",), **FAST)
        assert series[16] == pytest.approx(1.0)
        assert 0 < series[1] <= 1.1

    def test_figure12_tracks_both_designs(self):
        series = figure12(latencies_ns=(20,), n_threads=2,
                          benchmarks=("tatp",), **FAST)
        assert set(series[20]) == {"HOPS", "PMEM-Spec"}

    def test_misspeculation_rates_shape(self):
        rows = misspeculation_rates(n_threads=2, **FAST)
        names = [row["workload"] for row in rows]
        for benchmark in BENCHMARK_ORDER:
            assert benchmark in names
        benchmark_rows = [r for r in rows if r["config"] == "table3"]
        assert all(r["load_misspec"] == 0 and r["store_misspec"] == 0
                   for r in benchmark_rows)
        probe_rows = {(r["workload"], r["config"]): r for r in rows}
        assert probe_rows[("load_misspec_probe", "125x path")][
            "load_misspec"] > 0
        assert probe_rows[("load_misspec_probe", "20ns path")][
            "load_misspec"] == 0
        assert probe_rows[("store_misspec_probe", "congested ring")][
            "store_misspec"] > 0

    def test_lazy_vs_eager(self):
        out = lazy_vs_eager_recovery(**FAST)
        assert set(out) == {"lazy", "eager"}
        for stats in out.values():
            assert stats["commits"] > 0


class TestReports:
    def test_table3_format_matches_paper_values(self):
        text = format_table3()
        assert "2GHz, 8way-OoO" in text
        assert "Read = 175ns/Write = 94ns" in text
        assert "4-entry speculation buffer" in text
        assert "Persist-Path" in text

    def test_table3_rows_structure(self):
        rows = table3_rows()
        assert rows[0][0] == "Core"

    def test_normalized_table_has_geomean(self):
        rows = {"x": {"A": 1.0, "B": 2.0}, "y": {"A": 1.0, "B": 0.5}}
        text = format_normalized_table(rows, ("A", "B"), "T")
        assert "geomean" in text
        assert "1.000" in text

    def test_series_scalar_and_dict(self):
        assert "1.500" in format_series({1: 1.5}, "x", "y", "t")
        assert "a=1.000" in format_series({1: {"a": 1.0}}, "x", "y", "t")

    def test_misspec_table(self):
        rows = [{"workload": "w", "config": "c", "load_misspec": 1,
                 "store_misspec": 2, "stale_loads": 3, "aborts": 4,
                 "commits": 5}]
        text = format_misspec_table(rows, "T")
        assert "w" in text and "5" in text


class TestCLI:
    def test_table3_command(self, capsys):
        assert main(["table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_fig9_tiny(self, capsys):
        assert main(["fig9", "--scale", "0.1", "--threads", "2",
                     "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "geomean" in out


class TestExtensionExperiments:
    def test_figure2_annotation_burden(self):
        from repro.harness import figure2_annotation_burden
        rows = figure2_annotation_burden(benchmarks=("queue",))
        row = rows["queue"]
        # The paper's programmability ordering: x86 heaviest, strand
        # heavy (strands are programmer-denoted), PMEM-Spec exactly one.
        assert row["pmemspec"] == 1.0
        assert row["x86"] > row["hops"] > row["pmemspec"]
        assert row["strand"] > row["pmemspec"]

    def test_undo_vs_redo_ablation(self):
        from repro.harness import undo_vs_redo_ablation
        out = undo_vs_redo_ablation(n_threads=2, scale=0.2, seed=5,
                                    benchmarks=("hashmap",),
                                    designs=("PMEM-Spec",))
        row = out["hashmap"]
        assert row["PMEM-Spec/undo"] > 0
        assert row["PMEM-Spec/redo"] > 0
        assert row["PMEM-Spec_redo_speedup"] > 0.5

    def test_cli_fig2(self, capsys):
        assert main(["fig2"]) == 0
        assert "Figure 2" in capsys.readouterr().out


class TestBarChart:
    def test_bars_scale_and_reference_tick(self):
        from repro.harness import format_bar_chart
        text = format_bar_chart({"A": 1.0, "B": 2.0}, "T", width=20,
                                reference=1.0)
        lines = text.splitlines()
        assert lines[0] == "T"
        bar_a = lines[2]
        bar_b = lines[3]
        assert bar_b.count("#") > bar_a.count("#")
        assert "|" in bar_a or "|" in bar_b

    def test_empty_rejected(self):
        import pytest
        from repro.harness import format_bar_chart
        with pytest.raises(ValueError):
            format_bar_chart({}, "T")

    def test_nonpositive_rejected(self):
        import pytest
        from repro.harness import format_bar_chart
        with pytest.raises(ValueError):
            format_bar_chart({"A": 0.0}, "T")


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "--benchmark", "tatp", "--design", "HOPS",
                     "--threads", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "misspeculations" in out

    def test_run_json(self, capsys):
        import json
        assert main(["run", "--benchmark", "queue", "--design",
                     "PMEM-Spec", "--threads", "2", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["workload"] == "queue"
