"""Property tests: the persistent red-black tree against a set oracle.

The RB-tree workload generates real tree mutations; these tests drive
the same :class:`_TreeView` machinery with hypothesis-chosen operation
sequences and check, after *every* operation, that (a) the tree contains
exactly the oracle's keys, (b) every red-black invariant holds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.rbtree import (
    BLACK,
    COLOR,
    KEY,
    LEFT,
    NIL,
    RED,
    RIGHT,
    PARENT,
    RBTree,
    _SilentRecorder,
    _TreeView,
)

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]),
              st.integers(min_value=0, max_value=40)),
    min_size=1, max_size=120)


class OracleHarness:
    """A tree over a plain dict image + a Python-set oracle."""

    def __init__(self):
        self.image = {0: NIL}          # root pointer at address 0
        self.view = _TreeView(_SilentRecorder(self.image), 0)
        self.oracle = set()
        self.nodes = {}                # key -> node address
        self._next_node = 0x1000

    def insert(self, key):
        if key in self.oracle:
            return
        node = self._next_node
        self._next_node += 0x100
        self.view.insert(node, key)
        self.nodes[key] = node
        self.oracle.add(key)

    def delete(self, key):
        if key not in self.oracle:
            return
        node = self.view.find(key)
        assert node == self.nodes[key]
        self.view.delete(node)
        del self.nodes[key]
        self.oracle.discard(key)

    # ------------------------------------------------------------ checking

    def inorder_keys(self):
        keys = []

        def walk(node):
            if node == NIL:
                return
            walk(self.image.get(node + LEFT * 8, NIL))
            keys.append(self.image.get(node + KEY * 8))
            walk(self.image.get(node + RIGHT * 8, NIL))

        walk(self.image.get(0, NIL))
        return keys

    def check_invariants(self):
        root = self.image.get(0, NIL)
        if root == NIL:
            assert not self.oracle
            return
        assert self.image.get(root + COLOR * 8, BLACK) == BLACK, "red root"
        black_heights = set()

        def walk(node, lo, hi, black):
            if node == NIL:
                black_heights.add(black)
                return
            key = self.image.get(node + KEY * 8)
            color = self.image.get(node + COLOR * 8, BLACK)
            left = self.image.get(node + LEFT * 8, NIL)
            right = self.image.get(node + RIGHT * 8, NIL)
            assert lo is None or key > lo, "BST order"
            assert hi is None or key < hi, "BST order"
            for child in (left, right):
                if child != NIL:
                    assert self.image.get(child + PARENT * 8) == node, \
                        "parent pointer"
                    if color == RED:
                        assert self.image.get(
                            child + COLOR * 8, BLACK) == BLACK, "red-red"
            extra = 1 if color == BLACK else 0
            walk(left, lo, key, black + extra)
            walk(right, key, hi, black + extra)

        walk(root, None, None, 0)
        assert len(black_heights) == 1, "black-height balance"


class TestRBTreeAgainstOracle:
    @settings(max_examples=60, deadline=None)
    @given(ops_strategy)
    def test_contents_and_invariants_after_every_op(self, ops):
        harness = OracleHarness()
        for kind, key in ops:
            if kind == "insert":
                harness.insert(key)
            else:
                harness.delete(key)
            assert harness.inorder_keys() == sorted(harness.oracle)
            harness.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200),
                    min_size=1, max_size=80, unique=True))
    def test_insert_all_delete_all(self, keys):
        harness = OracleHarness()
        for key in keys:
            harness.insert(key)
        assert harness.inorder_keys() == sorted(keys)
        for key in keys:
            harness.delete(key)
        assert harness.inorder_keys() == []
        assert harness.image.get(0, NIL) == NIL

    def test_find_miss_returns_nil(self):
        harness = OracleHarness()
        harness.insert(5)
        assert harness.view.find(99) == NIL

    @settings(max_examples=20, deadline=None)
    @given(ops_strategy)
    def test_workload_validator_agrees_with_oracle_checker(self, ops):
        """The workload's crash validator must accept every state the
        oracle checker accepts."""
        harness = OracleHarness()
        for kind, key in ops:
            getattr(harness, kind)(key)
        workload = RBTree(seed=0)
        workload.roots = [0]
        workload.n_threads = 1
        assert workload.validate_recovered(harness.image) == []
