"""Unit tests for the Table 4 workload generators."""

import pytest

from repro.compiler import fase_profile
from repro.isa import PRead, PWrite, sequential_reference_heap
from repro.workloads import (
    BENCHMARKS,
    ArraySwaps,
    ConcurrentQueue,
    Hashmap,
    LoadMisspecProbe,
    Memcached,
    RBTree,
    StoreMisspecProbe,
    TATP,
    TPCC,
    Vacation,
    workload_by_name,
)

ALL = sorted(BENCHMARKS)


class TestFramework:
    @pytest.mark.parametrize("name", ALL)
    def test_build_produces_valid_program(self, name):
        workload = workload_by_name(name, seed=7)
        program = workload.build(n_threads=2, fases_per_thread=8)
        assert program.n_threads == 2
        assert program.total_fases == 16
        assert program.name == name

    @pytest.mark.parametrize("name", ALL)
    def test_deterministic_given_seed(self, name):
        def fingerprint():
            workload = workload_by_name(name, seed=13)
            program = workload.build(2, 6)
            return [(type(op).__name__, getattr(op, "addr", None),
                     getattr(op, "value", None))
                    for thread in program.threads
                    for fase in thread.fases for op in fase.ops]

        assert fingerprint() == fingerprint()

    @pytest.mark.parametrize("name", ALL)
    def test_seeds_differ(self, name):
        a = workload_by_name(name, seed=1).build(2, 6)
        b = workload_by_name(name, seed=2).build(2, 6)

        def sig(program):
            return [(getattr(op, "addr", None), getattr(op, "value", None))
                    for t in program.threads for f in t.fases
                    for op in f.ops]

        assert sig(a) != sig(b)

    @pytest.mark.parametrize("name", ALL)
    def test_clean_final_image_validates(self, name):
        workload = workload_by_name(name, seed=5)
        workload.build(2, 12)
        assert workload.validate_recovered(workload.image) == []

    @pytest.mark.parametrize("name", ALL)
    def test_initial_heap_validates(self, name):
        """The init-phase state must itself be consistent."""
        workload = workload_by_name(name, seed=5)
        program = workload.build(2, 4)
        assert workload.validate_recovered(dict(program.initial_heap)) == []

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            workload_by_name("redis")

    def test_recorder_rejects_negative_values(self):
        from repro.workloads import TraceRecorder
        recorder = TraceRecorder({})
        with pytest.raises(ValueError):
            recorder.write(0x40, -1)


class TestFaseShapes:
    """§8.2: the comparison depends on FASE length per benchmark."""

    def avg_ops(self, workload_cls):
        workload = workload_cls(seed=3)
        program = workload.build(2, 10)
        total = sum(len(f) for t in program.threads for f in t.fases)
        return total / program.total_fases

    def test_queue_and_hashmap_are_short(self):
        assert self.avg_ops(ConcurrentQueue) < 12
        assert self.avg_ops(Hashmap) < 10

    def test_tpcc_and_rbtree_are_long(self):
        assert self.avg_ops(TPCC) > 20
        assert self.avg_ops(RBTree) > 20

    def test_vacation_is_read_heavy(self):
        workload = Vacation(seed=3)
        program = workload.build(2, 10)
        reads = writes = 0
        for thread in program.threads:
            for fase in thread.fases:
                profile = fase_profile(fase)
                reads += profile["preads"]
                writes += profile["pwrites"]
        assert reads > 2 * writes

    def test_memcached_set_writes_1024_bytes(self):
        workload = Memcached(seed=3, set_fraction=1.0)
        program = workload.build(1, 1)
        fase = program.threads[0].fases[0]
        data_writes = [op for op in fase.ops if isinstance(op, PWrite)]
        # 128 value words + 1 metadata word.
        assert len(data_writes) == 129

    def test_microbench_writes_stay_in_one_block(self):
        """Array swaps: the paper's 64B-per-FASE data size."""
        workload = ArraySwaps(seed=3)
        program = workload.build(2, 20)
        for thread in program.threads:
            for fase in thread.fases:
                blocks = {addr >> 6 for addr in fase.writes}
                assert len(blocks) == 1


class TestStructuralValidators:
    def test_array_swaps_detects_torn_swap(self):
        workload = ArraySwaps(seed=3)
        workload.build(2, 5)
        image = dict(workload.image)
        base = workload.partitions[0]
        image[base] = image[base + 8]  # duplicate: multiset broken
        assert workload.validate_recovered(image)

    def test_queue_detects_wrong_element(self):
        workload = ConcurrentQueue(seed=3)
        workload.build(1, 5)
        image = dict(workload.image)
        head = image[workload.head_addrs[0]]
        image[workload._slot(0, head)] = 12345
        assert workload.validate_recovered(image)

    def test_hashmap_detects_torn_pair(self):
        workload = Hashmap(seed=3)
        workload.build(1, 5)
        image = dict(workload.image)
        image[workload._gen_addr(0)] = 99999  # gen without matching value
        assert workload.validate_recovered(image)

    def test_rbtree_detects_red_red(self):
        from repro.workloads.rbtree import COLOR, RED
        workload = RBTree(seed=3, initial_keys=32)
        workload.build(1, 5)
        image = dict(workload.image)
        # Paint every node red: must break red-red or root-colour rules.
        for node in workload.live_keys[0].values():
            image[node + COLOR * 8] = RED
        assert workload.validate_recovered(image)

    def test_tpcc_detects_missing_order(self):
        workload = TPCC(seed=3)
        workload.build(1, 5)
        image = dict(workload.image)
        image[workload._order_addr(0, 0)] = 0  # stamp gone
        assert workload.validate_recovered(image)

    def test_tatp_detects_foreign_location(self):
        workload = TATP(seed=3)
        workload.build(1, 5)
        image = dict(workload.image)
        record = workload._record(0, 0)
        image[workload.word(record, 3)] = 1
        assert workload.validate_recovered(image)

    def test_vacation_detects_counted_but_torn_reservation(self):
        workload = Vacation(seed=3)
        workload.build(1, 5)
        image = dict(workload.image)
        customer = workload._customer(0, 0)
        image[workload.word(customer, 1)] = (
            image.get(workload.word(customer, 1), 0) + 50)
        assert workload.validate_recovered(image)

    def test_memcached_detects_generation_mismatch(self):
        workload = Memcached(seed=3, set_fraction=1.0)
        workload.build(1, 3)
        image = dict(workload.image)
        key = 0
        image[workload._value_addr(key, 5)] = 1  # word from wrong gen
        assert workload.validate_recovered(image)


class TestSyntheticProbes:
    def test_load_probe_needs_two_threads(self):
        with pytest.raises(ValueError):
            LoadMisspecProbe().build(1, 5)

    def test_load_probe_configs_differ_in_path(self):
        slow = LoadMisspecProbe.recommended_config(2, slow_path=True)
        fast = LoadMisspecProbe.recommended_config(2, slow_path=False)
        assert slow.persist_path_ns > 50 * fast.persist_path_ns

    def test_store_probe_shared_word_is_tagged_writable(self):
        probe = StoreMisspecProbe(seed=1)
        program = probe.build(2, 4)
        shared_writes = [
            op for t in program.threads for f in t.fases
            for op in f.ops
            if isinstance(op, PWrite) and op.addr == probe.shared]
        assert shared_writes
        assert all(op.shared for op in shared_writes)

    def test_reference_heap_matches_generator_image(self):
        workload = ArraySwaps(seed=3)
        program = workload.build(2, 10)
        assert sequential_reference_heap(program) == workload.image


class TestInspectorCLI:
    def test_list(self, capsys):
        from repro.workloads.__main__ import main
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "tpcc" in out and "memcached" in out

    def test_inspect_ir(self, capsys):
        from repro.workloads.__main__ import main
        assert main(["hashmap", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "average ops/FASE" in out

    def test_inspect_lowered(self, capsys):
        from repro.workloads.__main__ import main
        assert main(["queue", "--flavor", "pmemspec"]) == 0
        out = capsys.readouterr().out
        assert "flavor pmemspec" in out
