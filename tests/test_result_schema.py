"""SimResult schema versioning: v2 and v3 payloads must both load."""

import pytest

from repro.system import RESULT_SCHEMA_VERSION, SimResult


def make_result(**overrides):
    kwargs = dict(design="PMEM-Spec", workload="tpcc", n_cores=8,
                  cycles=1000, fases_committed=40, fases_aborted=2,
                  load_misspeculations=1, store_misspeculations=0,
                  stale_loads=3, spec_buffer_overflows=0, freq_ghz=2.0,
                  stats={"pmc": {"persists": 9}})
    kwargs.update(overrides)
    return SimResult(**kwargs)


class TestSchemaV3:
    def test_version_is_three(self):
        assert RESULT_SCHEMA_VERSION == 3

    def test_round_trip_with_timeseries(self):
        timeseries = {"window_cycles": 100,
                      "series": {"wpq_depth": {"kind": "gauge",
                                               "evicted_windows": 0,
                                               "windows": []}}}
        original = make_result(timeseries=timeseries)
        payload = original.to_dict()
        assert payload["schema_version"] == 3
        restored = SimResult.from_dict(payload)
        assert restored == original

    def test_round_trip_without_timeseries(self):
        original = make_result()
        restored = SimResult.from_dict(original.to_dict())
        assert restored == original
        assert restored.timeseries is None


class TestSchemaV2Compat:
    """A v2 payload (no ``timeseries`` key) must still load."""

    def test_v2_payload_loads(self):
        payload = make_result().to_dict()
        del payload["timeseries"]
        payload["schema_version"] = 2
        restored = SimResult.from_dict(payload)
        assert restored.timeseries is None
        assert restored.cycles == 1000
        assert restored.fases_committed == 40

    def test_v2_then_v3_round_trip(self):
        payload = make_result().to_dict()
        del payload["timeseries"]
        payload["schema_version"] = 2
        upgraded = SimResult.from_dict(payload).to_dict()
        assert upgraded["schema_version"] == 3
        assert upgraded["timeseries"] is None

    def test_v1_payload_still_loads(self):
        payload = {"design": "IntelX86", "workload": "queue",
                   "n_cores": 4, "cycles": 10,
                   "fases_committed": 1, "fases_aborted": 0}
        restored = SimResult.from_dict(payload)
        assert restored.freq_ghz == 2.0
        assert restored.timeseries is None

    def test_throughput_survives_round_trip(self):
        original = make_result()
        restored = SimResult.from_dict(original.to_dict())
        assert restored.throughput == pytest.approx(original.throughput)

    def test_executor_stats_excluded_from_payload(self):
        result = make_result()
        result.stats["executor"] = {"elapsed_s": 1.23}
        assert "executor" not in result.to_dict()["stats"]


class TestForwardVersions:
    """Payloads from a *future* schema must be refused, not guessed at."""

    def test_next_version_raises(self):
        payload = make_result().to_dict()
        payload["schema_version"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            SimResult.from_dict(payload)

    def test_error_names_both_versions(self):
        payload = make_result().to_dict()
        payload["schema_version"] = RESULT_SCHEMA_VERSION + 5
        with pytest.raises(ValueError) as excinfo:
            SimResult.from_dict(payload)
        message = str(excinfo.value)
        assert str(RESULT_SCHEMA_VERSION + 5) in message
        assert str(RESULT_SCHEMA_VERSION) in message

    def test_every_supported_version_loads(self):
        # v1: bare payload, no schema_version/freq_ghz/timeseries keys.
        v1 = {"design": "DPO", "workload": "tatp", "n_cores": 2,
              "cycles": 7, "fases_committed": 3, "fases_aborted": 1}
        # v2: versioned but predates timeseries.
        v2 = make_result().to_dict()
        del v2["timeseries"]
        v2["schema_version"] = 2
        # v3: current.
        v3 = make_result().to_dict()
        for payload in (v1, v2, v3):
            restored = SimResult.from_dict(payload)
            assert restored.to_dict()["schema_version"] == \
                RESULT_SCHEMA_VERSION
