"""Unit tests for the per-design lowering."""

import pytest

from repro.compiler import (
    LoweringError,
    lower_fase,
    lower_program,
    lower_rollback,
)
from repro.isa import (
    Clwb,
    Comp,
    Compute,
    Dfence,
    Fase,
    FaseBegin,
    FaseEnd,
    Ld,
    Lock,
    LockAcquire,
    LockRelease,
    Ofence,
    PRead,
    Program,
    PWrite,
    Sfence,
    SpecAssign,
    SpecBarrier,
    SpecRevoke,
    St,
    ThreadProgram,
    Unlock,
)
from repro.runtime.undo_log import UndoLogLayout, stamp_target


def locked_fase(fase_id=0, addr=0x1000_0040, value=9):
    return Fase(fase_id, [
        LockAcquire(0),
        PRead(addr),
        PWrite(addr, value),
        Compute(10),
        LockRelease(0),
    ])


def tx_fase(fase_id=0, addr=0x1000_0040, value=9):
    return Fase(fase_id, [PRead(addr), PWrite(addr, value)])


class TestStructure:
    def test_begin_and_end_markers(self):
        lowered = lower_fase(locked_fase(), 0, "x86")
        assert isinstance(lowered.ops[0], FaseBegin)
        assert isinstance(lowered.ops[-1], FaseEnd)

    def test_unknown_flavor_rejected(self):
        with pytest.raises(LoweringError):
            lower_fase(locked_fase(), 0, "arm")

    def test_lock_ops_lowered(self):
        lowered = lower_fase(locked_fase(), 0, "x86")
        assert lowered.count(Lock) == 1
        assert lowered.count(Unlock) == 1

    def test_compute_lowered(self):
        lowered = lower_fase(locked_fase(), 0, "x86")
        assert lowered.count(Comp) == 1

    def test_log_entries_before_data_write(self):
        lowered = lower_fase(tx_fase(addr=0x1000_0040, value=7), 3, "x86",
                             epoch=4)
        layout = UndoLogLayout(3)
        kinds = [(op.kind if isinstance(op, St) else type(op).__name__)
                 for op in lowered.ops]
        first_log = kinds.index("log")
        first_data = kinds.index("data")
        assert first_log < first_data
        # Old value first, stamped validity marker second, right region.
        log_stores = [op for op in lowered.ops
                      if isinstance(op, St) and op.kind == "log"]
        assert log_stores[0].addr == layout.entry_old_addr(0)
        assert log_stores[0].log_of == 0x1000_0040
        assert log_stores[1].addr == layout.entry_target_addr(0)
        assert log_stores[1].value == stamp_target(4, 0x1000_0040)

    def test_old_value_read_emitted(self):
        lowered = lower_fase(tx_fase(addr=0x1000_0040), 0, "pmemspec")
        loads = [op.addr for op in lowered.ops if isinstance(op, Ld)]
        assert 0x1000_0040 in loads

    def test_commit_bumps_epoch(self):
        lowered = lower_fase(tx_fase(), 2, "pmemspec", epoch=6)
        layout = UndoLogLayout(2)
        commits = [op for op in lowered.ops
                   if isinstance(op, St) and op.kind == "commit"]
        assert len(commits) == 1
        assert commits[0].addr == layout.epoch_addr
        assert commits[0].value == 7

    def test_read_only_fase_has_no_log_or_barrier(self):
        fase = Fase(0, [PRead(0x1000_0040), Compute(5)])
        for flavor in ("x86", "hops", "pmemspec"):
            lowered = lower_fase(fase, 0, flavor)
            assert lowered.count(St) == 0
            assert lowered.count(Sfence) == 0
            assert lowered.count(Dfence) == 0
            assert lowered.count(SpecBarrier) == 0


class TestX86Flavor:
    def test_three_sfences_per_writing_fase(self):
        lowered = lower_fase(locked_fase(), 0, "x86")
        assert lowered.count(Sfence) == 3

    def test_clwb_covers_data_blocks(self):
        fase = Fase(0, [PWrite(0x1000_0040, 1), PWrite(0x1000_0080, 2),
                        PWrite(0x1000_0044, 3)])
        lowered = lower_fase(fase, 0, "x86")
        data_clwbs = {op.addr for op in lowered.ops if isinstance(op, Clwb)}
        assert 0x1000_0040 in data_clwbs
        assert 0x1000_0080 in data_clwbs

    def test_no_custom_instructions(self):
        lowered = lower_fase(locked_fase(), 0, "x86")
        for forbidden in (Ofence, Dfence, SpecBarrier, SpecAssign,
                          SpecRevoke):
            assert lowered.count(forbidden) == 0


class TestHopsFlavor:
    def test_two_ofences_one_dfence(self):
        lowered = lower_fase(locked_fase(), 0, "hops")
        assert lowered.count(Ofence) == 2
        assert lowered.count(Dfence) == 1
        assert lowered.count(Sfence) == 0
        assert lowered.count(Clwb) == 0


class TestPmemSpecFlavor:
    def test_single_barrier(self):
        lowered = lower_fase(locked_fase(), 0, "pmemspec")
        assert lowered.count(SpecBarrier) == 1
        assert lowered.count(Sfence) == 0
        assert lowered.count(Ofence) == 0
        assert lowered.count(Clwb) == 0

    def test_spec_assign_after_lock_revoke_before_unlock(self):
        lowered = lower_fase(locked_fase(), 0, "pmemspec")
        ops = lowered.ops
        lock_idx = next(i for i, op in enumerate(ops)
                        if isinstance(op, Lock))
        assign_idx = next(i for i, op in enumerate(ops)
                          if isinstance(op, SpecAssign))
        revoke_idx = next(i for i, op in enumerate(ops)
                          if isinstance(op, SpecRevoke))
        unlock_idx = next(i for i, op in enumerate(ops)
                          if isinstance(op, Unlock))
        assert lock_idx < assign_idx < revoke_idx < unlock_idx

    def test_transaction_fase_not_tagged(self):
        lowered = lower_fase(tx_fase(), 0, "pmemspec")
        assert lowered.count(SpecAssign) == 0
        assert lowered.count(SpecRevoke) == 0


class TestRollback:
    def test_rollback_writes_then_barrier_no_truncate(self):
        writes = [(0x1000_0048, 7), (0x1000_0040, 3)]
        for flavor, barrier in (("x86", Sfence), ("hops", Dfence),
                                ("pmemspec", SpecBarrier)):
            ops = lower_rollback(writes, 1, flavor)
            stores = [op for op in ops if isinstance(op, St)]
            assert [(s.addr, s.value) for s in stores] == writes
            # No epoch/truncate write: the log stays live (idempotence).
            assert all(s.kind == "rollback" for s in stores)
            assert isinstance(ops[-1], barrier)

    def test_rollback_of_nothing_is_empty(self):
        assert lower_rollback([], 0, "pmemspec") == []


class TestProgramLowering:
    def test_lower_program_per_thread(self):
        program = Program("p", [
            ThreadProgram(0, [locked_fase(0), locked_fase(1)],
                          think_cycles=5),
            ThreadProgram(1, [locked_fase(2)]),
        ], n_locks=1)
        lowered = lower_program(program, "pmemspec")
        assert len(lowered.threads) == 2
        assert len(lowered.threads[0].fases) == 2
        assert lowered.threads[0].think_cycles == 5
        assert lowered.total_ops > 0

    def test_flavors_differ_in_op_count(self):
        program = Program("p", [ThreadProgram(0, [locked_fase()])],
                          n_locks=1)
        x86 = lower_program(program, "x86").total_ops
        pmem = lower_program(program, "pmemspec").total_ops
        assert x86 > pmem

    def test_memoised_per_program(self):
        program = Program("p", [ThreadProgram(0, [locked_fase()])],
                          n_locks=1)
        assert lower_program(program, "x86") is lower_program(program,
                                                              "x86")
        assert lower_program(program, "x86") is not \
            lower_program(program, "pmemspec")

    def test_memo_does_not_outlive_program(self):
        # The memo must not pin the program: a module-level cache whose
        # value references the program leaks every program ever lowered
        # (each later benchmark pass then pays GC for all earlier ones).
        import gc
        import weakref
        program = Program("p", [ThreadProgram(0, [locked_fase()])],
                          n_locks=1)
        lower_program(program, "x86")
        ghost = weakref.ref(program)
        del program
        gc.collect()
        assert ghost() is None


class TestStrandFlavor:
    def test_strand_per_log_group(self):
        from repro.isa import JoinStrand, NewStrand, StrandBarrier
        fase = Fase(0, [PWrite(0x1000_0040, 1), PWrite(0x1000_0080, 2)])
        lowered = lower_fase(fase, 0, "strand")
        # Two groups (different blocks): two strands, two strand
        # barriers, one join before the commit record, one dfence.
        assert lowered.count(NewStrand) == 2
        assert lowered.count(StrandBarrier) == 2
        assert lowered.count(JoinStrand) == 1
        assert lowered.count(Dfence) == 1
        assert lowered.count(Sfence) == 0

    def test_join_precedes_commit_record(self):
        from repro.isa import JoinStrand
        fase = Fase(0, [PWrite(0x1000_0040, 1)])
        lowered = lower_fase(fase, 0, "strand", epoch=3)
        join_index = next(i for i, op in enumerate(lowered.ops)
                          if isinstance(op, JoinStrand))
        commit_index = next(i for i, op in enumerate(lowered.ops)
                            if isinstance(op, St) and op.kind == "commit")
        assert join_index < commit_index

    def test_read_only_strand_fase_is_bare(self):
        from repro.isa import JoinStrand, NewStrand
        fase = Fase(0, [PRead(0x1000_0040)])
        lowered = lower_fase(fase, 0, "strand")
        assert lowered.count(NewStrand) == 0
        assert lowered.count(JoinStrand) == 0
        assert lowered.count(Dfence) == 0
