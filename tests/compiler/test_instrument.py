"""Unit tests for critical-section analysis and annotation counting."""

import pytest

from repro.compiler import analyse_fase, annotation_burden, fase_profile
from repro.isa import (
    Compute,
    Fase,
    LockAcquire,
    LockRelease,
    PRead,
    PWrite,
)


class TestCriticalSectionAnalysis:
    def test_no_locks_no_sections(self):
        info = analyse_fase(Fase(0, [PWrite(0x40, 1)]))
        assert not info.has_critical_section
        assert info.protected_writes == set()

    def test_simple_section(self):
        fase = Fase(0, [LockAcquire(0), PWrite(0x40, 1), LockRelease(0)])
        info = analyse_fase(fase)
        assert info.sections == [(0, 2)]
        assert info.protected_writes == {1}
        assert info.in_section(1)
        assert not info.in_section(5)

    def test_nested_locks_single_section(self):
        fase = Fase(0, [
            LockAcquire(0), LockAcquire(1), PWrite(0x40, 1),
            LockRelease(1), PWrite(0x80, 2), LockRelease(0),
        ])
        info = analyse_fase(fase)
        assert info.sections == [(0, 5)]
        assert info.protected_writes == {2, 4}

    def test_multiple_sections(self):
        fase = Fase(0, [
            LockAcquire(0), PWrite(0x40, 1), LockRelease(0),
            PRead(0x40),
            LockAcquire(1), PWrite(0x80, 2), LockRelease(1),
        ])
        info = analyse_fase(fase)
        assert len(info.sections) == 2
        assert info.protected_writes == {1, 5}

    def test_unprotected_write_between_sections(self):
        fase = Fase(0, [
            LockAcquire(0), LockRelease(0), PWrite(0x40, 1),
        ])
        info = analyse_fase(fase)
        assert info.protected_writes == set()


class TestAnnotationBurden:
    def fase(self):
        return Fase(0, [PWrite(0x40, 1), PWrite(0x80, 2)])

    def test_pmemspec_single_annotation(self):
        burden = annotation_burden(self.fase(), "pmemspec")
        assert burden["programmer_visible"] == 1

    def test_hops_fences_scale_with_groups_but_no_flushes(self):
        burden = annotation_burden(self.fase(), "hops")
        assert burden["fences"] == 4  # 2 log groups + ofence + dfence
        assert burden["flushes"] == 0

    def test_x86_heaviest(self):
        x86 = annotation_burden(self.fase(), "x86")["programmer_visible"]
        hops = annotation_burden(self.fase(), "hops")["programmer_visible"]
        pmem = annotation_burden(self.fase(), "pmemspec")["programmer_visible"]
        assert x86 > hops > pmem

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            annotation_burden(self.fase(), "riscv")


class TestFaseProfile:
    def test_counts(self):
        fase = Fase(0, [PRead(0x40), PWrite(0x40, 1), PWrite(0x44, 2),
                        Compute(3)])
        profile = fase_profile(fase)
        assert profile == {"preads": 1, "pwrites": 2, "computes": 1,
                           "locks": 0, "distinct_write_blocks": 1}
