"""Unit and integration tests for the redo-logging variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import LoweringError, lower_fase, lower_program
from repro.config import table3_config
from repro.isa import Dfence, Fase, Ofence, PRead, PWrite, Sfence, St
from repro.persistency import design_by_name
from repro.runtime import (
    DATA_BASE,
    UndoLogLayout,
    commit_word_addr,
    recover_redo,
    run_recovery,
)
from repro.runtime.undo_log import stamp_target
from repro.system import build_system


def persist_redo_log(image, thread_id, records, epoch=0, committed=True):
    layout = UndoLogLayout(thread_id)
    image[layout.epoch_addr] = epoch
    if committed:
        image[commit_word_addr(thread_id)] = epoch
    for index, (target, new) in enumerate(records):
        image[layout.entry_old_addr(index)] = new
        image[layout.entry_target_addr(index)] = stamp_target(epoch, target)
    return layout


class TestRedoRecovery:
    def test_committed_log_replays_forward(self):
        image = {0x100: 0}
        persist_redo_log(image, 0, [(0x100, 5), (0x108, 6)], epoch=2)
        applied = recover_redo(image, 0)
        assert image[0x100] == 5
        assert image[0x108] == 6
        assert len(applied) == 2

    def test_replay_consumes_the_log(self):
        image = {}
        layout = persist_redo_log(image, 0, [(0x100, 5)], epoch=2)
        recover_redo(image, 0)
        assert image[layout.epoch_addr] == 3
        # A second recovery is a no-op (commit word now stale).
        assert recover_redo(image, 0) == []

    def test_uncommitted_log_ignored(self):
        """Crash before the commit word: in-place data never persisted,
        so there is nothing to do."""
        image = {0x100: 42}
        persist_redo_log(image, 0, [(0x100, 5)], epoch=2, committed=False)
        assert recover_redo(image, 0) == []
        assert image[0x100] == 42

    def test_forward_replay_last_write_wins(self):
        image = {}
        persist_redo_log(image, 0, [(0x100, 1), (0x100, 9)])
        recover_redo(image, 0)
        assert image[0x100] == 9

    def test_stale_commit_word_ignored(self):
        image = {0x100: 42}
        layout = persist_redo_log(image, 0, [(0x100, 5)], epoch=4)
        image[layout.epoch_addr] = 7  # commits since; log consumed
        assert recover_redo(image, 0) == []

    def test_log_targeting_log_region_rejected(self):
        image = {}
        layout = UndoLogLayout(0)
        image[layout.epoch_addr] = 0
        image[commit_word_addr(0)] = 0
        image[layout.entry_old_addr(0)] = 1
        image[layout.entry_target_addr(0)] = stamp_target(0, layout.base)
        with pytest.raises(ValueError):
            recover_redo(image, 0)

    def test_run_recovery_dispatches_modes(self):
        image = {}
        persist_redo_log(image, 0, [(0x100, 5)])
        report = run_recovery(image, 1, log_mode="redo")
        assert report.image[0x100] == 5
        with pytest.raises(ValueError):
            run_recovery(image, 1, log_mode="write-behind")

    @settings(max_examples=40)
    @given(st.dictionaries(
        st.integers(min_value=0x100, max_value=0x1F8).map(lambda a: a & ~7),
        st.integers(min_value=1, max_value=2**32), min_size=1, max_size=8))
    def test_replay_reaches_committed_state(self, new_state):
        image = {addr: 0 for addr in new_state}
        persist_redo_log(image, 0, list(new_state.items()), epoch=3)
        recover_redo(image, 0)
        for addr, value in new_state.items():
            assert image[addr] == value


class TestRedoLowering:
    def fase(self):
        return Fase(0, [PRead(DATA_BASE), PWrite(DATA_BASE, 5),
                        PWrite(DATA_BASE + 64, 6)])

    def test_x86_rejects_redo(self):
        with pytest.raises(LoweringError):
            lower_fase(self.fase(), 0, "x86", log_mode="redo")

    def test_no_intra_fase_ordering_points(self):
        """Redo under a FIFO channel: zero fences until the final one."""
        for flavor in ("pmemspec", "hops", "strand"):
            lowered = lower_fase(self.fase(), 0, flavor, log_mode="redo")
            assert lowered.count(Ofence) == 0
            assert lowered.count(Sfence) == 0
            fences = lowered.count(Dfence) + sum(
                1 for op in lowered.ops
                if type(op).__name__ == "SpecBarrier")
            assert fences == 1

    def test_in_place_writes_volatile_until_commit(self):
        lowered = lower_fase(self.fase(), 0, "pmemspec", log_mode="redo")
        data_stores = [op for op in lowered.ops
                       if isinstance(op, St) and op.kind == "data"]
        # First two are the volatile in-place updates, then the replay.
        assert [s.to_pm for s in data_stores] == [False, False, True, True]

    def test_commit_word_precedes_replay(self):
        lowered = lower_fase(self.fase(), 0, "pmemspec", log_mode="redo",
                             epoch=4)
        commits = [op for op in lowered.ops
                   if isinstance(op, St) and op.kind == "commit"]
        assert commits[0].addr == commit_word_addr(0)
        assert commits[0].value == 4
        assert commits[1].addr == UndoLogLayout(0).epoch_addr
        assert commits[1].value == 5

    def test_unknown_log_mode_rejected(self):
        with pytest.raises(LoweringError):
            lower_fase(self.fase(), 0, "pmemspec", log_mode="maybe")

    def test_lowered_fase_carries_mode(self):
        program_fase = lower_fase(self.fase(), 0, "hops", log_mode="redo")
        assert program_fase.log_mode == "redo"


class TestRedoEndToEnd:
    @pytest.mark.parametrize("design", ("PMEM-Spec", "HOPS", "StrandWeaver"))
    def test_runs_and_durable_state_validates(self, design):
        from repro.workloads import workload_by_name
        workload = workload_by_name("hashmap", seed=7)
        program = workload.build(2, 10)
        system = build_system(program, design_by_name(design),
                              table3_config(n_cores=2), log_mode="redo")
        result = system.run()
        assert result.fases_committed == 20
        assert workload.validate_recovered(system.device.snapshot()) == []

    def test_redo_replay_happens_outside_mid_fase_critical_sections(self):
        """A protocol interaction the reproduction surfaces: redo defers
        the persistent stores to commit-time replay, which runs *after*
        a mid-FASE critical section has been exited -- so those replays
        are untagged and the lock-carried happens-before order never
        reaches the PM controller.  The probe that forces store
        misspeculation under undo logging therefore cannot trigger (nor
        need) detection under redo; the run must simply complete and
        stay architecturally consistent.  A redo runtime on PMEM-Spec
        would need commit-time locking (or tagged replays) to retain
        inter-thread persist-order detection -- see DESIGN.md."""
        from repro.workloads import StoreMisspecProbe
        probe = StoreMisspecProbe(seed=1)
        program = probe.build(2, 20)
        system = build_system(program, design_by_name("PMEM-Spec"),
                              StoreMisspecProbe.recommended_config(2),
                              log_mode="redo")
        system.persist_path.set_core_extra(
            0, StoreMisspecProbe.slow_core_extra_cycles())
        result = system.run()
        assert result.fases_committed == 40
        assert result.fases_aborted == 0
        assert probe.validate_recovered(system.image.snapshot()) == []

    def test_crash_sweep_under_redo(self):
        from repro.runtime import crash_sweep
        from repro.workloads import RBTree
        outcomes = crash_sweep(RBTree, "PMEM-Spec", n_points=5,
                               n_threads=2, fases_per_thread=8, seed=11,
                               log_mode="redo")
        assert all(outcome.consistent for outcome in outcomes)
