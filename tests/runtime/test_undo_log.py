"""Unit and property tests for the epoch-stamped undo log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import UndoLog, UndoLogLayout, recover, recover_all
from repro.runtime.undo_log import stamp_target, unpack_stamp


def persist_log(image, thread_id, records, epoch=0):
    """Write a log state (epoch + stamped entries) into a fake image."""
    layout = UndoLogLayout(thread_id)
    image[layout.epoch_addr] = epoch
    for index, (target, old) in enumerate(records):
        image[layout.entry_old_addr(index)] = old
        image[layout.entry_target_addr(index)] = stamp_target(epoch, target)
    return layout


class TestStamping:
    def test_roundtrip(self):
        word = stamp_target(7, 0x1000_0040)
        assert unpack_stamp(word) == (7, 0x1000_0040)

    def test_epoch_zero_is_plain_address(self):
        assert stamp_target(0, 0x40) == 0x40

    def test_out_of_range_target_rejected(self):
        with pytest.raises(ValueError):
            stamp_target(0, 1 << 41)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            stamp_target(-1, 0x40)

    @given(st.integers(min_value=0, max_value=2**20),
           st.integers(min_value=0, max_value=2**39))
    def test_roundtrip_property(self, epoch, target):
        assert unpack_stamp(stamp_target(epoch, target)) == (epoch, target)


class TestLayout:
    def test_epoch_separate_block_from_entries(self):
        layout = UndoLogLayout(0)
        assert layout.entry_old_addr(0) - layout.epoch_addr >= 64

    def test_entry_stride(self):
        layout = UndoLogLayout(0)
        assert layout.entry_old_addr(1) - layout.entry_old_addr(0) == 16
        assert layout.entry_target_addr(0) - layout.entry_old_addr(0) == 8

    def test_out_of_range_entry_rejected(self):
        layout = UndoLogLayout(0)
        with pytest.raises(IndexError):
            layout.entry_old_addr(layout.max_entries)
        with pytest.raises(IndexError):
            layout.entry_old_addr(-1)

    def test_threads_have_disjoint_layouts(self):
        l0, l1 = UndoLogLayout(0), UndoLogLayout(1)
        assert l0.entry_old_addr(l0.max_entries - 1) < l1.epoch_addr


class TestUndoLogBookkeeping:
    def test_append_returns_indices(self):
        log = UndoLog(0)
        log.open_scope()
        assert log.append(0x100, 1) == 0
        assert log.append(0x108, 2) == 1

    def test_rollback_order_newest_first(self):
        log = UndoLog(0)
        log.open_scope()
        log.append(0x100, 1)
        log.append(0x108, 2)
        assert log.rollback_writes() == [(0x108, 2), (0x100, 1)]

    def test_truncate_clears(self):
        log = UndoLog(0)
        log.open_scope()
        log.append(0x100, 1)
        log.truncate()
        assert log.records == []
        assert log.truncations == 1

    def test_open_scope_resets(self):
        log = UndoLog(0)
        log.open_scope()
        log.append(0x100, 1)
        log.open_scope()
        assert log.records == []


class TestRecovery:
    def test_committed_log_is_noop(self):
        """After commit the epoch has advanced past the entries' stamps."""
        image = {0x100: 42}
        persist_log(image, 0, [(0x100, 7)], epoch=3)
        layout = UndoLogLayout(0)
        image[layout.epoch_addr] = 4  # commit bumped the epoch
        applied = recover(image, 0)
        assert applied == []
        assert image[0x100] == 42

    def test_uncommitted_log_rolls_back(self):
        image = {0x100: 99, 0x108: 98}
        persist_log(image, 0, [(0x100, 1), (0x108, 2)], epoch=5)
        applied = recover(image, 0)
        assert image[0x100] == 1
        assert image[0x108] == 2
        assert len(applied) == 2

    def test_multiple_writes_same_addr_unwind_to_oldest(self):
        image = {0x100: 50}
        # FASE wrote 0x100 twice: first old value 1, then old value 10.
        persist_log(image, 0, [(0x100, 1), (0x100, 10)])
        recover(image, 0)
        assert image[0x100] == 1

    def test_missing_entry_ends_scan_soundly(self):
        """A non-persisted entry fails its stamp check; the group ordering
        guarantees its data did not persist either, so stopping is safe
        -- entries before the gap still apply."""
        image = {0x100: 99}
        layout = persist_log(image, 0, [(0x100, 1)], epoch=2)
        # Entry 1's stamped word never persisted (stale epoch from FASE 1).
        image[layout.entry_old_addr(1)] = 77
        image[layout.entry_target_addr(1)] = stamp_target(1, 0x108)
        recover(image, 0)
        assert image[0x100] == 1
        assert image.get(0x108) is None

    def test_stale_epoch_entries_ignored(self):
        image = {0x100: 42}
        layout = persist_log(image, 0, [(0x100, 7)], epoch=3)
        image[layout.epoch_addr] = 9  # many commits later
        assert recover(image, 0) == []
        assert image[0x100] == 42

    def test_negative_epoch_rejected(self):
        image = {}
        layout = UndoLogLayout(0)
        image[layout.epoch_addr] = -2
        with pytest.raises(ValueError):
            recover(image, 0)

    def test_entry_targeting_log_region_is_corruption(self):
        image = {}
        layout = persist_log(image, 0, [], epoch=0)
        image[layout.entry_old_addr(0)] = 1
        image[layout.entry_target_addr(0)] = stamp_target(0, layout.base)
        with pytest.raises(ValueError):
            recover(image, 0)

    def test_recovery_is_idempotent(self):
        """Recovery leaves entries live; running it again is harmless."""
        image = {0x100: 99}
        persist_log(image, 0, [(0x100, 1)])
        recover(image, 0)
        first = dict(image)
        recover(image, 0)
        assert image == first

    def test_recover_all_runs_each_thread(self):
        image = {0x100: 9, 0x200: 9}
        persist_log(image, 0, [(0x100, 1)])
        persist_log(image, 1, [(0x200, 2)])
        applied = recover_all(image, 2)
        assert image[0x100] == 1
        assert image[0x200] == 2
        assert set(applied) == {0, 1}

    @settings(max_examples=50)
    @given(st.dictionaries(
        st.integers(min_value=0x100, max_value=0x1F8).map(lambda a: a & ~7),
        st.integers(min_value=0, max_value=2**32), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=100))
    def test_roundtrip_restores_pre_fase_state(self, pre_state, epoch):
        """Property: log old values, clobber, recover => pre-FASE state."""
        image = dict(pre_state)
        records = [(addr, old) for addr, old in pre_state.items()]
        persist_log(image, 0, records, epoch=epoch)
        for addr in pre_state:
            image[addr] = 0xDEAD  # partially-persisted new data
        recover(image, 0)
        for addr, old in pre_state.items():
            assert image[addr] == old
