"""Unit tests for the persistent heap and log-region layout."""

import pytest

from repro.runtime import (
    DATA_BASE,
    LOG_BASE,
    LOG_REGION_BYTES,
    AllocationError,
    PersistentHeap,
    is_log_address,
    log_region_base,
    thread_of_log_address,
)


class TestPersistentHeap:
    def test_first_alloc_at_base(self):
        heap = PersistentHeap()
        assert heap.alloc(64) == DATA_BASE

    def test_allocations_do_not_overlap(self):
        heap = PersistentHeap()
        a = heap.alloc(24)
        b = heap.alloc(24)
        assert b >= a + 24

    def test_alignment(self):
        heap = PersistentHeap()
        heap.alloc(3)
        addr = heap.alloc(8, align=64)
        assert addr % 64 == 0

    def test_alloc_block_is_block_aligned(self):
        heap = PersistentHeap()
        heap.alloc(5)
        block = heap.alloc_block()
        assert block % 64 == 0

    def test_bad_size_rejected(self):
        with pytest.raises(AllocationError):
            PersistentHeap().alloc(0)

    def test_bad_alignment_rejected(self):
        with pytest.raises(AllocationError):
            PersistentHeap().alloc(8, align=3)

    def test_exhaustion(self):
        heap = PersistentHeap(base=0, limit=128)
        heap.alloc(100)
        with pytest.raises(AllocationError):
            heap.alloc(100)

    def test_labels_tracked(self):
        heap = PersistentHeap()
        a = heap.alloc_words(2, label="bucket")
        b = heap.alloc_words(2, label="bucket")
        assert heap.region("bucket") == [a, b]
        assert heap.region("other") == []

    def test_in_data_region(self):
        heap = PersistentHeap()
        addr = heap.alloc(8)
        assert heap.in_data_region(addr)
        assert not heap.in_data_region(addr + 1024)

    def test_used_bytes(self):
        heap = PersistentHeap()
        heap.alloc(64)
        assert heap.used_bytes == 64


class TestLogRegions:
    def test_regions_are_disjoint_per_thread(self):
        assert log_region_base(1) - log_region_base(0) == LOG_REGION_BYTES
        assert log_region_base(0) == LOG_BASE

    def test_negative_thread_rejected(self):
        with pytest.raises(ValueError):
            log_region_base(-1)

    def test_is_log_address(self):
        assert is_log_address(LOG_BASE)
        assert is_log_address(LOG_BASE + 12345)
        assert not is_log_address(DATA_BASE)

    def test_thread_of_log_address(self):
        assert thread_of_log_address(log_region_base(3) + 100) == 3
        with pytest.raises(ValueError):
            thread_of_log_address(DATA_BASE)

    def test_log_region_above_data_region(self):
        heap = PersistentHeap()
        assert heap.limit <= LOG_BASE
