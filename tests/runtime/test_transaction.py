"""Unit tests for the failure-atomic runtime's FASE and recovery logic."""

import pytest

from repro.core import MisspeculationEvent
from repro.runtime import EAGER, LAZY, FailureAtomicRuntime, run_recovery
from repro.runtime.undo_log import UndoLogLayout, stamp_target


def event(kind="load"):
    return MisspeculationEvent(kind, block=1, core_id=0, time=100)


class TestFaseLifecycle:
    def test_commit_path(self):
        rt = FailureAtomicRuntime(2)
        rt.fase_begin(0, fase_id=7, now=0)
        rt.log_write(0, 0x100, 1)
        rt.fase_commit(0, now=50)
        assert rt.total_commits == 1
        assert rt.commit_log == [(0, 7, 50)]

    def test_nested_fase_rejected(self):
        rt = FailureAtomicRuntime(1)
        rt.fase_begin(0, 0, 0)
        with pytest.raises(RuntimeError):
            rt.fase_begin(0, 1, 10)

    def test_commit_outside_fase_rejected(self):
        with pytest.raises(RuntimeError):
            FailureAtomicRuntime(1).fase_commit(0, 0)

    def test_log_write_outside_fase_rejected(self):
        with pytest.raises(RuntimeError):
            FailureAtomicRuntime(1).log_write(0, 0x100, 1)

    def test_abort_returns_rollback_writes_newest_first(self):
        rt = FailureAtomicRuntime(1)
        rt.fase_begin(0, 0, 0)
        rt.log_write(0, 0x100, 1)
        rt.log_write(0, 0x108, 2)
        writes = rt.fase_abort(0, now=10)
        assert writes == [(0x108, 2), (0x100, 1)]
        assert rt.total_aborts == 1

    def test_abort_outside_fase_rejected(self):
        with pytest.raises(RuntimeError):
            FailureAtomicRuntime(1).fase_abort(0, 0)


class TestMisspeculationFlags:
    def test_flags_only_in_fase_threads(self):
        rt = FailureAtomicRuntime(3)
        rt.fase_begin(0, 0, 0)
        rt.fase_begin(2, 0, 0)
        flagged = rt.on_misspeculation(event(), now=10)
        assert flagged == 2
        assert rt.threads[0].misspec_flag
        assert not rt.threads[1].misspec_flag
        assert rt.threads[2].misspec_flag

    def test_new_fase_clears_flag(self):
        rt = FailureAtomicRuntime(1)
        rt.fase_begin(0, 0, 0)
        rt.on_misspeculation(event(), 10)
        rt.fase_abort(0, 20)
        rt.fase_begin(0, 0, 30)
        assert not rt.threads[0].misspec_flag

    def test_lazy_aborts_only_at_boundary(self):
        rt = FailureAtomicRuntime(1, recovery_mode=LAZY)
        rt.fase_begin(0, 0, 0)
        rt.on_misspeculation(event(), 10)
        assert not rt.must_abort(0, at_boundary=False)
        assert rt.must_abort(0, at_boundary=True)

    def test_eager_aborts_mid_fase(self):
        rt = FailureAtomicRuntime(1, recovery_mode=EAGER)
        rt.fase_begin(0, 0, 0)
        rt.on_misspeculation(event(), 10)
        assert rt.must_abort(0, at_boundary=False)

    def test_unflagged_thread_never_aborts(self):
        rt = FailureAtomicRuntime(1, recovery_mode=EAGER)
        rt.fase_begin(0, 0, 0)
        assert not rt.must_abort(0, at_boundary=True)

    def test_out_of_fase_thread_never_aborts(self):
        rt = FailureAtomicRuntime(1)
        rt.on_misspeculation(event(), 10)
        assert not rt.must_abort(0, at_boundary=True)

    def test_events_recorded(self):
        rt = FailureAtomicRuntime(1)
        rt.on_misspeculation(event("store"), 10)
        assert rt.stats["misspec_store"] == 1
        assert len(rt.misspec_events) == 1

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            FailureAtomicRuntime(1, recovery_mode="sometimes")


class TestRecoveryReport:
    def test_report_identifies_rolled_back_threads(self):
        layout = UndoLogLayout(0)
        image = {0x100: 99,
                 layout.epoch_addr: 2,
                 layout.entry_target_addr(0): stamp_target(2, 0x100),
                 layout.entry_old_addr(0): 5}
        report = run_recovery(image, n_threads=2)
        assert report.rolled_back_threads == [0]
        assert report.total_undo_writes == 1
        assert report.image[0x100] == 5
        # Original image untouched (recovery copies).
        assert image[0x100] == 99

    def test_data_image_strips_log_region(self):
        layout = UndoLogLayout(0)
        image = {0x100: 1, layout.epoch_addr: 3}
        report = run_recovery(image, 1)
        assert report.data_image() == {0x100: 1}
