"""Crash recovery parametrized over the logging flavor.

Undo and redo logging make opposite persist-ordering promises (§2.2),
but the recovery contract is identical: any crash recovers to a
consistent image, and a completed run recovers to the *same* final
image under either flavor.
"""

import pytest

from repro.runtime import measure_run_cycles, run_with_crash
from repro.workloads import ArraySwaps, Hashmap

LOG_MODES = ("undo", "redo")


@pytest.mark.parametrize("log_mode", LOG_MODES)
@pytest.mark.parametrize("workload_cls", (ArraySwaps, Hashmap),
                         ids=lambda cls: cls.__name__)
def test_mid_run_crash_recovers_consistently(workload_cls, log_mode):
    total = measure_run_cycles(workload_cls, "PMEM-Spec", 2, 6, 42,
                               log_mode=log_mode)
    outcome = run_with_crash(workload_cls, "PMEM-Spec",
                             crash_cycle=total // 2, n_threads=2,
                             fases_per_thread=6, seed=42,
                             log_mode=log_mode, total_cycles=total)
    assert outcome.consistent, outcome.violations[:3]
    assert outcome.total_cycles == total
    assert outcome.crash_cycle < outcome.total_cycles


@pytest.mark.parametrize("log_mode", LOG_MODES)
def test_total_cycles_is_the_real_run_length(log_mode):
    """Regression: ``run_with_crash`` used to report the crash cycle as
    the run's total length; it must measure (or be told) the true
    uninterrupted duration."""
    outcome = run_with_crash(ArraySwaps, "PMEM-Spec", crash_cycle=50,
                             n_threads=2, fases_per_thread=6, seed=42,
                             log_mode=log_mode)
    assert outcome.total_cycles > outcome.crash_cycle
    assert outcome.commits_before_crash == 0


@pytest.mark.parametrize("workload_cls", (ArraySwaps, Hashmap),
                         ids=lambda cls: cls.__name__)
def test_log_modes_converge_to_the_same_image(workload_cls):
    """A crash after completion leaves nothing to roll back or replay:
    undo and redo recovery must land on the identical data image."""
    images = {}
    for log_mode in LOG_MODES:
        total = measure_run_cycles(workload_cls, "PMEM-Spec", 2, 6, 42,
                                   log_mode=log_mode)
        outcome = run_with_crash(workload_cls, "PMEM-Spec",
                                 crash_cycle=total + 100, n_threads=2,
                                 fases_per_thread=6, seed=42,
                                 log_mode=log_mode, total_cycles=total)
        assert outcome.consistent
        assert outcome.report.rolled_back_threads == []
        images[log_mode] = outcome.report.data_image()
    assert images["undo"] == images["redo"]
