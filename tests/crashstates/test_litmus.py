"""The crash-state litmus tier and its known-bad oracle fixtures."""

import json
from pathlib import Path

import pytest

from repro.crashstates.litmus import (ALL_DESIGNS, LITMUS_PROGRAMS,
                                      format_litmus_table, run_litmus)
from repro.validation.history import history_from_dicts
from repro.validation.oracle import VIOLATION_KINDS, PersistOrderOracle

FIXTURE_DIR = Path(__file__).parent / "litmus"


class TestLitmusTier:
    def test_every_program_matches_its_expected_sets(self):
        report = run_litmus()
        failures = [r for r in report["results"] if not r["ok"]]
        assert report["ok"], "\n" + format_litmus_table(report)
        assert not failures
        assert report["programs"] == len(LITMUS_PROGRAMS)
        # Every design is covered by at least one expectation.
        designs_seen = {r["design"] for r in report["results"]}
        assert designs_seen == set(ALL_DESIGNS)

    def test_design_filter(self):
        report = run_litmus(designs=["DPO"])
        assert report["ok"]
        assert {r["design"] for r in report["results"]} == {"DPO"}

    def test_torn_tail_separates_strict_from_epoch(self):
        """The paper's core claim in miniature: the same torn undo-log
        tail is recoverable under strict persistency (every durable
        state is a persist-order prefix, and the log protocol fences
        entries before data) but not under open-epoch reordering."""
        report = run_litmus(designs=["IntelX86", "DPO"],
                            programs=["undo-torn-tail"])
        assert report["ok"]
        by_design = {r["design"]: r for r in report["results"]}
        assert by_design["IntelX86"]["recovery_failed"] > 0
        assert by_design["IntelX86"]["recovery_expect_failure"]
        assert by_design["DPO"]["recovery_failed"] == 0
        assert by_design["DPO"]["recovery_checked"] > 0

    def test_report_shape(self):
        report = run_litmus(designs=["HOPS"], programs=["store-store"])
        assert report["schema_version"] == 1
        result = report["results"][0]
        assert result["program"] == "store-store"
        assert result["model"] == "percore"
        assert not result["truncated"]
        assert result["n_states"] >= 1

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError):
            run_litmus(programs=["no-such-program"])


class TestKnownBadFixtures:
    """Each fixture is a hand-written history that exactly one oracle
    predicate uniquely catches -- the oracle's negative controls."""

    FIXTURE_FOR_KIND = {
        "intra-thread-persist-order": "bad-intra-thread-order.json",
        "spec-id-monotonicity": "bad-spec-id-order.json",
        "stale-read": "bad-stale-read.json",
        "fase-atomicity": "bad-fase-atomicity.json",
    }

    @pytest.mark.parametrize("kind", VIOLATION_KINDS)
    def test_fixture_trips_exactly_its_kind(self, kind):
        path = FIXTURE_DIR / self.FIXTURE_FOR_KIND[kind]
        fixture = json.loads(path.read_text())
        assert fixture["kind"] == kind
        history = history_from_dicts(fixture["events"])
        violations = PersistOrderOracle(window=None).check(history)
        assert violations, f"{path.name} tripped nothing"
        assert {v.kind for v in violations} == {kind}

    def test_fixture_files_cover_all_kinds(self):
        files = sorted(p.name for p in FIXTURE_DIR.glob("bad-*.json"))
        assert len(files) == len(VIOLATION_KINDS)
