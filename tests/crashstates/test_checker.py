"""End-to-end tests for the durable-state checker (check_cell) and its
campaign wiring."""

import copy

import pytest

from repro.crashstates.checker import (CRASH_STATES_SCHEMA_VERSION,
                                       check_cell)
from repro.validation.campaign import TrialSpec, _oracle_for, run_campaign


def spec_for(design, fault="power-cut", snapshot_every=10, **kw):
    return TrialSpec(workload="array_swaps", design=design, fault=fault,
                     n_threads=2, fases_per_thread=4,
                     snapshot_every=snapshot_every, **kw)


CYCLES = (200, 900, 2200)


def strip_timings(payload):
    payload = copy.deepcopy(payload)
    payload.pop("timings", None)
    return payload


class TestCheckCell:
    def test_strict_cell_converges_within_budget(self):
        """A fig9-style strict cell: every enumerated image recovers,
        the floor image pins against persisted_snapshot, and some
        cycles restore from rungs rather than cold-booting."""
        report = check_cell(spec_for("DPO"), CYCLES, image_budget=16)
        assert report["schema_version"] == CRASH_STATES_SCHEMA_VERSION
        assert report["model"] == "strict"
        assert report["consistent"]
        assert report["images_failed"] == 0
        assert report["floor_mismatches"] == 0
        assert report["cycles_checked"] == len(CYCLES)
        assert report["images_enumerated"] >= len(CYCLES)
        assert report["restored_cycles"] >= 1
        assert report["witness"] is None

    @pytest.mark.parametrize("design,model", [
        ("IntelX86", "epoch"), ("HOPS", "percore"), ("PMEM-Spec", "spec")])
    def test_relaxed_models_converge(self, design, model):
        report = check_cell(spec_for(design), (200, 1500),
                            image_budget=12)
        assert report["model"] == model
        assert report["consistent"], report["witness"]
        assert report["floor_mismatches"] == 0

    def test_torn_log_caught_and_shrunk(self):
        """The negative control: a torn undo-log tail must surface as a
        failing image, and shrinking must deliver a minimal witness."""
        report = check_cell(spec_for("DPO", fault="torn-log"),
                            (800,), image_budget=16)
        assert not report["consistent"]
        assert report["images_failed"] > 0
        assert report["shrink"] is not None
        witness = report["witness"]
        assert witness is not None
        assert witness["crash_cycle"] <= 800
        assert witness["image"] is not None
        assert witness["image"]["image_fingerprint"]
        assert witness["image"]["violations"]

    def test_virtual_fault_skipped(self):
        """virtual-misspec leaves the power on: there is no power-cut
        image, so the cell is skipped (vacuously consistent) rather
        than checked against a meaningless snapshot."""
        report = check_cell(spec_for("PMEM-Spec", fault="virtual-misspec"),
                            CYCLES)
        assert report["skipped"]
        assert report["consistent"]
        assert report["cycles"] == []

    def test_payload_deterministic(self):
        first = check_cell(spec_for("PMEM-Spec"), (300, 1200),
                           image_budget=12)
        second = check_cell(spec_for("PMEM-Spec"), (300, 1200),
                            image_budget=12)
        assert strip_timings(first) == strip_timings(second)

    def test_cold_path_matches_warm(self):
        """restore=False cold-boots every acquire in the same laddered
        timing universe; the enumerated images and verdicts must not
        change."""
        warm = check_cell(spec_for("DPO", snapshot_every=10), (1500,),
                          image_budget=12)
        cold = check_cell(spec_for("DPO", snapshot_every=10), (1500,),
                          image_budget=12, restore=False)
        assert warm["restored_cycles"] == 1
        assert cold["restored_cycles"] == 0
        for key in ("images_enumerated", "images_failed", "consistent",
                    "floor_mismatches"):
            assert warm[key] == cold[key]
        warm_cycle = {k: v for k, v in warm["cycles"][0].items()
                      if k not in ("restored_from",)}
        cold_cycle = {k: v for k, v in cold["cycles"][0].items()
                      if k not in ("restored_from",)}
        assert warm_cycle == cold_cycle


class TestOracleGating:
    def test_non_speculating_design_still_gets_image_checks(self):
        """IntelX86 never speculates: the oracle's stale-read replay is
        gated off for it, but image enumeration still runs -- the
        gating must not silently skip the whole cell."""
        spec = spec_for("IntelX86")
        report = check_cell(spec, (500,), image_budget=8)
        assert report["images_checked"] > 0
        assert report["consistent"]
        # And the gate really is off for this design's oracle.
        from repro.validation.campaign import _build
        _, system, _, _, _ = _build(spec, capture=False)
        assert _oracle_for(system).check_stale_reads is False

    def test_speculating_design_keeps_the_gate_on(self):
        spec = spec_for("PMEM-Spec")
        from repro.validation.campaign import _build
        _, system, _, _, _ = _build(spec, capture=False)
        assert _oracle_for(system).check_stale_reads is True


class TestCampaignWiring:
    def test_campaign_crash_states_section(self):
        report = run_campaign(
            ["array_swaps"], ["DPO", "IntelX86"], budget=8,
            fases_per_thread=4, crash_states=True, image_budget=8)
        assert report.crash_states is not None
        section = report.crash_states
        assert section["schema_version"] == CRASH_STATES_SCHEMA_VERSION
        assert section["image_budget"] == 8
        assert len(section["cells"]) == 2
        assert all(cell["consistent"] for cell in section["cells"])
        assert report.crash_states_ok
        payload = report.to_dict()
        assert payload["crash_states_ok"]
        assert payload["crash_states"]["cells"]

    def test_campaign_fingerprint_reproducible(self):
        kwargs = dict(budget=8, fases_per_thread=4, seed=7,
                      crash_states=True, image_budget=8)
        first = run_campaign(["array_swaps"], ["DPO"], **kwargs)
        second = run_campaign(["array_swaps"], ["DPO"], **kwargs)
        assert first.fingerprint() == second.fingerprint()
        third = run_campaign(["array_swaps"], ["DPO"],
                             **{**kwargs, "seed": 8})
        assert first.fingerprint() != third.fingerprint()

    def test_campaign_without_crash_states_unchanged(self):
        report = run_campaign(["array_swaps"], ["DPO"], budget=8,
                              fases_per_thread=4)
        assert report.crash_states is None
        assert report.crash_states_ok
        assert "crash_states" not in report.to_dict()
