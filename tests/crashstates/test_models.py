"""Unit tests for the durable-state models (repro.crashstates.models)."""

import random

import pytest

from repro.crashstates.models import (DEFAULT_BUDGET, MODEL_FOR_DESIGN,
                                      OrderContext, enumerate_durable_states,
                                      enumerate_ideals, materialize_image,
                                      parse_origin,
                                      records_from_device_history)


def entries_for_block(cycle, block, origin, n_bytes=4, base_value=0xA0):
    """One ``persist_block``-style burst: an entry per byte of a line."""
    return [(cycle, block * 64 + i, base_value + i, origin)
            for i in range(n_bytes)]


# ------------------------------------------------------------- grouping


class TestRecordGrouping:
    def test_per_byte_burst_is_one_record(self):
        history = entries_for_block(100, 3, "drain:c1")
        records = records_from_device_history(history)
        assert len(records) == 1
        record = records[0]
        assert record.cycle == 100
        assert record.block == 3
        assert record.core == 1
        assert record.spec_id == 0
        assert record.writes == tuple((3 * 64 + i, 0xA0 + i)
                                      for i in range(4))

    def test_runs_split_on_cycle_origin_and_block(self):
        history = (entries_for_block(100, 0, "drain:c0")
                   + entries_for_block(100, 1, "drain:c0")
                   + entries_for_block(100, 1, "drain:c1")
                   + entries_for_block(200, 1, "drain:c1"))
        records = records_from_device_history(history)
        assert [(r.cycle, r.block, r.origin) for r in records] == [
            (100, 0, "drain:c0"), (100, 1, "drain:c0"),
            (100, 1, "drain:c1"), (200, 1, "drain:c1")]
        assert [r.index for r in records] == [0, 1, 2, 3]

    def test_recovery_entries_skipped(self):
        history = ([(50, 0, 1, "drain:c0")]
                   + [(60, 8, 2, "recovery")]
                   + [(70, 16, 3, "drain:c0")])
        records = records_from_device_history(history)
        assert [r.cycle for r in records] == [50, 70]

    def test_horizon_is_inclusive(self):
        history = [(50, 0, 1, "writeback"), (60, 8, 2, "writeback"),
                   (61, 16, 3, "writeback")]
        records = records_from_device_history(history, horizon=60)
        assert [r.cycle for r in records] == [50, 60]

    def test_parse_origin(self):
        assert parse_origin("drain:c2") == (2, 0)
        assert parse_origin("persist:c1:s7") == (1, 7)
        assert parse_origin("persist:c0:s0") == (0, 0)
        assert parse_origin("writeback") == (None, 0)
        assert parse_origin("recovery") == (None, 0)
        assert parse_origin("drain:cX") == (None, 0)

    def test_materialize_applies_in_acceptance_order(self):
        history = [(10, 0, 1, "writeback"), (20, 0, 2, "writeback")]
        records = records_from_device_history(history)
        image = materialize_image(records, [0, 1], {0: 0})
        assert image == {0: 2}
        assert materialize_image(records, [0], {0: 0}) == {0: 1}
        # The base image is never mutated.
        base = {0: 9}
        materialize_image(records, [0, 1], base)
        assert base == {0: 9}


# ---------------------------------------------------------- enumeration


class TestEnumerateIdeals:
    def test_chain_fast_path_yields_prefixes(self):
        preds = [[i - 1] if i else [] for i in range(5)]
        states, truncated = enumerate_ideals(preds, 64, random.Random(0))
        assert not truncated
        assert states == [tuple(range(k)) for k in range(6)]

    def test_chain_budget_truncates_with_anchors(self):
        n = 200
        preds = [[i - 1] if i else [] for i in range(n)]
        states, truncated = enumerate_ideals(preds, 16, random.Random(0))
        assert truncated
        assert len(states) == 16
        assert () in states
        assert tuple(range(n)) in states
        # Every sampled state is still a prefix (a valid chain ideal).
        for state in states:
            assert state == tuple(range(len(state)))

    def test_antichain_exhaustive_is_powerset(self):
        preds = [[], [], []]
        states, truncated = enumerate_ideals(preds, 64, random.Random(0))
        assert not truncated
        assert len(states) == 8
        assert set(states) == {tuple(sorted(s)) for s in [
            (), (0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)]}

    def test_dag_sampling_respects_order(self):
        # Wide antichain forces sampling; sampled sets must stay ideals.
        n = 24
        preds = [[] for _ in range(n)]
        states, truncated = enumerate_ideals(preds, 32, random.Random(7))
        assert truncated
        assert len(states) == 32
        assert () in states
        assert tuple(range(n)) in states

    def test_sampling_is_deterministic_per_seed(self):
        n = 100
        preds = [[i - 1] if i else [] for i in range(n)]
        first, _ = enumerate_ideals(preds, 8, random.Random(3))
        second, _ = enumerate_ideals(preds, 8, random.Random(3))
        third, _ = enumerate_ideals(preds, 8, random.Random(4))
        assert first == second
        assert first != third

    def test_budget_floor(self):
        with pytest.raises(ValueError):
            enumerate_ideals([[]], 1, random.Random(0))


class TestEnumerateDurableStates:
    def test_strict_model_states_are_prefixes(self):
        history = [(10 * (i + 1), i * 64, i, "drain:c0")
                   for i in range(4)]
        records = records_from_device_history(history)
        states = enumerate_durable_states("DPO", records, 100)
        assert states.model == "strict"
        assert states.floor == ()
        assert states.n_states == 5
        expected = [tuple(range(k)) for k in range(5)]
        assert states.states == expected

    def test_unknown_design_falls_back_to_strict(self):
        assert "NoSuchDesign" not in MODEL_FOR_DESIGN
        history = [(10, 0, 1, "writeback")]
        records = records_from_device_history(history)
        states = enumerate_durable_states("NoSuchDesign", records, 100)
        assert states.model == "strict"

    def test_epoch_unattributed_records_are_floor(self):
        history = [(10, 0, 1, "writeback"), (20, 64, 2, "writeback")]
        records = records_from_device_history(history)
        context = OrderContext(crash_cycle=100)
        states = enumerate_durable_states("IntelX86", records, 100,
                                          context=context)
        assert states.model == "epoch"
        assert len(states.floor) == 2
        assert states.n_states == 1          # only the floor image

    def test_epoch_open_flushes_form_per_block_chains(self):
        # Two blocks, two open-epoch flushes each: ideals are the
        # product of the two per-block chains -> 3 * 3 = 9 states.
        history = [(10, 0, 1, "writeback"), (20, 64, 2, "writeback"),
                   (30, 1, 3, "writeback"), (40, 65, 4, "writeback")]
        records = records_from_device_history(history)
        flushes = tuple((0, r.block, r.cycle) for r in records)
        context = OrderContext(crash_cycle=100, flushes=flushes)
        states = enumerate_durable_states("IntelX86", records, 100,
                                          context=context)
        assert states.floor == ()
        assert states.n_states == 9
        # Keeping a later write to a block requires the earlier one.
        for state in states.states:
            if 2 in state:
                assert 0 in state
            if 3 in state:
                assert 1 in state

    def test_percore_fence_floors_the_core(self):
        history = [(10, 0, 1, "drain:c0"), (20, 64, 2, "drain:c0"),
                   (30, 128, 3, "drain:c1")]
        records = records_from_device_history(history)
        context = OrderContext(crash_cycle=100, fences=((0, 25),))
        states = enumerate_durable_states("HOPS", records, 100,
                                          context=context)
        # Core 0's drains precede its dfence at 25 -> floor; core 1's
        # single drain is the only droppable record.
        assert set(states.floor) == {0, 1}
        assert states.uncertain == (2,)
        assert states.n_states == 2

    def test_spec_holes_drop_independently(self):
        # Core 0: tagged persist with no later untagged record -> hole.
        # Core 1: untagged backbone record after it.
        history = [(10, 0, 1, "persist:c0:s3"),
                   (20, 64, 2, "persist:c1:s0")]
        records = records_from_device_history(history)
        states = enumerate_durable_states("PMEM-Spec", records, 100)
        assert states.model == "spec"
        # {}, {hole}, {backbone}, {hole, backbone}?  The hole at 10 has
        # no earlier backbone, the backbone at 20 has no earlier
        # backbone either -> hole and backbone are incomparable.
        assert states.n_states == 4

    def test_spec_commit_resolves_the_hole(self):
        # A later untagged record from the same core commits the FASE:
        # the tagged record joins the backbone chain.
        history = [(10, 0, 1, "persist:c0:s3"),
                   (20, 64, 2, "persist:c0:s0")]
        records = records_from_device_history(history)
        states = enumerate_durable_states("PMEM-Spec", records, 100)
        assert states.n_states == 3          # chain of two -> 3 prefixes

    def test_spec_window_expiry_resolves_the_hole(self):
        history = [(10, 0, 1, "persist:c0:s3")]
        records = records_from_device_history(history)
        live = enumerate_durable_states(
            "PMEM-Spec", records, 100,
            context=OrderContext(crash_cycle=100, window=320))
        expired = enumerate_durable_states(
            "PMEM-Spec", records, 500,
            context=OrderContext(crash_cycle=500, window=320))
        assert live.n_states == 2            # {} and {hole}
        assert expired.n_states == 2         # prefixes of a 1-chain
        # Same count, different structure: the live one is a droppable
        # hole, the expired one is ordinary backbone.  Distinguish via
        # a second, later backbone record.
        history2 = history + [(15, 64, 2, "persist:c1:s0")]
        records2 = records_from_device_history(history2)
        live2 = enumerate_durable_states(
            "PMEM-Spec", records2, 100,
            context=OrderContext(crash_cycle=100, window=320))
        expired2 = enumerate_durable_states(
            "PMEM-Spec", records2, 500,
            context=OrderContext(crash_cycle=500, window=320))
        assert live2.n_states == 4           # hole incomparable
        assert expired2.n_states == 3        # plain 2-chain

    def test_budget_and_seed_reproducibility(self):
        history = [(10 * (i + 1), i * 64, i, "drain:c0")
                   for i in range(300)]
        records = records_from_device_history(history)
        a = enumerate_durable_states("DPO", records, 10_000,
                                     budget=8, seed=42)
        b = enumerate_durable_states("DPO", records, 10_000,
                                     budget=8, seed=42)
        c = enumerate_durable_states("DPO", records, 10_000,
                                     budget=8, seed=43)
        assert a.truncated and a.n_states == 8
        assert a.states == b.states
        assert a.states != c.states
        assert a.budget == 8
        assert DEFAULT_BUDGET == 64

    def test_floor_image_applies_everything(self):
        history = [(10, 0, 1, "writeback"), (20, 0, 2, "drain:c0")]
        records = records_from_device_history(history)
        states = enumerate_durable_states("IntelX86", records, 100)
        assert states.floor_image({}) == {0: 2}
