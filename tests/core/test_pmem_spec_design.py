"""Unit tests for the PMEM-Spec design class itself (core side)."""

from repro.config import table3_config
from repro.isa import Fase, LockAcquire, LockRelease, Program, PWrite, \
    ThreadProgram
from repro.persistency import design_by_name
from repro.runtime import DATA_BASE
from repro.system import build_system


def locked_writer_program(n_threads=2, fases=4, shared=True):
    threads = []
    fase_id = 0
    for tid in range(n_threads):
        fase_list = []
        for index in range(fases):
            addr = DATA_BASE + (tid * fases + index) * 64
            fase_list.append(Fase(fase_id, [
                LockAcquire(0),
                PWrite(addr, index + 1, shared=shared),
                LockRelease(0),
            ]))
            fase_id += 1
        threads.append(ThreadProgram(tid, fase_list))
    return Program("tagging", threads, n_locks=1)


def run(program, **overrides):
    config = table3_config(n_cores=program.n_threads, **overrides)
    system = build_system(program, design_by_name("PMEM-Spec"), config)
    return system, system.run()


class TestSpecIdTagging:
    def test_shared_cs_stores_are_tagged(self):
        _system, result = run(locked_writer_program(shared=True))
        assert result.stats["design"]["tagged_stores"] == 8

    def test_private_stores_untagged_with_escape_analysis(self):
        _system, result = run(locked_writer_program(shared=False))
        assert result.stats["design"].get("tagged_stores", 0) == 0

    def test_naive_compiler_tags_everything(self):
        _system, result = run(locked_writer_program(shared=False),
                              extra={"tag_private_stores": 1})
        assert result.stats["design"]["tagged_stores"] == 8

    def test_stores_outside_critical_sections_untagged(self):
        fase = Fase(0, [PWrite(DATA_BASE, 1, shared=True)])
        program = Program("p", [ThreadProgram(0, [fase])])
        _system, result = run(program)
        assert result.stats["design"].get("tagged_stores", 0) == 0

    def test_spec_ids_monotone_in_lock_order(self):
        system, _result = run(locked_writer_program())
        # Every critical section consumed one ID.
        assert system.spec_ids.counter.assigned == 8


class TestBarrierAccounting:
    def test_one_spec_barrier_per_writing_fase(self):
        _system, result = run(locked_writer_program())
        assert result.stats["design"]["spec_barriers"] == 8

    def test_barrier_stall_positive(self):
        _system, result = run(locked_writer_program())
        assert result.stats["design"]["spec_barrier_stall_cycles"] > 0

    def test_log_and_commit_ride_persist_path(self):
        system, result = run(locked_writer_program())
        # 1 data + 2 log-entry + 1 epoch store per FASE.
        assert result.stats["design"]["persist_path_stores"] == 8 * 4


class TestPerControllerBuffers:
    def test_multi_pmc_builds_one_buffer_per_controller(self):
        program = locked_writer_program()
        config = table3_config(n_cores=2, n_pm_controllers=2)
        system = build_system(program, design_by_name("PMEM-Spec"),
                              config)
        assert len(system.spec_buffers) == 2
        policies = [c.policy for c in system.pmc.controllers]
        assert policies[0].spec_buffer is system.spec_buffers[0]
        assert policies[1].spec_buffer is system.spec_buffers[1]
        system.run()
        total = sum(buffer.stats["in_persist"]
                    for buffer in system.spec_buffers)
        assert total == system.pmc.stats["persists"]
