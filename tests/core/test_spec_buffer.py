"""Unit tests for the speculation buffer and the global stall controller."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MisspeculationEvent,
    SpeculationBuffer,
    StallController,
    automata,
)

WINDOW = 320  # 8 cores x 20 ns at 2 GHz, §8.1


def make_buffer(entries=4, window=WINDOW):
    events = []
    stall = StallController()
    buffer = SpeculationBuffer(entries, window, stall=stall,
                               report=events.append)
    return buffer, events, stall


class TestLoadMisspeculationDetection:
    def test_full_pattern_reports_load_misspec(self):
        buffer, events, _ = make_buffer()
        buffer.on_writeback(5, now=0)
        buffer.on_read(5, now=100)
        buffer.on_persist(5, spec_id=0, core_id=2, now=200)
        assert len(events) == 1
        assert events[0].kind == "load"
        assert events[0].block == 5
        assert events[0].core_id == 2
        assert buffer.stats["load_misspeculations"] == 1

    def test_entry_recycled_after_detection(self):
        buffer, events, _ = make_buffer()
        buffer.on_writeback(5, now=0)
        buffer.on_read(5, now=100)
        buffer.on_persist(5, spec_id=0, core_id=0, now=200)
        assert buffer.occupancy(200) == 0

    def test_read_without_writeback_ignored(self):
        buffer, events, _ = make_buffer()
        buffer.on_read(5, now=0)
        buffer.on_persist(5, spec_id=0, core_id=0, now=100)
        assert events == []
        assert buffer.occupancy(100) == 0

    def test_persist_before_read_is_benign(self):
        buffer, events, _ = make_buffer()
        buffer.on_writeback(5, now=0)
        buffer.on_persist(5, spec_id=0, core_id=0, now=50)
        buffer.on_read(5, now=100)
        assert events == []

    def test_window_expiry_prevents_detection(self):
        buffer, events, _ = make_buffer()
        buffer.on_writeback(5, now=0)
        buffer.on_read(5, now=100)
        buffer.on_persist(5, spec_id=0, core_id=0, now=100 + WINDOW + 1)
        assert events == []

    def test_different_blocks_do_not_interact(self):
        buffer, events, _ = make_buffer()
        buffer.on_writeback(5, now=0)
        buffer.on_read(6, now=10)
        buffer.on_persist(6, spec_id=0, core_id=0, now=20)
        assert events == []

    def test_state_query(self):
        buffer, _, _ = make_buffer()
        assert buffer.state_of(5, 0) == automata.INITIAL
        buffer.on_writeback(5, now=0)
        assert buffer.state_of(5, 1) == automata.EVICT
        buffer.on_read(5, now=10)
        assert buffer.state_of(5, 11) == automata.SPECULATED


class TestStoreMisspeculationDetection:
    def test_lower_spec_id_after_higher_reports(self):
        buffer, events, _ = make_buffer()
        buffer.on_persist(7, spec_id=10, core_id=0, now=0)
        buffer.on_persist(7, spec_id=9, core_id=1, now=50)
        assert len(events) == 1
        assert events[0].kind == "store"
        assert buffer.stats["store_misspeculations"] == 1

    def test_in_order_spec_ids_benign(self):
        buffer, events, _ = make_buffer()
        buffer.on_persist(7, spec_id=9, core_id=0, now=0)
        buffer.on_persist(7, spec_id=10, core_id=1, now=50)
        assert events == []

    def test_untagged_persists_never_store_misspeculate(self):
        buffer, events, _ = make_buffer()
        buffer.on_persist(7, spec_id=10, core_id=0, now=0)
        buffer.on_persist(7, spec_id=0, core_id=1, now=50)
        assert events == []

    def test_window_expiry_forgets_spec_id(self):
        buffer, events, _ = make_buffer()
        buffer.on_persist(7, spec_id=10, core_id=0, now=0)
        buffer.on_persist(7, spec_id=9, core_id=1, now=WINDOW + 1)
        assert events == []

    def test_same_id_is_benign(self):
        buffer, events, _ = make_buffer()
        buffer.on_persist(7, spec_id=4, core_id=0, now=0)
        buffer.on_persist(7, spec_id=4, core_id=0, now=10)
        assert events == []

    def test_different_blocks_independent(self):
        buffer, events, _ = make_buffer()
        buffer.on_persist(7, spec_id=10, core_id=0, now=0)
        buffer.on_persist(8, spec_id=9, core_id=1, now=10)
        assert events == []


class TestCapacityAndStalls:
    def test_overflow_pauses_all_cores(self):
        buffer, _, stall = make_buffer(entries=1)
        buffer.on_writeback(1, now=0)
        buffer.on_writeback(2, now=10)  # overflow: entry 1 must expire
        assert buffer.stats["overflows"] == 1
        assert stall.stalls == 1
        assert stall.release_time(10) == WINDOW

    def test_no_overflow_when_entries_expired(self):
        buffer, _, stall = make_buffer(entries=1)
        buffer.on_writeback(1, now=0)
        buffer.on_writeback(2, now=WINDOW + 5)
        assert buffer.stats["overflows"] == 0
        assert stall.stalls == 0

    def test_sixteen_entries_absorb_bursts(self):
        buffer, _, stall = make_buffer(entries=16)
        for block in range(16):
            buffer.on_writeback(block, now=block)
        assert buffer.stats["overflows"] == 0

    def test_occupancy_decays(self):
        buffer, _, _ = make_buffer(entries=4)
        buffer.on_writeback(1, now=0)
        buffer.on_writeback(2, now=100)
        assert buffer.occupancy(150) == 2
        assert buffer.occupancy(WINDOW + 50) == 1
        assert buffer.occupancy(WINDOW + 150) == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            SpeculationBuffer(0, WINDOW)
        with pytest.raises(ValueError):
            SpeculationBuffer(4, 0)

    @settings(max_examples=40)
    @given(st.lists(st.tuples(st.sampled_from(["wb", "rd", "ps"]),
                              st.integers(min_value=0, max_value=40),
                              st.integers(min_value=0, max_value=30)),
                    max_size=80))
    def test_occupancy_never_exceeds_capacity(self, inputs):
        buffer, _, _ = make_buffer(entries=4)
        now = 0
        for kind, block, gap in inputs:
            now += gap
            if kind == "wb":
                buffer.on_writeback(block, now)
            elif kind == "rd":
                buffer.on_read(block, now)
            else:
                buffer.on_persist(block, spec_id=1, core_id=0, now=now)
            assert len(buffer.entries()) <= 4


class TestStallController:
    def test_idle_release_is_now(self):
        stall = StallController()
        assert stall.release_time(100) == 100
        assert not stall.stalled

    def test_stall_extends_release(self):
        stall = StallController()
        stall.stall_all_until(10, 50)
        assert stall.release_time(20) == 50
        assert stall.release_time(60) == 60
        assert stall.total_stall_cycles == 40

    def test_shorter_stall_does_not_shrink(self):
        stall = StallController()
        stall.stall_all_until(0, 100)
        stall.stall_all_until(10, 50)
        assert stall.release_time(10) == 100
        assert stall.stalls == 1


class TestMisspeculationEvent:
    def test_physical_address_block_aligned(self):
        event = MisspeculationEvent("load", block=3, core_id=0, time=5)
        assert event.physical_address == 192

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            MisspeculationEvent("weird", 0, 0, 0)
