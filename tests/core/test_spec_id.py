"""Unit tests for spec-ID registers and context-switch virtualisation."""

from repro.core import SpecIdFile


class TestSpecIdFile:
    def test_assign_monotonic_across_cores(self):
        ids = SpecIdFile(4)
        a = ids.assign(0)
        b = ids.assign(2)
        c = ids.assign(1)
        assert a < b < c

    def test_current_reflects_register(self):
        ids = SpecIdFile(2)
        assert ids.current(0) == 0
        assigned = ids.assign(0)
        assert ids.current(0) == assigned
        assert ids.current(1) == 0

    def test_revoke_clears(self):
        ids = SpecIdFile(2)
        ids.assign(1)
        ids.revoke(1)
        assert ids.current(1) == 0

    def test_context_switch_save_restore(self):
        """§5.2.2: a thread scheduled out inside a critical section must
        keep tagging after it is scheduled back in."""
        ids = SpecIdFile(2)
        tagged = ids.assign(0)       # thread 7 enters a critical section
        ids.save(0, thread_id=7)     # scheduled out
        assert ids.current(0) == 0   # register cleared for the next thread
        other = ids.assign(0)        # thread 8 runs on core 0
        assert other > tagged
        ids.save(0, thread_id=8)
        ids.restore(1, thread_id=7)  # thread 7 resumes on ANOTHER core
        assert ids.current(1) == tagged

    def test_restore_without_save_is_untagged(self):
        ids = SpecIdFile(1)
        ids.restore(0, thread_id=99)
        assert ids.current(0) == 0

    def test_saved_value_consumed_once(self):
        ids = SpecIdFile(1)
        ids.assign(0)
        ids.save(0, thread_id=1)
        ids.restore(0, thread_id=1)
        first = ids.current(0)
        ids.save(0, thread_id=1)
        ids.restore(0, thread_id=1)
        assert ids.current(0) == first
