"""Unit and property tests for the Figure 5 detection automaton."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import automata as fsm


class TestTransitions:
    def test_initial_ignores_reads_and_persists(self):
        assert fsm.step(fsm.INITIAL, fsm.READ)[0] == fsm.INITIAL
        assert fsm.step(fsm.INITIAL, fsm.PERSIST)[0] == fsm.INITIAL

    def test_writeback_starts_monitoring(self):
        state, action = fsm.step(fsm.INITIAL, fsm.WRITEBACK)
        assert state == fsm.EVICT
        assert action == fsm.RESTART_WINDOW

    def test_read_of_monitored_block_speculates(self):
        assert fsm.step(fsm.EVICT, fsm.READ)[0] == fsm.SPECULATED

    def test_persist_after_speculated_read_is_misspeculation(self):
        assert fsm.step(fsm.SPECULATED, fsm.PERSIST)[0] == fsm.MISSPECULATION

    def test_persist_before_read_ends_monitoring(self):
        state, action = fsm.step(fsm.EVICT, fsm.PERSIST)
        assert state == fsm.INITIAL
        assert action == fsm.DEALLOCATE

    def test_window_expiry_deallocates(self):
        for state in (fsm.EVICT, fsm.SPECULATED):
            next_state, action = fsm.step(state, fsm.EXPIRE)
            assert next_state == fsm.INITIAL
            assert action == fsm.DEALLOCATE

    def test_repeated_writebacks_restart_window(self):
        state, action = fsm.step(fsm.EVICT, fsm.WRITEBACK)
        assert state == fsm.EVICT
        assert action == fsm.RESTART_WINDOW

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            fsm.step("Bogus", fsm.READ)

    def test_unknown_input_rejected(self):
        with pytest.raises(ValueError):
            fsm.step(fsm.INITIAL, "Bogus")


class TestPatterns:
    def test_figure6a_stale_read_detected(self):
        """WriteBack - Read - Persist: the paper's misspeculation pattern."""
        assert fsm.detects([fsm.WRITEBACK, fsm.READ, fsm.PERSIST])

    def test_figure6a_with_multiple_reads(self):
        assert fsm.detects(
            [fsm.WRITEBACK, fsm.READ, fsm.READ, fsm.PERSIST])

    def test_figure6b_write_on_allocation_is_benign(self):
        """A store-miss fetch (Read with no preceding WriteBack) must not
        trigger detection -- the false positive of Figure 4."""
        assert not fsm.detects([fsm.READ, fsm.PERSIST])

    def test_persist_first_then_read_is_benign(self):
        assert not fsm.detects([fsm.WRITEBACK, fsm.PERSIST, fsm.READ])

    def test_expired_window_misses_late_persist(self):
        """After expiry the entry is gone; a late persist is ignored
        (which is why the window must cover worst-case path latency)."""
        assert not fsm.detects(
            [fsm.WRITEBACK, fsm.READ, fsm.EXPIRE, fsm.PERSIST])

    def test_run_returns_final_state(self):
        assert fsm.run([fsm.WRITEBACK, fsm.READ]) == fsm.SPECULATED
        assert fsm.run([]) == fsm.INITIAL

    @given(st.lists(st.sampled_from(fsm.INPUTS), max_size=30))
    def test_total_function(self, symbols):
        """The automaton must accept any input sequence without error."""
        assert fsm.run(symbols) in fsm.STATES

    @given(st.lists(st.sampled_from(fsm.INPUTS), max_size=30))
    def test_detection_requires_full_pattern(self, symbols):
        """If MISSPECULATION is reached, the input must contain a
        WriteBack before a Read before a Persist (soundness: no detection
        without the stale-read pattern)."""
        if not fsm.detects(symbols):
            return
        saw_wb = saw_read_after_wb = confirmed = False
        for symbol in symbols:
            if symbol == fsm.WRITEBACK:
                saw_wb = True
            elif symbol == fsm.READ and saw_wb:
                saw_read_after_wb = True
            elif symbol == fsm.PERSIST and saw_read_after_wb:
                confirmed = True
        assert confirmed
