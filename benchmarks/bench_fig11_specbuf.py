"""Figure 11: PMEM-Spec throughput vs speculation-buffer size (8 cores).

Paper shape: a 1-entry buffer costs throughput through all-core pauses
(paper: 12.8% vs the overflow-free 16-entry buffer); throughput is
monotonically non-decreasing with size and saturates by 16 entries,
which never overflows (§8.3.2).
"""

from repro.config import table3_config
from repro.harness import figure11, format_series
from repro.persistency import design_by_name
from repro.system import build_system
from repro.workloads import workload_by_name

SIZES = (1, 2, 4, 8, 16)
SCALE = 0.6
SEED = 42


def test_figure11(benchmark, run_once, executor):
    series = run_once(benchmark,
                      lambda: figure11(buffer_sizes=SIZES, scale=SCALE,
                                       seed=SEED, executor=executor))
    print("\n" + format_series(
        series, "entries", "throughput vs 16-entry",
        "Figure 11: speculation-buffer size sensitivity"))
    assert series[16] == 1.0
    assert series[1] <= series[16]
    assert series[2] <= series[16] + 1e-9
    # Near-saturation by 4 entries, as the paper's default suggests.
    assert series[4] > 0.85


def test_sixteen_entries_never_overflow():
    """§8.3.2: 'When it comes to the speculation buffer with 16-entry,
    we have not observed overflows.'"""
    workload = workload_by_name("hashmap", seed=SEED)
    program = workload.build(8, 40)
    config = table3_config(n_cores=8, spec_buffer_entries=16)
    system = build_system(program, design_by_name("PMEM-Spec"), config)
    result = system.run()
    assert result.spec_buffer_overflows == 0


def test_single_entry_overflows():
    workload = workload_by_name("hashmap", seed=SEED)
    program = workload.build(8, 40)
    config = table3_config(n_cores=8, spec_buffer_entries=1)
    system = build_system(program, design_by_name("PMEM-Spec"), config)
    result = system.run()
    assert result.spec_buffer_overflows > 0
