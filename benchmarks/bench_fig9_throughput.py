"""Figure 9: throughput of all four designs on the 8-core system,
normalised to the IntelX86 epoch baseline.

Paper shape this bench checks:
* PMEM-Spec outperforms the baseline overall (paper: 1.27x geomean) and
  outperforms HOPS (paper: 10.6% margin) -- the headline "strict can
  trump relaxed" claim;
* HOPS lands above the baseline (paper: ~1.15x);
* DPO lands at or below the baseline;
* short-FASE benchmarks (queue, hashmap) show little or no PMEM-Spec
  win, the long-transaction ones show the big wins (§8.2.1).
"""

from repro.harness import DESIGNS, figure9, format_normalized_table
from repro.sim import geomean

SCALE = 0.5
SEED = 42


def test_figure9(benchmark, run_once, executor):
    rows = run_once(benchmark,
                    lambda: figure9(n_threads=8, scale=SCALE, seed=SEED,
                                    executor=executor))
    print("\n" + format_normalized_table(
        rows, DESIGNS, "Figure 9: normalised throughput (8 cores)"))

    def gm(design):
        return geomean([rows[b][design] for b in rows])

    # Baseline normalises to 1 by construction.
    assert all(abs(rows[b]["IntelX86"] - 1.0) < 1e-9 for b in rows)
    # Headline ordering: PMEM-Spec > HOPS > baseline >= DPO.
    assert gm("PMEM-Spec") > 1.0
    assert gm("PMEM-Spec") > gm("HOPS")
    assert gm("HOPS") > 1.0
    assert gm("DPO") < 1.0
    # Short-FASE benchmarks: no large PMEM-Spec win expected (§8.2.1).
    assert rows["hashmap"]["PMEM-Spec"] < 1.15
    # Long-transaction benchmarks carry the win.
    assert rows["tpcc"]["PMEM-Spec"] > 1.1
    assert rows["rbtree"]["PMEM-Spec"] > 1.0
