"""Figure 12: geomean throughput of HOPS and PMEM-Spec vs persist-path
latency (20 ns -> 100 ns), normalised to the IntelX86 baseline.

Paper shape: throughput degrades gently with latency and, because
durability barriers are infrequent, both designs stay above the
baseline even at 100 ns (§8.3.3).  Our FASE mix is shorter than the
paper's 100K-FASE kernels, so the curves dip a little below 1.0 at the
far end; the robust shape this bench asserts is: both clearly above the
baseline at the 20 ns design point, graceful monotone decline, and
PMEM-Spec above HOPS at every latency (one barrier per FASE hides the
path latency better than draining a FIFO buffer does).
"""

from repro.harness import figure12, format_series

LATENCIES = (20, 60, 100)
SCALE = 0.3
SEED = 42


def test_figure12(benchmark, run_once, executor):
    series = run_once(benchmark,
                      lambda: figure12(latencies_ns=LATENCIES,
                                       scale=SCALE, seed=SEED,
                                       executor=executor))
    print("\n" + format_series(
        series, "persist-path ns", "geomean vs IntelX86",
        "Figure 12: persist-path latency sensitivity"))
    # At the paper's 20 ns both designs beat the baseline.
    assert series[20]["PMEM-Spec"] > 1.0
    assert series[20]["HOPS"] > 1.0
    # Graceful degradation, never a collapse.
    for latency in LATENCIES:
        assert series[latency]["PMEM-Spec"] > 0.9, latency
        assert series[latency]["HOPS"] > 0.7, latency
        # Speculation hides path latency better than buffer draining.
        assert series[latency]["PMEM-Spec"] >= series[latency]["HOPS"]
    # More latency never helps either design.
    assert series[100]["PMEM-Spec"] <= series[20]["PMEM-Spec"] + 0.02
    assert series[100]["HOPS"] <= series[20]["HOPS"] + 0.02
