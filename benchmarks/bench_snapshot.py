"""Snapshot-ladder acceleration: O(segment) crash trials.

Runs the same stratified crash campaign twice -- cold (every trial
simulates from cycle 0) and warm (each trial restores the nearest rung
at or before its crash cycle) -- in the *same* laddered timing universe,
so the only difference is where each trial starts simulating.  Ladder
spacing is sized per cell (~RUNGS rungs each) from untimed probe runs
before either measured campaign: persist densities differ ~5x across
the grid, and interval choice is campaign configuration, not part of
the work being compared.  Records wall-clock speedup plus a determinism
sample (every stored rung must replay onto the straight-line run's end
fingerprint) to ``BENCH_snapshot.json``.

Standalone::

    PYTHONPATH=src python benchmarks/bench_snapshot.py

or through pytest-benchmark::

    python -m pytest benchmarks/bench_snapshot.py
"""

import json
import shutil
import tempfile
import time

from repro.validation.campaign import (TrialSpec, profile_cell,
                                       run_campaign, verify_cell)

WORKLOADS = ["hashmap", "queue"]
DESIGNS = ["PMEM-Spec", "IntelX86"]
CELLS = [(w, d) for w in WORKLOADS for d in DESIGNS]
BUDGET = 40          # per cell: 2x2 cells -> 160 stratified trials
N_THREADS = 2
FASES = 400          # long runs: cold trials pay O(crash_cycle) sim,
SEED = 42            # warm trials pay O(tail) after an O(1) restore
RUNGS = 16


def pick_intervals() -> dict:
    """Per-cell ladder spacing (~RUNGS rungs) from unladdered probes."""
    intervals = {}
    for workload, design in CELLS:
        profile = profile_cell(TrialSpec(
            workload=workload, design=design, n_threads=N_THREADS,
            fases_per_thread=FASES, seed=SEED))
        intervals[(workload, design)] = max(
            1, len(profile.persist_cycles) // RUNGS)
    return intervals


def run_snapshot_bench(snapshot_dir: str) -> dict:
    intervals = pick_intervals()

    def campaign(directory):
        started = time.perf_counter()
        reports = [
            run_campaign(
                [workload], [design], planner="stratified", budget=BUDGET,
                seed=SEED, n_threads=N_THREADS, fases_per_thread=FASES,
                shrink=False, snapshot_every=intervals[(workload, design)],
                snapshot_dir=directory)
            for workload, design in CELLS]
        return reports, time.perf_counter() - started

    cold_reports, cold_s = campaign(None)
    warm_reports, warm_s = campaign(snapshot_dir)

    # The acceleration must be invisible in the results.
    outcomes_match = _strip(cold_reports) == _strip(warm_reports)

    restored = sum(cell["restored_trials"]
                   for report in warm_reports for cell in report.cells)
    total_trials = sum(report.total_trials for report in cold_reports)

    determinism = verify_cell(TrialSpec(
        workload=WORKLOADS[0], design=DESIGNS[0], n_threads=N_THREADS,
        fases_per_thread=FASES, seed=SEED,
        snapshot_every=intervals[(WORKLOADS[0], DESIGNS[0])],
        snapshot_dir=snapshot_dir))

    return {
        "bench": "snapshot_ladder_campaign",
        "params": {"workloads": WORKLOADS, "designs": DESIGNS,
                   "budget_per_cell": BUDGET, "n_threads": N_THREADS,
                   "fases_per_thread": FASES, "seed": SEED,
                   "rungs_per_cell": RUNGS,
                   "cell_snapshot_every": {
                       f"{w}/{d}": every
                       for (w, d), every in sorted(intervals.items())}},
        "total_trials": total_trials,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 2),
        "warm_trials_restored": restored,
        "outcomes_match": outcomes_match,
        "determinism": {
            "rungs_verified": len(determinism["checks"]),
            "all_rungs_deterministic": determinism["ok"],
        },
    }


def _strip(reports) -> list:
    """Cell outcomes without timing/provenance fields."""
    cells = []
    for report in reports:
        for cell in report.cells:
            cells.append({
                "workload": cell["workload"], "design": cell["design"],
                "trials": cell["trials"],
                "total_cycles": cell["total_cycles"],
                "violation_kinds": cell["violation_kinds"],
                "failures": [
                    {key: value for key, value in failure.items()
                     if key not in ("restored_from_cycle", "spec")}
                    for failure in cell["failures"]],
            })
    return cells


def main() -> int:
    snapshot_dir = tempfile.mkdtemp(prefix="repro-snap-bench-")
    try:
        payload = run_snapshot_bench(snapshot_dir)
    finally:
        shutil.rmtree(snapshot_dir, ignore_errors=True)
    with open("BENCH_snapshot.json", "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    ok = (payload["outcomes_match"]
          and payload["determinism"]["all_rungs_deterministic"])
    status = "ok" if ok else "FAILED"
    print(f"BENCH_snapshot.json written: {payload['total_trials']} "  # noqa: T201
          f"trials, cold {payload['cold_s']}s -> warm "
          f"{payload['warm_s']}s ({payload['speedup']}x) [{status}]")
    return 0 if ok else 1


def test_snapshot_campaign_speedup(benchmark, run_once, tmp_path):
    payload = run_once(benchmark,
                       lambda: run_snapshot_bench(str(tmp_path / "s")))
    print("\n" + json.dumps(payload, indent=2))  # noqa: T201
    assert payload["outcomes_match"], \
        "warm campaign changed trial outcomes"
    assert payload["determinism"]["all_rungs_deterministic"]
    assert payload["speedup"] >= 3.0, \
        f"ladder speedup {payload['speedup']}x below the 3x target"


if __name__ == "__main__":
    import sys
    sys.exit(main())
