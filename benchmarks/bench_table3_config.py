"""Table 3: simulator configuration (construction + consistency)."""

from repro.config import table3_config
from repro.harness import format_table3, table3_rows


def test_table3_report(benchmark, run_once):
    text = run_once(benchmark, format_table3)
    print("\n" + text)
    # The values the paper's Table 3 lists.
    assert "2GHz, 8way-OoO" in text
    assert "192-entry ROB" in text
    assert "32-entry Ld/St Queue" in text
    assert "32/64KB, 4-way, private" in text
    assert "16MB, 16-way, shared" in text
    assert "32/64-entry read/write queue" in text
    assert "4-entry speculation buffer" in text
    assert "Read = 175ns/Write = 94ns" in text
    assert "20ns" in text  # persist path


def test_table3_derived_quantities(benchmark, run_once):
    config = run_once(benchmark, table3_config)
    # §8.1: the speculative period is cores x idle path latency = 160 ns.
    assert config.speculation_window_cycles == config.ns(8 * 20.0)
    assert config.ns(1.0) == 2  # 2 GHz: 1 ns = 2 cycles
    assert len(table3_rows(config)) == 11
