"""Campaign throughput: cold vs warm vs cell-affine batched execution.

Runs the PR 4 stratified crash campaign (hashmap + queue x PMEM-Spec +
IntelX86, 40 trials per cell = 160 trials, ~16 rungs per cell) four
ways over identical work:

========== ===========================================================
pass        what each trial costs
========== ===========================================================
``cold``    no ladder store: every trial simulates from cycle 0.
``warm``    serial trial-at-a-time restore-from-rung (the PR 4
            methodology whose committed number is
            ``PR4_WARM_BASELINE_S``): build + disk read + unpickle +
            restore, per trial.
``pooled``  trial-at-a-time over :meth:`ParallelExecutor.map`: fans out
            when cores allow, but every trial still pays the full
            per-trial setup.
``batched`` cell-affine chunks over :meth:`ParallelExecutor.map_batched`:
            each worker keeps a resident system per cell and serves
            whole chunks from in-memory rungs -- cost scales with
            *cells*, not trials.
========== ===========================================================

Methodology follows ``bench_snapshot.py``: ladder spacing is sized per
cell (~RUNGS rungs) from *untimed* probe runs before any measured pass
-- interval choice is campaign configuration, not part of the work
being compared -- and every pass, including cold, runs with the same
per-cell ``snapshot_every`` so all four share one laddered timing
universe.  Correctness is asserted, not assumed: every pass must
produce the same stripped per-cell outcomes (trials, cycles,
violations, failures), so the speedup is pure mechanics.  The batched
pass runs under an event bus + metrics registry and the JSON records
where its restores came from (``resident`` / ``store`` / ``cold``)
plus batch counts.

Standalone::

    PYTHONPATH=src python benchmarks/bench_campaign.py

CI regression gate (compares against the committed JSON, fails the
process if batched trials/sec drop >20%)::

    PYTHONPATH=src python benchmarks/bench_campaign.py --check BENCH_campaign.json
"""

import gc
import json
import os
import shutil
import sys
import tempfile
import time

from repro.harness import ParallelExecutor
from repro.obsv.bus import EventBus, bus_scope
from repro.obsv.registry import MetricsRegistry
from repro.snapshot import SnapshotStore
from repro.validation.campaign import (_CAPTURED_PAYLOADS,
                                       _RESIDENT_CELLS, TrialSpec,
                                       profile_cell, run_campaign)

WORKLOADS = ["hashmap", "queue"]
DESIGNS = ["PMEM-Spec", "IntelX86"]
CELLS = [(w, d) for w in WORKLOADS for d in DESIGNS]
BUDGET = 40          # per cell: 2x2 cells -> 160 stratified trials
N_THREADS = 2
FASES = 400
SEED = 42
RUNGS = 16
#: Pool width for the pooled/batched passes.  Resident-cell batching is
#: a per-worker mechanism, so it pays off at any width; capping at the
#: core count keeps single-core boxes honest (``jobs=1`` runs the
#: batched path in-process instead of taxing one core with a pool).
JOBS = min(4, os.cpu_count() or 1)
CHUNK = 10           # trials per (cell, chunk) task: 4 batches/cell
MIN_SPEEDUP = 2.5    # batched vs the committed PR 4 warm number
REGRESSION_TOLERANCE = 0.20

#: The PR 4 snapshot-ladder bench measured the warm serial campaign at
#: 8.4s on this exact grid (see BENCH_snapshot.json).  Frozen so the
#: batched path's headline is measured against the design it replaces.
PR4_WARM_BASELINE_S = 8.4


def pick_intervals() -> dict:
    """Per-cell ladder spacing (~RUNGS rungs) from unladdered probes."""
    intervals = {}
    for workload, design in CELLS:
        profile = profile_cell(TrialSpec(
            workload=workload, design=design, n_threads=N_THREADS,
            fases_per_thread=FASES, seed=SEED))
        intervals[(workload, design)] = max(
            1, len(profile.persist_cycles) // RUNGS)
    return intervals


def _campaign(intervals, snapshot_dir, executor=None, batch=0):
    """One grid traversal (per-cell campaigns); returns (reports, wall)."""
    # Start from a settled process: no resident systems, no cached rung
    # bytes or payloads, and no garbage from the previous pass
    # inflating this one.
    _RESIDENT_CELLS.clear()
    _CAPTURED_PAYLOADS.clear()
    SnapshotStore.clear_read_cache()
    gc.collect()
    started = time.perf_counter()
    reports = [
        run_campaign(
            [workload], [design], planner="stratified", budget=BUDGET,
            seed=SEED, n_threads=N_THREADS, fases_per_thread=FASES,
            shrink=False, snapshot_every=intervals[(workload, design)],
            snapshot_dir=snapshot_dir, executor=executor, batch=batch)
        for workload, design in CELLS]
    return reports, time.perf_counter() - started


def _strip(reports) -> list:
    """Cell outcomes without timing/provenance fields."""
    cells = []
    for report in reports:
        for cell in report.cells:
            cells.append({
                "workload": cell["workload"], "design": cell["design"],
                "trials": cell["trials"],
                "total_cycles": cell["total_cycles"],
                "violation_kinds": cell["violation_kinds"],
                "failures": [
                    {key: value for key, value in failure.items()
                     if key not in ("restored_from_cycle", "spec")}
                    for failure in cell["failures"]],
            })
    return cells


def _restore_sources(registry) -> dict:
    """resident/store/cold restore counts out of the registry."""
    snap = registry.snapshot()
    series = snap.get("repro_snapshot_restores_total", {}).get("series", {})
    sources = {"resident": 0, "store": 0, "cold": 0}
    for labels, count in series.items():
        for source in sources:
            if source in labels:
                sources[source] += int(count)
    fallbacks = snap.get("repro_snapshot_cold_fallbacks_total", {})
    sources["cold_fallbacks"] = int(
        sum(fallbacks.get("series", {}).values()))
    batches = snap.get("repro_batches_total", {})
    sources["batches"] = int(sum(batches.get("series", {}).values()))
    return sources


def run_campaign_bench(scratch: str) -> dict:
    intervals = pick_intervals()
    passes = {}
    reports = {}

    reports["cold"], passes["cold"] = _campaign(intervals, None)
    reports["warm"], passes["warm"] = _campaign(
        intervals, f"{scratch}/warm")
    reports["pooled"], passes["pooled"] = _campaign(
        intervals, f"{scratch}/pooled",
        executor=ParallelExecutor(jobs=JOBS))

    registry = MetricsRegistry()
    bus = EventBus(registry=registry)
    bus.subscribe(registry.observe_event)
    with bus_scope(bus):
        reports["batched"], passes["batched"] = _campaign(
            intervals, f"{scratch}/batched",
            executor=ParallelExecutor(jobs=JOBS, bus=bus), batch=CHUNK)

    reference = _strip(reports["cold"])
    outcomes_match = all(_strip(report) == reference
                         for report in reports.values())
    total_trials = sum(report.total_trials for report in reports["cold"])

    return {
        "bench": "campaign_batched_throughput",
        "params": {"workloads": WORKLOADS, "designs": DESIGNS,
                   "budget_per_cell": BUDGET, "n_threads": N_THREADS,
                   "fases_per_thread": FASES, "seed": SEED,
                   "rungs_per_cell": RUNGS, "jobs": JOBS,
                   "batch_chunk": CHUNK,
                   "cell_snapshot_every": {
                       f"{w}/{d}": every
                       for (w, d), every in sorted(intervals.items())}},
        "total_trials": total_trials,
        "passes": {name: round(wall, 3) for name, wall in passes.items()},
        "trials_per_sec": {name: round(total_trials / wall, 1)
                           for name, wall in passes.items()},
        "batched_trials_per_sec": round(
            total_trials / passes["batched"], 1),
        "pr4_warm_baseline_s": PR4_WARM_BASELINE_S,
        "speedup_vs_pr4_warm": round(
            PR4_WARM_BASELINE_S / passes["batched"], 2),
        "speedup_vs_warm": round(passes["warm"] / passes["batched"], 2),
        "speedup_vs_cold": round(passes["cold"] / passes["batched"], 2),
        "batched_restore_sources": _restore_sources(registry),
        "outcomes_match": outcomes_match,
    }


def main(argv) -> int:
    scratch = tempfile.mkdtemp(prefix="repro-campaign-bench-")
    try:
        payload = run_campaign_bench(scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    failures = []
    if not payload["outcomes_match"]:
        failures.append("pass outcomes diverged")
    if payload["speedup_vs_pr4_warm"] < MIN_SPEEDUP:
        failures.append(
            f"batched speedup {payload['speedup_vs_pr4_warm']}x < "
            f"{MIN_SPEEDUP}x bar vs the PR 4 warm baseline")
    if payload["batched_restore_sources"]["resident"] == 0:
        failures.append("no trial was ever served from a resident rung")
    if "--check" in argv:
        committed_path = argv[argv.index("--check") + 1]
        with open(committed_path) as handle:
            committed = json.load(handle)["batched_trials_per_sec"]
        floor = committed * (1.0 - REGRESSION_TOLERANCE)
        payload["regression_check"] = {
            "committed_batched_trials_per_sec": committed,
            "floor": round(floor, 1),
            "ok": payload["batched_trials_per_sec"] >= floor,
        }
        if payload["batched_trials_per_sec"] < floor:
            failures.append(
                f"batched {payload['batched_trials_per_sec']} trials/s "
                f"below {floor:.1f} (committed {committed} - "
                f"{REGRESSION_TOLERANCE:.0%})")
    else:
        with open("BENCH_campaign.json", "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    status = "ok" if not failures else "; ".join(failures)
    print(f"campaign bench: {payload['total_trials']} trials, "  # noqa: T201
          f"cold {payload['passes']['cold']}s / warm "
          f"{payload['passes']['warm']}s / batched "
          f"{payload['passes']['batched']}s "
          f"({payload['speedup_vs_pr4_warm']}x vs PR 4 warm) [{status}]")
    return 0 if not failures else 1


def test_campaign_batched_speedup(benchmark, run_once, tmp_path):
    payload = run_once(benchmark,
                       lambda: run_campaign_bench(str(tmp_path)))
    print("\n" + json.dumps(payload, indent=2))  # noqa: T201
    assert payload["outcomes_match"], \
        "batched campaign changed trial outcomes"
    assert payload["batched_restore_sources"]["resident"] > 0
    assert payload["speedup_vs_warm"] >= 1.5, \
        f"batched only {payload['speedup_vs_warm']}x vs in-run warm"


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
