"""Engine-loop throughput on the Figure 9 sweep grid.

Times **only** ``System.run()`` (build and lowering excluded) across
the reduced fig9 matrix -- every benchmark x every design, 8 threads,
scale 0.25, seed 42 -- for both event-queue implementations
(:class:`repro.sim.HeapScheduler` and the default
:class:`repro.sim.CalendarScheduler`).  Each scheduler gets a *cold*
pass (first in-process traversal of the grid) and a *warm* pass
(second traversal: allocator, bytecode and branch caches hot), which
is what a long parameter sweep actually sees.

Correctness is asserted, not assumed: every cell's ``SimResult`` dict
and post-run ``state_fingerprint()`` must be identical across the two
schedulers and across the cold/warm passes; any divergence fails the
bench.

``LEGACY_BASELINE`` pins the pre-overhaul number (single-heap
push/pop-per-Event scheduler, no fast callback path, unindexed PM
device) measured with this exact grid and methodology; the reported
``speedup_vs_legacy`` is the PR's headline figure and must stay >= 5x.

Standalone::

    PYTHONPATH=src python benchmarks/bench_engine.py

CI regression gate (compares against the committed JSON, fails the
process if the default scheduler's cold throughput drops >20%)::

    PYTHONPATH=src python benchmarks/bench_engine.py --check BENCH_engine.json
"""

import gc
import json
import os
import sys
import time

from repro.harness.configs import BENCHMARK_ORDER, DESIGNS
from repro.harness.sweep import RunSpec, build_spec_system
from repro.sim import DEFAULT_SCHEDULER, SCHEDULERS
from repro.workloads import BENCHMARKS

SCALE = float(os.environ.get("REPRO_BENCH_ENGINE_SCALE", "0.25"))
N_THREADS = 8
SEED = 42
MIN_SPEEDUP = 5.0          # the PR's perf bar, vs LEGACY_BASELINE
MIN_WARM_RATIO = 0.9       # warm pass must not trail cold by > 10%
REGRESSION_TOLERANCE = 0.20

#: Pre-overhaul engine on this same grid/methodology (heap scheduler,
#: Event allocated per hop, O(image) PM block scans).  Frozen so the
#: speedup is measured against the design being replaced, not against
#: whatever the previous CI run happened to score.
LEGACY_BASELINE = {
    "cycles_per_sec": 36718.8,
    "total_wall_s": 39.636,
    "engine": "heap push/pop per Event, unindexed PMDevice",
}


def _grid():
    for benchmark in BENCHMARK_ORDER:
        fases = max(5, round(BENCHMARKS[benchmark].default_fases * SCALE))
        for design in DESIGNS:
            yield RunSpec(benchmark=benchmark, design=design,
                          n_threads=N_THREADS, fases_per_thread=fases,
                          seed=SEED)


def _run_grid(scheduler: str):
    """One traversal; returns (cycles, wall_s, per-cell outcomes)."""
    outcomes = {}
    total_cycles = 0
    total_wall = 0.0
    for spec in _grid():
        system = build_spec_system(spec, scheduler=scheduler)
        started = time.perf_counter()
        result = system.run()
        total_wall += time.perf_counter() - started
        total_cycles += result.cycles
        outcomes[(spec.benchmark, spec.design)] = (
            result.to_dict(), system.state_fingerprint())
    return total_cycles, total_wall, outcomes


def run_engine_bench() -> dict:
    passes = {}
    reference = None
    identical = True
    for scheduler in sorted(SCHEDULERS):
        for temperature in ("cold", "warm"):
            # Every pass starts from a settled heap: garbage left by the
            # previous pass must not tax this pass's GC (the old
            # warm-slower-than-cold inversion was exactly that, fed by a
            # lowering-cache leak that grew the heap on every pass).
            gc.collect()
            cycles, wall, outcomes = _run_grid(scheduler)
            passes[(scheduler, temperature)] = (cycles, wall)
            if reference is None:
                reference = outcomes
            elif outcomes != reference:
                identical = False
    default_cold = passes[(DEFAULT_SCHEDULER, "cold")]
    schedulers = {
        scheduler: {
            "cold_cycles_per_sec": round(
                passes[(scheduler, "cold")][0]
                / passes[(scheduler, "cold")][1], 1),
            "warm_cycles_per_sec": round(
                passes[(scheduler, "warm")][0]
                / passes[(scheduler, "warm")][1], 1),
            "cold_wall_s": round(passes[(scheduler, "cold")][1], 3),
            "warm_wall_s": round(passes[(scheduler, "warm")][1], 3),
        }
        for scheduler in sorted(SCHEDULERS)
    }
    cycles_per_sec = round(default_cold[0] / default_cold[1], 1)
    return {
        "bench": "engine_loop_throughput",
        "params": {"benchmarks": list(BENCHMARK_ORDER),
                   "designs": list(DESIGNS), "scale": SCALE,
                   "n_threads": N_THREADS, "seed": SEED,
                   "cells": len(BENCHMARK_ORDER) * len(DESIGNS),
                   "timed": "System.run() only (build excluded)"},
        "default_scheduler": DEFAULT_SCHEDULER,
        "total_cycles": default_cold[0],
        "cycles_per_sec": cycles_per_sec,
        "schedulers": schedulers,
        "legacy_baseline": LEGACY_BASELINE,
        "speedup_vs_legacy": round(
            cycles_per_sec / LEGACY_BASELINE["cycles_per_sec"], 2),
        "results_identical_across_schedulers": identical,
    }


def main(argv) -> int:
    payload = run_engine_bench()
    failures = []
    if not payload["results_identical_across_schedulers"]:
        failures.append("scheduler A/B results diverged")
    if payload["speedup_vs_legacy"] < MIN_SPEEDUP:
        failures.append(
            f"speedup {payload['speedup_vs_legacy']}x < {MIN_SPEEDUP}x bar")
    for scheduler, numbers in payload["schedulers"].items():
        cold = numbers["cold_cycles_per_sec"]
        warm = numbers["warm_cycles_per_sec"]
        if warm < MIN_WARM_RATIO * cold:
            failures.append(
                f"{scheduler}: warm {warm} < {MIN_WARM_RATIO:.0%} of "
                f"cold {cold} (state leaking across passes?)")
    if "--check" in argv:
        committed_path = argv[argv.index("--check") + 1]
        with open(committed_path) as handle:
            committed = json.load(handle)["cycles_per_sec"]
        floor = committed * (1.0 - REGRESSION_TOLERANCE)
        payload["regression_check"] = {
            "committed_cycles_per_sec": committed,
            "floor": round(floor, 1),
            "ok": payload["cycles_per_sec"] >= floor,
        }
        if payload["cycles_per_sec"] < floor:
            failures.append(
                f"throughput {payload['cycles_per_sec']} below "
                f"{floor:.0f} (committed {committed} - "
                f"{REGRESSION_TOLERANCE:.0%})")
    else:
        with open("BENCH_engine.json", "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    status = "ok" if not failures else "; ".join(failures)
    print(f"engine bench: {payload['cycles_per_sec']} cycles/sec "  # noqa: T201
          f"({payload['speedup_vs_legacy']}x vs legacy engine) [{status}]")
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
