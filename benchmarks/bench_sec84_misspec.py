"""§8.4: misspeculation rates.

Paper shape: across every Table 4 benchmark under the default (Table 3)
configuration, PMEM-Spec *never* misspeculates.  A synthetic program
triggers PM load misspeculation only under an unrealistically slow
persist path (and never at the paper's 20 ns); an artificially congested
ring makes one core's persists arrive late enough to violate the
inter-thread persist order, which the spec-ID check detects.  All
detections recover: every FASE eventually commits.
"""

from repro.harness import format_misspec_table, misspeculation_rates

SCALE = 0.5
SEED = 42


def test_misspeculation_rates(benchmark, run_once, executor):
    rows = run_once(benchmark,
                    lambda: misspeculation_rates(scale=SCALE, seed=SEED,
                                                 executor=executor))
    print("\n" + format_misspec_table(
        rows, "Section 8.4: misspeculation rates"))
    by_key = {(row["workload"], row["config"]): row for row in rows}

    # Zero misspeculation on every real benchmark (the paper's result).
    for (workload, config), row in by_key.items():
        if config == "table3":
            assert row["load_misspec"] == 0, workload
            assert row["store_misspec"] == 0, workload
            assert row["aborts"] == 0, workload

    # The synthetic probes trigger exactly their own violation kind...
    slow = by_key[("load_misspec_probe", "125x path")]
    assert slow["load_misspec"] > 0
    assert slow["store_misspec"] == 0
    congested = by_key[("store_misspec_probe", "congested ring")]
    assert congested["store_misspec"] > 0
    assert congested["load_misspec"] == 0

    # ...recover fully (aborted FASEs retried to commit)...
    assert slow["aborts"] > 0 and slow["commits"] > 0
    assert congested["aborts"] >= congested["store_misspec"]

    # ...and the load probe is silent at the paper's 20 ns latency.
    fast = by_key[("load_misspec_probe", "20ns path")]
    assert fast["load_misspec"] == 0
    assert fast["stale_loads"] == 0
