"""Service fabric: warm-resume speedup + work-stealing straggler win.

Two headline numbers for the PR 9 service (``repro.service``), both on
the ``bench_campaign`` 160-trial grid (hashmap + queue x PMEM-Spec +
IntelX86, 40 stratified trials per cell, ~16 rungs):

``resume``
    The same campaign job run twice through :class:`JobRunner` over
    one :class:`JobStore`: a cold submit-to-done pass that simulates
    and journals all 24 tasks, then a forced re-run that must replay
    every outcome from the task journal (``tasks_executed == 0``) and
    produce a byte-identical report (:func:`report_fingerprint`).
    That replay-to-cold ratio is what a killed-and-resumed job gets
    back for work completed before the kill.

``steal``
    A deliberately skewed grid (one cell-affine deque owning 8 x ~250ms
    chunks, the other 2 x ~50ms) through the same
    :class:`WorkStealingPool` twice: stock (idle worker steals from
    the straggler's tail) vs a stealing-disabled variant that models
    static cell-affine assignment.  Sleep-based tasks make the skew
    deterministic, so the win is pure scheduling.

Standalone::

    PYTHONPATH=src python benchmarks/bench_service.py

CI regression gate (compares against the committed JSON)::

    PYTHONPATH=src python benchmarks/bench_service.py --check BENCH_service.json
"""

import json
import shutil
import sys
import tempfile
import time

from repro.obsv.bus import EventBus
from repro.service import (
    JobRunner,
    JobSpec,
    JobStore,
    Task,
    WorkStealingPool,
    report_fingerprint,
)

WORKLOADS = ["hashmap", "queue"]
DESIGNS = ["PMEM-Spec", "IntelX86"]
BUDGET = 40          # per cell: 2x2 cells -> 160 stratified trials
N_THREADS = 2
FASES = 400
SEED = 42
RUNGS = 16
CHUNK = 10
JOBS = 2             # pool width; 2 keeps single-core CI honest

#: A resumed job must replay journaled work at least this much faster
#: than simulating it (the fabric's reason to exist).
MIN_RESUME_SPEEDUP = 3.0
#: Stealing must beat static cell-affine assignment on the skewed grid.
MIN_STEAL_SPEEDUP = 1.25
#: ``--check`` floor: ratios are machine-relative, so the committed
#: resume speedup only gates at half its recorded value.
REGRESSION_TOLERANCE = 0.50

STRAGGLER_S = 0.25   # per chunk on the overloaded deque (x8)
QUICK_S = 0.05       # per chunk on the idle-prone deque (x2)


def fixture_spec() -> JobSpec:
    return JobSpec.campaign(WORKLOADS, DESIGNS, budget=BUDGET,
                            seed=SEED, n_threads=N_THREADS,
                            fases_per_thread=FASES,
                            snapshot_rungs=RUNGS, batch=CHUNK)


# ------------------------------------------------------------- resume


def run_resume_bench(scratch: str) -> dict:
    store = JobStore(f"{scratch}/store")
    runner = JobRunner(store, workers=JOBS)
    record = store.submit(fixture_spec())

    started = time.perf_counter()
    cold = runner.run_job(record.job_id)
    cold_s = time.perf_counter() - started
    cold_print = report_fingerprint(store.load_report(record.job_id))

    store.submit(fixture_spec(), force=True)
    started = time.perf_counter()
    warm = runner.run_job(record.job_id)
    warm_s = time.perf_counter() - started
    warm_print = report_fingerprint(store.load_report(record.job_id))

    return {
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 1),
        "tasks_total": cold.detail["tasks_total"],
        "cold_tasks_executed": cold.detail["tasks_executed"],
        "warm_tasks_executed": warm.detail["tasks_executed"],
        "warm_tasks_from_journal": warm.detail["tasks_from_journal"],
        "states": [cold.state, warm.state],
        "fingerprint_match": cold_print == warm_print,
    }


# -------------------------------------------------------------- steal


def _nap(arg):
    time.sleep(arg)
    return arg


class _NoStealPool(WorkStealingPool):
    """Static cell-affine assignment: the stock pool minus stealing."""

    def _dispatch_idle(self, pool, deques, tasks, bus) -> None:
        for worker in pool:
            if not worker.idle:
                continue
            own = deques[worker.worker_id]
            if own:
                seq = own.popleft()
                bus.emit("task_start", index=seq,
                         label=tasks[seq].describe())
                worker.dispatch(seq, tasks[seq], stolen=False)


def _straggler_tasks() -> list:
    tasks = [Task(key=f"slow{i}", fn=_nap, arg=STRAGGLER_S,
                  affinity="congested") for i in range(8)]
    tasks += [Task(key=f"fast{i}", fn=_nap, arg=QUICK_S,
                   affinity="quiet") for i in range(2)]
    return tasks


def run_steal_bench() -> dict:
    bus = EventBus()
    steals = []
    bus.subscribe(lambda event: steals.append(event)
                  if event["kind"] == "steal" else None)

    started = time.perf_counter()
    static = _NoStealPool(workers=2).run(_straggler_tasks())
    no_steal_s = time.perf_counter() - started

    started = time.perf_counter()
    stolen = WorkStealingPool(workers=2, bus=bus).run(
        _straggler_tasks())
    steal_s = time.perf_counter() - started

    return {
        "grid": {"straggler_chunks": 8, "straggler_s": STRAGGLER_S,
                 "quick_chunks": 2, "quick_s": QUICK_S, "workers": 2},
        "no_steal_s": round(no_steal_s, 3),
        "steal_s": round(steal_s, 3),
        "speedup": round(no_steal_s / steal_s, 2),
        "steals": len(steals),
        "stolen_tasks": sum(1 for o in stolen if o.stolen),
        "all_ok": all(o.ok for o in static) and all(o.ok for o in stolen),
    }


# ------------------------------------------------------------ harness


def run_service_bench(scratch: str) -> dict:
    resume = run_resume_bench(scratch)
    steal = run_steal_bench()
    return {
        "bench": "service_resume_and_steal",
        "params": {"workloads": WORKLOADS, "designs": DESIGNS,
                   "budget_per_cell": BUDGET, "n_threads": N_THREADS,
                   "fases_per_thread": FASES, "seed": SEED,
                   "rungs_per_cell": RUNGS, "batch_chunk": CHUNK,
                   "workers": JOBS},
        "resume": resume,
        "steal": steal,
    }


def main(argv) -> int:
    scratch = tempfile.mkdtemp(prefix="repro-service-bench-")
    try:
        payload = run_service_bench(scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    resume, steal = payload["resume"], payload["steal"]
    failures = []
    if resume["states"] != ["done", "done"]:
        failures.append(f"job states {resume['states']}")
    if not resume["fingerprint_match"]:
        failures.append("resumed report is not byte-identical")
    if resume["warm_tasks_executed"] != 0:
        failures.append(
            f"warm re-run simulated {resume['warm_tasks_executed']} "
            f"task(s) instead of replaying the journal")
    if resume["speedup"] < MIN_RESUME_SPEEDUP:
        failures.append(f"resume speedup {resume['speedup']}x < "
                        f"{MIN_RESUME_SPEEDUP}x bar")
    if not steal["all_ok"] or steal["steals"] == 0:
        failures.append("stealing pass never stole")
    if steal["speedup"] < MIN_STEAL_SPEEDUP:
        failures.append(f"steal speedup {steal['speedup']}x < "
                        f"{MIN_STEAL_SPEEDUP}x bar")
    if "--check" in argv:
        committed_path = argv[argv.index("--check") + 1]
        with open(committed_path) as handle:
            committed = json.load(handle)["resume"]["speedup"]
        floor = committed * (1.0 - REGRESSION_TOLERANCE)
        payload["regression_check"] = {
            "committed_resume_speedup": committed,
            "floor": round(floor, 1),
            "ok": resume["speedup"] >= floor,
        }
        if resume["speedup"] < floor:
            failures.append(
                f"resume speedup {resume['speedup']}x below "
                f"{floor:.1f}x (committed {committed}x - "
                f"{REGRESSION_TOLERANCE:.0%})")
    else:
        with open("BENCH_service.json", "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    status = "ok" if not failures else "; ".join(failures)
    print(f"service bench: cold {resume['cold_s']}s -> warm resume "  # noqa: T201
          f"{resume['warm_s']}s ({resume['speedup']}x); straggler grid "
          f"{steal['no_steal_s']}s -> {steal['steal_s']}s with stealing "
          f"({steal['speedup']}x, {steal['steals']} steals) [{status}]")
    return 0 if not failures else 1


def test_service_resume_and_steal(benchmark, run_once, tmp_path):
    payload = run_once(benchmark,
                       lambda: run_service_bench(str(tmp_path)))
    print("\n" + json.dumps(payload, indent=2))  # noqa: T201
    resume, steal = payload["resume"], payload["steal"]
    assert resume["states"] == ["done", "done"]
    assert resume["fingerprint_match"], \
        "forced re-run changed the campaign report"
    assert resume["warm_tasks_executed"] == 0
    assert resume["speedup"] >= MIN_RESUME_SPEEDUP
    assert steal["steals"] > 0 and steal["stolen_tasks"] > 0
    assert steal["speedup"] >= MIN_STEAL_SPEEDUP


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
