"""Extension: the five-design comparison including StrandWeaver (§9).

Paper narrative this bench checks: StrandWeaver (strand persistency)
beats HOPS by overlapping independent strands, and PMEM-Spec stays at
least competitive with both at far lower hardware cost (no persist
buffers, no coherence changes) and one annotation per FASE.
"""

from repro.harness import figure9, format_normalized_table
from repro.sim import geomean

DESIGNS = ("IntelX86", "DPO", "HOPS", "StrandWeaver", "PMEM-Spec")
BENCHES = ("queue", "rbtree", "tatp", "tpcc", "memcached")
SCALE = 0.4
SEED = 42


def test_five_design_comparison(benchmark, run_once, executor):
    rows = run_once(benchmark,
                    lambda: figure9(n_threads=4, scale=SCALE, seed=SEED,
                                    designs=DESIGNS, benchmarks=BENCHES,
                                    executor=executor))
    print("\n" + format_normalized_table(
        rows, DESIGNS,
        "Extension: five designs incl. StrandWeaver (4 cores)"))

    def gm(design):
        return geomean([rows[b][design] for b in rows])

    assert gm("StrandWeaver") >= gm("HOPS") * 0.97
    assert gm("PMEM-Spec") >= gm("HOPS") * 0.97
    assert gm("StrandWeaver") > 1.0
    assert gm("DPO") < 1.0
    # On the multi-group FASE benchmark strands visibly parallelise.
    assert rows["tpcc"]["StrandWeaver"] >= rows["tpcc"]["HOPS"] * 0.97
