"""Shared benchmark settings.

Each benchmark regenerates one of the paper's tables/figures at a
reduced scale (the full-scale versions run via ``python -m
repro.harness``).  Simulation runs are seconds long, so every bench
uses ``benchmark.pedantic`` with one round -- the timing shown is the
cost of regenerating the figure, and the assertions in each bench check
the figure's qualitative *shape* against the paper.
"""

import pytest


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once
