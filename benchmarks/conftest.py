"""Shared benchmark settings.

Each benchmark regenerates one of the paper's tables/figures at a
reduced scale (the full-scale versions run via ``python -m
repro.harness``).  Simulation runs are seconds long, so every bench
uses ``benchmark.pedantic`` with one round -- the timing shown is the
cost of regenerating the figure, and the assertions in each bench check
the figure's qualitative *shape* against the paper.

Figure-level benches share one :class:`repro.harness.ParallelExecutor`
via the ``executor`` fixture: ``REPRO_BENCH_JOBS`` picks the worker
count (default: all cores) and ``REPRO_BENCH_CACHE_DIR`` opts into the
per-spec result cache (off by default, so timings stay honest).
"""

import os

import pytest

from repro.harness import ParallelExecutor


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return once


@pytest.fixture
def executor():
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or None
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR") or None
    return ParallelExecutor(jobs=jobs, cache_dir=cache_dir)
