"""Design-choice ablations called out in DESIGN.md.

* **Lazy vs eager recovery (§6.2)** -- both converge; eager aborts can
  fire mid-FASE, cutting wasted work per abort.
* **Spec-tagging without escape analysis (§5.2.2)** -- tagging every
  critical-section store (instead of only provably-shared ones) floods
  the 4-entry speculation buffer on multi-block FASEs and costs
  throughput through all-core pauses.
* **Eviction-based vs naive fetch-based load-misspec detection
  (§5.1.3/5.1.4)** -- counted via the automaton: write-allocate fetches
  (Reads with no preceding WriteBack) must never start monitoring.
"""

from repro.config import table3_config
from repro.harness import (
    format_series,
    lazy_vs_eager_recovery,
    naive_tagging_ablation,
)
from repro.persistency import design_by_name
from repro.system import build_system
from repro.workloads import workload_by_name

SCALE = 0.5
SEED = 42


def test_lazy_vs_eager(benchmark, run_once, executor):
    out = run_once(benchmark,
                   lambda: lazy_vs_eager_recovery(scale=SCALE, seed=SEED,
                                                  executor=executor))
    print("\n" + format_series(out, "mode", "outcome",
                               "Ablation: lazy vs eager recovery"))
    assert out["lazy"]["commits"] == out["eager"]["commits"]
    assert out["lazy"]["store_misspec"] > 0
    assert out["eager"]["store_misspec"] > 0


def test_naive_tagging_cost(benchmark, run_once, executor):
    out = run_once(benchmark,
                   lambda: naive_tagging_ablation(scale=SCALE, seed=SEED,
                                                  executor=executor))
    print("\n" + format_series(
        {name: {"slowdown": row["slowdown"],
                "naive_overflows": row["naive_overflows"]}
         for name, row in out.items()},
        "benchmark", "escape-analysis / naive",
        "Ablation: naive spec-tagging"))
    # Multi-block FASEs (rbtree, tpcc) must show buffer pressure when
    # every critical-section store is tagged.
    assert out["rbtree"]["naive_overflows"] > 0
    assert out["tpcc"]["naive_overflows"] > 0
    # Escape analysis never loses.
    for row in out.values():
        assert row["slowdown"] >= 0.98


def test_write_allocate_fetches_never_monitored():
    """Figure 4/6b: store-miss fetches are Reads at the PMC; the
    eviction-based scheme must not treat them as speculation."""
    workload = workload_by_name("tpcc", seed=SEED)
    program = workload.build(4, 20)
    system = build_system(program, design_by_name("PMEM-Spec"),
                          table3_config(n_cores=4))
    result = system.run()
    assert result.stats["hierarchy"]["store_pm_fetches"] > 0
    assert result.load_misspeculations == 0
    # Monitoring only ever starts on LLC writebacks.
    spec_stats = result.stats["spec_buffer"]
    assert spec_stats.get("allocations", 0) <= (
        spec_stats.get("in_writeback", 0)
        + spec_stats.get("in_persist", 0))


def test_undo_vs_redo(benchmark, run_once, executor):
    """Redo logging removes every intra-FASE ordering point on the
    FIFO-channel designs; on HOPS (whose undo lowering pays an ofence
    per log group) it should never lose, and commit-time replay costs
    it some extra stores."""
    from repro.harness import undo_vs_redo_ablation
    out = run_once(benchmark,
                   lambda: undo_vs_redo_ablation(scale=SCALE, seed=SEED,
                                                 executor=executor))
    print("\n" + format_series(
        {name: {key: value for key, value in row.items()
                if key.endswith("speedup")}
         for name, row in out.items()},
        "benchmark", "redo/undo", "Ablation: undo vs redo logging"))
    for row in out.values():
        assert 0.6 < row["PMEM-Spec_redo_speedup"] < 1.8
        assert 0.6 < row["HOPS_redo_speedup"] < 1.8
