"""Figure 10: the design comparison at higher core counts.

Paper shape: PMEM-Spec keeps beating both the baseline and HOPS at
every core count (paper margins: 18.8%/8.2% at 16, 18.2%/8.0% at 32,
17.1%/10% at 64) while DPO stays below the baseline everywhere
(§8.3.1).

Kept small so the bench suite stays minutes-scale; 64 cores runs via
`python -m repro.harness fig10 --cores 64` (the 64-thread queue's
global mutex makes it tens of minutes of single-core simulation).
"""

from repro.harness import (
    DESIGNS,
    figure10,
    figure10_summary,
    format_normalized_table,
    format_series,
)

SCALE = 0.1
SEED = 42
CORES = (16, 32)


def test_figure10(benchmark, run_once, executor):
    results = run_once(benchmark,
                       lambda: figure10(core_counts=CORES, scale=SCALE,
                                        seed=SEED, executor=executor))
    for count, rows in results.items():
        print("\n" + format_normalized_table(
            rows, DESIGNS, f"Figure 10: {count}-core system"))
    summary = figure10_summary(results)
    print("\n" + format_series(summary, "cores", "geomean",
                                "Figure 10 summary"))
    for count in CORES:
        assert summary[count]["PMEM-Spec"] > 1.0, count
        assert summary[count]["PMEM-Spec"] > summary[count]["HOPS"], count
        assert summary[count]["DPO"] < 1.0, count
