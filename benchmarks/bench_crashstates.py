"""Durable-state checking rides the snapshot ladder, not cold boots.

Runs the same ``check_cell`` twice over identical crash cycles in the
*same* laddered timing universe (``snapshot_every`` sized to ~RUNGS
in-memory rungs) -- warm restores the nearest rung and replays only the
tail, cold (``restore=False``) re-simulates every cycle from cycle 0 --
and gates on the acquire-phase speedup.  Enumeration and image judging are
identical either way, so only ``acquire_s`` is compared; the enumerated
image sets and verdicts must match byte for byte, which is also the
bench's correctness check.  Records the result to
``BENCH_crashstates.json``.

Standalone::

    PYTHONPATH=src python benchmarks/bench_crashstates.py

regression gate (CI)::

    PYTHONPATH=src python benchmarks/bench_crashstates.py \
        --check BENCH_crashstates.json

or through pytest-benchmark::

    python -m pytest benchmarks/bench_crashstates.py
"""

import copy
import json
import sys
import time

from repro.crashstates.checker import check_cell
from repro.validation.campaign import TrialSpec, profile_cell

WORKLOAD = "hashmap"
DESIGN = "PMEM-Spec"
N_THREADS = 2
FASES = 400          # long run: cold acquires pay O(crash_cycle) each
SEED = 42
RUNGS = 16
N_CYCLES = 10        # crash cycles, late-biased (where cold is slow)
IMAGE_BUDGET = 12

MIN_ACQUIRE_SPEEDUP = 5.0
#: ``--check`` floor: wall-clock ratios are machine-relative, so the
#: committed speedup only gates against collapse, not jitter.
REGRESSION_TOLERANCE = 0.50


def pick_cycles(persist_cycles) -> list:
    """Evenly spaced persist cycles over the back half of the run --
    the region where a cold acquire replays the most history."""
    half = persist_cycles[len(persist_cycles) // 2:]
    step = max(1, len(half) // N_CYCLES)
    return sorted(set(half[::step]))[:N_CYCLES]


def _comparable(report: dict) -> dict:
    """The outcome fields a warm/cold run must agree on exactly."""
    report = copy.deepcopy(report)
    for key in ("timings", "snapshot_every", "restored_cycles"):
        report.pop(key, None)
    for cycle in report["cycles"]:
        cycle.pop("restored_from", None)
    return report


def run_crashstates_bench() -> dict:
    base = TrialSpec(workload=WORKLOAD, design=DESIGN,
                     n_threads=N_THREADS, fases_per_thread=FASES,
                     seed=SEED)
    persist_cycles = profile_cell(base).persist_cycles
    cycles = pick_cycles(persist_cycles)
    every = max(1, len(persist_cycles) // RUNGS)

    def run(restore):
        spec = TrialSpec(workload=WORKLOAD, design=DESIGN,
                         n_threads=N_THREADS, fases_per_thread=FASES,
                         seed=SEED, snapshot_every=every)
        started = time.perf_counter()
        report = check_cell(spec, cycles, image_budget=IMAGE_BUDGET,
                            shrink=False, restore=restore)
        return report, time.perf_counter() - started

    cold_report, cold_s = run(False)
    warm_report, warm_s = run(True)

    cold_acquire = cold_report["timings"]["acquire_s"]
    warm_acquire = warm_report["timings"]["acquire_s"]
    return {
        "bench": "crashstates_rung_restore",
        "params": {"workload": WORKLOAD, "design": DESIGN,
                   "n_threads": N_THREADS, "fases_per_thread": FASES,
                   "seed": SEED, "rungs": RUNGS,
                   "snapshot_every": every,
                   "image_budget": IMAGE_BUDGET,
                   "crash_cycles": cycles},
        "images_enumerated": warm_report["images_enumerated"],
        "images_failed": warm_report["images_failed"],
        "consistent": warm_report["consistent"],
        "cold_acquire_s": round(cold_acquire, 3),
        "warm_acquire_s": round(warm_acquire, 3),
        "acquire_speedup": round(cold_acquire / warm_acquire, 2),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "total_speedup": round(cold_s / warm_s, 2),
        "warm_cycles_restored": warm_report["restored_cycles"],
        "outcomes_match": (_comparable(cold_report)
                           == _comparable(warm_report)),
    }


def main(argv) -> int:
    payload = run_crashstates_bench()
    failures = []
    if not payload["outcomes_match"]:
        failures.append("warm run changed enumerated images or verdicts")
    if not payload["consistent"]:
        failures.append("cell inconsistent: some image failed recovery")
    if payload["warm_cycles_restored"] == 0:
        failures.append("warm run never restored a rung")
    if payload["acquire_speedup"] < MIN_ACQUIRE_SPEEDUP:
        failures.append(f"acquire speedup {payload['acquire_speedup']}x "
                        f"< {MIN_ACQUIRE_SPEEDUP}x bar")
    if "--check" in argv:
        committed_path = argv[argv.index("--check") + 1]
        with open(committed_path) as handle:
            committed = json.load(handle)["acquire_speedup"]
        floor = committed * (1.0 - REGRESSION_TOLERANCE)
        payload["regression_check"] = {
            "committed_acquire_speedup": committed,
            "floor": round(floor, 1),
            "ok": payload["acquire_speedup"] >= floor,
        }
        if payload["acquire_speedup"] < floor:
            failures.append(
                f"acquire speedup {payload['acquire_speedup']}x below "
                f"{floor:.1f}x (committed {committed}x - "
                f"{REGRESSION_TOLERANCE:.0%})")
    else:
        with open("BENCH_crashstates.json", "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    status = "ok" if not failures else "; ".join(failures)
    print(f"crashstates bench: {payload['images_enumerated']} images "  # noqa: T201
          f"over {len(payload['params']['crash_cycles'])} cycles, "
          f"acquire cold {payload['cold_acquire_s']}s -> warm "
          f"{payload['warm_acquire_s']}s "
          f"({payload['acquire_speedup']}x) [{status}]")
    return 0 if not failures else 1


def test_crashstates_rung_restore(benchmark, run_once):
    payload = run_once(benchmark, run_crashstates_bench)
    print("\n" + json.dumps(payload, indent=2))  # noqa: T201
    assert payload["outcomes_match"], \
        "rung restores changed enumerated images or verdicts"
    assert payload["consistent"]
    assert payload["warm_cycles_restored"] > 0
    assert payload["acquire_speedup"] >= MIN_ACQUIRE_SPEEDUP


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
