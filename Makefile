# Developer conveniences; everything here is also runnable by hand.

PYTHON ?= python
export PYTHONPATH := src

# One representative engine-bound cell for profiling runs.
PROFILE_BENCH ?= tpcc
PROFILE_DESIGN ?= PMEM-Spec
PROFILE_SNIPPET = import cProfile, pstats; \
	from repro.harness.sweep import RunSpec, build_spec_system; \
	system = build_spec_system(RunSpec(benchmark='$(PROFILE_BENCH)', \
	    design='$(PROFILE_DESIGN)', n_threads=8, fases_per_thread=60, \
	    seed=42)); \
	cProfile.run('system.run()', '/tmp/engine.pstats'); \
	stats = pstats.Stats('/tmp/engine.pstats'); \
	stats.sort_stats('cumulative').print_stats(30)

.PHONY: test bench-engine bench-engine-check profile-engine flame

test:
	$(PYTHON) -m pytest -q

bench-engine:
	$(PYTHON) benchmarks/bench_engine.py

bench-engine-check:
	$(PYTHON) benchmarks/bench_engine.py --check BENCH_engine.json

# cProfile (always available): cumulative-time top 30 of one cell.
profile-engine:
	$(PYTHON) -c "$(PROFILE_SNIPPET)"

# py-spy flame graph (optional dependency; degrades with a hint).
flame:
	@command -v py-spy >/dev/null 2>&1 || \
	    { echo "py-spy not installed; use 'make profile-engine' (cProfile)"; exit 1; }
	py-spy record -o /tmp/engine-flame.svg -- \
	    $(PYTHON) -c "from repro.harness.sweep import RunSpec, build_spec_system; \
	        build_spec_system(RunSpec(benchmark='$(PROFILE_BENCH)', \
	            design='$(PROFILE_DESIGN)', n_threads=8, \
	            fases_per_thread=60, seed=42)).run()"
	@echo "flame graph written to /tmp/engine-flame.svg"
