"""The service daemon and its stdlib-only asyncio HTTP/JSON front end.

:class:`Service` owns the durable :class:`JobStore`, a single
scheduler thread draining the queue FIFO through :class:`JobRunner`,
and the process event bus + metrics registry every job narrates into.
:class:`Api` speaks just enough HTTP/1.1 over ``asyncio.start_server``
to serve:

========  ======================  =====================================
method    path                    behaviour
========  ======================  =====================================
POST      ``/jobs``               submit a :class:`JobSpec` (idempotent
                                  on content; ``{"force": true}``
                                  re-queues a finished job)
GET       ``/jobs``               all job records
GET       ``/jobs/{id}``          one record (spec + journal tail)
GET       ``/jobs/{id}/report``   the finished report document
GET       ``/jobs/{id}/events``   **streaming NDJSON**: the job's bus
                                  events, tailed live until terminal
POST      ``/jobs/{id}/cancel``   cancel (queued: immediate; running:
                                  honoured between tasks)
GET       ``/healthz``            liveness + queue counts
GET       ``/metrics``            Prometheus text exposition 0.0.4
========  ======================  =====================================

Every response closes the connection (``Connection: close``): clients
are thin pollers, not connection pools, and it keeps the parser a
page long.  The event stream has no ``Content-Length`` -- the close is
the terminator, exactly like ``curl -N`` expects.

Jobs run strictly one at a time: parallelism lives *inside* a job (the
work-stealing pool), so two campaigns never fight over cores, and the
journal's single-writer invariant holds for free.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from ..harness.retry import RetryPolicy
from ..obsv.bus import EventBus, JsonlSink, bus_scope
from ..obsv.registry import MetricsRegistry
from ..telemetry import get_logger
from .jobs import (
    RESUMABLE_STATES,
    JobError,
    JobRecord,
    JobSpec,
    JobStore,
    _append_jsonl,
)
from .runner import JobRunner

log = get_logger("service.api")

API_VERSION = 1


# ---------------------------------------------------------------- Service


class Service:
    """The long-running half: store + scheduler + bus + registry."""

    def __init__(self, root: str, workers: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 task_timeout_s: Optional[float] = None):
        self.store = JobStore(root)
        self.registry = MetricsRegistry()
        self.bus = EventBus(registry=self.registry)
        self.bus.subscribe(self.registry.observe_event)
        self._interrupt = threading.Event()
        self.runner = JobRunner(self.store, workers=workers,
                                retry=retry,
                                task_timeout_s=task_timeout_s,
                                bus=self.bus,
                                interrupt=self._interrupt.is_set)
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.started_at = time.time()
        self.current_job: Optional[str] = None
        self.jobs_run = 0

    # -------------------------------------------------------- lifecycle

    def start(self) -> List[JobRecord]:
        """Recover unfinished jobs, then start the scheduler thread.
        Returns the records the restart re-queued."""
        resumed = self.store.recover()
        for record in resumed:
            log.info("resuming job %s (%s, was %s)", record.job_id,
                     record.spec.describe(),
                     record.detail.get("previous", "?"))
        self._thread = threading.Thread(
            target=self._scheduler, daemon=True,
            name="repro-service-scheduler")
        self._thread.start()
        return resumed

    def stop(self, timeout_s: float = 30.0) -> None:
        """Graceful shutdown: stop dispatching, interrupt the running
        job between tasks (it journals ``interrupted`` and will resume
        on the next start), join the scheduler."""
        self._stop.set()
        self._interrupt.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)

    def _scheduler(self) -> None:
        # The scheduler installs the service bus as the process bus so
        # the campaign engine / executor publish without being told;
        # nothing else in this process emits, so global scope is safe.
        with bus_scope(self.bus):
            while not self._stop.is_set():
                queued = self.store.queued_ids()
                if not queued:
                    self._wake.wait(timeout=0.5)
                    self._wake.clear()
                    continue
                job_id = queued[0]
                self.current_job = job_id
                # Per-job NDJSON event log, appended across resumes.
                sink = JsonlSink(self.store.events_path(job_id),
                                 mode="a")
                self.bus.subscribe(sink)
                try:
                    self.runner.run_job(job_id)
                    self.jobs_run += 1
                except Exception:
                    log.exception("job %s crashed the runner", job_id)
                finally:
                    self.bus.unsubscribe(sink)
                    sink.close()
                    self.current_job = None

    # ------------------------------------------------------- operations

    def submit(self, spec: JobSpec, force: bool = False) -> JobRecord:
        record = self.store.submit(spec, force=force)
        # Emitted on the bus for metrics AND appended to the job's own
        # event file directly -- the per-job sink only subscribes while
        # the job runs, and submission happens before that.
        event = self.bus.emit("job_submitted", job_id=record.job_id,
                              job_kind=record.spec.kind)
        if event is not None:
            _append_jsonl(self.store.events_path(record.job_id), event)
        self._wake.set()
        return record

    def cancel(self, job_id: str) -> JobRecord:
        record = self.store.request_cancel(job_id)
        self._wake.set()
        return record

    def health(self) -> Dict:
        counts: Dict[str, int] = {}
        for record in self.store.list_records():
            counts[record.state] = counts.get(record.state, 0) + 1
        return {
            "ok": True,
            "api_version": API_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3),
            "current_job": self.current_job,
            "jobs_run": self.jobs_run,
            "jobs": counts,
        }


# -------------------------------------------------------------- HTTP api


class HttpError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_STATUS_TEXT = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                500: "Internal Server Error"}


def _head(status: int, content_type: str,
          length: Optional[int]) -> bytes:
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode()


class Api:
    """Request handler bound to one :class:`Service`."""

    def __init__(self, service: Service):
        self.service = service

    # ------------------------------------------------------------ plumb

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        method = path = "?"
        try:
            try:
                method, path, body = await self._read_request(reader)
            except (asyncio.IncompleteReadError, ValueError, OSError):
                return
            await self._route(method, path, body, writer)
        except HttpError as exc:
            await self._send_json(writer, {"error": exc.message},
                                  status=exc.status)
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception as exc:        # surface, never hang the client
            log.exception("request %s %s failed", method, path)
            try:
                await self._send_json(writer, {"error": str(exc)},
                                      status=500)
            except OSError:
                pass
        finally:
            try:
                writer.close()
            except OSError:
                pass

    async def _read_request(self, reader
                            ) -> Tuple[str, str, Optional[Dict]]:
        request_line = (await reader.readline()).decode("latin-1")
        if not request_line.strip():
            raise ValueError("empty request")
        method, target, _version = request_line.split(None, 2)
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = None
        length = int(headers.get("content-length", 0) or 0)
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode())
            except (json.JSONDecodeError, UnicodeDecodeError):
                raise HttpError(400, "request body is not JSON")
        return method.upper(), urlsplit(target).path, body

    async def _send_json(self, writer, payload, status: int = 200
                         ) -> None:
        blob = (json.dumps(payload, sort_keys=True) + "\n").encode()
        writer.write(_head(status, "application/json", len(blob)))
        writer.write(blob)
        await writer.drain()

    async def _send_text(self, writer, text: str,
                         content_type: str = "text/plain; version=0.0.4",
                         status: int = 200) -> None:
        blob = text.encode()
        writer.write(_head(status, content_type, len(blob)))
        writer.write(blob)
        await writer.drain()

    # ------------------------------------------------------------ routes

    async def _route(self, method: str, path: str,
                     body: Optional[Dict], writer) -> None:
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"] and method == "GET":
            await self._send_json(writer, self.service.health())
        elif parts == ["metrics"] and method == "GET":
            await self._send_text(writer,
                                  self.service.registry.to_prometheus())
        elif parts == ["jobs"] and method == "GET":
            records = [r.to_dict()
                       for r in self.service.store.list_records()]
            await self._send_json(writer, {"jobs": records})
        elif parts == ["jobs"] and method == "POST":
            await self._submit(body, writer)
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            await self._send_json(writer,
                                  self._record(parts[1]).to_dict())
        elif (len(parts) == 3 and parts[0] == "jobs"
                and parts[2] == "report" and method == "GET"):
            record = self._record(parts[1])
            report = self.service.store.load_report(record.job_id)
            if report is None:
                raise HttpError(404, f"job {record.job_id} has no "
                                     f"report (state {record.state})")
            await self._send_json(writer, report)
        elif (len(parts) == 3 and parts[0] == "jobs"
                and parts[2] == "cancel" and method == "POST"):
            record = self.service.cancel(self._record(parts[1]).job_id)
            await self._send_json(writer, record.to_dict())
        elif (len(parts) == 3 and parts[0] == "jobs"
                and parts[2] == "events" and method == "GET"):
            await self._stream_events(self._record(parts[1]), writer)
        else:
            raise HttpError(
                404 if method in ("GET", "POST") else 405,
                f"no route for {method} {path}")

    def _record(self, job_id: str) -> JobRecord:
        try:
            return self.service.store.record(job_id)
        except JobError as exc:
            raise HttpError(404, str(exc)) from None

    async def _submit(self, body: Optional[Dict], writer) -> None:
        if not isinstance(body, dict):
            raise HttpError(400, "POST /jobs needs a JSON JobSpec body")
        force = bool(body.pop("force", False))
        try:
            spec = JobSpec.from_dict(body)
        except (JobError, KeyError, TypeError, ValueError) as exc:
            raise HttpError(400, f"bad job spec: {exc}") from None
        record = self.service.submit(spec, force=force)
        await self._send_json(writer, record.to_dict(), status=202)

    async def _stream_events(self, record: JobRecord, writer) -> None:
        """NDJSON tail of the job's event log, live until terminal.

        Replays everything already journaled, then follows appends;
        ends (connection close) once the job is terminal and the file
        is drained.  A torn trailing line (service killed mid-write)
        is held back until its newline arrives.
        """
        writer.write(_head(200, "application/x-ndjson", None))
        await writer.drain()
        path = self.service.store.events_path(record.job_id)
        offset = 0
        pending = b""
        while True:
            chunk = b""
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                pass
            if chunk:
                offset += len(chunk)
                pending += chunk
                lines = pending.split(b"\n")
                pending = lines.pop()        # incomplete tail, if any
                for line in lines:
                    if line.strip():
                        writer.write(line + b"\n")
                await writer.drain()
            state = self.service.store.record(record.job_id).state
            if state not in RESUMABLE_STATES and not chunk:
                break
            await asyncio.sleep(0.2)


# ------------------------------------------------------------ entrypoint


def run_service(root: str, host: str = "127.0.0.1", port: int = 8642,
                workers: int = 1,
                task_timeout_s: Optional[float] = None,
                retry: Optional[RetryPolicy] = None,
                ready_file: Optional[str] = None) -> int:
    """Boot a :class:`Service` + HTTP front end and block until
    SIGINT/SIGTERM.

    Recovery runs first (unfinished jobs re-queue), then the listener
    comes up; ``ready_file`` (if given) receives ``host port`` once
    the socket is bound -- tests and CI pass ``port=0`` and read the
    kernel-assigned port from there.  Returns the intended process
    exit code: ``128 + signum`` for a signal-driven shutdown.
    """
    service = Service(root, workers=workers, retry=retry,
                      task_timeout_s=task_timeout_s)
    service.start()
    outcome = {"code": 0}

    async def _main() -> None:
        api = Api(service)
        server = await asyncio.start_server(api.handle, host, port)
        bound = server.sockets[0].getsockname()
        log.info("repro service listening on http://%s:%d (root %s, "
                 "workers %d)", bound[0], bound[1], service.store.root,
                 service.runner.workers)
        if ready_file:
            with open(ready_file, "w") as handle:
                handle.write(f"{bound[0]} {bound[1]}\n")
                handle.flush()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()

        def _on_signal(signum: int) -> None:
            log.warning("received %s; draining and shutting down",
                        signal.Signals(signum).name)
            outcome["code"] = 128 + signum
            stop.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    signum, lambda s=signum: _on_signal(s))
            except (NotImplementedError, RuntimeError):
                signal.signal(signum,
                              lambda s, _frame: _on_signal(s))
        async with server:
            await stop.wait()
        server.close()

    asyncio.run(_main())
    service.stop()
    log.info("service stopped (exit %d)", outcome["code"])
    return outcome["code"]
