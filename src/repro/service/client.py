"""Thin stdlib HTTP client for the service (``repro submit/status``).

One connection per call, JSON in/out, no retries beyond the user's
loop: the service is the stateful side; this is deliberately just
``urllib`` with the routes spelled out.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Optional

from .jobs import TERMINAL_STATES, JobSpec


class ServiceError(RuntimeError):
    """A non-2xx response, carrying the server's error message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Client for one service base URL (``http://host:port``)."""

    def __init__(self, url: str, timeout_s: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout_s = timeout_s

    # ---------------------------------------------------------- plumbing

    def _open(self, method: str, path: str, payload=None,
              timeout_s: Optional[float] = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, headers=headers,
            method=method)
        try:
            return urllib.request.urlopen(
                request, timeout=timeout_s or self.timeout_s)
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode()).get(
                    "error", exc.reason)
            except (ValueError, OSError):
                message = str(exc.reason)
            raise ServiceError(exc.code, message) from None

    def _json(self, method: str, path: str, payload=None) -> Dict:
        with self._open(method, path, payload) as response:
            return json.loads(response.read().decode())

    # ------------------------------------------------------------ routes

    def health(self) -> Dict:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        with self._open("GET", "/metrics") as response:
            return response.read().decode()

    def jobs(self) -> List[Dict]:
        return self._json("GET", "/jobs")["jobs"]

    def submit(self, spec: JobSpec, force: bool = False) -> Dict:
        payload = spec.to_dict()
        if force:
            payload["force"] = True
        return self._json("POST", "/jobs", payload)

    def job(self, job_id: str) -> Dict:
        return self._json("GET", f"/jobs/{job_id}")

    def report(self, job_id: str) -> Dict:
        return self._json("GET", f"/jobs/{job_id}/report")

    def cancel(self, job_id: str) -> Dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    # --------------------------------------------------------- consumers

    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.5) -> Dict:
        """Poll until the job is terminal; returns the final record."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout_s:.0f}s")
            time.sleep(poll_s)

    def events(self, job_id: str,
               timeout_s: Optional[float] = None) -> Iterator[Dict]:
        """Stream the job's NDJSON events until the server closes the
        stream (i.e. the job reached a terminal state)."""
        response = self._open("GET", f"/jobs/{job_id}/events",
                              timeout_s=timeout_s or 3600.0)
        with response:
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line.decode())
