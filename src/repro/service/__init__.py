"""repro.service: simulation-as-a-service campaign fabric.

Promotes the harness from a CLI you babysit to a long-running service
you submit work to: a durable job queue (:mod:`repro.service.jobs`),
a work-stealing worker pool (:mod:`repro.service.workers`), resumable
execution that replays journaled task outcomes instead of
re-simulating (:mod:`repro.service.runner`), and a stdlib asyncio
HTTP/JSON front end with streaming NDJSON events
(:mod:`repro.service.api`).  See ``docs/SERVICE.md``.
"""

from .client import ServiceClient, ServiceError
from .jobs import (
    JOB_KINDS,
    JOB_SCHEMA_VERSION,
    JOB_STATES,
    RESUMABLE_STATES,
    TERMINAL_STATES,
    JobError,
    JobRecord,
    JobSpec,
    JobStore,
)
from .runner import (
    JobCancelled,
    JobRunner,
    ServiceExecutor,
    report_fingerprint,
    task_key,
)
from .workers import (
    PoolCancelled,
    Task,
    TaskOutcome,
    WorkStealingPool,
)

__all__ = [
    "JOB_KINDS", "JOB_SCHEMA_VERSION", "JOB_STATES",
    "RESUMABLE_STATES", "TERMINAL_STATES",
    "JobError", "JobRecord", "JobSpec", "JobStore",
    "JobCancelled", "JobRunner", "ServiceExecutor",
    "report_fingerprint", "task_key",
    "PoolCancelled", "Task", "TaskOutcome", "WorkStealingPool",
    "ServiceClient", "ServiceError",
]
