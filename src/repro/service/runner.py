"""Resumable job execution: journal short-circuit + the pool bridge.

The executor the campaign engine sees here is a drop-in for
:class:`repro.harness.ParallelExecutor`'s ``map``/``map_batched``
surface, but every task it would run is first given a **durable
identity** -- a content hash of the function's qualified name plus the
canonical JSON of its argument -- and looked up in the job's task
journal.  Outcomes already journaled return instantly (counted as
``tasks_from_journal``); only the rest go to the work-stealing pool,
and each settles into the journal the moment it finishes.  Chunking
goes through the shared :func:`repro.harness.plan_batches`, so a
resumed run produces byte-for-byte the same chunks -- which is the
whole trick: a job killed mid-campaign re-simulates exactly the tasks
whose outcomes never reached the journal, and the rebuilt
:class:`CampaignReport` is byte-identical to an uninterrupted run
(modulo wall-clock: see :func:`report_fingerprint`).

Sweep jobs need none of this machinery -- the per-spec result cache
*is* their journal (each completed spec short-circuits as a cache
hit), so :class:`JobRunner` runs them through the plain
:class:`ParallelExecutor` pointed at the store's shared cache tier.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from typing import Dict, List, Optional, Sequence

from ..harness.retry import SERVICE_POLICY, RetryPolicy
from ..harness.sweep import (
    ParallelExecutor,
    RunSpec,
    Sweep,
    WorkerTaskError,
    plan_batches,
)
from ..obsv.bus import Bus, get_bus
from ..telemetry import get_logger
from ..validation.planners import RunProfile
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    JOB_SCHEMA_VERSION,
    RUNNING,
    JobRecord,
    JobStore,
)
from .workers import PoolCancelled, Task, WorkStealingPool

log = get_logger("service.runner")


class JobCancelled(Exception):
    """The job's cancel marker was honoured between tasks."""


# --------------------------------------------------------- durable codec


def _jsonify(value):
    """Canonical JSON-ready form of a task argument."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return value


def task_key(fn, arg) -> str:
    """Durable task identity: function qualname + canonical argument
    JSON + the job schema version (a schema bump invalidates journaled
    outcomes, mirroring ``RunSpec.cache_key``)."""
    blob = json.dumps(
        {"fn": f"{fn.__module__}.{fn.__qualname__}",
         "arg": _jsonify(arg), "schema": JOB_SCHEMA_VERSION},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _encode(value) -> Dict:
    """Journal encoding for task outcomes.  Campaign trials are plain
    dicts; profiling returns :class:`RunProfile` dataclasses, which are
    tagged so :func:`_decode` can rebuild the real object on resume."""
    if isinstance(value, RunProfile):
        return {"type": "RunProfile",
                "value": dataclasses.asdict(value)}
    return {"type": "json", "value": value}


def _decode(payload):
    if not isinstance(payload, dict) or "type" not in payload:
        return payload
    if payload["type"] == "RunProfile":
        value = dict(payload["value"])
        value["fase_intervals"] = [tuple(pair) for pair
                                   in value["fase_intervals"]]
        return RunProfile(**value)
    return payload["value"]


# ------------------------------------------------------- ServiceExecutor


class ServiceExecutor:
    """A ``map``/``map_batched`` surface that journals every outcome.

    Drop-in where :func:`repro.validation.run_campaign` expects an
    executor.  ``stats`` accumulates resume attribution --
    ``tasks_from_journal`` vs ``tasks_executed`` -- which the runner
    writes into the job's terminal journal entry (the kill-and-resume
    test asserts on exactly these counters).
    """

    def __init__(self, store: JobStore, job_id: str,
                 pool: WorkStealingPool, bus: Optional[Bus] = None,
                 interrupt=None):
        self.store = store
        self.job_id = job_id
        self.pool = pool
        self.bus = bus
        #: Optional ``callable() -> bool``: the service's shutdown
        #: flag.  Both it and the on-disk cancel marker stop the job
        #: between tasks; the runner tells them apart afterwards.
        self.interrupt = interrupt
        self.journaled = store.tasks(job_id)
        self.stats = {"tasks_from_journal": 0, "tasks_executed": 0,
                      "tasks_total": 0}

    def _resolve_bus(self) -> Bus:
        return self.bus if self.bus is not None else get_bus()

    # The campaign engine calls these two --------------------------------

    def map(self, fn, items: Sequence, describe=None) -> List:
        items = list(items)
        tasks = [Task(key=task_key(fn, item), fn=fn, arg=item,
                      affinity=index,
                      label=(describe(item) if describe is not None
                             else f"item {index}"))
                 for index, item in enumerate(items)]
        flat = self._run_tasks(tasks)
        return flat

    def map_batched(self, fn, items: Sequence, key=None,
                    chunk_size=None, describe=None) -> List:
        items = list(items)
        batches = plan_batches(items, key=key, chunk_size=chunk_size)
        tasks = []
        for indices in batches:
            chunk = [items[i] for i in indices]
            tasks.append(Task(
                key=task_key(fn, chunk), fn=fn, arg=chunk,
                affinity=(key(chunk[0]) if key is not None else None),
                label=(describe(chunk) if describe is not None
                       else f"batch x{len(chunk)}")))
        values = self._run_tasks(tasks)
        results: List = [None] * len(items)
        for indices, value in zip(batches, values):
            if (not isinstance(value, (list, tuple))
                    or len(value) != len(indices)):
                raise WorkerTaskError(
                    f"batched task returned "
                    f"{len(value) if hasattr(value, '__len__') else value!r}"
                    f" result(s) for a {len(indices)}-item chunk")
            for index, item in zip(indices, value):
                results[index] = item
        return results

    # ------------------------------------------------------------ guts

    def _should_stop(self) -> bool:
        if self.interrupt is not None and self.interrupt():
            return True
        return self.store.cancel_requested(self.job_id)

    def _check_cancel(self) -> None:
        if self._should_stop():
            raise JobCancelled(self.job_id)

    def _run_tasks(self, tasks: List[Task]) -> List:
        """Journal hits short-circuit; the rest go to the pool, each
        journaled as it settles.  Values return in task order."""
        self._check_cancel()
        bus = self._resolve_bus()
        self.stats["tasks_total"] += len(tasks)
        values: List = [None] * len(tasks)
        missing: List[int] = []
        for position, task in enumerate(tasks):
            if task.key in self.journaled:
                values[position] = _decode(self.journaled[task.key])
                self.stats["tasks_from_journal"] += 1
            else:
                missing.append(position)
        self._progress(bus)
        if not missing:
            return values

        def on_result(outcome) -> None:
            if outcome.ok:
                self.store.append_task(self.job_id, outcome.key,
                                       _encode(outcome.value))
                self.journaled[outcome.key] = _encode(outcome.value)
            self.stats["tasks_executed"] += 1
            self._progress(bus)

        try:
            outcomes = self.pool.run(
                [tasks[position] for position in missing],
                on_result=on_result, should_stop=self._should_stop)
        except PoolCancelled as exc:
            raise JobCancelled(str(exc)) from None
        for position, outcome in zip(missing, outcomes):
            if not outcome.ok:
                raise WorkerTaskError(
                    f"task {tasks[position].describe()} quarantined "
                    f"after {outcome.attempts} attempt(s)\n"
                    f"--- last error ---\n{outcome.error}")
            values[position] = outcome.value
        return values

    def _progress(self, bus: Bus) -> None:
        done = (self.stats["tasks_from_journal"]
                + self.stats["tasks_executed"])
        bus.emit("job_progress", job_id=self.job_id, done=done,
                 total=self.stats["tasks_total"])


# ------------------------------------------------------------ fingerprint


def report_fingerprint(payload: Dict) -> str:
    """Content hash of a report minus its wall-clock and location
    fields.

    ``elapsed_s`` and the ``obsv`` metrics snapshot are honest
    wall-clock bookkeeping and legitimately differ between a cold run
    and a resume; ``params.snapshot_dir`` is where that run's store
    happened to live.  Everything else -- every cell, every trial
    outcome, every violation -- must match bit-for-bit, which is what
    the kill-and-resume test asserts.
    """
    scrubbed = json.loads(json.dumps(payload, sort_keys=True))
    scrubbed.pop("elapsed_s", None)
    scrubbed.pop("obsv", None)
    params = scrubbed.get("params")
    if isinstance(params, dict):
        params.pop("snapshot_dir", None)
    blob = json.dumps(scrubbed, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -------------------------------------------------------------- JobRunner


class JobRunner:
    """Takes one queued job from journal to terminal state.

    ``workers``/``task_timeout_s``/``retry`` configure the pool for
    campaign jobs and the :class:`ParallelExecutor` job count for sweep
    jobs.  ``run_job`` never raises for a job-level failure -- the
    verdict lands in the journal and on the bus (``job_finish``), and
    the service moves on to the next job.
    """

    def __init__(self, store: JobStore, workers: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 task_timeout_s: Optional[float] = None,
                 bus: Optional[Bus] = None, interrupt=None):
        self.store = store
        self.workers = max(1, workers)
        self.retry = retry if retry is not None else SERVICE_POLICY
        self.task_timeout_s = task_timeout_s
        self.bus = bus
        #: ``callable() -> bool``: graceful-shutdown flag.  A job
        #: stopped by it journals ``interrupted`` (resumable on the
        #: next service start) instead of ``cancelled`` (terminal).
        self.interrupt = interrupt

    def _resolve_bus(self) -> Bus:
        return self.bus if self.bus is not None else get_bus()

    def run_job(self, job_id: str) -> JobRecord:
        record = self.store.record(job_id)
        spec = record.spec
        bus = self._resolve_bus()
        self.store.set_state(job_id, RUNNING, pid=os.getpid())
        bus.emit("job_start", job_id=job_id, job_kind=spec.kind)
        started = time.perf_counter()
        detail: Dict = {}
        try:
            if spec.kind == "sweep":
                report = self._run_sweep(job_id, spec, detail)
            else:
                report = self._run_campaign(job_id, spec, detail)
        except JobCancelled:
            if (self.interrupt is not None and self.interrupt()
                    and not self.store.cancel_requested(job_id)):
                # Graceful shutdown, not a user cancel: resumable.
                self.store.set_state(job_id, INTERRUPTED, **detail)
                state = INTERRUPTED
            else:
                self.store.clear_cancel(job_id)
                self.store.set_state(job_id, CANCELLED, **detail)
                state = CANCELLED
        except Exception as exc:
            log.warning("job %s failed: %s", job_id, exc)
            self.store.set_state(job_id, FAILED,
                                 error=str(exc)[:500], **detail)
            state = FAILED
        else:
            self.store.save_report(job_id, report)
            self.store.set_state(job_id, DONE, **detail)
            state = DONE
        bus.emit("job_finish", job_id=job_id, state=state,
                 elapsed_s=round(time.perf_counter() - started, 3))
        return self.store.record(job_id)

    # ------------------------------------------------------------ sweep

    def _run_sweep(self, job_id: str, spec, detail: Dict) -> Dict:
        """Sweeps resume through the shared per-spec result cache:
        every completed spec is a cache hit on re-run, so only missing
        cells simulate."""
        if self.store.cancel_requested(job_id):
            raise JobCancelled(job_id)
        specs = [RunSpec.from_dict(payload)
                 for payload in spec.params["specs"]]
        executor = ParallelExecutor(jobs=self.workers,
                                    cache_dir=self.store.cache_dir,
                                    bus=self.bus, retry=self.retry)
        result = executor.run(Sweep(specs, name=spec.name or "job"))
        detail["cache_hits"] = result.stats.get("cache_hits", 0)
        detail["cache_misses"] = result.stats.get("cache_misses", 0)
        return {
            "kind": "sweep",
            "n_specs": len(specs),
            "stats": result.stats,
            "specs": [item.to_dict() for item in specs],
            "results": [item.to_dict() for item in result.results],
        }

    # --------------------------------------------------------- campaign

    def _run_campaign(self, job_id: str, spec, detail: Dict) -> Dict:
        """Campaigns resume through the task journal: the
        :class:`ServiceExecutor` replays journaled chunk outcomes and
        simulates only the rest (rungs come off the shared snapshot
        tier either way)."""
        from ..validation.campaign import run_campaign
        pool = WorkStealingPool(workers=self.workers, retry=self.retry,
                                task_timeout_s=self.task_timeout_s,
                                bus=self.bus)
        executor = ServiceExecutor(self.store, job_id, pool,
                                   bus=self.bus,
                                   interrupt=self.interrupt)
        params = spec.params
        report = run_campaign(
            workloads=params["workloads"], designs=params["designs"],
            planner=params.get("planner", "stratified"),
            fault=params.get("fault", "power-cut"),
            budget=params.get("budget", 200),
            seed=params.get("seed", 42),
            n_threads=params.get("n_threads", 2),
            fases_per_thread=params.get("fases_per_thread", 10),
            log_mode=params.get("log_mode", "undo"),
            shrink=params.get("shrink", False),
            executor=executor,
            snapshot_dir=self.store.snapshot_dir,
            snapshot_rungs=params.get("snapshot_rungs", 16),
            batch=params.get("batch", 10))
        detail.update(executor.stats)
        return report.to_dict()
