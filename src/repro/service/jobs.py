"""Job model + durable queue: what the service remembers across kills.

A *job* is one unit of service work -- a whole :class:`RunSpec` sweep
or a whole crash-consistency campaign -- identified by a content hash
of its canonical spec (the same scheme as ``RunSpec.cache_key``), so
submitting the same work twice yields the same job, and a resubmission
of a half-finished job is literally a resume.

Durability is a directory tree of append-only JSON-Lines files::

    <root>/jobs/<job_id>/spec.json      the canonical JobSpec (atomic)
    <root>/jobs/<job_id>/journal.jsonl  state transitions, last wins
    <root>/jobs/<job_id>/tasks.jsonl    per-task outcomes as they land
    <root>/jobs/<job_id>/events.jsonl   the job's bus events (NDJSON)
    <root>/jobs/<job_id>/report.json    the final result document
    <root>/cache                        shared per-spec result cache
    <root>/snapshots                    shared SnapshotStore rung tier

States: ``queued -> running -> done | failed | cancelled`` (plus
``interrupted``, written by a graceful shutdown).  The journal is the
single source of truth: a killed service leaves a job whose last line
is ``running``, and :meth:`JobStore.recover` re-queues exactly those
jobs on restart.  Task outcomes in ``tasks.jsonl`` are keyed by a
content hash of the task's input, so a resumed job replays completed
work from the journal and re-simulates only what is missing.

Every line is written with ``flush()`` before the call returns; a
SIGKILL can tear at most the line being written, and every reader here
tolerates a torn final line (the OS page cache guarantees previously
flushed lines survive process death).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

JOB_SCHEMA_VERSION = 1

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, INTERRUPTED)
#: States a restart must not resurrect.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})
#: States :meth:`JobStore.recover` re-queues.
RESUMABLE_STATES = frozenset({QUEUED, RUNNING, INTERRUPTED})

JOB_KINDS = ("sweep", "campaign")


class JobError(ValueError):
    """A malformed job spec or an impossible state transition."""


# ---------------------------------------------------------------- JobSpec


@dataclass(frozen=True)
class JobSpec:
    """One unit of service work, fully canonicalised.

    ``kind`` selects the execution recipe (``"sweep"`` fans a list of
    resolved :class:`repro.harness.RunSpec` dicts over the pool;
    ``"campaign"`` drives :func:`repro.validation.run_campaign` with
    journaled, resumable fan-out).  ``params`` is the canonical
    JSON-ready payload; ``name`` is a free-form display tag excluded
    from the job id, mirroring ``RunSpec.label``.
    """

    kind: str
    params: Mapping
    name: str = ""
    schema_version: int = field(default=JOB_SCHEMA_VERSION)

    def __post_init__(self):
        if self.kind not in JOB_KINDS:
            raise JobError(f"unknown job kind {self.kind!r}; choose "
                           f"from {JOB_KINDS}")
        if self.schema_version != JOB_SCHEMA_VERSION:
            raise JobError(
                f"job schema {self.schema_version} not supported "
                f"(this service writes {JOB_SCHEMA_VERSION})")
        self.validate()

    # ---------------------------------------------------- constructors

    @classmethod
    def sweep(cls, specs, name: str = "") -> "JobSpec":
        """A sweep job from RunSpecs (or an iterable of their dicts)."""
        from ..harness.sweep import RunSpec
        canonical = []
        for spec in specs:
            if not isinstance(spec, RunSpec):
                spec = RunSpec.from_dict(spec)
            canonical.append(spec.to_dict())
        return cls(kind="sweep", params={"specs": canonical}, name=name)

    @classmethod
    def campaign(cls, workloads, designs, planner: str = "stratified",
                 fault: str = "power-cut", budget: int = 200,
                 seed: int = 42, n_threads: int = 2,
                 fases_per_thread: int = 10, log_mode: str = "undo",
                 shrink: bool = False, snapshot_rungs: int = 16,
                 batch: int = 10, name: str = "") -> "JobSpec":
        """A campaign job; defaults mirror the batched campaign path
        (per-cell rung ladders sized to ~16 rungs, chunked trials)."""
        return cls(kind="campaign", name=name, params={
            "workloads": list(workloads), "designs": list(designs),
            "planner": planner, "fault": fault, "budget": budget,
            "seed": seed, "n_threads": n_threads,
            "fases_per_thread": fases_per_thread, "log_mode": log_mode,
            "shrink": shrink, "snapshot_rungs": snapshot_rungs,
            "batch": batch,
        })

    # ------------------------------------------------------ validation

    def validate(self) -> None:
        if self.kind == "sweep":
            specs = self.params.get("specs")
            if not specs:
                raise JobError("sweep job needs a non-empty "
                               "params['specs'] list")
            from ..harness.sweep import RunSpec
            for payload in specs:
                try:
                    RunSpec.from_dict(payload)
                except (ValueError, KeyError, TypeError) as exc:
                    raise JobError(f"bad sweep spec {payload!r}: "
                                   f"{exc}") from None
            return
        # campaign
        from ..validation.campaign import TrialSpec
        workloads = self.params.get("workloads")
        designs = self.params.get("designs")
        if not workloads or not designs:
            raise JobError("campaign job needs non-empty workloads "
                           "and designs lists")
        for workload in workloads:
            for design in designs:
                # TrialSpec.__post_init__ is the existing name check.
                TrialSpec(workload=workload, design=design,
                          fault=self.params.get("fault", "power-cut"),
                          n_threads=self.params.get("n_threads", 2),
                          log_mode=self.params.get("log_mode", "undo"))

    # ---------------------------------------------------- serialisation

    def to_dict(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "params": json.loads(json.dumps(dict(self.params))),
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobSpec":
        return cls(kind=payload["kind"], params=payload["params"],
                   name=payload.get("name", ""),
                   schema_version=payload.get("schema_version",
                                              JOB_SCHEMA_VERSION))

    def job_id(self) -> str:
        """Content hash of everything that determines the work (the
        ``RunSpec.cache_key`` scheme: canonical JSON, sorted keys,
        display fields excluded, schema version included)."""
        payload = self.to_dict()
        del payload["name"]
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:24]

    def describe(self) -> str:
        tag = f" [{self.name}]" if self.name else ""
        if self.kind == "sweep":
            return f"sweep x{len(self.params['specs'])}{tag}"
        return (f"campaign {'x'.join(self.params['workloads'])} / "
                f"{'x'.join(self.params['designs'])} "
                f"budget={self.params.get('budget')}{tag}")


# --------------------------------------------------------------- records


@dataclass
class JobRecord:
    """One job's current view: spec + last journaled state."""

    job_id: str
    spec: JobSpec
    state: str = QUEUED
    created_ts: float = 0.0
    updated_ts: float = 0.0
    detail: Dict = field(default_factory=dict)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "state": self.state,
            "created_ts": self.created_ts,
            "updated_ts": self.updated_ts,
            "detail": self.detail,
        }


def _read_jsonl(path: str) -> List[Dict]:
    """Read a JSON-Lines file, tolerating a torn final line (the only
    damage a SIGKILL mid-write can inflict on an append-only file)."""
    records: List[Dict] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    # Torn tail; anything after it is unreachable
                    # anyway because appends are sequential.
                    break
    except OSError:
        pass
    return records


def _append_jsonl(path: str, record: Dict) -> None:
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")))
        handle.write("\n")
        handle.flush()


# -------------------------------------------------------------- JobStore


class JobStore:
    """The durable half of the service: specs, journals, task outcomes.

    Purely filesystem-backed and lock-free on the happy path: one
    process appends to a given job's journal at a time (the service
    runs jobs sequentially), and readers only ever see a prefix.
    """

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.jobs_root, exist_ok=True)

    # ----------------------------------------------------------- layout

    @property
    def jobs_root(self) -> str:
        return os.path.join(self.root, "jobs")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_root, job_id)

    def spec_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "spec.json")

    def journal_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "journal.jsonl")

    def tasks_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "tasks.jsonl")

    def events_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "events.jsonl")

    def report_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "report.json")

    @property
    def cache_dir(self) -> str:
        """Shared per-spec result cache (the sweep artifact tier)."""
        path = os.path.join(self.root, "cache")
        os.makedirs(path, exist_ok=True)
        return path

    @property
    def snapshot_dir(self) -> str:
        """Shared content-addressed rung store (the campaign tier)."""
        path = os.path.join(self.root, "snapshots")
        os.makedirs(path, exist_ok=True)
        return path

    # ------------------------------------------------------- submission

    def submit(self, spec: JobSpec, force: bool = False) -> JobRecord:
        """Admit a job; idempotent on content.

        A brand-new spec is journaled ``queued``.  Resubmitting an
        in-flight or interrupted job is a no-op (it is already going
        to run); resubmitting a *terminal* job returns the finished
        record unless ``force=True``, which re-queues it -- completed
        task outcomes remain journaled, so the re-run only simulates
        what the artifact tier cannot answer.
        """
        job_id = spec.job_id()
        directory = self.job_dir(job_id)
        os.makedirs(directory, exist_ok=True)
        spec_path = self.spec_path(job_id)
        if not os.path.exists(spec_path):
            staging = f"{spec_path}.tmp.{os.getpid()}"
            with open(staging, "w") as handle:
                json.dump(spec.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            os.replace(staging, spec_path)
        record = self.record(job_id)
        if record.state in TERMINAL_STATES and not force:
            return record
        if record.state in (RUNNING,):
            return record
        if record.state != QUEUED or not _read_jsonl(
                self.journal_path(job_id)):
            self.set_state(job_id, QUEUED,
                           resubmitted=bool(record.terminal))
        return self.record(job_id)

    # ---------------------------------------------------------- journal

    def set_state(self, job_id: str, state: str, **detail) -> Dict:
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        record = {"ts": round(time.time(), 6), "state": state}
        record.update(detail)
        _append_jsonl(self.journal_path(job_id), record)
        return record

    def journal(self, job_id: str) -> List[Dict]:
        return _read_jsonl(self.journal_path(job_id))

    def record(self, job_id: str) -> JobRecord:
        spec_path = self.spec_path(job_id)
        try:
            with open(spec_path) as handle:
                spec = JobSpec.from_dict(json.load(handle))
        except OSError:
            raise JobError(f"unknown job {job_id!r}") from None
        entries = self.journal(job_id)
        record = JobRecord(job_id=job_id, spec=spec)
        if entries:
            record.created_ts = entries[0].get("ts", 0.0)
            last = entries[-1]
            record.state = last.get("state", QUEUED)
            record.updated_ts = last.get("ts", 0.0)
            record.detail = {key: value for key, value in last.items()
                             if key not in ("ts", "state")}
        return record

    def list_records(self) -> List[JobRecord]:
        records = []
        try:
            names = sorted(os.listdir(self.jobs_root))
        except OSError:
            return records
        for name in names:
            try:
                records.append(self.record(name))
            except JobError:
                continue
        return records

    def queued_ids(self) -> List[str]:
        """Job ids whose latest state is ``queued``, submission order
        (journal birth time, then id for stability)."""
        queued = [record for record in self.list_records()
                  if record.state == QUEUED]
        queued.sort(key=lambda r: (r.created_ts, r.job_id))
        return [record.job_id for record in queued]

    def recover(self) -> List[JobRecord]:
        """Re-queue every job a previous process left unfinished.

        Called once at service start: any job whose journal tail is
        ``running`` (killed mid-run) or ``interrupted`` (graceful
        shutdown) is appended a ``queued`` transition with
        ``resumed=True``.  Returns the re-queued records.
        """
        resumed = []
        for record in self.list_records():
            if record.state in (RUNNING, INTERRUPTED):
                self.set_state(record.job_id, QUEUED, resumed=True,
                               previous=record.state)
                resumed.append(self.record(record.job_id))
        return resumed

    # ----------------------------------------------------- task journal

    def append_task(self, job_id: str, key: str, value) -> None:
        """Journal one completed task's outcome (key = content hash of
        the task input; value must be JSON-ready)."""
        _append_jsonl(self.tasks_path(job_id),
                      {"key": key, "value": value})

    def tasks(self, job_id: str) -> Dict[str, object]:
        """All journaled task outcomes, last write per key wins."""
        out: Dict[str, object] = {}
        for record in _read_jsonl(self.tasks_path(job_id)):
            if "key" in record:
                out[record["key"]] = record.get("value")
        return out

    # ----------------------------------------------------- cancellation

    def _cancel_marker(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "CANCEL")

    def request_cancel(self, job_id: str) -> JobRecord:
        """Ask a job to stop: queued jobs cancel immediately; running
        jobs get a marker the runner honours between tasks."""
        record = self.record(job_id)
        if record.terminal:
            return record
        if record.state == RUNNING:
            with open(self._cancel_marker(job_id), "w") as handle:
                handle.write(str(time.time()))
                handle.flush()
            return record
        self.set_state(job_id, CANCELLED, requested=True)
        return self.record(job_id)

    def cancel_requested(self, job_id: str) -> bool:
        return os.path.exists(self._cancel_marker(job_id))

    def clear_cancel(self, job_id: str) -> None:
        try:
            os.unlink(self._cancel_marker(job_id))
        except OSError:
            pass

    # ----------------------------------------------------------- report

    def save_report(self, job_id: str, payload: Dict) -> str:
        path = self.report_path(job_id)
        staging = f"{path}.tmp.{os.getpid()}"
        with open(staging, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(staging, path)
        return path

    def load_report(self, job_id: str) -> Optional[Dict]:
        try:
            with open(self.report_path(job_id)) as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
