"""Work-stealing worker pool: the service's execution engine.

:class:`ParallelExecutor`'s pool (``multiprocessing.Pool.imap_unordered``)
is fine for one sweep, but a service runs *campaigns* whose chunks have
wildly uneven wall-clock (one congested cell can run 10x longer than
its neighbours) and must survive individual task deaths without
forfeiting the job.  This pool keeps scheduling in the parent:

* each worker owns a deque of tasks, seeded **cell-affine** -- tasks
  sharing an affinity key land on the same worker in submission order,
  so a worker can keep that cell's simulated system resident across
  its chunks (the PR 7 ``_ResidentCell`` tier keeps paying off);
* a worker that drains its own deque *steals from the tail* of the
  longest remaining deque (tail = the coldest chunks, so affinity
  is sacrificed last), narrated as a ``steal`` event;
* every task runs under an optional wall-clock timeout -- a hung
  worker is terminated and respawned, the pool keeps going;
* failures re-dispatch per :class:`repro.harness.RetryPolicy`
  (exponential backoff, narrated as ``task_retry``); a task that
  exhausts the policy is **quarantined** (``task_quarantine``) as an
  error outcome instead of killing the pool, so one poison chunk
  cannot sink a 160-trial campaign.

Scheduling never changes results: tasks are pure functions of their
argument, and outcomes come back in submission order.  ``workers <= 1``
(or a platform without process pools) runs everything inline with the
same retry/quarantine semantics, so service behaviour is identical
down to the event stream modulo ``steal`` events.
"""

from __future__ import annotations

import collections
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..harness.retry import SERVICE_POLICY, RetryPolicy
from ..harness.sweep import reset_worker_signals
from ..obsv.bus import Bus, QueueEmitter, drain_queue, get_bus, set_bus
from ..telemetry import current_context, get_logger, seed_context

log = get_logger("service.workers")


# ------------------------------------------------------------------ tasks


class PoolCancelled(RuntimeError):
    """``should_stop`` fired: the run stopped between tasks."""


@dataclass(frozen=True)
class Task:
    """One schedulable unit: a picklable ``fn(arg)`` call.

    ``key`` is the durable identity (the runner uses a content hash of
    the chunk's specs, so journaled outcomes survive restarts);
    ``affinity`` groups tasks onto the same worker (the campaign cell);
    ``label`` is display-only.
    """

    key: str
    fn: Callable
    arg: object
    affinity: object = None
    label: str = ""

    def describe(self) -> str:
        return self.label or self.key[:12]


@dataclass
class TaskOutcome:
    """What happened to one task (streamed to ``on_result`` as each
    task settles, and returned in submission order)."""

    key: str
    status: str                     # "ok" | "error"
    value: object = None
    error: str = ""
    attempts: int = 1
    worker: int = -1                # -1 = inline/serial
    elapsed_s: float = 0.0
    stolen: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# ---------------------------------------------------------------- workers


def _worker_main(worker_id: int, conn, result_queue, event_queue,
                 context_fields: Dict[str, str]) -> None:
    """Worker process body: pull one task, run, push the outcome.

    Single-buffered by design -- the parent owns all queues and only
    sends the next task after the previous result lands, which is what
    makes parent-side stealing possible (undispatched work never sits
    in a child's private queue).
    """
    reset_worker_signals()
    if event_queue is not None:
        set_bus(QueueEmitter(event_queue))
    seed_context(context_fields)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        seq, fn, arg = message
        start = time.perf_counter()
        try:
            value = fn(arg)
            payload = (worker_id, seq, "ok", value,
                       time.perf_counter() - start)
        except BaseException:
            payload = (worker_id, seq, "err", traceback.format_exc(),
                       time.perf_counter() - start)
        try:
            result_queue.put(payload)
        except Exception:
            break


class _Worker:
    """Parent-side handle: process + pipe + what it is running now."""

    def __init__(self, worker_id: int, context, result_queue,
                 event_queue):
        self.worker_id = worker_id
        self.context = context
        self.result_queue = result_queue
        self.event_queue = event_queue
        self.conn = None
        self.process = None
        self.running: Optional[int] = None      # task seq in flight
        self.started_at = 0.0
        self.stolen = False
        self.spawn()

    def spawn(self) -> None:
        parent_conn, child_conn = self.context.Pipe()
        self.conn = parent_conn
        self.process = self.context.Process(
            target=_worker_main,
            args=(self.worker_id, child_conn, self.result_queue,
                  self.event_queue, current_context()),
            daemon=True)
        self.process.start()
        child_conn.close()

    def dispatch(self, seq: int, task: Task, stolen: bool) -> None:
        self.running = seq
        self.started_at = time.monotonic()
        self.stolen = stolen
        self.conn.send((seq, task.fn, task.arg))

    @property
    def idle(self) -> bool:
        return self.running is None

    def kill_and_respawn(self) -> None:
        """Terminate a hung/hosed worker and bring up a fresh one on a
        fresh pipe (the old child keeps its now-orphaned pipe end)."""
        try:
            self.process.terminate()
            self.process.join(timeout=5.0)
        except Exception:
            pass
        try:
            self.conn.close()
        except Exception:
            pass
        self.running = None
        self.spawn()

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except Exception:
            pass


# ------------------------------------------------------------------- pool


class WorkStealingPool:
    """Run a batch of :class:`Task` with stealing, retry, quarantine.

    ``workers`` is the process count (``<= 1`` runs inline);
    ``task_timeout_s`` bounds any single execution (``None`` = no
    limit); ``retry`` governs re-dispatch after failures/timeouts
    (default :data:`repro.harness.SERVICE_POLICY`: 3 attempts, 0.5 s
    exponential backoff).  ``bus`` pins the event bus (default: the
    ambient :func:`repro.obsv.get_bus` at each :meth:`run`).
    """

    def __init__(self, workers: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 task_timeout_s: Optional[float] = None,
                 bus: Optional[Bus] = None):
        self.workers = max(1, workers)
        self.retry = retry if retry is not None else SERVICE_POLICY
        self.task_timeout_s = task_timeout_s
        self.bus = bus

    def _resolve_bus(self) -> Bus:
        return self.bus if self.bus is not None else get_bus()

    # ------------------------------------------------------------- plan

    def plan_deques(self, tasks: Sequence[Task], workers: int
                    ) -> List[collections.deque]:
        """Cell-affine initial assignment: affinity groups round-robin
        onto workers in first-appearance order, tasks within a group
        staying in submission order on one deque.  Deterministic, so
        identical inputs produce identical initial placement."""
        groups: Dict[object, List[int]] = {}
        for seq, task in enumerate(tasks):
            groups.setdefault(task.affinity, []).append(seq)
        deques = [collections.deque() for _ in range(workers)]
        for slot, indices in enumerate(groups.values()):
            deques[slot % workers].extend(indices)
        return deques

    # -------------------------------------------------------------- run

    def run(self, tasks: Sequence[Task],
            on_result: Optional[Callable[[TaskOutcome], None]] = None,
            should_stop: Optional[Callable[[], bool]] = None
            ) -> List[TaskOutcome]:
        """Execute every task; outcomes return in submission order.

        ``on_result`` fires in *settlement* order as each task finishes
        (the runner journals outcomes from it, so a kill loses at most
        the in-flight tasks).  ``should_stop`` is polled between tasks;
        when it returns true the run raises :class:`PoolCancelled`
        instead of dispatching further work (job cancellation).  The
        pool never raises for a task failure -- exhausted tasks come
        back as quarantined ``error`` outcomes; the caller decides
        whether that fails the job.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        bus = self._resolve_bus()
        if self.workers <= 1 or len(tasks) == 1:
            return self._run_inline(tasks, bus, on_result, should_stop)
        try:
            return self._run_pool(tasks, bus, on_result, should_stop)
        except OSError:
            log.warning("no process pool available; work-stealing pool "
                        "degrades to inline execution")
            return self._run_inline(tasks, bus, on_result, should_stop)

    # ------------------------------------------------------ inline mode

    def _run_inline(self, tasks: Sequence[Task], bus: Bus,
                    on_result, should_stop=None) -> List[TaskOutcome]:
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        for seq, task in enumerate(tasks):
            if should_stop is not None and should_stop():
                raise PoolCancelled(f"stopped before task {seq}")
            bus.emit("task_start", index=seq, label=task.describe())
            attempt = 0
            error = ""
            outcome = None
            while True:
                attempt += 1
                start = time.perf_counter()
                try:
                    value = task.fn(task.arg)
                    outcome = TaskOutcome(
                        key=task.key, status="ok", value=value,
                        attempts=attempt,
                        elapsed_s=time.perf_counter() - start)
                    break
                except Exception as exc:
                    error = traceback.format_exc()
                    if not self.retry.should_retry(attempt, exc):
                        break
                    delay = self.retry.delay_s(attempt)
                    bus.emit("task_retry", label=task.describe(),
                             attempt=attempt + 1,
                             delay_s=round(delay, 3),
                             error=_error_tail(error))
                    if delay:
                        time.sleep(delay)
            if outcome is None:
                outcome = self._quarantine(task, attempt, error, bus)
            self._settle(seq, task, outcome, outcomes, bus, on_result)
        return outcomes

    # -------------------------------------------------------- pool mode

    def _run_pool(self, tasks: Sequence[Task], bus: Bus,
                  on_result, should_stop=None) -> List[TaskOutcome]:
        context = multiprocessing.get_context()
        result_queue = context.Queue()
        event_queue = None
        if bus.enabled and context.get_start_method() == "fork":
            event_queue = context.Queue()
        n_workers = min(self.workers, len(tasks))
        deques = self.plan_deques(tasks, n_workers)
        attempts = [0] * len(tasks)
        last_error = [""] * len(tasks)
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        #: (ready_at, seq) for tasks sitting out a retry backoff.
        delayed: List[tuple] = []
        settled = 0

        pool = [_Worker(i, context, result_queue, event_queue)
                for i in range(n_workers)]
        try:
            while settled < len(tasks):
                if should_stop is not None and should_stop():
                    raise PoolCancelled(
                        f"stopped with {len(tasks) - settled} task(s) "
                        f"unfinished")
                now = time.monotonic()
                for ready_at, seq in list(delayed):
                    if ready_at <= now:
                        delayed.remove((ready_at, seq))
                        deques[seq % n_workers].appendleft(seq)
                self._dispatch_idle(pool, deques, tasks, bus)
                drain_queue(event_queue, bus)

                timeout = self._tick_timeout(pool, delayed, now)
                try:
                    (worker_id, seq, status, payload,
                     elapsed) = result_queue.get(timeout=timeout)
                except Exception:       # queue.Empty
                    hung = self._reap_hung(pool)
                    for worker, seq in hung:
                        settled += self._handle_failure(
                            seq, tasks[seq], worker,
                            f"task timeout after "
                            f"{self.task_timeout_s:.1f}s "
                            f"(worker {worker.worker_id} killed)",
                            self.task_timeout_s or 0.0, attempts,
                            last_error, delayed, outcomes, bus,
                            on_result, timeout_exc=True)
                    continue

                drain_queue(event_queue, bus)
                worker = pool[worker_id]
                if worker.running != seq:
                    # Stale result from a worker killed for timeout
                    # whose task completed anyway; its seq was already
                    # re-queued or quarantined.
                    continue
                stolen = worker.stolen
                worker.running = None
                if status == "ok":
                    outcome = TaskOutcome(
                        key=tasks[seq].key, status="ok", value=payload,
                        attempts=attempts[seq] + 1, worker=worker_id,
                        elapsed_s=elapsed, stolen=stolen)
                    self._settle(seq, tasks[seq], outcome, outcomes,
                                 bus, on_result)
                    settled += 1
                else:
                    settled += self._handle_failure(
                        seq, tasks[seq], worker, payload, elapsed,
                        attempts, last_error, delayed, outcomes, bus,
                        on_result)
        finally:
            for worker in pool:
                worker.shutdown()
            drain_queue(event_queue, bus)
        return outcomes

    def _dispatch_idle(self, pool, deques, tasks, bus: Bus) -> None:
        """Feed every idle worker: own deque head first, else steal
        from the tail of the longest other deque."""
        for worker in pool:
            if not worker.idle:
                continue
            own = deques[worker.worker_id]
            if own:
                seq = own.popleft()
                stolen = False
            else:
                victim = max(range(len(deques)),
                             key=lambda i: len(deques[i]))
                if not deques[victim]:
                    continue
                seq = deques[victim].pop()
                stolen = True
                bus.emit("steal", thief=worker.worker_id,
                         victim=victim, label=tasks[seq].describe())
            bus.emit("task_start", index=seq,
                     label=tasks[seq].describe())
            worker.dispatch(seq, tasks[seq], stolen)

    def _tick_timeout(self, pool, delayed, now: float) -> float:
        """How long to block on the result queue: until the nearest
        task deadline or retry-backoff expiry, bounded to stay
        responsive."""
        timeout = 0.5
        if self.task_timeout_s is not None:
            for worker in pool:
                if worker.idle:
                    continue
                deadline = worker.started_at + self.task_timeout_s
                timeout = min(timeout, max(0.05, deadline - now))
        for ready_at, _ in delayed:
            timeout = min(timeout, max(0.05, ready_at - now))
        return timeout

    def _reap_hung(self, pool) -> List[tuple]:
        """Kill workers whose task has overrun the timeout; return the
        (worker, seq) pairs whose tasks need a failure verdict."""
        if self.task_timeout_s is None:
            return []
        now = time.monotonic()
        hung = []
        for worker in pool:
            if worker.idle:
                continue
            if now - worker.started_at > self.task_timeout_s:
                seq = worker.running
                log.warning("worker %d hung on task %s; respawning",
                            worker.worker_id, seq)
                worker.kill_and_respawn()
                hung.append((worker, seq))
        return hung

    def _handle_failure(self, seq: int, task: Task, worker, error: str,
                        elapsed: float, attempts, last_error, delayed,
                        outcomes, bus: Bus, on_result,
                        timeout_exc: bool = False) -> int:
        """Retry or quarantine one failed execution.  Returns 1 if the
        task settled (quarantined), 0 if it went back in the queue."""
        attempts[seq] += 1
        last_error[seq] = error
        exc = TimeoutError(error) if timeout_exc else RuntimeError(error)
        if self.retry.should_retry(attempts[seq], exc):
            delay = self.retry.delay_s(attempts[seq])
            bus.emit("task_retry", label=task.describe(),
                     attempt=attempts[seq] + 1,
                     delay_s=round(delay, 3),
                     error=_error_tail(error))
            delayed.append((time.monotonic() + delay, seq))
            return 0
        outcome = self._quarantine(task, attempts[seq], error, bus,
                                   worker=worker.worker_id)
        outcome.elapsed_s = elapsed
        self._settle(seq, task, outcome, outcomes, bus, on_result)
        return 1

    # -------------------------------------------------------- settling

    def _quarantine(self, task: Task, attempts: int, error: str,
                    bus: Bus, worker: int = -1) -> TaskOutcome:
        bus.emit("task_quarantine", label=task.describe(),
                 attempts=attempts, error=_error_tail(error))
        log.warning("task %s quarantined after %d attempt(s): %s",
                    task.describe(), attempts, _error_tail(error))
        return TaskOutcome(key=task.key, status="error", error=error,
                           attempts=attempts, worker=worker)

    def _settle(self, seq: int, task: Task, outcome: TaskOutcome,
                outcomes, bus: Bus, on_result) -> None:
        outcomes[seq] = outcome
        if outcome.ok:
            bus.emit("task_finish", index=seq, label=task.describe(),
                     elapsed_s=outcome.elapsed_s,
                     source="steal" if outcome.stolen else "pool")
        else:
            bus.emit("task_error", index=seq, label=task.describe(),
                     error=_error_tail(outcome.error))
        if on_result is not None:
            on_result(outcome)


def _error_tail(error: str, limit: int = 200) -> str:
    lines = [line for line in str(error).strip().splitlines() if line]
    tail = lines[-1] if lines else str(error)
    return tail[:limit]
