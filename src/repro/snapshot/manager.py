"""The snapshot ladder: when and how running systems are captured.

Safe points
-----------
Core processes are Python generators, which cannot be serialised, so
capture happens only at *quiesce points* where no generator holds
interesting frame state:

* every core is **parked** at the top of its FASE loop (no open FASE,
  no held locks, no live rollback) or has finished its thread, and
* the event heap is **empty** -- every in-flight timeout, persist
  arrival and buffered-drain callback has landed.

At such a point the entire machine is plain data and
``System.capture_state()`` is exact.

Ladder policy
-------------
The ladder requests a capture every ``every`` persist events at the PM
device (the durability points -- the persisted image only changes
there, which is what makes them the natural rung spacing).  On a
request, cores park as they each reach their FASE boundary; once the
heap drains with all active cores parked, the ladder captures and
resumes everyone at the quiesce time, in core order.

Parking delays cores, so a laddered run is its own timing universe: a
run with ``every=K`` is deterministic and self-consistent, but differs
from an unladdered run.  Campaign profiling and trials therefore both
run laddered with the same ``K`` -- restored trials replay the exact
canonical execution -- and the ladder is entirely off (zero events,
zero cost) when ``every == 0``.

A capture request can be *abandoned*: if the heap drains while some
active core is blocked on a mutex (its owner parked before releasing),
waiting longer cannot help, so the ladder resumes everyone and skips
the rung.  Abandonment is deterministic, so canonical and restored
runs skip the same rungs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obsv.bus import get_bus
from .store import SnapshotError, SnapshotStore

SNAPSHOT_SCHEMA_VERSION = 1


def nearest_rung(rungs: List[Dict], crash_cycle: int) -> Optional[Dict]:
    """The latest rung at or before ``crash_cycle`` (None: start cold)."""
    best = None
    for rung in rungs:
        if rung["cycle"] <= crash_cycle and (
                best is None or rung["cycle"] > best["cycle"]):
            best = rung
    return best


class SnapshotLadder:
    """Capture policy + park/quiesce/resume choreography for one system."""

    def __init__(self, system, every: int,
                 store: Optional[SnapshotStore] = None,
                 index_name: Optional[str] = None,
                 capture: bool = True,
                 keep_in_memory: bool = False):
        if every < 0:
            raise ValueError("snapshot interval must be >= 0")
        self.system = system
        self.every = every
        self.store = store
        self.index_name = index_name
        self.capture_enabled = capture
        self.keep_in_memory = keep_in_memory
        self._since_last = 0
        self._requested = False
        self._parked: Dict[int, object] = {}   # core_id -> park Event
        #: Captured rungs: {"cycle", "rung", "fingerprint"?, "key"?,
        #: "payload"?} -- "key" when stored on disk, "payload" when kept
        #: in memory for same-process forking.
        self.rungs: List[Dict] = []
        self.rungs_captured = 0
        self.rungs_abandoned = 0

    # ------------------------------------------------------------- install

    def install(self) -> "SnapshotLadder":
        """Attach to the system: the persist hook + the park hook.

        The trigger counts *device* persists rather than WPQ admissions
        because the device is the one durability point every design
        funnels through -- DPO and HOPS drain their persist buffers
        straight to the device without touching the controller's write
        queue, and a ladder keyed on WPQ admissions would never fire
        under them.
        """
        self.system.snapshots = self
        if self.every:
            self.system.device.on_persist = self._on_accept
        return self

    # ------------------------------------------------------------- trigger

    def _on_accept(self) -> None:
        if not self.every:
            return
        self._since_last += 1
        if self._since_last >= self.every:
            self._requested = True

    def park_event(self, core):
        """Called by a core at the top of its FASE loop; returns an event
        to wait on (park) or None (keep running)."""
        if not self._requested or core.held_locks:
            return None
        event = self.system.env.event()
        self._parked[core.core_id] = event
        return event

    # ------------------------------------------------------------- quiesce

    def on_heap_drained(self) -> bool:
        """The event heap emptied mid-run.  Capture if quiesced, then
        resume parked cores; returns True when cores were resumed (the
        caller should continue driving the simulation)."""
        if not self._parked:
            return False
        active = [core for core in self.system.cores
                  if core.finish_time is None]
        quiesced = all(core.core_id in self._parked for core in active)
        # Reset the trigger *before* capturing so the snapshot records
        # post-rung bookkeeping: a restored run must see a full ``every``
        # persists before parking again, exactly like the canonical run
        # continuing past this rung.
        self._requested = False
        self._since_last = 0
        if quiesced:
            if self.capture_enabled:
                self._capture()
            else:
                self.rungs_captured += 1
        else:
            # A non-parked active core is blocked on a lock whose owner
            # parked first; the rung is unreachable -- skip it.
            self.rungs_abandoned += 1
        parked, self._parked = self._parked, {}
        for core_id in sorted(parked):
            parked[core_id].succeed()
        return True

    def _capture(self) -> None:
        from .fingerprint import fingerprint_state
        rung_no = self.rungs_captured
        # Count this rung *before* capturing: the payload must say the
        # rung is done, so a restored run numbers its next rung as the
        # canonical run would.
        self.rungs_captured += 1
        payload = self.system.capture_state()
        rung = {"cycle": payload["cycle"], "rung": rung_no,
                "fingerprint": fingerprint_state(payload)}
        if self.store is not None:
            rung["key"] = self.store.put(payload)
        if self.keep_in_memory or self.store is None:
            rung["payload"] = payload
        self.rungs.append(rung)
        # Wall-side narration only: the capture itself (cycle, payload,
        # fingerprint) is already done, so an enabled bus cannot
        # perturb the rung.
        bus = get_bus()
        if bus.enabled:
            bus.emit("rung_capture", cycle=rung["cycle"], rung=rung_no)

    def flush_index(self) -> None:
        """Persist the rung index (cycle -> object key) for this ladder."""
        if self.store is None or self.index_name is None:
            return
        self.store.save_index(self.index_name, [
            {"cycle": rung["cycle"], "rung": rung["rung"],
             "fingerprint": rung["fingerprint"], "key": rung["key"]}
            for rung in self.rungs if "key" in rung])

    # -------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        """The ladder's own bookkeeping rides inside every snapshot so a
        restored run keeps parking at the canonical rung points."""
        return {"since_last": self._since_last,
                "rungs_captured": self.rungs_captured,
                "rungs_abandoned": self.rungs_abandoned}

    def restore_state(self, state: dict) -> None:
        self._since_last = state["since_last"]
        self.rungs_captured = state["rungs_captured"]
        self.rungs_abandoned = state["rungs_abandoned"]
        self._requested = False
        self._parked = {}


def restore_nearest(system, store: SnapshotStore, index_name: str,
                    crash_cycle: int) -> Optional[Dict]:
    """Restore ``system`` from the nearest stored rung <= ``crash_cycle``.

    Returns the rung dict on success, None when no usable rung exists.
    Raises :class:`SnapshotError` on a corrupt/unreadable store -- the
    caller decides whether that is fatal or a cold-start fallback.
    """
    rungs = store.load_index(index_name)
    rung = nearest_rung(rungs, crash_cycle)
    if rung is None:
        return None
    payload = store.get(rung["key"])
    system.restore_state(payload)
    bus = get_bus()
    if bus.enabled:
        # How deep a warm start got: the distance crash_cycle -
        # rung_cycle is the tail each trial still has to simulate.
        # ``source`` says where the payload came from: here always the
        # store (the resident path emits "resident"/"cold" itself).
        bus.emit("snapshot_restore", crash_cycle=crash_cycle,
                 rung_cycle=rung["cycle"], rung=rung["rung"],
                 source="store")
    return rung
