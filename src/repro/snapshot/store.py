"""Content-addressed on-disk snapshot store.

Layout under the store root::

    objects/<k0k1>/<key>.snap   pickled snapshot payloads, keyed by the
                                sha256 of their serialised bytes
    index/<name>.json           rung indexes: which snapshots form the
                                ladder of one campaign cell / sweep base

Writes are atomic (temp file + ``os.replace``) so a crashed or killed
run can never leave a torn object behind -- a truncated or otherwise
unreadable object raises :class:`SnapshotError`, which callers treat as
"snapshot unavailable, fall back to cold start".  ``max_bytes`` imposes
an LRU cap: objects are evicted oldest-access-first whenever the store
grows past it (reads refresh an object's mtime so ladder rungs in
active use survive).

The store sits beside the PR 1 artifact cache on purpose: artifacts are
*results* keyed by spec, snapshots are *machine states* keyed by
content, and their lifetimes differ (snapshots are a pure accelerator
-- losing one costs time, never correctness).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Dict, List, Optional

INDEX_SCHEMA_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot could not be stored, found, or decoded."""


class SnapshotStore:
    """Content-addressed pickle store with atomic writes and an LRU cap."""

    def __init__(self, root: str, max_bytes: Optional[int] = None):
        self.root = root
        self.max_bytes = max_bytes
        self._objects = os.path.join(root, "objects")
        self._index_dir = os.path.join(root, "index")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._index_dir, exist_ok=True)

    # -------------------------------------------------------------- objects

    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key + ".snap")

    def put(self, payload: dict) -> str:
        """Store a payload; returns its content key (idempotent)."""
        try:
            blob = pickle.dumps(payload, protocol=4)
        except Exception as exc:
            raise SnapshotError(f"unpicklable snapshot payload: {exc}")
        key = hashlib.sha256(blob).hexdigest()
        path = self._object_path(key)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            self._enforce_cap()
        return key

    def get(self, key: str) -> dict:
        """Load a payload by key; raises :class:`SnapshotError` when the
        object is missing, truncated, or corrupt."""
        path = self._object_path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise SnapshotError(f"snapshot {key[:12]} unavailable: {exc}")
        if hashlib.sha256(blob).hexdigest() != key:
            raise SnapshotError(
                f"snapshot {key[:12]} corrupt: content hash mismatch")
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise SnapshotError(f"snapshot {key[:12]} undecodable: {exc}")
        # LRU refresh: a rung in active use should outlive idle ones.
        try:
            os.utime(path)
        except OSError:
            pass
        return payload

    def has(self, key: str) -> bool:
        return os.path.exists(self._object_path(key))

    def _objects_by_age(self) -> List[str]:
        paths = []
        for dirpath, _dirnames, filenames in os.walk(self._objects):
            for filename in filenames:
                if filename.endswith(".snap"):
                    paths.append(os.path.join(dirpath, filename))
        return sorted(paths, key=lambda p: (os.path.getmtime(p), p))

    def _enforce_cap(self) -> None:
        if self.max_bytes is None:
            return
        paths = self._objects_by_age()
        total = sum(os.path.getsize(p) for p in paths)
        while paths and total > self.max_bytes:
            victim = paths.pop(0)
            try:
                total -= os.path.getsize(victim)
                os.unlink(victim)
            except OSError:
                break

    def total_bytes(self) -> int:
        return sum(os.path.getsize(p) for p in self._objects_by_age())

    # -------------------------------------------------------------- indexes

    def _index_path(self, name: str) -> str:
        return os.path.join(self._index_dir, name + ".json")

    def save_index(self, name: str, rungs: List[Dict]) -> str:
        """Atomically write a ladder index: ``[{cycle, key}, ...]``."""
        path = self._index_path(name)
        document = {"schema_version": INDEX_SCHEMA_VERSION, "rungs": rungs}
        fd, tmp = tempfile.mkstemp(dir=self._index_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load_index(self, name: str) -> List[Dict]:
        """Load a ladder index; raises :class:`SnapshotError` if absent
        or unreadable."""
        path = self._index_path(name)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"snapshot index {name!r} unavailable: {exc}")
        if document.get("schema_version") != INDEX_SCHEMA_VERSION:
            raise SnapshotError(
                f"snapshot index {name!r} has schema "
                f"{document.get('schema_version')!r}, "
                f"expected {INDEX_SCHEMA_VERSION}")
        return list(document.get("rungs", []))

    def indexes(self) -> List[str]:
        return sorted(name[:-5] for name in os.listdir(self._index_dir)
                      if name.endswith(".json"))
