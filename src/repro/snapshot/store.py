"""Content-addressed on-disk snapshot store.

Layout under the store root::

    objects/<k0k1>/<key>.snap   pickled snapshot payloads, keyed by the
                                sha256 of their serialised bytes
    index/<name>.json           rung indexes: which snapshots form the
                                ladder of one campaign cell / sweep base

Writes are atomic (temp file + ``os.replace``) so a crashed or killed
run can never leave a torn object behind -- a truncated or otherwise
unreadable object raises :class:`SnapshotError`, which callers treat as
"snapshot unavailable, fall back to cold start".  ``max_bytes`` imposes
an LRU cap: objects are evicted oldest-access-first whenever the store
grows past it (reads refresh an object's mtime so ladder rungs in
active use survive).

The store sits beside the PR 1 artifact cache on purpose: artifacts are
*results* keyed by spec, snapshots are *machine states* keyed by
content, and their lifetimes differ (snapshots are a pure accelerator
-- losing one costs time, never correctness).

Read-side caching
-----------------
Campaign trials read the same few rungs hundreds of times, so the
store keeps one *process-wide* read cache (class-level, shared by
every :class:`SnapshotStore` instance -- content addressing makes a
blob location-independent):

* a raw-bytes LRU capped at :data:`SnapshotStore.READ_CACHE_MAX_BYTES`,
  so repeat reads of a hot rung skip the filesystem entirely, and
* a verified-once memo: a key's sha256 is recomputed on its first
  disk read only.  Object files are immutable by contract (the name
  *is* the content hash and writes are atomic), so re-verifying the
  same bytes every read only measures the hash function.  A file
  damaged *after* its first verified read is external interference
  and surfaces as an unpickling error rather than a hash mismatch.

``put`` never populates the read cache: a freshly written object must
still prove it is readable from disk once, which is also what keeps
store-damage fault injection (truncate after write) honest.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Dict, List, Optional, Set

INDEX_SCHEMA_VERSION = 1


class SnapshotError(RuntimeError):
    """A snapshot could not be stored, found, or decoded."""


class SnapshotStore:
    """Content-addressed pickle store with atomic writes and an LRU cap."""

    #: Process-wide raw-bytes read cache (see module docstring).  Class
    #: attributes on purpose: every store instance in the process shares
    #: one cache, and pool workers each get their own copy-on-fork.
    READ_CACHE_MAX_BYTES: int = 128 * 1024 * 1024
    _read_cache: "OrderedDict[str, bytes]" = OrderedDict()
    _read_cache_bytes: int = 0
    _verified: Set[str] = set()
    _read_stats: Dict[str, int] = {"hits": 0, "misses": 0,
                                   "sha_skips": 0, "evictions": 0}

    @classmethod
    def clear_read_cache(cls) -> None:
        """Drop the process-wide read cache (tests, memory pressure)."""
        cls._read_cache.clear()
        cls._read_cache_bytes = 0
        cls._verified.clear()
        cls._read_stats = {"hits": 0, "misses": 0,
                           "sha_skips": 0, "evictions": 0}

    @classmethod
    def read_cache_stats(cls) -> Dict[str, int]:
        """Counters + current occupancy of the process-wide read cache."""
        stats = dict(cls._read_stats)
        stats["entries"] = len(cls._read_cache)
        stats["bytes"] = cls._read_cache_bytes
        return stats

    @classmethod
    def _read_cache_insert(cls, key: str, blob: bytes) -> None:
        if len(blob) > cls.READ_CACHE_MAX_BYTES:
            return
        previous = cls._read_cache.pop(key, None)
        if previous is not None:
            cls._read_cache_bytes -= len(previous)
        cls._read_cache[key] = blob
        cls._read_cache_bytes += len(blob)
        while cls._read_cache_bytes > cls.READ_CACHE_MAX_BYTES:
            _victim, old = cls._read_cache.popitem(last=False)
            cls._read_cache_bytes -= len(old)
            cls._read_stats["evictions"] += 1

    @classmethod
    def _read_cache_drop(cls, key: str) -> None:
        """An object evicted from *disk* must leave the read cache too,
        or a capped store would keep serving objects it claims not to
        have."""
        blob = cls._read_cache.pop(key, None)
        if blob is not None:
            cls._read_cache_bytes -= len(blob)
        cls._verified.discard(key)

    def __init__(self, root: str, max_bytes: Optional[int] = None):
        self.root = root
        self.max_bytes = max_bytes
        self._objects = os.path.join(root, "objects")
        self._index_dir = os.path.join(root, "index")
        os.makedirs(self._objects, exist_ok=True)
        os.makedirs(self._index_dir, exist_ok=True)

    # -------------------------------------------------------------- objects

    def _object_path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], key + ".snap")

    def put(self, payload: dict) -> str:
        """Store a payload; returns its content key (idempotent)."""
        try:
            blob = pickle.dumps(payload, protocol=4)
        except Exception as exc:
            raise SnapshotError(f"unpicklable snapshot payload: {exc}")
        key = hashlib.sha256(blob).hexdigest()
        path = self._object_path(key)
        if not os.path.exists(path):
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
            self._enforce_cap()
        return key

    def get(self, key: str) -> dict:
        """Load a payload by key; raises :class:`SnapshotError` when the
        object is missing, truncated, or corrupt."""
        cls = SnapshotStore
        blob = cls._read_cache.get(key)
        if blob is not None:
            cls._read_cache.move_to_end(key)
            cls._read_stats["hits"] += 1
        else:
            cls._read_stats["misses"] += 1
            path = self._object_path(key)
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except OSError as exc:
                raise SnapshotError(
                    f"snapshot {key[:12]} unavailable: {exc}")
            if key in cls._verified:
                cls._read_stats["sha_skips"] += 1
            elif hashlib.sha256(blob).hexdigest() != key:
                raise SnapshotError(
                    f"snapshot {key[:12]} corrupt: content hash mismatch")
            else:
                cls._verified.add(key)
            cls._read_cache_insert(key, blob)
            # LRU refresh: a rung in active use should outlive idle
            # ones.  Only on real disk reads -- an object hot enough to
            # live in the read cache was refreshed when it entered.
            try:
                os.utime(path)
            except OSError:
                pass
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise SnapshotError(f"snapshot {key[:12]} undecodable: {exc}")
        return payload

    def has(self, key: str) -> bool:
        return os.path.exists(self._object_path(key))

    def _objects_by_age(self) -> List[str]:
        paths = []
        for dirpath, _dirnames, filenames in os.walk(self._objects):
            for filename in filenames:
                if filename.endswith(".snap"):
                    paths.append(os.path.join(dirpath, filename))
        return sorted(paths, key=lambda p: (os.path.getmtime(p), p))

    def _enforce_cap(self) -> None:
        if self.max_bytes is None:
            return
        paths = self._objects_by_age()
        total = sum(os.path.getsize(p) for p in paths)
        while paths and total > self.max_bytes:
            victim = paths.pop(0)
            try:
                total -= os.path.getsize(victim)
                os.unlink(victim)
            except OSError:
                break
            self._read_cache_drop(os.path.basename(victim)[:-len(".snap")])

    def total_bytes(self) -> int:
        return sum(os.path.getsize(p) for p in self._objects_by_age())

    # -------------------------------------------------------------- indexes

    def _index_path(self, name: str) -> str:
        return os.path.join(self._index_dir, name + ".json")

    def save_index(self, name: str, rungs: List[Dict]) -> str:
        """Atomically write a ladder index: ``[{cycle, key}, ...]``."""
        path = self._index_path(name)
        document = {"schema_version": INDEX_SCHEMA_VERSION, "rungs": rungs}
        fd, tmp = tempfile.mkstemp(dir=self._index_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load_index(self, name: str) -> List[Dict]:
        """Load a ladder index; raises :class:`SnapshotError` if absent
        or unreadable."""
        path = self._index_path(name)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SnapshotError(f"snapshot index {name!r} unavailable: {exc}")
        if document.get("schema_version") != INDEX_SCHEMA_VERSION:
            raise SnapshotError(
                f"snapshot index {name!r} has schema "
                f"{document.get('schema_version')!r}, "
                f"expected {INDEX_SCHEMA_VERSION}")
        return list(document.get("rungs", []))

    def indexes(self) -> List[str]:
        return sorted(name[:-5] for name in os.listdir(self._index_dir)
                      if name.endswith(".json"))
