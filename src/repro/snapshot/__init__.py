"""Deterministic snapshot/restore of full simulator state.

The subsystem captures the complete dynamic state of a :class:`System`
at *safe points* -- quiesced persist-acceptance boundaries where the
event heap is empty and every core is parked between FASEs -- and can
restore it into a freshly built, identically configured system so that
replaying the tail is bit-identical to the straight-line run.

Three pieces:

* :mod:`repro.snapshot.fingerprint` -- a canonical, stable hash over a
  captured state, the standing determinism check (restore-then-replay
  must land on the same end-of-run fingerprint as straight execution);
* :mod:`repro.snapshot.store` -- a content-addressed on-disk store with
  atomic writes and an LRU byte cap, plus JSON rung indexes;
* :mod:`repro.snapshot.manager` -- the snapshot *ladder*: a capture
  policy (every K persist events at the PM device) that parks cores at
  their FASE-loop boundary, quiesces the machine, captures, and resumes.

Every stateful component implements the :class:`Snapshottable` protocol
(``capture_state() -> dict`` / ``restore_state(state)``); captured
states are plain data (ints, strings, lists, dicts) so they pickle and
hash deterministically.  Configuration-derived values (latencies,
capacities, geometries) are *not* captured -- they come from rebuilding
the system from its spec -- which is also what lets warm-start sweeps
restore a base-config snapshot into a variant-latency system.
"""

from .fingerprint import canonical_bytes, fingerprint_state
from .manager import (
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotLadder,
    nearest_rung,
    restore_nearest,
)
from .store import SnapshotError, SnapshotStore

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "SnapshotError",
    "SnapshotLadder",
    "SnapshotStore",
    "Snapshottable",
    "canonical_bytes",
    "fingerprint_state",
    "nearest_rung",
    "restore_nearest",
]


class Snapshottable:
    """Protocol marker: components with capture_state/restore_state.

    Kept as a plain base class (not :mod:`typing` Protocol) so it works
    on 3.7-era syntax and can be used in isinstance checks by tests.
    """

    def capture_state(self) -> dict:  # pragma: no cover - interface
        raise NotImplementedError

    def restore_state(self, state: dict) -> None:  # pragma: no cover
        raise NotImplementedError
