"""Canonical encoding + stable hashing of captured simulator state.

``pickle`` output is not a sound fingerprint (memo numbering depends on
object identity and sharing), so fingerprints use a purpose-built
canonical byte encoding: type-tagged, length-prefixed, with dict items
emitted in sorted key order.  Two captured states encode identically
iff they are value-equal -- which is exactly the property the
restore-then-replay determinism check needs.

Only plain data may appear in a captured state: ``None``, ``bool``,
``int``, ``float``, ``str``, ``bytes``, and lists/tuples/dicts thereof.
Anything else is a capture bug and raises immediately (better a loud
error at capture time than a fingerprint that silently depends on
``repr`` addresses).
"""

from __future__ import annotations

import hashlib
from typing import Any


class FingerprintError(TypeError):
    """A captured state contained a non-plain-data value."""


def _key_order(key: Any):
    # Dict keys are ints (addresses, blocks, ids) or strings (field
    # names); sort ints before strings, each kind among itself.
    if isinstance(key, bool):
        raise FingerprintError(f"bool dict key {key!r} in captured state")
    if isinstance(key, int):
        return (0, key, "")
    if isinstance(key, str):
        return (1, 0, key)
    raise FingerprintError(f"unsupported dict key {key!r} in captured state")


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        body = str(obj).encode()
        out += b"i" + body + b";"
    elif isinstance(obj, float):
        out += b"f" + obj.hex().encode() + b";"
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out += b"s" + str(len(body)).encode() + b":" + body
    elif isinstance(obj, bytes):
        out += b"b" + str(len(obj)).encode() + b":" + obj
    elif isinstance(obj, (list, tuple)):
        # Lists and tuples encode identically: a restored state may
        # legitimately turn tuples into lists (JSON round trips do).
        out += b"l" + str(len(obj)).encode() + b":"
        for item in obj:
            _encode(item, out)
    elif isinstance(obj, dict):
        out += b"d" + str(len(obj)).encode() + b":"
        for key in sorted(obj, key=_key_order):
            _encode(key, out)
            _encode(obj[key], out)
    else:
        raise FingerprintError(
            f"unsupported value {obj!r} ({type(obj).__name__}) "
            f"in captured state")


def canonical_bytes(obj: Any) -> bytes:
    """The canonical byte encoding of a plain-data value."""
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def fingerprint_state(payload: dict) -> str:
    """Stable sha256 fingerprint of a captured system state.

    Hashes the architectural content: ``cycle`` plus every component
    state.  Deliberately excluded: the event-heap ``sequence`` counter
    (restarts benignly on restore), the trace-event prefix and the
    ladder bookkeeping (observability, not architecture).
    """
    digest = hashlib.sha256()
    digest.update(canonical_bytes({
        "cycle": payload.get("cycle", 0),
        "components": payload.get("components", {}),
    }))
    return digest.hexdigest()
