"""Canonical encoding + stable hashing of captured simulator state.

``pickle`` output is not a sound fingerprint (memo numbering depends on
object identity and sharing), so fingerprints use a purpose-built
canonical byte encoding: type-tagged, length-prefixed, with dict items
emitted in sorted key order.  Two captured states encode identically
iff they are value-equal -- which is exactly the property the
restore-then-replay determinism check needs.

Only plain data may appear in a captured state: ``None``, ``bool``,
``int``, ``float``, ``str``, ``bytes``, and lists/tuples/dicts thereof.
Anything else is a capture bug and raises immediately (better a loud
error at capture time than a fingerprint that silently depends on
``repr`` addresses).
"""

from __future__ import annotations

import hashlib
from typing import Any


class FingerprintError(TypeError):
    """A captured state contained a non-plain-data value."""


def _key_order(key: Any):
    # Dict keys are ints (addresses, blocks, ids) or strings (field
    # names); sort ints before strings, each kind among itself.
    if isinstance(key, bool):
        raise FingerprintError(f"bool dict key {key!r} in captured state")
    if isinstance(key, int):
        return (0, key, "")
    if isinstance(key, str):
        return (1, 0, key)
    raise FingerprintError(f"unsupported dict key {key!r} in captured state")


def _all_plain_ints(items) -> bool:
    # bool is an int subclass but encodes as T/F, so `type is int`
    # exactly (not isinstance) guards the bulk paths below.
    return all(type(item) is int for item in items)


def _all_plain_strs(items) -> bool:
    return all(type(item) is str for item in items)


def _int_rows(obj, out: bytearray) -> bool:
    """Bulk-emit a sequence of int-only tuples/lists (PM images, cache
    tag arrays); False (emitting nothing) if any row doesn't conform."""
    chunk = bytearray()
    for item in obj:
        if type(item) not in (tuple, list):
            return False
        if len(item) == 2:
            first, second = item
            if type(first) is int and type(second) is int:
                chunk += b"l2:i%d;i%d;" % (first, second)
                continue
            return False
        if not _all_plain_ints(item):
            return False
        chunk += b"l%d:" % len(item)
        for value in item:
            chunk += b"i%d;" % value
    out += chunk
    return True


def _encode(obj: Any, out: bytearray) -> None:
    # Captured states are overwhelmingly int-heavy (PM images, cache
    # sets, per-address maps), and this encoder runs over the *entire*
    # state at every rung capture -- so containers inline their leaf
    # elements and bulk-emit int-only rows with C-speed joins instead
    # of recursing once per element.  Output bytes are identical to the
    # element-wise encoding either way.
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, (list, tuple)):
        # Containers before leaves: by the time _encode recurses, the
        # inlined paths below have already consumed most leaf values,
        # so what reaches this ladder is overwhelmingly containers.
        # Lists and tuples encode identically: a restored state may
        # legitimately turn tuples into lists (JSON round trips do).
        out += b"l%d:" % len(obj)
        if obj:
            head = type(obj[0])
            if head is int:
                if _all_plain_ints(obj):
                    out += b"".join(b"i%d;" % item for item in obj)
                    return
            elif (head is tuple or head is list) and _int_rows(obj, out):
                return
        for item in obj:
            kind = type(item)
            if kind is int:
                out += b"i%d;" % item
            elif kind is str:
                body = item.encode("utf-8")
                out += b"s%d:" % len(body) + body
            else:
                _encode(item, out)
    elif isinstance(obj, dict):
        out += b"d%d:" % len(obj)
        if _all_plain_ints(obj):
            for key, value in sorted(obj.items()):
                out += b"i%d;" % key
                kind = type(value)
                if kind is int:
                    out += b"i%d;" % value
                elif kind is str:
                    body = value.encode("utf-8")
                    out += b"s%d:" % len(body) + body
                else:
                    _encode(value, out)
            return
        if _all_plain_strs(obj):
            # Keys are unique, so sorting (key, value) pairs compares
            # keys only -- same order _key_order would give all-strs.
            for key, value in sorted(obj.items()):
                body = key.encode("utf-8")
                out += b"s%d:" % len(body) + body
                kind = type(value)
                if kind is int:
                    out += b"i%d;" % value
                elif kind is str:
                    body = value.encode("utf-8")
                    out += b"s%d:" % len(body) + body
                else:
                    _encode(value, out)
            return
        for key in sorted(obj, key=_key_order):
            if type(key) is str:
                body = key.encode("utf-8")
                out += b"s%d:" % len(body) + body
            else:
                out += b"i%d;" % key
            value = obj[key]
            kind = type(value)
            if kind is int:
                out += b"i%d;" % value
            elif kind is str:
                body = value.encode("utf-8")
                out += b"s%d:" % len(body) + body
            else:
                _encode(value, out)
    elif isinstance(obj, int):
        out += b"i%d;" % obj
    elif isinstance(obj, float):
        out += b"f" + obj.hex().encode() + b";"
    elif isinstance(obj, str):
        body = obj.encode("utf-8")
        out += b"s%d:" % len(body) + body
    elif isinstance(obj, bytes):
        out += b"b%d:" % len(obj) + obj
    else:
        raise FingerprintError(
            f"unsupported value {obj!r} ({type(obj).__name__}) "
            f"in captured state")


def canonical_bytes(obj: Any) -> bytes:
    """The canonical byte encoding of a plain-data value."""
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def fingerprint_state(payload: dict) -> str:
    """Stable sha256 fingerprint of a captured system state.

    Hashes the architectural content: ``cycle`` plus every component
    state.  Deliberately excluded: the event-heap ``sequence`` counter
    (restarts benignly on restore), the trace-event prefix and the
    ladder bookkeeping (observability, not architecture).
    """
    digest = hashlib.sha256()
    digest.update(canonical_bytes({
        "cycle": payload.get("cycle", 0),
        "components": payload.get("components", {}),
    }))
    return digest.hexdigest()
