"""Full-system assembly: one simulated machine running one workload
under one persistency design.

Build order matters: the design is bound before the PMC policy is
created (PMEM-Spec's policy captures the speculation buffer), and the
hierarchy is created after the design so it can pick up bus extras
(HOPS' sticky bit).  :meth:`System.run` executes every core's thread to
completion -- or to a crash point, for the crash-injection tests -- and
returns a :class:`SimResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .compiler import LoweredProgram, lower_program
from .config import SystemConfig
from .core.events import MisspeculationEvent
from .core.spec_buffer import SpeculationBuffer, StallController
from .core.spec_id import SpecIdFile
from .cpu.core import Core
from .isa import Program
from .mem import (
    CacheHierarchy,
    LockNetwork,
    MemoryImage,
    PMController,
    PMDevice,
    PersistPath,
)
from .oslayer import InterruptController, SimProcess
from .persistency.base import Design
from .runtime import (
    LOG_BASE,
    LOG_REGION_BYTES,
    DATA_BASE,
    FailureAtomicRuntime,
)
from .sim import Environment


# Version of the SimResult.to_dict() payload.  Bump when fields are
# added/renamed/removed: the harness result cache keys on it, and
# from_dict() uses it to stay readable across versions.
# v3 added the optional ``timeseries`` section (cycle-windowed metrics).
RESULT_SCHEMA_VERSION = 3


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    design: str
    workload: str
    n_cores: int
    cycles: int
    fases_committed: int
    fases_aborted: int
    load_misspeculations: int
    store_misspeculations: int
    stale_loads: int
    spec_buffer_overflows: int
    freq_ghz: float
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    # Cycle-windowed time series (MetricsCollector.to_dict()); None when
    # the run was not collected (schema v2 payloads load as None too).
    timeseries: Optional[Dict] = None

    @property
    def seconds(self) -> float:
        return self.cycles / (self.freq_ghz * 1e9)

    @property
    def throughput(self) -> float:
        """Committed FASEs (transactions) per second -- the paper's
        normalised metric."""
        if self.cycles == 0:
            return 0.0
        return self.fases_committed / self.seconds

    @property
    def misspeculations(self) -> int:
        return self.load_misspeculations + self.store_misspeculations

    def to_dict(self) -> Dict:
        """JSON-ready summary (used by the harness' artifact export and
        the sweep result cache).

        The payload is versioned (``schema_version``) and deterministic
        for a given run: the host-specific ``stats["executor"]`` section
        the parallel executor attaches (timings, cache provenance) is
        excluded, so serial and parallel runs of the same spec serialise
        identically.
        """
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "design": self.design,
            "workload": self.workload,
            "n_cores": self.n_cores,
            "cycles": self.cycles,
            "seconds": self.seconds,
            "fases_committed": self.fases_committed,
            "fases_aborted": self.fases_aborted,
            "throughput": self.throughput,
            "load_misspeculations": self.load_misspeculations,
            "store_misspeculations": self.store_misspeculations,
            "stale_loads": self.stale_loads,
            "spec_buffer_overflows": self.spec_buffer_overflows,
            "freq_ghz": self.freq_ghz,
            "stats": {section: counters
                      for section, counters in self.stats.items()
                      if section != "executor"},
            "timeseries": self.timeseries,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "SimResult":
        """Rebuild a result from :meth:`to_dict` output.

        Backwards-tolerant, forwards-strict: older payloads load with
        defaults for fields their schema lacked (version-1 payloads have
        no ``schema_version``/``freq_ghz``; version-2 payloads load with
        ``timeseries=None``), and unknown keys (derived values such as
        ``seconds``/``throughput``) are ignored.  A payload from a
        *future* schema version raises :class:`ValueError` -- silently
        defaulting fields whose semantics this code cannot know would
        corrupt cached results rather than invalidate them.
        """
        version = payload.get("schema_version", 1)
        if version > RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"result payload has schema_version {version}, newer than "
                f"the supported {RESULT_SCHEMA_VERSION}; refusing to "
                f"guess at its semantics (upgrade this code or rebuild "
                f"the artifact)")
        defaults = {
            "design": "?", "workload": "?", "n_cores": 0, "cycles": 0,
            "fases_committed": 0, "fases_aborted": 0,
            "load_misspeculations": 0, "store_misspeculations": 0,
            "stale_loads": 0, "spec_buffer_overflows": 0,
            "freq_ghz": 2.0, "stats": None, "timeseries": None,
        }
        kwargs = {name: payload.get(name, fallback)
                  for name, fallback in defaults.items()}
        kwargs["stats"] = dict(kwargs["stats"] or {})
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        import json
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:
        return (f"SimResult({self.design} on {self.workload}: "
                f"{self.fases_committed} FASEs in {self.cycles} cycles, "
                f"{self.throughput:.3e} FASEs/s)")


class System:
    """One machine + design + lowered workload, ready to simulate."""

    def __init__(self, config: SystemConfig, design: Design,
                 lowered: LoweredProgram,
                 recovery_mode: str = "lazy",
                 record_history: bool = False,
                 tracer=None, metrics=None, scheduler=None):
        if design.flavor != lowered.flavor:
            raise ValueError(
                f"design {design.name} executes flavor {design.flavor!r} "
                f"but the program was lowered for {lowered.flavor!r}")
        program = lowered.program
        if program.n_threads != config.n_cores:
            raise ValueError(
                f"program has {program.n_threads} threads but the machine "
                f"has {config.n_cores} cores (threads are pinned 1:1)")
        config.validate()
        self.config = config
        self.design = design
        self.lowered = lowered
        self.program = program

        self.env = Environment(tracer=tracer, metrics=metrics,
                               scheduler=scheduler)
        # Pre-register tracks in a stable order so trace tids (and
        # therefore Perfetto row order) do not depend on which component
        # happens to emit first: cores, persist path, PMC, spec buffer.
        register_track = getattr(self.env.trace, "track_id", None)
        if self.env.trace.enabled and register_track is not None:
            for core_id in range(config.n_cores):
                register_track(f"core{core_id}")
            register_track("persist-path")
            register_track("pmc")
            register_track("spec-buffer")
        self.device = PMDevice(program.initial_heap,
                               record_history=record_history)
        self.image = MemoryImage(program.initial_heap)
        self.stall = StallController()
        # One speculation buffer per PM controller (§5.3, §7); they share
        # the global stall controller and the interrupt report path.
        self.spec_buffers = [
            SpeculationBuffer(
                config.spec_buffer_entries,
                config.speculation_window_cycles,
                stall=self.stall, report=self._report_misspeculation,
                tracer=self.env.trace, metrics=self.env.metrics,
                name=f"spec-buffer{index}")
            for index in range(config.n_pm_controllers)]
        self.spec_buffer = self.spec_buffers[0]
        self.spec_ids = SpecIdFile(config.n_cores)
        self.persist_path = PersistPath(config, config.n_cores,
                                        metrics=self.env.metrics)
        self.lock_network = LockNetwork(config)
        from .sim import Mutex
        self.locks = [Mutex(self.env, name=f"lock{i}")
                      for i in range(program.n_locks)]
        self.runtime = FailureAtomicRuntime(config.n_cores,
                                            recovery_mode=recovery_mode)

        design.bind(self)
        if config.n_pm_controllers == 1:
            self.pmc = PMController(self.env, config, self.device,
                                    design.build_pmc_policy(0))
        else:
            from .mem.pm_complex import PMCComplex
            policies = [design.build_pmc_policy(i)
                        for i in range(config.n_pm_controllers)]
            self.pmc = PMCComplex(self.env, config, self.device, policies)
        self.hierarchy = CacheHierarchy(
            self.env, config, self.pmc, self.image,
            bus_extra_cycles=design.bus_extra_cycles)

        self.cores: List[Core] = [
            Core(self, thread.thread_id, thread)
            for thread in lowered.threads]

        # OS layer: register this "process" so misspeculation interrupts
        # find their way to the failure-atomic runtime (§6.1).
        self.interrupts = InterruptController()
        self.process = SimProcess(pid=1, name=program.name)
        self.process.map_range(DATA_BASE, LOG_BASE)
        self.process.map_range(
            LOG_BASE, LOG_BASE + config.n_cores * LOG_REGION_BYTES)
        self.interrupts.register_process(
            self.process,
            lambda event, now: self.runtime.on_misspeculation(event, now))

        # Snapshot ladder (repro.snapshot.SnapshotLadder.install sets it);
        # None means the park/quiesce machinery is completely inert.
        self.snapshots = None

    # ---------------------------------------------------------- misspec

    def _report_misspeculation(self, event: MisspeculationEvent) -> None:
        """Hardware detection -> OS interrupt -> runtime (§6.1)."""
        if self.env.metrics.enabled:
            self.env.metrics.count("misspeculations", self.env.now)
            self.env.metrics.count(f"{event.kind}_misspeculations",
                                   self.env.now)
        self.interrupts.raise_misspeculation(event, self.env.now)

    # --------------------------------------------------------------- run

    def park_point(self, core: Core):
        """Called by a core at its FASE boundary; an Event to wait on when
        the snapshot ladder wants the machine quiesced, else None."""
        if self.snapshots is None:
            return None
        return self.snapshots.park_event(core)

    def launch(self):
        """Create every core's DES process; returns the all-done event."""
        processes = [self.env.process(core.run(), name=f"core{core.core_id}")
                     for core in self.cores]
        return self.env.all_of(processes)

    def advance(self, until: Optional[int] = None, stop_event=None) -> int:
        """Drive the simulation, re-entering the event loop whenever the
        heap drains because cores parked for a snapshot.  Without a
        ladder this is exactly one ``env.run`` call."""
        while True:
            self.env.run(until=until, stop_event=stop_event)
            if stop_event is not None and stop_event.triggered:
                return self.env.now
            if self.env.pending():
                # Stopped at the ``until`` bound mid-flight (a crash
                # point); parked cores are legitimate crash state.
                return self.env.now
            if self.snapshots is None or not self.snapshots.on_heap_drained():
                return self.env.now

    def run(self, until: Optional[int] = None) -> SimResult:
        """Simulate to completion (or to cycle ``until`` -- a crash)."""
        all_done = self.launch()
        self.advance(until=until, stop_event=all_done)
        if until is None:
            # Drain in-flight persistence (scheduled device updates).
            self.advance()
        return self.result()

    def result(self) -> SimResult:
        committed = self.runtime.total_commits
        stats = {
            "design": self.design.stats.as_dict(),
            "runtime": self.runtime.stats.as_dict(),
            "pmc": self.pmc.stats.as_dict(),
            "hierarchy": self.hierarchy.stats.as_dict(),
            "spec_buffer": self._spec_buffer_stats().as_dict(),
            "interrupts": self.interrupts.stats.as_dict(),
        }
        core_stats = {}
        for core in self.cores:
            core_stats[f"core{core.core_id}"] = core.stats.as_dict()
        stats["cores"] = core_stats
        timeseries = None
        if self.env.metrics.enabled:
            to_dict = getattr(self.env.metrics, "to_dict", None)
            if to_dict is not None:
                timeseries = to_dict()
        return SimResult(
            design=self.design.name,
            workload=self.program.name,
            n_cores=self.config.n_cores,
            cycles=self.env.now,
            fases_committed=committed,
            fases_aborted=self.runtime.total_aborts,
            load_misspeculations=self._spec_buffer_stats()[
                "load_misspeculations"],
            store_misspeculations=self._spec_buffer_stats()[
                "store_misspeculations"],
            stale_loads=self.hierarchy.stats["stale_reads"],
            spec_buffer_overflows=self._spec_buffer_stats()["overflows"],
            freq_ghz=self.config.freq_ghz,
            stats=stats,
            timeseries=timeseries,
        )

    def _spec_buffer_stats(self):
        from .sim import Counter
        merged = Counter()
        for buffer in self.spec_buffers:
            merged.merge(buffer.stats)
        return merged

    def persisted_snapshot(self) -> Dict[int, int]:
        """The PM image that would survive a power failure right now."""
        return self.device.snapshot()

    # ------------------------------------------------------- snapshotting

    def capture_state(self) -> dict:
        """Capture the complete dynamic machine state as plain data.

        Only legal at a quiesce point (empty event heap; enforced by the
        environment).  Deliberately captures *no* configuration-derived
        values -- latencies, capacities, geometries come from rebuilding
        a system from its spec -- which is what lets a snapshot restore
        into a variant-latency system for warm-start sweeps.
        """
        from .snapshot import SNAPSHOT_SCHEMA_VERSION
        env_state = self.env.capture_state()
        components = {
            "stall": self.stall.capture_state(),
            "spec_buffers": [buffer.capture_state()
                             for buffer in self.spec_buffers],
            "spec_ids": self.spec_ids.capture_state(),
            "persist_path": self.persist_path.capture_state(),
            "lock_network": self.lock_network.capture_state(),
            "locks": [lock.capture_state() for lock in self.locks],
            "runtime": self.runtime.capture_state(),
            "design": self.design.capture_state(),
            "pmc": self.pmc.capture_state(),
            "device": self.device.capture_state(),
            "hierarchy": self.hierarchy.capture_state(),
            "cores": [core.capture_state() for core in self.cores],
            "interrupts": self.interrupts.capture_state(),
        }
        payload = {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "design": self.design.name,
            "workload": self.program.name,
            "cycle": env_state["now"],
            # Outside "components" on purpose: the heap-tie sequence
            # counter and the trace prefix are not architectural state,
            # so the fingerprint must not see them.
            "sequence": env_state["sequence"],
            "components": components,
        }
        if self.snapshots is not None:
            payload["ladder"] = self.snapshots.capture_state()
        if self.env.trace.enabled and hasattr(self.env.trace,
                                              "capture_state"):
            payload["trace"] = self.env.trace.capture_state()
        return payload

    def restore_state(self, payload: dict) -> None:
        """Restore a captured state into this (freshly built, identically
        or compatibly configured) system."""
        from .snapshot import SNAPSHOT_SCHEMA_VERSION
        from .snapshot.store import SnapshotError
        version = payload.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise SnapshotError(
                f"snapshot schema {version!r} does not match "
                f"{SNAPSHOT_SCHEMA_VERSION}")
        self.env.restore_state({"now": payload["cycle"],
                                "sequence": payload["sequence"]})
        c = payload["components"]
        self.stall.restore_state(c["stall"])
        if len(c["spec_buffers"]) != len(self.spec_buffers):
            raise SnapshotError(
                f"snapshot has {len(c['spec_buffers'])} speculation "
                f"buffers, this system has {len(self.spec_buffers)}")
        for buffer, sub in zip(self.spec_buffers, c["spec_buffers"]):
            buffer.restore_state(sub)
        self.spec_ids.restore_state(c["spec_ids"])
        self.persist_path.restore_state(c["persist_path"])
        self.lock_network.restore_state(c["lock_network"])
        if len(c["locks"]) != len(self.locks):
            raise SnapshotError(
                f"snapshot has {len(c['locks'])} locks, this system "
                f"has {len(self.locks)}")
        for lock, sub in zip(self.locks, c["locks"]):
            lock.restore_state(sub)
        self.runtime.restore_state(c["runtime"])
        self.design.restore_state(c["design"])
        self.pmc.restore_state(c["pmc"])
        self.device.restore_state(c["device"])
        self.hierarchy.restore_state(c["hierarchy"])
        if len(c["cores"]) != len(self.cores):
            raise SnapshotError(
                f"snapshot has {len(c['cores'])} cores, this system "
                f"has {len(self.cores)}")
        for core, sub in zip(self.cores, c["cores"]):
            core.restore_state(sub)
        self.interrupts.restore_state(c["interrupts"])
        if self.snapshots is not None and "ladder" in payload:
            self.snapshots.restore_state(payload["ladder"])
        if ("trace" in payload and self.env.trace.enabled
                and hasattr(self.env.trace, "restore_state")):
            self.env.trace.restore_state(payload["trace"])

    def state_fingerprint(self) -> str:
        """Stable hash of the architectural state (see
        :func:`repro.snapshot.fingerprint_state`); equal fingerprints at
        equal cycles mean restore-then-replay did not diverge."""
        from .snapshot import fingerprint_state
        return fingerprint_state(self.capture_state())


def build_system(program: Program, design: Design,
                 config: Optional[SystemConfig] = None,
                 recovery_mode: str = "lazy",
                 record_history: bool = False,
                 log_mode: str = "undo",
                 tracer=None, metrics=None, scheduler=None) -> System:
    """Convenience: lower ``program`` for ``design`` and assemble.

    ``scheduler`` selects the environment's event-queue implementation
    (``"calendar"``/``"heap"``/instance; see :mod:`repro.sim.engine`) --
    a pure performance knob, results are scheduler-independent.
    """
    from .config import table3_config
    if config is None:
        config = table3_config(n_cores=program.n_threads)
    lowered = lower_program(program, design.flavor, log_mode=log_mode)
    return System(config, design, lowered, recovery_mode=recovery_mode,
                  record_history=record_history,
                  tracer=tracer, metrics=metrics, scheduler=scheduler)
