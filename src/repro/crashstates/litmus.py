"""Px86-style litmus programs with declared durable-state sets.

Each :class:`Program` is a tiny hand-written persist history -- records
plus the flush/fence ordering instants a real run would trace -- with
the **expected durable-state set declared per design**.  Running the
suite enumerates each (program, design) pair through the real models
(:mod:`.models`) and demands an *exact* set match: any extra state is
an unsoundness (the model admits an image the design forbids), any
missing state is incompleteness (the checker would under-test).

Two programs additionally carry a recovery check: their records target
real undo-log addresses (:mod:`repro.runtime.undo_log`), every
enumerated image is run through :func:`repro.runtime.recovery
.run_recovery`, and a tiny validator decides convergence.  The
``undo-torn-tail`` program is the suite's negative control: with the
fence between log entries and data *removed*, the epoch model
enumerates an image holding the data write but not its log entry, and
recovery cannot roll back -- the bug class trial-based campaigns can
miss when the simulator never materializes that image.

States in expectations are written as full kept-record label sets
(floor included).  See docs/VALIDATION.md part II for the authoring
guide.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..runtime.heap import log_region_base  # noqa: F401  (docs anchor)
from ..runtime.recovery import run_recovery
from ..runtime.undo_log import UndoLogLayout, stamp_target
from .models import (OrderContext, PersistRecord, enumerate_durable_states,
                     materialize_image, parse_origin)

LITMUS_SCHEMA_VERSION = 1

ALL_DESIGNS = ("IntelX86", "DPO", "HOPS", "StrandWeaver", "PMEM-Spec")

#: Exhaustive headroom for the suite: the largest declared set is 20
#: states (undo-torn-tail under the epoch model), so truncation at the
#: default budget would itself be a bug the runner reports.
DEFAULT_LITMUS_BUDGET = 256

StateFamily = Set[FrozenSet[str]]


# ------------------------------------------------- expectation algebra


def prefixes(*labels: str) -> StateFamily:
    """A chain's ideals: every prefix of ``labels``, empty included."""
    return {frozenset(labels[:k]) for k in range(len(labels) + 1)}


def powerset(*labels: str) -> StateFamily:
    """An antichain's ideals: every subset of ``labels``."""
    return {frozenset(combo)
            for k in range(len(labels) + 1)
            for combo in itertools.combinations(labels, k)}


def fixed(*labels: str) -> StateFamily:
    """A floor: exactly one state holding all of ``labels``."""
    return {frozenset(labels)}


def product(*families: StateFamily) -> StateFamily:
    """Ideals of a disjoint union: one pick per family, unioned."""
    return {frozenset().union(*combo)
            for combo in itertools.product(*families)}


# ------------------------------------------------------------ programs


class Program:
    """One litmus program: records, ordering instants, expectations."""

    def __init__(self, name: str, description: str,
                 crash_cycle: int = 100, window: int = 320,
                 base_image: Optional[Dict[int, int]] = None,
                 note: str = ""):
        self.name = name
        self.description = description
        self.crash_cycle = crash_cycle
        self.window = window
        self.base_image = dict(base_image or {})
        self.note = note
        self.labels: List[str] = []
        self.records: List[PersistRecord] = []
        self.flushes: List[Tuple[int, int, int]] = []
        self.fences: List[Tuple[int, int]] = []
        self.expected: Dict[str, StateFamily] = {}
        # design -> True when at least one enumerated image must fail
        # recovery (negative control), False when all must converge.
        self.recovery_expect: Dict[str, bool] = {}
        self.validator: Optional[Callable[[Dict[int, int]], List[str]]] \
            = None
        self.n_threads = 1
        self.log_mode = "undo"

    def persist(self, label: str, cycle: int, block: int,
                core: Optional[int] = None, spec: Optional[int] = None,
                addr: Optional[int] = None, value: int = 1,
                flushed_by: Optional[int] = None) -> None:
        """Add one single-write record.  ``core``/``spec`` pick the
        origin shape (drain / tagged persist / plain writeback);
        ``flushed_by`` also records the clwb instant the epoch model
        attributes with."""
        if spec is not None:
            origin = f"persist:c{core or 0}:s{spec}"
        elif core is not None:
            origin = f"drain:c{core}"
        else:
            origin = "writeback"
        parsed_core, parsed_spec = parse_origin(origin)
        if addr is None:
            addr = block * 64
        self.records.append(PersistRecord(
            len(self.records), cycle, block, ((addr, value),), origin,
            parsed_core, parsed_spec))
        self.labels.append(label)
        if flushed_by is not None:
            self.flushes.append((flushed_by, block, cycle))

    def fence(self, core: int, cycle: int) -> None:
        self.fences.append((core, cycle))

    def expect(self, design: str, family: StateFamily) -> None:
        self.expected[design] = family

    def expect_recovery(self, design: str, fails: bool) -> None:
        self.recovery_expect[design] = fails

    def context(self) -> OrderContext:
        return OrderContext(self.crash_cycle, self.window,
                            tuple(self.flushes), tuple(self.fences))

    def enumerate(self, design: str, budget: int):
        return enumerate_durable_states(
            design, self.records, self.crash_cycle,
            context=self.context(), budget=budget, seed=0)

    def label_sets(self, stateset) -> StateFamily:
        return {frozenset(self.labels[i]
                          for i in stateset.kept_indices(state))
                for state in stateset.states}


def _fmt_family(family: StateFamily) -> List[str]:
    return sorted("{" + ",".join(sorted(s)) + "}" for s in family)


# Data addresses used by the recovery programs (well below the log
# region and the stamp range).
_X = 0x1000
_Y = 0x2000


def _pair_validator(image: Dict[int, int]) -> List[str]:
    pair = (image.get(_X), image.get(_Y))
    if pair in ((5, 6), (7, 8)):
        return []
    return [f"FASE torn: (X, Y) = {pair}, "
            f"expected (5, 6) or (7, 8)"]


def _build_programs() -> List[Program]:
    programs: List[Program] = []

    # -- 1. store-store: two buffered drains, one core, no fence.
    p = Program("store-store",
                "Two same-core drains with no durability fence")
    p.persist("a", 10, block=0, core=0)
    p.persist("b", 20, block=1, core=0)
    p.expect("DPO", prefixes("a", "b"))
    p.expect("HOPS", prefixes("a", "b"))
    p.expect("StrandWeaver", prefixes("a", "b"))
    p.expect("PMEM-Spec", prefixes("a", "b"))
    p.expect("IntelX86", fixed("a", "b"))  # unattributed -> floor
    programs.append(p)

    # -- 2. flush-fence ordering: sfence closes a's epoch, b stays open.
    p = Program("flush-fence",
                "clwb a; sfence; clwb b; crash -- a pinned, b droppable")
    p.persist("a", 10, block=0, flushed_by=0)
    p.persist("b", 30, block=1, flushed_by=0)
    p.fence(0, 20)
    p.expect("IntelX86", product(fixed("a"), powerset("b")))
    p.expect("DPO", prefixes("a", "b"))
    p.expect("HOPS", fixed("a", "b"))
    p.expect("StrandWeaver", fixed("a", "b"))
    p.expect("PMEM-Spec", prefixes("a", "b"))
    programs.append(p)

    # -- 3. open epoch = powerset (Px86): three unfenced flushes.
    p = Program("open-epoch-powerset",
                "Three flushes in one open epoch drop in any order")
    p.persist("a", 10, block=0, flushed_by=0)
    p.persist("b", 20, block=1, flushed_by=0)
    p.persist("c", 30, block=2, flushed_by=0)
    p.expect("IntelX86", powerset("a", "b", "c"))
    p.expect("DPO", prefixes("a", "b", "c"))
    p.expect("HOPS", fixed("a", "b", "c"))
    p.expect("StrandWeaver", fixed("a", "b", "c"))
    p.expect("PMEM-Spec", prefixes("a", "b", "c"))
    programs.append(p)

    # -- 4. same-block chain inside an open epoch.
    p = Program("epoch-block-chain",
                "Same-line writes stay ordered even in an open epoch")
    p.persist("a", 10, block=0, flushed_by=0)
    p.persist("b", 20, block=0, flushed_by=0)
    p.persist("c", 30, block=1, flushed_by=0)
    p.expect("IntelX86", product(prefixes("a", "b"), powerset("c")))
    p.expect("DPO", prefixes("a", "b", "c"))
    p.expect("HOPS", fixed("a", "b", "c"))
    p.expect("StrandWeaver", fixed("a", "b", "c"))
    p.expect("PMEM-Spec", prefixes("a", "b", "c"))
    programs.append(p)

    # -- 5. natural eviction: unattributed writebacks are floor.
    p = Program("eviction-floor",
                "An unflushed LLC eviction is already durable (ADR)")
    p.persist("a", 10, block=0)                # no flush instant
    p.persist("b", 20, block=1, flushed_by=0)  # open-epoch flush
    p.expect("IntelX86", product(fixed("a"), powerset("b")))
    p.expect("DPO", prefixes("a", "b"))
    p.expect("HOPS", fixed("a", "b"))
    p.expect("StrandWeaver", fixed("a", "b"))
    p.expect("PMEM-Spec", prefixes("a", "b"))
    programs.append(p)

    # -- 6. epochs are per core: core 0 fenced, core 1 open.
    p = Program("epoch-cross-core",
                "One core's sfence does not close another core's epoch")
    p.persist("a", 10, block=0, flushed_by=0)
    p.persist("b", 20, block=1, flushed_by=1)
    p.fence(0, 15)
    p.expect("IntelX86", product(fixed("a"), powerset("b")))
    p.expect("DPO", prefixes("a", "b"))
    p.expect("HOPS", fixed("a", "b"))
    p.expect("StrandWeaver", fixed("a", "b"))
    p.expect("PMEM-Spec", prefixes("a", "b"))
    programs.append(p)

    # -- 7. per-core chains compose as a product.
    p = Program("percore-product",
                "Two cores' unfenced drain tails drop independently")
    p.persist("a", 10, block=0, core=0)
    p.persist("b", 14, block=1, core=1)
    p.persist("c", 20, block=2, core=0)
    p.persist("d", 24, block=3, core=1)
    p.expect("HOPS", product(prefixes("a", "c"), prefixes("b", "d")))
    p.expect("StrandWeaver",
             product(prefixes("a", "c"), prefixes("b", "d")))
    p.expect("DPO", prefixes("a", "b", "c", "d"))
    p.expect("PMEM-Spec", prefixes("a", "b", "c", "d"))
    p.expect("IntelX86", fixed("a", "b", "c", "d"))
    programs.append(p)

    # -- 8. dfence floors the core's accepted drains.
    p = Program("dfence-floor",
                "Drains accepted at or before a retired dfence are pinned")
    p.persist("a", 10, block=0, core=0)
    p.persist("b", 20, block=1, core=0)
    p.persist("c", 30, block=2, core=1)
    p.fence(0, 25)
    p.expect("HOPS", product(fixed("a", "b"), prefixes("c")))
    p.expect("StrandWeaver", product(fixed("a", "b"), prefixes("c")))
    p.expect("DPO", prefixes("a", "b", "c"))
    p.expect("PMEM-Spec", prefixes("a", "b", "c"))
    p.expect("IntelX86", fixed("a", "b", "c"))
    programs.append(p)

    # -- 9. strand conservatism, documented: true strand semantics
    # would also admit {b} alone; the per-core chain model deliberately
    # enumerates a subset (sound, never a false positive).
    p = Program("strand-conservative",
                "Independent strands modelled as one per-core chain",
                note="conservative approximation: formal StrandWeaver "
                     "would also allow {b}")
    p.persist("a", 10, block=0, core=0)
    p.persist("b", 12, block=1, core=0)
    p.expect("StrandWeaver", prefixes("a", "b"))
    p.expect("HOPS", prefixes("a", "b"))
    p.expect("DPO", prefixes("a", "b"))
    p.expect("PMEM-Spec", prefixes("a", "b"))
    p.expect("IntelX86", fixed("a", "b"))
    programs.append(p)

    # -- 10. in-flight speculative persists are holes, not prefix cuts.
    p = Program("spec-holes",
                "Unresolved tagged persists drop out of the middle")
    p.persist("L", 10, block=0, core=0, spec=0)
    p.persist("D1", 12, block=1, core=0, spec=1)
    p.persist("U", 13, block=3, core=1, spec=0)
    p.persist("D2", 14, block=2, core=0, spec=1)
    p.expect("PMEM-Spec", {
        frozenset(), frozenset({"L"}), frozenset({"L", "D1"}),
        frozenset({"L", "U"}), frozenset({"L", "D1", "U"}),
        frozenset({"L", "D1", "U", "D2"})})
    p.expect("DPO", prefixes("L", "D1", "U", "D2"))
    p.expect("HOPS",
             product(prefixes("L", "D1", "D2"), prefixes("U")))
    p.expect("StrandWeaver",
             product(prefixes("L", "D1", "D2"), prefixes("U")))
    p.expect("IntelX86", fixed("L", "D1", "U", "D2"))
    programs.append(p)

    # -- 11. a later untagged persist (the commit) resolves the holes.
    p = Program("spec-committed",
                "A committed FASE's tagged persists are pinned into "
                "the backbone")
    p.persist("L", 10, block=0, core=0, spec=0)
    p.persist("D1", 12, block=1, core=0, spec=1)
    p.persist("C", 14, block=2, core=0, spec=0)
    p.expect("PMEM-Spec", prefixes("L", "D1", "C"))
    p.expect("DPO", prefixes("L", "D1", "C"))
    p.expect("HOPS", prefixes("L", "D1", "C"))
    p.expect("StrandWeaver", prefixes("L", "D1", "C"))
    p.expect("IntelX86", fixed("L", "D1", "C"))
    programs.append(p)

    # -- 12. the speculation window bounds how long a hole stays open.
    p = Program("spec-window-expired",
                "A tagged persist older than the window is resolved",
                crash_cycle=500, window=320)
    p.persist("U", 5, block=0, core=1, spec=0)
    p.persist("D1", 10, block=1, core=0, spec=1)
    p.persist("U2", 15, block=3, core=1, spec=0)
    p.expect("PMEM-Spec", prefixes("U", "D1", "U2"))
    p.expect("DPO", prefixes("U", "D1", "U2"))
    p.expect("HOPS", product(prefixes("U", "U2"), prefixes("D1")))
    p.expect("StrandWeaver", product(prefixes("U", "U2"), prefixes("D1")))
    p.expect("IntelX86", fixed("U", "D1", "U2"))
    programs.append(p)

    # -- 13. same history, crash inside the window: D1 is a live hole.
    p = Program("spec-window-live",
                "Inside the window the tagged persist is still a hole",
                crash_cycle=300, window=320)
    p.persist("U", 5, block=0, core=1, spec=0)
    p.persist("D1", 10, block=1, core=0, spec=1)
    p.persist("U2", 15, block=3, core=1, spec=0)
    p.expect("PMEM-Spec", {
        frozenset(), frozenset({"U"}), frozenset({"U", "D1"}),
        frozenset({"U", "U2"}), frozenset({"U", "D1", "U2"})})
    p.expect("DPO", prefixes("U", "D1", "U2"))
    p.expect("HOPS", product(prefixes("U", "U2"), prefixes("D1")))
    p.expect("StrandWeaver", product(prefixes("U", "U2"), prefixes("D1")))
    p.expect("IntelX86", fixed("U", "D1", "U2"))
    programs.append(p)

    # -- 14/15. undo-log protocol against real recovery, good and torn.
    layout = UndoLogLayout(0)
    entry_block = layout.entry_old_addr(0) >> 6
    epoch_block = layout.epoch_addr >> 6
    base = {_X: 5, _Y: 6, layout.epoch_addr: 0}

    def _log_writes(p: Program) -> None:
        p.persist("e0o", 10, block=entry_block,
                  addr=layout.entry_old_addr(0), value=5, flushed_by=0)
        p.persist("e0t", 12, block=entry_block,
                  addr=layout.entry_target_addr(0),
                  value=stamp_target(0, _X), flushed_by=0)
        p.persist("e1o", 14, block=entry_block,
                  addr=layout.entry_old_addr(1), value=6, flushed_by=0)
        p.persist("e1t", 16, block=entry_block,
                  addr=layout.entry_target_addr(1),
                  value=stamp_target(0, _Y), flushed_by=0)

    p = Program("undo-protocol-good",
                "Entries fenced before data, data fenced before the "
                "epoch bump: every image recovers",
                base_image=base)
    _log_writes(p)
    p.fence(0, 20)
    p.persist("dx", 30, block=_X >> 6, addr=_X, value=7, flushed_by=0)
    p.persist("dy", 34, block=_Y >> 6, addr=_Y, value=8, flushed_by=0)
    p.fence(0, 40)
    p.persist("E", 50, block=epoch_block, addr=layout.epoch_addr,
              value=1, flushed_by=0)
    p.expect("IntelX86",
             product(fixed("e0o", "e0t", "e1o", "e1t", "dx", "dy"),
                     powerset("E")))
    p.expect("DPO",
             prefixes("e0o", "e0t", "e1o", "e1t", "dx", "dy", "E"))
    p.validator = _pair_validator
    p.expect_recovery("IntelX86", False)
    p.expect_recovery("DPO", False)
    programs.append(p)

    p = Program("undo-torn-tail",
                "No fence between entries and data: the epoch model "
                "admits data-without-log images recovery cannot undo",
                base_image=base,
                note="negative control -- strict (DPO) converges from "
                     "every prefix, epoch (IntelX86) does not")
    _log_writes(p)
    p.persist("dx", 30, block=_X >> 6, addr=_X, value=7, flushed_by=0)
    p.persist("dy", 34, block=_Y >> 6, addr=_Y, value=8, flushed_by=0)
    p.expect("IntelX86",
             product(prefixes("e0o", "e0t", "e1o", "e1t"),
                     powerset("dx"), powerset("dy")))
    p.expect("DPO", prefixes("e0o", "e0t", "e1o", "e1t", "dx", "dy"))
    p.validator = _pair_validator
    p.expect_recovery("IntelX86", True)   # e.g. {dx} alone: (7, 6)
    p.expect_recovery("DPO", False)       # strict trumps relaxed
    programs.append(p)

    return programs


LITMUS_PROGRAMS: List[Program] = _build_programs()


# -------------------------------------------------------------- runner


def _check_pair(program: Program, design: str, budget: int) -> Dict:
    stateset = program.enumerate(design, budget)
    got = program.label_sets(stateset)
    expected = program.expected[design]
    missing = _fmt_family(expected - got)
    unexpected = _fmt_family(got - expected)
    entry = {
        "program": program.name,
        "design": design,
        "model": stateset.model,
        "n_states": stateset.n_states,
        "truncated": stateset.truncated,
        "missing": missing,
        "unexpected": unexpected,
        "ok": not missing and not unexpected and not stateset.truncated,
    }
    if program.validator is not None and design in program.recovery_expect:
        failed = 0
        checked = 0
        for state, image in stateset.images(program.base_image):
            report = run_recovery(image, program.n_threads,
                                  log_mode=program.log_mode)
            problems = program.validator(report.data_image())
            checked += 1
            if problems:
                failed += 1
        expect_failure = program.recovery_expect[design]
        recovery_ok = (failed > 0) == expect_failure
        entry.update({
            "recovery_checked": checked,
            "recovery_failed": failed,
            "recovery_expect_failure": expect_failure,
            "recovery_ok": recovery_ok,
        })
        entry["ok"] = entry["ok"] and recovery_ok
    return entry


def run_litmus(designs=None, budget: int = DEFAULT_LITMUS_BUDGET,
               programs: Optional[List[Program]] = None) -> Dict:
    """Run the litmus tier; returns a JSON-ready report.

    ``designs`` restricts which declared expectations are checked
    (programs without a declaration for a design are skipped for it,
    never failed).
    """
    selected = tuple(designs) if designs else ALL_DESIGNS
    if programs is not None:
        by_name = {p.name: p for p in LITMUS_PROGRAMS}
        programs = [p if isinstance(p, Program) else by_name[p]
                    for p in programs]
    results: List[Dict] = []
    for program in (programs if programs is not None
                    else LITMUS_PROGRAMS):
        for design in selected:
            if design not in program.expected:
                continue
            results.append(_check_pair(program, design, budget))
    return {
        "schema_version": LITMUS_SCHEMA_VERSION,
        "budget": budget,
        "designs": list(selected),
        "programs": len(programs if programs is not None
                        else LITMUS_PROGRAMS),
        "checks": len(results),
        "failures": sum(1 for entry in results if not entry["ok"]),
        "ok": all(entry["ok"] for entry in results),
        "results": results,
    }


def format_litmus_table(report: Dict) -> str:
    """Terminal table for ``validate --litmus`` (the CLI prints it)."""
    header = (f"{'program':<24} {'design':<14} {'model':<8} "
              f"{'states':>6}  verdict")
    lines = [header, "-" * len(header)]
    for entry in report["results"]:
        verdict = "ok"
        if not entry["ok"]:
            parts = []
            if entry["missing"]:
                parts.append(f"missing {len(entry['missing'])}")
            if entry["unexpected"]:
                parts.append(f"unexpected {len(entry['unexpected'])}")
            if entry["truncated"]:
                parts.append("truncated")
            if not entry.get("recovery_ok", True):
                parts.append("recovery")
            verdict = "FAIL: " + ", ".join(parts or ["?"])
        elif "recovery_checked" in entry:
            verdict = (f"ok ({entry['recovery_failed']}/"
                       f"{entry['recovery_checked']} images fail "
                       f"recovery, expected "
                       f"{'>0' if entry['recovery_expect_failure'] else '0'})")
        lines.append(f"{entry['program']:<24} {entry['design']:<14} "
                     f"{entry['model']:<8} {entry['n_states']:>6}  "
                     f"{verdict}")
    lines.append(f"{report['checks']} checks over "
                 f"{report['programs']} programs: "
                 f"{'OK' if report['ok'] else str(report['failures']) + ' FAILURES'}")
    return "\n".join(lines)
