"""Image applicator + recovery checker: prove recovery converges from
*every* durable state the design's model allows.

One :func:`check_cell` call runs a cell's canonical laddered run once
(device history recording on, rung payloads kept in memory), then for
each requested crash cycle:

1. **acquire** the machine state at the cycle by restoring the nearest
   in-memory rung and replaying the tail (the PR 4 snapshot layer: a
   rung-restore, not a cold boot; ``snapshot_every=0`` degrades to the
   cold path so the speedup is measurable),
2. **pin** the model's floor image -- every record applied -- against
   the simulator's own ``persisted_snapshot()``, byte for byte (this is
   the end-to-end check that record grouping and materialisation are
   faithful),
3. **enumerate** the durable-state set (:mod:`.models`) under the
   enumeration budget,
4. **judge** every image offline: apply the fault's snapshot mutation,
   run recovery, and ask the workload's structural validator; the
   persist-order oracle judges the cycle's history once alongside.

Failures are bisection-shrunk (PR 3 ``shrink.py``) to a minimal
``(crash cycle, image)`` witness, where the image is reported as the
set of *dropped* records -- the compact reproducer.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from ..obsv.bus import get_bus
from ..runtime.recovery import run_recovery
from ..snapshot import nearest_rung
from ..telemetry import get_logger
from ..validation.campaign import (TrialSpec, _build, _oracle_for,
                                   _pre_tuple_events, _private_copy)
from ..validation.faults import fault_by_name
from ..validation.history import events_to_history, truncate_history
from ..validation.shrink import shrink_crash_cycle
from .models import (DEFAULT_BUDGET, MODEL_FOR_DESIGN,
                     enumerate_durable_states, order_context_from_history,
                     records_from_device_history)

CRASH_STATES_SCHEMA_VERSION = 1

#: Failing images reported per cycle before eliding (witness stays).
_FAILING_IMAGE_CAP = 3

log = get_logger("crashstates.checker")


def _image_fingerprint(image: Dict[int, int]) -> str:
    blob = ",".join(f"{a:x}:{v:x}" for a, v in sorted(image.items()))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class _Cell:
    """The resident canonical run one cell's image checks restore into."""

    def __init__(self, spec: TrialSpec, restore: bool = True):
        base = replace(spec, crash_cycle=0, snapshot_dir=None)
        self.spec = base
        # restore=False keeps the ladder's timing universe (parking is
        # part of trial timing) but cold-boots every acquire -- the
        # apples-to-apples baseline the crashstates bench gates against.
        self.restore = restore
        started = time.perf_counter()
        self.workload, self.system, _fault, self.recorder, ladder = \
            _build(base, capture=True, keep_rungs=True)
        # The device history is the enumerator's input; the flag is not
        # part of captured state, so it survives every restore below.
        self.system.device.record_history = True
        self.initial_image = dict(self.system.device.snapshot())
        self.initial_payload = _pre_tuple_events(
            _private_copy(self.system.capture_state()))
        result = self.system.run()
        self.total_cycles = result.cycles
        self.rungs: List[Dict] = []
        if ladder is not None:
            for rung in ladder.rungs:
                payload = rung.get("payload")
                if payload is None:
                    continue
                rung = dict(rung)
                rung["payload"] = _pre_tuple_events(_private_copy(payload))
                self.rungs.append(rung)
        self.canonical_s = time.perf_counter() - started

    def acquire(self, crash_cycle: int):
        """Restore the nearest rung and replay to the crash; returns
        ``(fault, restored_from, horizon)`` with the system positioned
        exactly as a campaign trial's cut point."""
        fault = fault_by_name(self.spec.fault)
        fault.arm(self.system)
        rung = (nearest_rung(self.rungs, crash_cycle)
                if self.restore else None)
        if rung is not None:
            self.system.restore_state(rung["payload"])
            restored_from: Optional[int] = rung["cycle"]
        else:
            self.system.restore_state(self.initial_payload)
            restored_from = None
        done = self.system.launch()
        self.system.advance(until=crash_cycle, stop_event=done)
        if self.system.env.now < crash_cycle:
            self.system.advance(until=crash_cycle)
        fault.at_crash(self.system, crash_cycle)
        return fault, restored_from, self.system.env.now


def _check_cycle(cell: _Cell, crash_cycle: int, image_budget: int,
                 timings: Dict[str, float]) -> Dict:
    """Acquire, pin, enumerate, and judge one crash cycle."""
    spec = cell.spec
    bus = get_bus()
    t0 = time.perf_counter()
    fault, restored_from, horizon = cell.acquire(crash_cycle)
    snapshot = cell.system.persisted_snapshot()
    history = truncate_history(
        events_to_history(cell.recorder.events()), horizon)
    t1 = time.perf_counter()

    records = records_from_device_history(cell.system.device.history,
                                          horizon=horizon)
    context = order_context_from_history(
        history, horizon,
        window=cell.system.config.speculation_window_cycles)
    states = enumerate_durable_states(
        spec.design, records, horizon, context=context,
        budget=image_budget, seed=spec.seed)
    floor_matches = states.floor_image(cell.initial_image) == snapshot
    t2 = time.perf_counter()

    oracle_violations = [
        v.to_dict() for v in _oracle_for(cell.system).check(history)]
    bus.emit("image_enumerated", workload=spec.workload,
             design=spec.design, crash_cycle=crash_cycle,
             n_images=states.n_states, truncated=states.truncated,
             model=states.model)

    failing: List[Dict] = []
    images_failed = 0
    for state, image in states.images(cell.initial_image):
        fault.mutate_snapshot(image, spec.n_threads)
        report = run_recovery(image, spec.n_threads,
                              log_mode=spec.log_mode)
        problems = cell.workload.validate_recovered(report.data_image())
        bus.emit("image_check", workload=spec.workload,
                 design=spec.design, crash_cycle=crash_cycle,
                 consistent=not problems, n_violations=len(problems))
        if problems:
            images_failed += 1
            if len(failing) < _FAILING_IMAGE_CAP:
                dropped = sorted(set(states.uncertain) - set(state))
                failing.append({
                    "dropped_records": dropped,
                    "kept_records": len(states.kept_indices(state)),
                    "image_fingerprint": _image_fingerprint(image),
                    "violations": problems[:4],
                })
    t3 = time.perf_counter()
    timings["acquire_s"] += t1 - t0
    timings["enumerate_s"] += t2 - t1
    timings["check_s"] += t3 - t2

    consistent = (floor_matches and images_failed == 0
                  and not oracle_violations)
    payload = dict(states.to_dict())
    payload.update({
        "crash_cycle": crash_cycle,
        "horizon": horizon,
        "restored_from": restored_from,
        "floor_matches": floor_matches,
        "images_failed": images_failed,
        "failing_images": failing,
        "oracle_violations": oracle_violations,
        "consistent": consistent,
    })
    return payload


def check_cell(spec: TrialSpec, crash_cycles: Sequence[int],
               image_budget: int = DEFAULT_BUDGET,
               shrink: bool = True,
               progress=None,
               restore: bool = True) -> Dict:
    """Enumerate and judge every durable state of one campaign cell.

    ``spec.crash_cycle`` is ignored; ``crash_cycles`` drives the loop.
    ``spec.snapshot_every`` sizes the in-memory rung ladder the image
    checks restore from.  ``restore=False`` keeps that ladder's timing
    universe but cold-boots every acquire -- the apples-to-apples
    baseline the crashstates benchmark gates against (``snapshot_every
    = 0`` also degrades to cold acquires, but in a *different* timing
    universe: parking is part of trial timing, so its record stream is
    not comparable).  The payload is a pure function of ``(spec,
    crash_cycles, image_budget, restore)`` except for its ``timings``
    entry and the provenance-only ``restored_from`` fields.
    """
    fault_probe = fault_by_name(spec.fault)
    if fault_probe.run_to_completion:
        # A virtual fault leaves the power on and the machine running:
        # there is no cut image, hence no durable-state set to check.
        return {
            "schema_version": CRASH_STATES_SCHEMA_VERSION,
            "workload": spec.workload, "design": spec.design,
            "fault": spec.fault,
            "model": MODEL_FOR_DESIGN.get(spec.design, "strict"),
            "skipped": "fault runs to completion (no power-cut image)",
            "cycles": [], "consistent": True,
        }

    cell = _Cell(spec, restore=restore)
    timings = {"canonical_s": cell.canonical_s, "acquire_s": 0.0,
               "enumerate_s": 0.0, "check_s": 0.0}
    cycle_payloads: List[Dict] = []
    outcomes: Dict[int, Dict] = {}
    for crash_cycle in sorted(set(crash_cycles)):
        payload = _check_cycle(cell, crash_cycle, image_budget, timings)
        outcomes[crash_cycle] = payload
        cycle_payloads.append(payload)
        if progress is not None:
            progress(f"{spec.workload}/{spec.design}@{crash_cycle}: "
                     f"{payload['n_states']} images, "
                     f"{payload['images_failed']} failed")

    failing_cycles = [p["crash_cycle"] for p in cycle_payloads
                      if not p["consistent"]]
    shrink_payload = None
    witness = None
    if failing_cycles and shrink:
        def fails(cycle: int) -> bool:
            if cycle not in outcomes:
                outcomes[cycle] = _check_cycle(cell, cycle, image_budget,
                                               timings)
            return not outcomes[cycle]["consistent"]

        shrunk = shrink_crash_cycle(fails, failing_cycles[0])
        shrink_payload = shrunk.to_dict()
        minimal = outcomes[shrunk.minimal_cycle]
        # The minimal image witness: states are ordered smallest-first,
        # so the first failing image drops the most records.
        image = (minimal["failing_images"][0]
                 if minimal["failing_images"] else None)
        witness = {
            "crash_cycle": shrunk.minimal_cycle,
            "image": image,
            "oracle_violations": minimal["oracle_violations"][:4],
            "floor_matches": minimal["floor_matches"],
        }
    elif failing_cycles:
        minimal = outcomes[failing_cycles[0]]
        witness = {
            "crash_cycle": failing_cycles[0],
            "image": (minimal["failing_images"][0]
                      if minimal["failing_images"] else None),
            "oracle_violations": minimal["oracle_violations"][:4],
            "floor_matches": minimal["floor_matches"],
        }

    images_enumerated = sum(p["n_states"] for p in cycle_payloads)
    return {
        "schema_version": CRASH_STATES_SCHEMA_VERSION,
        "workload": spec.workload, "design": spec.design,
        "fault": spec.fault,
        "model": MODEL_FOR_DESIGN.get(spec.design, "strict"),
        "seed": spec.seed,
        "image_budget": image_budget,
        "snapshot_every": cell.spec.snapshot_every,
        "total_cycles": cell.total_cycles,
        "cycles_checked": len(cycle_payloads),
        "images_enumerated": images_enumerated,
        "images_checked": images_enumerated,
        "images_failed": sum(p["images_failed"] for p in cycle_payloads),
        "truncated_cycles": sum(1 for p in cycle_payloads
                                if p["truncated"]),
        "floor_mismatches": sum(1 for p in cycle_payloads
                                if not p["floor_matches"]),
        "restored_cycles": sum(1 for p in cycle_payloads
                               if p["restored_from"] is not None),
        "cycles": cycle_payloads,
        "consistent": not failing_cycles,
        "shrink": shrink_payload,
        "witness": witness,
        "skipped": None,
        "timings": timings,
    }
