"""Per-design durable-state models: enumerate the PM images a
persistency design's formal guarantees allow at a crash point.

The device history (``PMDevice.history``: ``(cycle, addr, value,
origin)`` tuples, recorded when ``record_history`` is on) is first
grouped into :class:`PersistRecord` units of cache-line atomicity.
Each design's model then splits the records at a crash cycle into a
mandatory **floor** and a set of **uncertain** records, and expresses
the design's ordering guarantees as a partial order over the uncertain
ones.  The durable states are exactly the *order ideals* (downward-
closed subsets) of that poset, each unioned with the floor:

``strict`` (DPO, and the fallback for unknown designs)
    Every global acceptance-order prefix.  Sound for *every* design --
    the crash could simply have happened earlier -- which is why it is
    the safe fallback; for buffered-strict designs it is also exact.

``epoch`` (IntelX86)
    Records attributed to a flush (clwb) whose epoch closed -- an
    sfence of the flushing core retired at or before the crash -- are
    floor, as are unattributed records (natural LLC evictions, already
    accepted by the ADR domain).  Open-epoch flushes are droppable in
    any order, subject to per-block chains: keeping a later write to a
    block requires every earlier surviving write to that block (the PMC
    serializes same-line updates).  This is the Px86-style "powerset
    within open epochs" set (*Taming x86-TSO Persistency*).

``percore`` (HOPS, StrandWeaver)
    Per core, drains accepted at or before that core's last retired
    dfence are floor (the core stalls during a dfence, so nothing it
    issued afterwards can have been accepted earlier).  The droppable
    tail is a per-core chain in acceptance order; states are the
    cross-product of per-core tail prefixes.  For StrandWeaver this is
    a *conservative approximation*: true strand semantics would let
    independent strands drop out of issue order, so the enumerated set
    is a subset of the formal one (never a superset -- no false
    positives).

``spec`` (PMEM-Spec)
    Prefixes modulo in-flight speculative persists.  A record is an
    in-flight "hole" when it is spec-tagged, still inside the
    speculation window at the crash (``cycle > crash - window``), and
    has no later untagged record from its core (a later untagged
    record -- the FASE's commit write -- means the speculation
    resolved).  Holes belong to FASEs whose commit never persisted, so
    recovery rolls them back regardless of which subset survived;
    dropping any hole subset is therefore sound.  Everything else forms
    the backbone, a global chain (prefix semantics); a hole additionally
    requires its nearest earlier backbone record and its core's earlier
    holes.

Enumeration is budgeted: exhaustive (with prefix-sharing DFS) when the
ideal count fits the budget, seeded stratified sampling above it with
``truncated=True`` recorded -- never a silent cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from ..validation import history as H

DEFAULT_BUDGET = 64

#: Which durable-state model applies to each persistency design.  The
#: fallback for designs not listed is "strict" (sound for everything).
MODEL_FOR_DESIGN = {
    "DPO": "strict",
    "IntelX86": "epoch",
    "HOPS": "percore",
    "StrandWeaver": "percore",
    "PMEM-Spec": "spec",
}


class PersistRecord(NamedTuple):
    """One atomically-durable unit of the device history.

    Consecutive device-history entries sharing (cycle, origin) and
    cache-line block are one record: ``persist_block`` appends one
    entry per byte of a line, and a line lands on media atomically.
    """

    index: int
    cycle: int
    block: int
    writes: Tuple[Tuple[int, int], ...]   # (addr, value) in entry order
    origin: str
    core: Optional[int]                   # parsed from origin, if any
    spec_id: int                          # parsed from origin, else 0

    @property
    def tagged(self) -> bool:
        return self.spec_id != 0


def parse_origin(origin: str) -> Tuple[Optional[int], int]:
    """``(core, spec_id)`` encoded in a device-history origin string.

    Recognised shapes: ``drain:c<core>`` (buffered designs' persist
    buffers) and ``persist:c<core>:s<spec>`` (PMEM-Spec's persist
    path).  Anything else -- ``writeback``, ``persist-path``,
    ``recovery`` -- is unattributed.
    """
    if origin.startswith("drain:c"):
        try:
            return int(origin[7:]), 0
        except ValueError:
            return None, 0
    if origin.startswith("persist:c"):
        core, _, spec = origin[9:].partition(":s")
        try:
            return int(core), int(spec) if spec else 0
        except ValueError:
            return None, 0
    return None, 0


def records_from_device_history(
        history: Iterable[Tuple[int, int, int, str]],
        horizon: Optional[int] = None) -> List[PersistRecord]:
    """Group raw device-history entries into :class:`PersistRecord` s.

    ``horizon`` keeps entries with ``cycle <= horizon`` (inclusive, the
    ADR acceptance-is-durability convention).  Recovery's own writes
    (origin ``recovery``) are not part of the pre-crash history and are
    skipped.
    """
    records: List[PersistRecord] = []
    run: List[Tuple[int, int]] = []
    run_key: Optional[Tuple[int, str, int]] = None

    def close_run() -> None:
        if run_key is None:
            return
        cycle, origin, block = run_key
        core, spec_id = parse_origin(origin)
        records.append(PersistRecord(len(records), cycle, block,
                                     tuple(run), origin, core, spec_id))

    for cycle, addr, value, origin in history:
        if horizon is not None and cycle > horizon:
            continue
        if origin == "recovery":
            continue
        key = (cycle, origin, addr >> 6)
        if key != run_key:
            close_run()
            run_key = key
            run = []
        run.append((addr, value))
    close_run()
    return records


def materialize_image(records: List[PersistRecord],
                      kept: Iterable[int],
                      base_image: Dict[int, int]) -> Dict[int, int]:
    """Fold the kept records, in acceptance order, over a base image."""
    keep = set(kept)
    image = dict(base_image)
    for record in records:
        if record.index in keep:
            for addr, value in record.writes:
                image[addr] = value
    return image


class OrderContext(NamedTuple):
    """Ordering facts the relaxed models consume.

    ``flushes`` are ``(core, block, cycle)`` clwb-acceptance instants;
    ``fences`` are ``(core, cycle)`` durability-fence retirements --
    both restricted to the pre-crash window by the caller.  ``window``
    is the design's speculation window (None = unbounded).
    """

    crash_cycle: int
    window: Optional[int] = None
    flushes: Tuple[Tuple[int, int, int], ...] = ()
    fences: Tuple[Tuple[int, int], ...] = ()


def order_context_from_history(history, crash_cycle: int,
                               window: Optional[int] = None
                               ) -> OrderContext:
    """Build an :class:`OrderContext` from typed history events
    (:mod:`repro.validation.history` FLUSH/FENCE kinds)."""
    flushes = []
    fences = []
    for event in H.durable_prefix_at(history, crash_cycle):
        if event.kind == H.FLUSH:
            flushes.append((event.core or 0, event.block, event.cycle))
        elif event.kind == H.FENCE:
            fences.append((event.core or 0, event.cycle))
    return OrderContext(crash_cycle, window, tuple(flushes), tuple(fences))


# ------------------------------------------------------------- posets
#
# Each builder returns (floor, uncertain, preds): floor and uncertain
# are record indices; preds[i] lists *positions into uncertain* that
# must be kept for uncertain[i] to be kept.


def _chain_preds(n: int) -> List[List[int]]:
    return [[i - 1] if i else [] for i in range(n)]


def _strict_poset(records, ctx):
    return [], [r.index for r in records], _chain_preds(len(records))


def _epoch_poset(records, ctx):
    flush_core = {(block, cycle): core
                  for core, block, cycle in ctx.flushes}
    fence_cycles: Dict[int, List[int]] = {}
    for core, cycle in ctx.fences:
        fence_cycles.setdefault(core, []).append(cycle)
    floor: List[int] = []
    uncertain: List[int] = []
    preds: List[List[int]] = []
    last_by_block: Dict[int, int] = {}   # block -> uncertain position
    for r in records:
        core = flush_core.get((r.block, r.cycle))
        closed = core is not None and any(
            r.cycle <= f <= ctx.crash_cycle
            for f in fence_cycles.get(core, ()))
        if core is None or closed:
            floor.append(r.index)
            continue
        position = len(uncertain)
        preds.append([last_by_block[r.block]]
                     if r.block in last_by_block else [])
        last_by_block[r.block] = position
        uncertain.append(r.index)
    return floor, uncertain, preds


def _percore_poset(records, ctx):
    last_dfence: Dict[int, int] = {}
    for core, cycle in ctx.fences:
        if cycle <= ctx.crash_cycle:
            last_dfence[core] = max(last_dfence.get(core, -1), cycle)
    floor: List[int] = []
    uncertain: List[int] = []
    preds: List[List[int]] = []
    last_by_core: Dict[int, int] = {}
    for r in records:
        if r.core is None or r.cycle <= last_dfence.get(r.core, -1):
            floor.append(r.index)
            continue
        position = len(uncertain)
        preds.append([last_by_core[r.core]]
                     if r.core in last_by_core else [])
        last_by_core[r.core] = position
        uncertain.append(r.index)
    return floor, uncertain, preds


def _spec_poset(records, ctx):
    # A tagged record is still "in flight" unless a later record of the
    # same core is untagged (its FASE committed) or the window expired.
    resolved_after = set()
    seen_untagged_cores = set()
    for r in reversed(records):
        if r.core is not None and r.core in seen_untagged_cores:
            resolved_after.add(r.index)
        if r.core is not None and not r.tagged:
            seen_untagged_cores.add(r.core)
    expiry = (None if ctx.window is None
              else ctx.crash_cycle - ctx.window)

    def is_hole(r: PersistRecord) -> bool:
        return (r.tagged and r.index not in resolved_after
                and (expiry is None or r.cycle > expiry))

    uncertain: List[int] = []
    preds: List[List[int]] = []
    last_backbone: Optional[int] = None   # uncertain position
    last_hole_by_core: Dict[int, int] = {}
    for r in records:
        position = len(uncertain)
        if is_hole(r):
            p = []
            if last_backbone is not None:
                p.append(last_backbone)
            if r.core in last_hole_by_core:
                p.append(last_hole_by_core[r.core])
            preds.append(p)
            last_hole_by_core[r.core] = position
        else:
            preds.append([last_backbone] if last_backbone is not None
                         else [])
            last_backbone = position
        uncertain.append(r.index)
    return [], uncertain, preds


_POSETS = {
    "strict": _strict_poset,
    "epoch": _epoch_poset,
    "percore": _percore_poset,
    "spec": _spec_poset,
}


# -------------------------------------------------------- enumeration


def _is_chain(preds: List[List[int]]) -> bool:
    return all(p == ([i - 1] if i else []) for i, p in enumerate(preds))


def enumerate_ideals(preds: List[List[int]], budget: int,
                     rng: random.Random
                     ) -> Tuple[List[Tuple[int, ...]], bool]:
    """All order ideals of the poset, or a seeded stratified sample.

    Returns ``(states, truncated)`` where each state is a sorted tuple
    of element positions.  Exhaustive enumeration runs only while the
    ideal count stays within ``budget`` (prefix-sharing DFS, aborted at
    ``budget + 1`` leaves); past it, the result is ``budget`` distinct
    ideals: the empty set and the full set as anchors plus ideals drawn
    with a uniformly random target size (stratified -- naive coin-flip
    sampling would concentrate on tiny ideals for chain-like posets).
    """
    n = len(preds)
    if budget < 2:
        raise ValueError("image budget must be at least 2")
    if _is_chain(preds):
        # Prefix-sharing shortcut: a chain's ideals are its prefixes.
        if n + 1 <= budget:
            return [tuple(range(k)) for k in range(n + 1)], False
        lengths = {0, n}
        while len(lengths) < budget:
            lengths.add(rng.randrange(n + 1))
        return [tuple(range(k)) for k in sorted(lengths)], True

    states: List[frozenset] = []
    stack: List[Tuple[int, frozenset]] = [(0, frozenset())]
    exhausted = True
    while stack:
        i, included = stack.pop()
        if i == n:
            states.append(included)
            if len(states) > budget:
                exhausted = False
                break
            continue
        stack.append((i + 1, included))
        if all(p in included for p in preds[i]):
            stack.append((i + 1, included | {i}))
    if exhausted:
        return sorted(tuple(sorted(s)) for s in states), False

    succs: List[List[int]] = [[] for _ in range(n)]
    for i, plist in enumerate(preds):
        for p in plist:
            succs[p].append(i)

    def random_ideal() -> frozenset:
        target = rng.randrange(n + 1)
        pending = [len(p) for p in preds]
        eligible = [i for i in range(n) if pending[i] == 0]
        included: set = set()
        while len(included) < target and eligible:
            pick = eligible.pop(rng.randrange(len(eligible)))
            included.add(pick)
            for s in succs[pick]:
                pending[s] -= 1
                if pending[s] == 0:
                    eligible.append(s)
        return frozenset(included)

    sample = {frozenset(), frozenset(range(n))}
    attempts = 0
    while len(sample) < budget and attempts < budget * 50:
        sample.add(random_ideal())
        attempts += 1
    return sorted(tuple(sorted(s)) for s in sample), True


@dataclass
class StateSet:
    """The enumerated durable states of one (design, crash cycle)."""

    design: str
    model: str
    crash_cycle: int
    records: List[PersistRecord]
    floor: Tuple[int, ...]                 # record indices, always kept
    uncertain: Tuple[int, ...]             # record indices, droppable
    states: List[Tuple[int, ...]]          # kept uncertain record indices
    truncated: bool
    budget: int

    @property
    def n_states(self) -> int:
        return len(self.states)

    def kept_indices(self, state: Tuple[int, ...]) -> Tuple[int, ...]:
        """Full kept record-index set (floor + surviving uncertain)."""
        return tuple(sorted(set(self.floor) | set(state)))

    def images(self, base_image: Dict[int, int]):
        """Yield ``(state, image)`` for every enumerated durable state."""
        for state in self.states:
            yield state, materialize_image(
                self.records, self.kept_indices(state), base_image)

    def floor_image(self, base_image: Dict[int, int]) -> Dict[int, int]:
        """Every record applied -- must equal the simulator's own image
        (the checker pins this against ``persisted_snapshot()``)."""
        return materialize_image(
            self.records, [r.index for r in self.records], base_image)

    def to_dict(self) -> Dict:
        return {
            "design": self.design,
            "model": self.model,
            "crash_cycle": self.crash_cycle,
            "n_records": len(self.records),
            "n_floor": len(self.floor),
            "n_uncertain": len(self.uncertain),
            "n_states": self.n_states,
            "truncated": self.truncated,
            "budget": self.budget,
        }


def enumerate_durable_states(design: str,
                             records: List[PersistRecord],
                             crash_cycle: int,
                             *,
                             context: Optional[OrderContext] = None,
                             budget: int = DEFAULT_BUDGET,
                             seed: int = 0) -> StateSet:
    """Enumerate the durable-state set ``design`` allows at a crash.

    ``records`` must already be restricted to the pre-crash window
    (:func:`records_from_device_history` with ``horizon=crash_cycle``).
    Sampling (when the budget truncates) is seeded from ``seed`` and
    the cell coordinates, so equal seeds give byte-identical sets.
    """
    model = MODEL_FOR_DESIGN.get(design, "strict")
    ctx = context or OrderContext(crash_cycle)
    if ctx.crash_cycle != crash_cycle:
        ctx = ctx._replace(crash_cycle=crash_cycle)
    floor, uncertain, preds = _POSETS[model](records, ctx)
    rng = random.Random(f"crashstates:{seed}:{design}:{crash_cycle}")
    positions, truncated = enumerate_ideals(preds, budget, rng)
    states = [tuple(uncertain[p] for p in state) for state in positions]
    return StateSet(design=design, model=model, crash_cycle=crash_cycle,
                    records=records, floor=tuple(floor),
                    uncertain=tuple(uncertain), states=states,
                    truncated=truncated, budget=budget)
