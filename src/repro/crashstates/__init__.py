"""Durable-state enumeration: the set-of-images crash oracle.

Campaigns before this package validated recovery against the *one*
durable image the simulator happened to materialize at each crash
point.  Each persistency design's formal model admits a whole **set**
of durable states -- strict persistency admits exactly the
persist-order prefixes, epoch designs admit any order-respecting subset
of the open epochs (Px86, *Taming x86-TSO Persistency*), and PMEM-Spec
admits prefixes modulo in-flight speculative persists.  This package
enumerates that set per design (:mod:`.models`), replays recovery from
every enumerated image (:mod:`.checker`), and ships a Px86-style litmus
suite with declared expected sets as the fast tier (:mod:`.litmus`).

See docs/VALIDATION.md part II for the per-design semantics table and
the litmus authoring guide.
"""

from .models import (  # noqa: F401
    DEFAULT_BUDGET,
    MODEL_FOR_DESIGN,
    PersistRecord,
    StateSet,
    enumerate_durable_states,
    materialize_image,
    order_context_from_history,
    records_from_device_history,
)

__all__ = [
    "DEFAULT_BUDGET",
    "MODEL_FOR_DESIGN",
    "PersistRecord",
    "StateSet",
    "enumerate_durable_states",
    "materialize_image",
    "order_context_from_history",
    "records_from_device_history",
]
