"""The persist-order oracle: generic ordering invariants over histories.

Formal-persistency work (Khyzha & Lahav's x86-TSO persistency model)
shows persist-order violations are exactly checkable from an event
history; this oracle applies that idea to the reproduction's own trace
stream.  It is independent of any workload's structural invariants
(those stay in :meth:`repro.workloads.Workload.validate_recovered`) and
checks what the *protocols* promise instead:

``intra-thread-persist-order``
    A core's persist-path stores must be accepted by the PMC in issue
    order (§4.2's FIFO property -- the undo-log write protocol is
    unsound without it).

``spec-id-monotonicity``
    Spec-IDs observed on one block must be non-decreasing while the
    block's speculation-buffer entry is live (§5.2.2's happens-before
    order in PM), unless the hardware detected the inversion (a
    ``detection`` event at the offending persist's cycle) and recovery
    took over.

``stale-read``
    The ``WriteBack - Read - Persist`` pattern (§5.1.4, Figure 5) means
    the read returned stale data; it must be *detected*.  An undetected
    occurrence is a soundness violation.

The two speculation checks share one per-block replay of the
speculation-buffer entry lifecycle (automaton state via
:mod:`repro.core.automata`, plus spec-ID retention, window expiry, and
entry deallocation) so the oracle flags exactly what the hardware is
*specified* to catch -- patterns the buffer legitimately forgets (an
expired or recycled entry) are not flagged.

``fase-atomicity``
    Per core, FASE attempts must not overlap, an aborted attempt must be
    re-executed before anything else runs (with its attempt counter
    incremented), and a committed FASE must never run again.

Violations carry a stable machine-readable ``kind`` so campaign reports
and CI gates can key on them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import automata
from .history import DETECTION, FASE, PERSIST, READ, WRITEBACK, HistoryEvent

INTRA_THREAD_ORDER = "intra-thread-persist-order"
SPEC_ID_ORDER = "spec-id-monotonicity"
STALE_READ = "stale-read"
FASE_ATOMICITY = "fase-atomicity"

VIOLATION_KINDS = (INTRA_THREAD_ORDER, SPEC_ID_ORDER, STALE_READ,
                   FASE_ATOMICITY)

#: FASE spans have a 1-cycle minimum width (the tracer widens
#: zero-length spans so renderers show them), so consecutive attempts
#: may nominally overlap by one cycle without violating anything.
SPAN_TOLERANCE = 1


@dataclass(frozen=True)
class Violation:
    """One invariant violation found in a history."""

    kind: str
    cycle: int
    subject: str
    detail: str

    def to_dict(self) -> Dict:
        return asdict(self)

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject} @ {self.cycle}: {self.detail}"


class PersistOrderOracle:
    """Replays a history and reports every violated ordering invariant.

    ``window`` is the speculation window in cycles (``None`` = infinite,
    the right setting for hand-crafted histories); it bounds both the
    automaton replay's expiry and how long a spec-ID comparison stays
    live, mirroring the hardware's lazy entry expiry.
    ``check_stale_reads`` gates the speculation-buffer replay (both the
    stale-read and spec-ID checks) and should be enabled only for
    designs that drop LLC writebacks *and* detect speculation
    (PMEM-Spec): baselines that persist writebacks never serve stale
    reads, writeback-dropping baselines without a speculation buffer
    order persists by fencing, and neither tags persists with spec-IDs
    -- the pattern has no meaning for them.
    """

    def __init__(self, window: Optional[int] = None,
                 check_stale_reads: bool = True):
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 cycle (or None)")
        self.window = window
        self.check_stale_reads = check_stale_reads

    # ------------------------------------------------------------- entry

    def check(self, history: Iterable[HistoryEvent]) -> List[Violation]:
        """All violations in the history, in deterministic order."""
        events = list(history)
        violations = self._check_intra_thread(events)
        if self.check_stale_reads:
            violations += self._check_spec_buffer(events)
        violations += self._check_fase_atomicity(events)
        return violations

    # ---------------------------------------------------------- helpers

    def _expired(self, last_activity: int, cycle: int) -> bool:
        return (self.window is not None
                and cycle - last_activity >= self.window)

    @staticmethod
    def _detections(events: List[HistoryEvent]) -> Set[Tuple[int, int]]:
        """(block, cycle) pairs the hardware flagged.  The simulator
        emits the automaton transition at the offending persist's PMC
        acceptance cycle, so suppression matches on exact cycles."""
        return {(event.block, event.cycle) for event in events
                if event.kind == DETECTION}

    @staticmethod
    def _per_block(events: List[HistoryEvent],
                   kinds: Tuple[str, ...]) -> Dict[int, List[HistoryEvent]]:
        """Selected events grouped per block, sorted by cycle (stream
        order breaks ties, keeping the sort stable and deterministic)."""
        grouped: Dict[int, List[HistoryEvent]] = {}
        for event in events:
            if event.kind in kinds:
                grouped.setdefault(event.block, []).append(event)
        for block_events in grouped.values():
            block_events.sort(key=lambda e: e.cycle)
        return grouped

    # ----------------------------------------------------- invariant (1)

    def _check_intra_thread(self,
                            events: List[HistoryEvent]) -> List[Violation]:
        """Per core, persist acceptance must follow stream (issue) order."""
        violations: List[Violation] = []
        last_accept: Dict[int, Tuple[int, int]] = {}  # core -> (cycle, blk)
        for event in events:
            if event.kind != PERSIST:
                continue
            previous = last_accept.get(event.core)
            if previous is not None and event.cycle < previous[0]:
                violations.append(Violation(
                    INTRA_THREAD_ORDER, event.cycle, f"core{event.core}",
                    f"persist of block 0x{event.block:x} accepted at "
                    f"{event.cycle}, before the earlier-issued persist of "
                    f"block 0x{previous[1]:x} accepted at {previous[0]}"))
            if previous is None or event.cycle > previous[0]:
                last_accept[event.core] = (event.cycle, event.block)
        return violations

    # ------------------------------------------------- invariants (2, 3)

    def _check_spec_buffer(self,
                           events: List[HistoryEvent]) -> List[Violation]:
        """Replay the speculation-buffer entry lifecycle per block.

        Mirrors :meth:`repro.core.spec_buffer.SpeculationBuffer`'s input
        handlers exactly -- lazy window expiry, spec-ID retention and
        refresh, entry deallocation on untagged-persist-in-Evict and on
        any misspeculation -- so the replay's detections coincide with
        the hardware's.  Each detection point the replay reaches must be
        matched by a ``detection`` event in the history; one that is not
        becomes a ``stale-read`` or ``spec-id-monotonicity`` violation.
        """
        violations: List[Violation] = []
        detected = self._detections(events)
        for block, block_events in sorted(
                self._per_block(events,
                                (WRITEBACK, READ, PERSIST)).items()):
            subject = f"block 0x{block:x}"
            alive = False
            state = automata.INITIAL
            spec_id = 0
            window_start = 0

            def reset():
                nonlocal alive, state, spec_id
                alive, state, spec_id = False, automata.INITIAL, 0

            def apply(symbol, cycle):
                nonlocal state, window_start
                state, action = automata.step(state, symbol)
                if action == automata.RESTART_WINDOW:
                    window_start = cycle
                elif action == automata.DEALLOCATE:
                    reset()

            for event in block_events:
                cycle = event.cycle
                if alive and self._expired(window_start, cycle):
                    reset()
                if event.kind == WRITEBACK:
                    if alive:
                        apply(automata.WRITEBACK, cycle)
                    else:
                        alive, state = True, automata.EVICT
                        window_start = cycle
                elif event.kind == READ:
                    if alive:
                        apply(automata.READ, cycle)
                elif event.kind == PERSIST and alive:
                    if state == automata.SPECULATED:
                        if (block, cycle) not in detected:
                            violations.append(Violation(
                                STALE_READ, cycle, subject,
                                "WriteBack-Read-Persist: a regular-path "
                                "read returned stale data and the "
                                "hardware never flagged it"))
                        reset()  # entry recycled either way
                    elif (event.spec_id and spec_id
                            and event.spec_id < spec_id):
                        if (block, cycle) not in detected:
                            violations.append(Violation(
                                SPEC_ID_ORDER, cycle, subject,
                                f"spec-id {event.spec_id} persisted "
                                f"after spec-id {spec_id} without "
                                f"hardware detection"))
                        reset()
                    elif event.spec_id:
                        spec_id = max(spec_id, event.spec_id)
                        window_start = cycle
                    else:
                        apply(automata.PERSIST, cycle)
                elif event.kind == PERSIST and event.spec_id:
                    # Tagged persist on an unmonitored block allocates
                    # an Initial-state entry for store tracking.
                    alive, state = True, automata.INITIAL
                    spec_id = event.spec_id
                    window_start = cycle
        return violations

    # ----------------------------------------------------- invariant (4)

    def _check_fase_atomicity(self,
                              events: List[HistoryEvent]) -> List[Violation]:
        violations: List[Violation] = []
        committed: Set[Tuple[int, int]] = set()  # (core, fase)
        per_core: Dict[int, List[HistoryEvent]] = {}
        for event in events:
            if event.kind == FASE:
                per_core.setdefault(event.core, []).append(event)
        for core, spans in sorted(per_core.items()):
            subject = f"core{core}"
            previous: Optional[HistoryEvent] = None
            pending_retry: Optional[HistoryEvent] = None
            for span in spans:
                if (previous is not None and previous.end is not None
                        and span.cycle < previous.end - SPAN_TOLERANCE):
                    violations.append(Violation(
                        FASE_ATOMICITY, span.cycle, subject,
                        f"FASE {span.fase} attempt started at {span.cycle} "
                        f"while FASE {previous.fase} ran until "
                        f"{previous.end}"))
                if pending_retry is not None:
                    if span.fase != pending_retry.fase:
                        violations.append(Violation(
                            FASE_ATOMICITY, span.cycle, subject,
                            f"FASE {pending_retry.fase} aborted at "
                            f"{pending_retry.end} but FASE {span.fase} ran "
                            f"next instead of the re-execution"))
                    elif span.attempt != pending_retry.attempt + 1:
                        violations.append(Violation(
                            FASE_ATOMICITY, span.cycle, subject,
                            f"FASE {span.fase} re-executed as attempt "
                            f"{span.attempt} after an aborted attempt "
                            f"{pending_retry.attempt}"))
                if (core, span.fase) in committed:
                    violations.append(Violation(
                        FASE_ATOMICITY, span.cycle, subject,
                        f"FASE {span.fase} ran again after committing"))
                if span.outcome == "commit":
                    committed.add((core, span.fase))
                    pending_retry = None
                elif span.outcome == "abort":
                    pending_retry = span
                previous = span
            # A retry still pending at the end of the history is fine:
            # the crash interrupted the re-execution.
        return violations
