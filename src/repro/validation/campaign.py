"""Crash-consistency campaigns: plan, fan out, judge, shrink, report.

One *trial* = run a workload under a design with a fault model armed,
cut (or virtually cut) at a planned crash cycle, recover, and judge the
outcome twice: the workload's own ``validate_recovered`` structural
check on the recovered data image, and the :class:`PersistOrderOracle`
on the run's trace-event history truncated at the crash horizon.  A
*campaign* is a planned set of trials per ``workload x design`` cell,
fanned out through :meth:`ParallelExecutor.map`, with every failing
cell shrunk to a minimal reproducing crash cycle and everything
summarised in a versioned :class:`CampaignReport`.

Trials are pure functions of their :class:`TrialSpec` (fixed seed, no
wall-clock inputs), which is what makes fan-out order irrelevant,
failures replayable, and shrinking sound.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import table3_config
from ..obsv.bus import get_bus
from ..persistency import design_by_name
from ..runtime.crash import build_crash_system
from ..runtime.recovery import run_recovery
from ..sim.trace import TraceRecorder
from ..snapshot import (SNAPSHOT_SCHEMA_VERSION, SnapshotError,
                        SnapshotLadder, SnapshotStore, restore_nearest)
from ..telemetry import get_logger
from ..workloads import BENCHMARKS
from .faults import fault_by_name
from .history import (FASE, PERSIST, WRITEBACK, history_from_recorder,
                      truncate_history)
from .oracle import PersistOrderOracle
from .planners import RunProfile, planner_by_name
from .shrink import shrink_crash_cycle

CAMPAIGN_SCHEMA_VERSION = 1

log = get_logger("validation.campaign")


@dataclass(frozen=True)
class TrialSpec:
    """One crash trial, fully determined (picklable, hashable)."""

    workload: str
    design: str
    fault: str = "power-cut"
    crash_cycle: int = 0
    n_threads: int = 2
    fases_per_thread: int = 10
    seed: int = 42
    log_mode: str = "undo"
    # Snapshot ladder: every K persist events, 0 = off.  A non-zero K
    # changes trial timing (parking is part of the timing universe), so
    # it participates in the cell identity alongside seed and threads.
    snapshot_every: int = 0
    # Where rungs live on disk; None keeps the ladder timing-only (no
    # capture, no warm restore) -- used when trials must replay a
    # laddered canonical run without a shared filesystem.
    snapshot_dir: Optional[str] = None

    def __post_init__(self):
        if self.workload not in BENCHMARKS:
            raise ValueError(f"unknown benchmark {self.workload!r}; "
                             f"choose from {sorted(BENCHMARKS)}")
        try:
            design_by_name(self.design)
            fault_by_name(self.fault)
        except KeyError as exc:
            # ValueError is the CLI's "user error" class (exit 2, no
            # traceback); bad names are exactly that.
            raise ValueError(str(exc)) from None
        if self.crash_cycle < 0:
            raise ValueError("crash_cycle must be >= 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")

    def describe(self) -> str:
        return (f"{self.workload}/{self.design} {self.fault}"
                f"@{self.crash_cycle}")


def _describe_spec(spec: TrialSpec) -> str:
    return spec.describe()


def _cell_index_name(spec: TrialSpec) -> str:
    """Stable rung-index name for a cell: every spec field except the
    crash cycle (all trials of a cell restore from the same canonical
    laddered run) and the store location (moving the store must not
    orphan its own indexes)."""
    fields = asdict(spec)
    fields.pop("crash_cycle")
    fields.pop("snapshot_dir")
    fields["snapshot_schema"] = SNAPSHOT_SCHEMA_VERSION
    blob = json.dumps(fields, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:24]


# Program materialisation (workload.build) dominates trial build time at
# large fase counts, and every trial of a cell builds the identical
# program.  Memoise the built pair per process: workload and program are
# immutable after build() (the system copies the initial heap), so trials
# stay pure functions of their spec.  Keys are one per campaign cell --
# the cache stays tiny.
_PROGRAM_CACHE: Dict[Tuple[str, int, int, int], Tuple[object, object]] = {}


def _built_program(spec: TrialSpec) -> Tuple[object, object]:
    key = (spec.workload, spec.n_threads, spec.fases_per_thread, spec.seed)
    if key not in _PROGRAM_CACHE:
        workload = BENCHMARKS[spec.workload](seed=spec.seed)
        program = workload.build(spec.n_threads, spec.fases_per_thread)
        _PROGRAM_CACHE[key] = (workload, program)
    return _PROGRAM_CACHE[key]


def _build(spec: TrialSpec, capture: bool = False):
    """Build the traced system for one trial, fault armed.  With a
    non-zero ``snapshot_every`` a ladder is installed: capturing for the
    canonical profile run, replay-only (identical parking, no capture)
    for trials."""
    fault = fault_by_name(spec.fault)
    recorder = TraceRecorder()
    config = table3_config(n_cores=spec.n_threads,
                           **fault.config_overrides())
    workload, system = build_crash_system(
        BENCHMARKS[spec.workload], spec.design, spec.n_threads,
        spec.fases_per_thread, spec.seed, config, log_mode=spec.log_mode,
        tracer=recorder, prebuilt=_built_program(spec))
    ladder = None
    if spec.snapshot_every:
        store = (SnapshotStore(spec.snapshot_dir)
                 if spec.snapshot_dir else None)
        ladder = SnapshotLadder(
            system, spec.snapshot_every, store=store,
            index_name=_cell_index_name(spec), capture=capture).install()
    fault.arm(system)
    return workload, system, fault, recorder, ladder


def _oracle_for(system) -> PersistOrderOracle:
    """The oracle configured for this system's design: the replay must
    mirror the hardware (same window), and the stale-read pattern only
    exists where writebacks are dropped *and* a speculation buffer is
    expected to catch the resulting staleness (PMEM-Spec).  A run whose
    buffer overflowed also skips the replay: overflow evicts the oldest
    entry early (with an all-core stall), which an unbounded replay
    cannot mirror, and the hardware's miss there is by design."""
    design = system.design
    overflows = sum(buffer.stats["overflows"]
                    for buffer in system.spec_buffers)
    return PersistOrderOracle(
        window=system.config.speculation_window_cycles,
        check_stale_reads=(design.drops_llc_writebacks
                           and design.uses_persist_path
                           and overflows == 0))


def run_trial(spec: TrialSpec) -> Dict:
    """Execute one trial; returns a JSON-ready outcome dict.

    Module-level (not a closure) so :meth:`ParallelExecutor.map` can
    ship it to pool workers.
    """
    workload, system, fault, recorder, ladder = _build(spec)
    env = system.env
    restored_from = None
    if ladder is not None and ladder.store is not None:
        try:
            rung = restore_nearest(system, ladder.store,
                                   ladder.index_name, spec.crash_cycle)
        except SnapshotError as exc:
            # A corrupt or missing store degrades to a cold start: the
            # trial's outcome must not depend on cache health.
            log.warning("snapshot restore failed (%s); starting cold", exc)
            rung = None
        if rung is not None:
            restored_from = rung["cycle"]
    all_done = system.launch()
    system.advance(until=spec.crash_cycle, stop_event=all_done)
    if env.now < spec.crash_cycle:
        # Cores finished early: power stays on, so the persistence
        # drain proceeds until the planned cut.
        system.advance(until=spec.crash_cycle)
    fault.at_crash(system, spec.crash_cycle)
    if fault.run_to_completion:
        # Virtual failures leave the machine on: the runtime's
        # abort/retry recovery must carry the run to a clean finish.
        system.advance(stop_event=all_done)
        system.advance()
    horizon = env.now
    commits = system.runtime.total_commits

    snapshot = system.persisted_snapshot()
    fault_notes = fault.mutate_snapshot(snapshot, spec.n_threads)
    report = run_recovery(snapshot, spec.n_threads,
                          log_mode=spec.log_mode)
    violations = [
        {"kind": "structural", "cycle": spec.crash_cycle,
         "subject": workload.name, "detail": message}
        for message in workload.validate_recovered(report.data_image())]

    history = truncate_history(history_from_recorder(recorder), horizon)
    violations.extend(v.to_dict() for v in _oracle_for(system).check(history))

    return {
        "spec": asdict(spec),
        "crash_cycle": spec.crash_cycle,
        "horizon": horizon,
        "commits_before_crash": commits,
        "rolled_back_threads": report.rolled_back_threads,
        "history_events": len(history),
        "fault_notes": fault_notes,
        "violations": violations,
        "consistent": not violations,
        "restored_from_cycle": restored_from,
    }


def profile_cell(spec: TrialSpec) -> RunProfile:
    """Profile the uninterrupted run of one cell (fault still armed, so
    crash points land inside the *perturbed* run's duration).  With a
    snapshot store configured this is also the canonical run that fills
    the cell's rung ladder."""
    _workload, system, _fault, recorder, ladder = _build(
        spec, capture=spec.snapshot_dir is not None)
    result = system.run()
    if ladder is not None:
        ladder.flush_index()
    history = history_from_recorder(recorder)
    return RunProfile(
        total_cycles=result.cycles,
        fase_intervals=[(event.cycle, event.end) for event in history
                        if event.kind == FASE],
        commit_cycles=[when for _tid, _fid, when
                       in system.runtime.commit_log],
        issue_end=max((core.finish_time or 0) for core in system.cores),
        persist_cycles=sorted({event.cycle for event in history
                               if event.kind in (PERSIST, WRITEBACK)}),
    )


def snapshot_cell(spec: TrialSpec) -> List[Dict]:
    """Run one cell's canonical laddered run, filling its on-disk rung
    ladder, and return the stored rung index entries."""
    if not (spec.snapshot_every and spec.snapshot_dir):
        raise ValueError("snapshot capture needs snapshot_every > 0 "
                         "and a snapshot_dir")
    profile_cell(spec)
    store = SnapshotStore(spec.snapshot_dir)
    return store.load_index(_cell_index_name(spec))


def verify_cell(spec: TrialSpec) -> Dict:
    """The standing determinism check for one cell's stored ladder.

    Runs the cell cold (laddered, no capture) to get the reference
    end-of-run fingerprint, then restores *every* stored rung into a
    fresh system and replays the tail; each replay must land on the
    reference fingerprint exactly.  Returns ``{"reference", "checks",
    "ok"}`` with one check dict per rung.
    """
    if not (spec.snapshot_every and spec.snapshot_dir):
        raise ValueError("snapshot verify needs snapshot_every > 0 "
                         "and a snapshot_dir")
    store = SnapshotStore(spec.snapshot_dir)
    index = store.load_index(_cell_index_name(spec))
    _workload, system, _fault, _recorder, _ladder = _build(spec)
    system.run()
    reference = system.state_fingerprint()
    checks = []
    for rung in index:
        _workload, system, _fault, _recorder, _ladder = _build(spec)
        system.restore_state(store.get(rung["key"]))
        done = system.launch()
        system.advance(stop_event=done)
        system.advance()
        checks.append({"rung": rung["rung"], "cycle": rung["cycle"],
                       "fingerprint_ok":
                           system.state_fingerprint() == reference})
    return {"reference": reference, "checks": checks,
            "ok": bool(checks) and all(c["fingerprint_ok"]
                                       for c in checks)}


# --------------------------------------------------------------- report


class CampaignReport:
    """Structured outcome of one campaign (JSON artifact + table rows)."""

    def __init__(self, params: Dict, cells: List[Dict],
                 elapsed_s: float = 0.0):
        self.schema_version = CAMPAIGN_SCHEMA_VERSION
        self.params = params
        self.cells = cells
        self.elapsed_s = elapsed_s
        # Aggregate-metrics snapshot from the run's MetricsRegistry
        # (set by run_campaign when an observed bus is active).
        self.obsv: Optional[Dict] = None

    @property
    def total_trials(self) -> int:
        return sum(cell["trials"] for cell in self.cells)

    @property
    def total_failures(self) -> int:
        return sum(len(cell["failures"]) for cell in self.cells)

    @property
    def consistent(self) -> bool:
        return self.total_failures == 0

    def violation_kinds(self) -> List[str]:
        kinds = {violation["kind"] for cell in self.cells
                 for failure in cell["failures"]
                 for violation in failure["violations"]}
        return sorted(kinds)

    def rows(self) -> List[Dict]:
        """Flat per-cell summaries for the harness table renderer."""
        rows = []
        for cell in self.cells:
            shrunk = cell.get("shrink")
            rows.append({
                "workload": cell["workload"],
                "design": cell["design"],
                "trials": cell["trials"],
                "failures": len(cell["failures"]),
                "violation_kinds": ",".join(cell["violation_kinds"]) or "-",
                "minimal_cycle": (shrunk["minimal_cycle"]
                                  if shrunk else None),
            })
        return rows

    def to_dict(self) -> Dict:
        payload = {
            "schema_version": self.schema_version,
            "params": self.params,
            "elapsed_s": self.elapsed_s,
            "total_trials": self.total_trials,
            "total_failures": self.total_failures,
            "consistent": self.consistent,
            "violation_kinds": self.violation_kinds(),
            "cells": self.cells,
        }
        if self.obsv is not None:
            payload["obsv"] = self.obsv
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    def __repr__(self) -> str:
        status = "OK" if self.consistent else (
            f"{self.total_failures} FAILURES {self.violation_kinds()}")
        return (f"CampaignReport({len(self.cells)} cells, "
                f"{self.total_trials} trials: {status})")


# ------------------------------------------------------------- campaign


def _cell_rng(seed: int, workload: str, design: str,
              round_index: int) -> random.Random:
    # String seeding is stable across processes and Python runs
    # (unlike hash()), so every cell's sample is reproducible.
    return random.Random(f"{seed}:{workload}:{design}:{round_index}")


def run_campaign(workloads: Sequence[str], designs: Sequence[str],
                 planner: str = "stratified", fault: str = "power-cut",
                 budget: int = 200, seed: int = 42,
                 n_threads: int = 2, fases_per_thread: int = 10,
                 log_mode: str = "undo", shrink: bool = True,
                 executor=None,
                 progress: Optional[Callable[[str], None]] = None,
                 snapshot_dir: Optional[str] = None,
                 snapshot_every: int = 0,
                 snapshot_rungs: int = 0) -> CampaignReport:
    """Run a full campaign over the ``workloads x designs`` grid.

    ``budget`` is the trial budget *per cell*.  ``executor`` is a
    :class:`repro.harness.ParallelExecutor` (or anything with its
    ``map``); ``None`` runs serially -- the package never constructs a
    harness object itself, so the dependency points one way only.

    With ``snapshot_every > 0`` and a ``snapshot_dir``, the profiling
    pass doubles as the canonical laddered run per cell, and each trial
    restores the nearest rung at or before its crash cycle instead of
    simulating from cycle 0 -- O(segment) per trial instead of O(run).

    ``snapshot_rungs > 0`` sizes the ladder per cell instead: each cell
    gets ``snapshot_every = persists // snapshot_rungs`` from a quick
    unladdered probe, so persist-dense and persist-sparse cells both
    land ~``snapshot_rungs`` rungs (a grid-wide interval gives one cell
    tails too long to matter and another a capture bill too high to
    amortise).  Overrides ``snapshot_every``.
    """
    started = time.perf_counter()
    planner_obj = planner_by_name(planner)
    bus = get_bus()
    cells: List[Tuple[str, str]] = [
        (workload, design) for workload in workloads for design in designs]
    bus.emit("campaign_start", workloads=list(workloads),
             designs=list(designs), planner=planner, fault=fault,
             budget=budget)

    def say(message: str) -> None:
        log.info("%s", message)
        if progress is not None:
            progress(message)

    cell_every: Dict[Tuple[str, str], int] = {}

    def base_spec(workload: str, design: str) -> TrialSpec:
        every = cell_every.get((workload, design), snapshot_every)
        return TrialSpec(workload=workload, design=design, fault=fault,
                         crash_cycle=0, n_threads=n_threads,
                         fases_per_thread=fases_per_thread, seed=seed,
                         log_mode=log_mode, snapshot_every=every,
                         snapshot_dir=snapshot_dir)

    if snapshot_rungs:
        say(f"sizing ladders: ~{snapshot_rungs} rungs per cell")
        for workload, design in cells:
            probe = profile_cell(replace(base_spec(workload, design),
                                         snapshot_every=0,
                                         snapshot_dir=None))
            cell_every[(workload, design)] = max(
                1, len(probe.persist_cycles) // snapshot_rungs)

    def fan_out(specs: List[TrialSpec]) -> List[Dict]:
        if executor is not None and specs:
            return executor.map(run_trial, specs, describe=_describe_spec)
        return [run_trial(spec) for spec in specs]

    say(f"profiling {len(cells)} cells "
        f"({len(workloads)} workloads x {len(designs)} designs)")
    profiles: Dict[Tuple[str, str], RunProfile] = {}
    for workload, design in cells:
        profiles[(workload, design)] = profile_cell(
            base_spec(workload, design))
        bus.emit("cell_profile", workload=workload, design=design,
                 total_cycles=profiles[(workload, design)].total_cycles)

    # The adaptive planner wants a feedback round; the others spend
    # their whole budget at once.
    rounds = 2 if planner == "adaptive" else 1
    tried: Dict[Tuple[str, str], set] = {cell: set() for cell in cells}
    results: Dict[Tuple[str, str], List[Dict]] = {cell: [] for cell in cells}
    failures: Dict[Tuple[str, str], List[Dict]] = {cell: [] for cell in cells}

    for round_index in range(rounds):
        round_budget = budget // rounds
        if round_index == rounds - 1:
            round_budget = budget - round_budget * (rounds - 1)
        specs: List[TrialSpec] = []
        for workload, design in cells:
            cell = (workload, design)
            rng = _cell_rng(seed, workload, design, round_index)
            cycles = planner_obj.plan(
                profiles[cell], round_budget, rng,
                failures=[f["crash_cycle"] for f in failures[cell]])
            fresh = [c for c in cycles if c not in tried[cell]]
            tried[cell].update(fresh)
            specs.extend(replace(base_spec(workload, design),
                                 crash_cycle=cycle) for cycle in fresh)
        say(f"round {round_index + 1}/{rounds}: {len(specs)} trials")
        bus.emit("round_start", round=round_index + 1, rounds=rounds,
                 n_trials=len(specs))
        for spec, outcome in zip(specs, fan_out(specs)):
            cell = (spec.workload, spec.design)
            results[cell].append(outcome)
            bus.emit("trial_finish", workload=spec.workload,
                     design=spec.design, crash_cycle=spec.crash_cycle,
                     consistent=outcome["consistent"],
                     violations=len(outcome["violations"]),
                     restored_from_cycle=outcome["restored_from_cycle"])
            if not outcome["consistent"]:
                failures[cell].append(outcome)
                for violation in outcome["violations"]:
                    bus.emit("oracle_violation", workload=spec.workload,
                             design=spec.design,
                             crash_cycle=spec.crash_cycle,
                             violation_kind=violation["kind"],
                             cycle=violation.get("cycle",
                                                 spec.crash_cycle))

    cell_reports: List[Dict] = []
    for workload, design in cells:
        cell = (workload, design)
        cell_failures = sorted(failures[cell],
                               key=lambda f: f["crash_cycle"])
        shrink_payload = None
        if shrink and cell_failures:
            shrink_payload = _shrink_cell(
                base_spec(workload, design), cell_failures, say)
            bus.emit("shrink_finish", workload=workload, design=design,
                     earliest_cycle=cell_failures[0]["crash_cycle"],
                     minimal_cycle=shrink_payload["minimal_cycle"],
                     trials=shrink_payload.get("trials", 0))
        cell_reports.append({
            "workload": workload,
            "design": design,
            "fault": fault,
            "total_cycles": profiles[cell].total_cycles,
            "trials": len(results[cell]),
            "restored_trials": sum(
                1 for outcome in results[cell]
                if outcome.get("restored_from_cycle") is not None),
            "failures": cell_failures,
            "violation_kinds": sorted({
                violation["kind"] for failure in cell_failures
                for violation in failure["violations"]}),
            "shrink": shrink_payload,
        })

    report = CampaignReport(
        params={
            "workloads": list(workloads), "designs": list(designs),
            "planner": planner, "fault": fault, "budget": budget,
            "seed": seed, "n_threads": n_threads,
            "fases_per_thread": fases_per_thread, "log_mode": log_mode,
            "shrink": shrink, "snapshot_every": snapshot_every,
            "snapshot_rungs": snapshot_rungs,
            "cell_snapshot_every": {
                f"{workload}/{design}": every
                for (workload, design), every in sorted(cell_every.items())},
            "snapshot_dir": snapshot_dir,
        },
        cells=cell_reports,
        elapsed_s=time.perf_counter() - started,
    )
    bus.emit("campaign_finish", cells=len(cells),
             trials=report.total_trials, failures=report.total_failures,
             consistent=report.consistent, elapsed_s=report.elapsed_s)
    if bus.registry is not None:
        report.obsv = bus.registry.snapshot()
    say(f"campaign done: {report!r}")
    return report


def _shrink_cell(base: TrialSpec, cell_failures: List[Dict], say) -> Dict:
    """Shrink a cell's earliest failing cycle to a minimal reproducer."""
    earliest = cell_failures[0]["crash_cycle"]
    outcomes: Dict[int, Dict] = {earliest: cell_failures[0]}

    def fails(cycle: int) -> bool:
        outcome = run_trial(replace(base, crash_cycle=cycle))
        outcomes[cycle] = outcome
        return not outcome["consistent"]

    shrunk = shrink_crash_cycle(fails, earliest)
    minimal = outcomes.get(shrunk.minimal_cycle)
    if minimal is None:  # minimal == earliest and it was never re-run
        minimal = outcomes[earliest]
    say(f"shrunk {base.workload}/{base.design} failure: cycle "
        f"{earliest} -> {shrunk.minimal_cycle} "
        f"({shrunk.trials} bisection trials)")
    payload = shrunk.to_dict()
    payload["minimal_violations"] = minimal["violations"]
    return payload
