"""Crash-consistency campaigns: plan, fan out, judge, shrink, report.

One *trial* = run a workload under a design with a fault model armed,
cut (or virtually cut) at a planned crash cycle, recover, and judge the
outcome twice: the workload's own ``validate_recovered`` structural
check on the recovered data image, and the :class:`PersistOrderOracle`
on the run's trace-event history truncated at the crash horizon.  A
*campaign* is a planned set of trials per ``workload x design`` cell,
fanned out through :meth:`ParallelExecutor.map`, with every failing
cell shrunk to a minimal reproducing crash cycle and everything
summarised in a versioned :class:`CampaignReport`.

Trials are pure functions of their :class:`TrialSpec` (fixed seed, no
wall-clock inputs), which is what makes fan-out order irrelevant,
failures replayable, and shrinking sound.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import table3_config
from ..obsv.bus import get_bus
from ..persistency import design_by_name
from ..runtime.crash import build_crash_system
from ..runtime.recovery import run_recovery
from ..sim.trace import TraceRecorder
from ..snapshot import (SNAPSHOT_SCHEMA_VERSION, SnapshotError,
                        SnapshotLadder, SnapshotStore, nearest_rung,
                        restore_nearest)
from ..telemetry import get_logger
from ..workloads import BENCHMARKS
from .faults import fault_by_name
from .history import (FASE, PERSIST, WRITEBACK, events_to_history,
                      history_from_recorder, truncate_history)
from .oracle import PersistOrderOracle
from .planners import RunProfile, planner_by_name
from .shrink import shrink_crash_cycle

CAMPAIGN_SCHEMA_VERSION = 1

log = get_logger("validation.campaign")


@dataclass(frozen=True)
class TrialSpec:
    """One crash trial, fully determined (picklable, hashable)."""

    workload: str
    design: str
    fault: str = "power-cut"
    crash_cycle: int = 0
    n_threads: int = 2
    fases_per_thread: int = 10
    seed: int = 42
    log_mode: str = "undo"
    # Snapshot ladder: every K persist events, 0 = off.  A non-zero K
    # changes trial timing (parking is part of the timing universe), so
    # it participates in the cell identity alongside seed and threads.
    snapshot_every: int = 0
    # Where rungs live on disk; None keeps the ladder timing-only (no
    # capture, no warm restore) -- used when trials must replay a
    # laddered canonical run without a shared filesystem.
    snapshot_dir: Optional[str] = None

    def __post_init__(self):
        if self.workload not in BENCHMARKS:
            raise ValueError(f"unknown benchmark {self.workload!r}; "
                             f"choose from {sorted(BENCHMARKS)}")
        try:
            design_by_name(self.design)
            fault_by_name(self.fault)
        except KeyError as exc:
            # ValueError is the CLI's "user error" class (exit 2, no
            # traceback); bad names are exactly that.
            raise ValueError(str(exc)) from None
        if self.crash_cycle < 0:
            raise ValueError("crash_cycle must be >= 0")
        if self.snapshot_every < 0:
            raise ValueError("snapshot_every must be >= 0")

    def describe(self) -> str:
        return (f"{self.workload}/{self.design} {self.fault}"
                f"@{self.crash_cycle}")


def _describe_spec(spec: TrialSpec) -> str:
    return spec.describe()


def _cell_index_name(spec: TrialSpec) -> str:
    """Stable rung-index name for a cell: every spec field except the
    crash cycle (all trials of a cell restore from the same canonical
    laddered run) and the store location (moving the store must not
    orphan its own indexes)."""
    fields = asdict(spec)
    fields.pop("crash_cycle")
    fields.pop("snapshot_dir")
    fields["snapshot_schema"] = SNAPSHOT_SCHEMA_VERSION
    blob = json.dumps(fields, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:24]


# Program materialisation (workload.build) dominates trial build time at
# large fase counts, and every trial of a cell builds the identical
# program.  Memoise the built pair per process: workload and program are
# immutable after build() (the system copies the initial heap), so trials
# stay pure functions of their spec.  Keys are one per campaign cell --
# the cache stays tiny.
_PROGRAM_CACHE: Dict[Tuple[str, int, int, int], Tuple[object, object]] = {}


def _built_program(spec: TrialSpec) -> Tuple[object, object]:
    key = (spec.workload, spec.n_threads, spec.fases_per_thread, spec.seed)
    if key not in _PROGRAM_CACHE:
        workload = BENCHMARKS[spec.workload](seed=spec.seed)
        program = workload.build(spec.n_threads, spec.fases_per_thread)
        _PROGRAM_CACHE[key] = (workload, program)
    return _PROGRAM_CACHE[key]


def _build(spec: TrialSpec, capture: bool = False,
           keep_rungs: bool = False):
    """Build the traced system for one trial, fault armed.  With a
    non-zero ``snapshot_every`` a ladder is installed: capturing for the
    canonical profile run, replay-only (identical parking, no capture)
    for trials.  ``keep_rungs`` keeps each captured payload on its rung
    dict so the campaign can seed the in-process rung cache."""
    fault = fault_by_name(spec.fault)
    recorder = TraceRecorder()
    config = table3_config(n_cores=spec.n_threads,
                           **fault.config_overrides())
    workload, system = build_crash_system(
        BENCHMARKS[spec.workload], spec.design, spec.n_threads,
        spec.fases_per_thread, spec.seed, config, log_mode=spec.log_mode,
        tracer=recorder, prebuilt=_built_program(spec))
    ladder = None
    if spec.snapshot_every:
        store = (SnapshotStore(spec.snapshot_dir)
                 if spec.snapshot_dir else None)
        ladder = SnapshotLadder(
            system, spec.snapshot_every, store=store,
            index_name=_cell_index_name(spec), capture=capture,
            keep_in_memory=keep_rungs).install()
    fault.arm(system)
    return workload, system, fault, recorder, ladder


def _oracle_for(system) -> PersistOrderOracle:
    """The oracle configured for this system's design: the replay must
    mirror the hardware (same window), and the stale-read pattern only
    exists where writebacks are dropped *and* a speculation buffer is
    expected to catch the resulting staleness (PMEM-Spec).  A run whose
    buffer overflowed also skips the replay: overflow evicts the oldest
    entry early (with an all-core stall), which an unbounded replay
    cannot mirror, and the hardware's miss there is by design."""
    design = system.design
    overflows = sum(buffer.stats["overflows"]
                    for buffer in system.spec_buffers)
    return PersistOrderOracle(
        window=system.config.speculation_window_cycles,
        check_stale_reads=(design.drops_llc_writebacks
                           and design.uses_persist_path
                           and overflows == 0))


def _emit_cold_fallback(spec: TrialSpec, error: str) -> None:
    """A restore that *should* have been warm degraded to a cold start:
    surface it as a structured event, not just a log line, so campaigns
    can see silent performance loss (a damaged store costs O(run) per
    trial instead of O(segment))."""
    bus = get_bus()
    if bus.enabled:
        bus.emit("snapshot_restore", crash_cycle=spec.crash_cycle,
                 rung_cycle=None, rung=None, outcome="cold_fallback",
                 error=error)


def _execute_trial(spec: TrialSpec, workload, system, fault, recorder,
                   restored_from: Optional[int],
                   history_prefix: Optional[Tuple[int, list]] = None
                   ) -> Dict:
    """The trial body shared by the cold path (:func:`run_trial`) and
    the resident path (:class:`_ResidentCell`): run to the crash, cut,
    recover, judge.  The system arrives built (or restored), traced,
    and fault-armed.  ``history_prefix`` is the resident path's
    (event count, converted history) of the restored prefix, so only
    the trial's own tail pays conversion."""
    env = system.env
    all_done = system.launch()
    system.advance(until=spec.crash_cycle, stop_event=all_done)
    if env.now < spec.crash_cycle:
        # Cores finished early: power stays on, so the persistence
        # drain proceeds until the planned cut.
        system.advance(until=spec.crash_cycle)
    fault.at_crash(system, spec.crash_cycle)
    if fault.run_to_completion:
        # Virtual failures leave the machine on: the runtime's
        # abort/retry recovery must carry the run to a clean finish.
        system.advance(stop_event=all_done)
        system.advance()
    horizon = env.now
    commits = system.runtime.total_commits

    snapshot = system.persisted_snapshot()
    fault_notes = fault.mutate_snapshot(snapshot, spec.n_threads)
    report = run_recovery(snapshot, spec.n_threads,
                          log_mode=spec.log_mode)
    violations = [
        {"kind": "structural", "cycle": spec.crash_cycle,
         "subject": workload.name, "detail": message}
        for message in workload.validate_recovered(report.data_image())]

    if history_prefix is not None:
        count, prefix = history_prefix
        history = prefix + events_to_history(recorder.events(count))
    else:
        history = history_from_recorder(recorder)
    history = truncate_history(history, horizon)
    violations.extend(v.to_dict() for v in _oracle_for(system).check(history))

    return {
        "spec": asdict(spec),
        "crash_cycle": spec.crash_cycle,
        "horizon": horizon,
        "commits_before_crash": commits,
        "rolled_back_threads": report.rolled_back_threads,
        "history_events": len(history),
        "fault_notes": fault_notes,
        "violations": violations,
        "consistent": not violations,
        "restored_from_cycle": restored_from,
    }


def run_trial(spec: TrialSpec) -> Dict:
    """Execute one trial; returns a JSON-ready outcome dict.

    Module-level (not a closure) so :meth:`ParallelExecutor.map` can
    ship it to pool workers.
    """
    workload, system, fault, recorder, ladder = _build(spec)
    restored_from = None
    if ladder is not None and ladder.store is not None:
        try:
            rung = restore_nearest(system, ladder.store,
                                   ladder.index_name, spec.crash_cycle)
        except SnapshotError as exc:
            # A corrupt or missing store degrades to a cold start: the
            # trial's outcome must not depend on cache health.
            log.warning("snapshot restore failed (%s); starting cold", exc)
            _emit_cold_fallback(spec, str(exc))
            rung = None
        if rung is not None:
            restored_from = rung["cycle"]
    return _execute_trial(spec, workload, system, fault, recorder,
                          restored_from)


# ------------------------------------------------- resident batch path


#: Rung payloads held deserialised per resident cell (each is one full
#: machine state, a few hundred KiB for campaign-sized runs).
_RESIDENT_RUNG_CAP = 64
#: Cells held resident per worker process.  Campaign chunks are
#: cell-affine, so a worker rarely juggles more than a couple.
_RESIDENT_CELL_CAP = 4

_RESIDENT_CELLS: "OrderedDict[Tuple[str, Optional[str]], _ResidentCell]" \
    = OrderedDict()

#: Rung payloads seeded straight from the canonical profile run's
#: captures (batch mode only): (snapshot_dir, object key) -> payload.
#: A batched campaign whose trials run in the process that profiled
#: never re-reads a rung it just wrote -- no disk read, no unpickle.
_CAPTURED_PAYLOADS: "OrderedDict[Tuple[Optional[str], str], Dict]" = \
    OrderedDict()
_CAPTURED_PAYLOAD_CAP = _RESIDENT_RUNG_CAP * _RESIDENT_CELL_CAP


def _private_copy(value):
    """Copy the dict/list skeleton of a live capture payload; leaves and
    tuples are shared.

    Component ``capture_state`` implementations build fresh containers,
    but that is convention, not contract -- the skeleton copy makes a
    seeded payload safe even against a capture that returns a live dict
    or list the canonical run later mutates.  Tuples are shared because
    the only captured tuples wrapping mutables are trace event rows,
    whose ``args`` dicts are never written after recording (the same
    sharing ``TraceRecorder.restore_state`` itself relies on).
    """
    kind = type(value)
    if kind is dict:
        return {key: _private_copy(item) for key, item in value.items()}
    if kind is list:
        return [_private_copy(item) for item in value]
    return value


def _seed_captured_rungs(spec: TrialSpec, ladder) -> None:
    """Admit a canonical run's in-memory rung payloads to the seeded
    cache, keyed exactly like the on-disk store the run also filled."""
    if ladder is None or ladder.store is None:
        return
    for rung in ladder.rungs:
        payload = rung.pop("payload", None)
        if payload is None or "key" not in rung:
            continue
        _CAPTURED_PAYLOADS[(spec.snapshot_dir, rung["key"])] = \
            _pre_tuple_events(_private_copy(payload))
    while len(_CAPTURED_PAYLOADS) > _CAPTURED_PAYLOAD_CAP:
        _CAPTURED_PAYLOADS.popitem(last=False)


def _pre_tuple_events(payload: Dict) -> Dict:
    """Convert trace event rows to tuples once, at cache-admission time.

    ``Trace.restore_state`` re-tuples every event row on each restore;
    ``tuple()`` of a tuple returns the same object, so a payload that is
    restored many times (the whole point of a resident cell) pays the
    per-row copy only once.  Safe to do in place: cached payloads are
    private to the campaign machinery (``SnapshotStore.get`` unpickles a
    fresh object per call; seeded payloads are skeleton-copied at
    admission) and the canonical fingerprint encodes tuples and lists
    identically.
    """
    for state in payload.get("components", {}).values():
        if isinstance(state, dict):
            events = state.get("events")
            if events:
                state["events"] = [tuple(item) for item in events]
    return payload


class _ResidentCell:
    """One campaign cell kept resident in the worker process.

    Built once per (cell, worker): the traced system, its pristine
    cycle-0 payload, the cell's rung index, and an in-memory LRU of
    *deserialised* rung payloads.  Each trial is then served by
    ``restore_state`` into the resident system -- no rebuild, no disk
    read, no unpickle for a hot rung -- which is safe because restore
    fully resets every component (the same invariant the PR 4
    restore-equivalence suite proves) and payload containers are always
    copied on restore, never aliased.

    Trial recipe mirrors :func:`run_trial` exactly: arm a fresh fault,
    then restore (rung payload when one is at or before the crash
    cycle, the cycle-0 payload otherwise), then the shared
    :func:`_execute_trial` body.  Any snapshot damage degrades to the
    cycle-0 restore -- the same cold-start semantics as the trial-at-a-
    time path, with the same warning + ``cold_fallback`` event.
    """

    def __init__(self, spec: TrialSpec):
        self.workload, self.system, _fault, self.recorder, ladder = \
            _build(spec)
        # Pre-launch the heap is empty and no generator is live, so the
        # pristine capture is legal and exact.
        self.initial = _pre_tuple_events(self.system.capture_state())
        self.store = ladder.store if ladder is not None else None
        self.index_name = ladder.index_name if ladder is not None else None
        self._rungs: Optional[List[Dict]] = None
        self._index_error: Optional[str] = None
        self._payloads: "OrderedDict[str, dict]" = OrderedDict()
        # key -> (n_prefix_events, converted HistoryEvents): the oracle
        # history of a rung's event prefix, computed once per rung.
        # HistoryEvent is frozen, so sharing one prefix list across
        # trials is safe; concatenation is exact because
        # events_to_history is a stateless per-event map.
        self._history_prefixes: "OrderedDict[object, tuple]" = \
            OrderedDict()
        self.trials_served = 0
        self.sources: Dict[str, int] = {"resident": 0, "store": 0,
                                        "cold": 0}

    def _rung_index(self) -> List[Dict]:
        if self._rungs is None and self._index_error is None:
            try:
                self._rungs = self.store.load_index(self.index_name)
            except SnapshotError as exc:
                # Remember the failure: every trial of the batch falls
                # back cold with the same warning the cold path logs.
                self._index_error = str(exc)
        return self._rungs or []

    def _restore_payload(self, spec: TrialSpec
                         ) -> Tuple[Optional[Dict], str]:
        """(rung, source) for this trial's warm start; (None, "cold")
        when the trial must start from cycle 0."""
        if self.store is None:
            return None, "cold"
        rungs = self._rung_index()
        if self._index_error is not None:
            log.warning("snapshot restore failed (%s); starting cold",
                        self._index_error)
            _emit_cold_fallback(spec, self._index_error)
            return None, "cold"
        rung = nearest_rung(rungs, spec.crash_cycle)
        if rung is None:
            return None, "cold"
        key = rung["key"]
        payload = self._payloads.get(key)
        if payload is not None:
            self._payloads.move_to_end(key)
            return {**rung, "payload": payload}, "resident"
        # First touch: prefer the payload the profiling run seeded in
        # this very process (zero re-read) over the store round trip.
        payload = _CAPTURED_PAYLOADS.get((spec.snapshot_dir, key))
        if payload is not None:
            source = "resident"
        else:
            try:
                payload = self.store.get(key)
            except SnapshotError as exc:
                log.warning("snapshot restore failed (%s); starting cold",
                            exc)
                _emit_cold_fallback(spec, str(exc))
                return None, "cold"
            payload = _pre_tuple_events(payload)
            source = "store"
        self._payloads[key] = payload
        while len(self._payloads) > _RESIDENT_RUNG_CAP:
            self._payloads.popitem(last=False)
        return {**rung, "payload": payload}, source

    def _history_prefix(self, key) -> Tuple[int, list]:
        """(event count, converted history) of the just-restored prefix."""
        prefix = self._history_prefixes.get(key)
        count = len(self.recorder)
        if prefix is not None and prefix[0] == count:
            self._history_prefixes.move_to_end(key)
            return prefix
        prefix = (count, events_to_history(self.recorder.events()))
        self._history_prefixes[key] = prefix
        while len(self._history_prefixes) > _RESIDENT_RUNG_CAP + 1:
            self._history_prefixes.popitem(last=False)
        return prefix

    def run_trial(self, spec: TrialSpec) -> Dict:
        # Same order as _build + restore_nearest: arm, then restore.
        fault = fault_by_name(spec.fault)
        fault.arm(self.system)
        rung, source = self._restore_payload(spec)
        restored_from = None
        if rung is not None:
            self.system.restore_state(rung["payload"])
            restored_from = rung["cycle"]
        else:
            self.system.restore_state(self.initial)
        bus = get_bus()
        if bus.enabled:
            bus.emit("snapshot_restore", crash_cycle=spec.crash_cycle,
                     rung_cycle=restored_from,
                     rung=rung["rung"] if rung is not None else None,
                     source=source)
        self.sources[source] += 1
        self.trials_served += 1
        prefix = self._history_prefix(
            rung["key"] if rung is not None else None)
        return _execute_trial(spec, self.workload, self.system, fault,
                              self.recorder, restored_from,
                              history_prefix=prefix)


def _resident_key(spec: TrialSpec) -> Tuple[str, Optional[str]]:
    return _cell_index_name(spec), spec.snapshot_dir


def _resident_cell(spec: TrialSpec) -> _ResidentCell:
    key = _resident_key(spec)
    cell = _RESIDENT_CELLS.get(key)
    if cell is None:
        cell = _ResidentCell(spec)
        _RESIDENT_CELLS[key] = cell
        while len(_RESIDENT_CELLS) > _RESIDENT_CELL_CAP:
            _RESIDENT_CELLS.popitem(last=False)
    else:
        _RESIDENT_CELLS.move_to_end(key)
    return cell


def run_trial_batch(specs: Sequence[TrialSpec]) -> List[Dict]:
    """Execute a chunk of trials against resident cells, in order.

    Module-level so :meth:`ParallelExecutor.map_batched` can ship it to
    pool workers; the resident cache is per process, so a worker that
    receives several chunks of one cell builds its system exactly once.
    Any :class:`SnapshotError` the resident machinery itself cannot
    absorb evicts the cell and re-runs that trial through the plain
    cold path -- outcomes never depend on cache health.
    """
    outcomes: List[Dict] = []
    for spec in specs:
        try:
            outcomes.append(_resident_cell(spec).run_trial(spec))
        except SnapshotError as exc:
            _RESIDENT_CELLS.pop(_resident_key(spec), None)
            log.warning("resident trial failed (%s); re-running cold",
                        exc)
            outcomes.append(run_trial(spec))
    return outcomes


def _batch_key(spec: TrialSpec) -> Tuple[str, str]:
    return spec.workload, spec.design


def _describe_batch(specs: Sequence[TrialSpec]) -> str:
    first = specs[0]
    return f"{first.workload}/{first.design} x{len(specs)}"


def profile_cell(spec: TrialSpec) -> RunProfile:
    """Profile the uninterrupted run of one cell (fault still armed, so
    crash points land inside the *perturbed* run's duration).  With a
    snapshot store configured this is also the canonical run that fills
    the cell's rung ladder."""
    return _profile_cell(spec)[0]


def profile_cell_seeding(spec: TrialSpec) -> RunProfile:
    """:func:`profile_cell`, additionally seeding this process's rung
    cache with the payloads the canonical run just captured.  Batched
    campaigns profile through this so trials that land in the profiling
    process restore without ever re-reading the store."""
    profile, ladder = _profile_cell(spec, keep_rungs=True)
    _seed_captured_rungs(spec, ladder)
    return profile


def _profile_cell(spec: TrialSpec, keep_rungs: bool = False
                  ) -> Tuple[RunProfile, Optional[SnapshotLadder]]:
    _workload, system, _fault, recorder, ladder = _build(
        spec, capture=spec.snapshot_dir is not None,
        keep_rungs=keep_rungs)
    result = system.run()
    if ladder is not None:
        ladder.flush_index()
    history = history_from_recorder(recorder)
    return RunProfile(
        total_cycles=result.cycles,
        fase_intervals=[(event.cycle, event.end) for event in history
                        if event.kind == FASE],
        commit_cycles=[when for _tid, _fid, when
                       in system.runtime.commit_log],
        issue_end=max((core.finish_time or 0) for core in system.cores),
        persist_cycles=sorted({event.cycle for event in history
                               if event.kind in (PERSIST, WRITEBACK)}),
    ), ladder


def snapshot_cell(spec: TrialSpec) -> List[Dict]:
    """Run one cell's canonical laddered run, filling its on-disk rung
    ladder, and return the stored rung index entries."""
    if not (spec.snapshot_every and spec.snapshot_dir):
        raise ValueError("snapshot capture needs snapshot_every > 0 "
                         "and a snapshot_dir")
    profile_cell(spec)
    store = SnapshotStore(spec.snapshot_dir)
    return store.load_index(_cell_index_name(spec))


def verify_cell(spec: TrialSpec) -> Dict:
    """The standing determinism check for one cell's stored ladder.

    Runs the cell cold (laddered, no capture) to get the reference
    end-of-run fingerprint, then restores *every* stored rung into a
    fresh system and replays the tail; each replay must land on the
    reference fingerprint exactly.  Returns ``{"reference", "checks",
    "ok"}`` with one check dict per rung.
    """
    if not (spec.snapshot_every and spec.snapshot_dir):
        raise ValueError("snapshot verify needs snapshot_every > 0 "
                         "and a snapshot_dir")
    store = SnapshotStore(spec.snapshot_dir)
    index = store.load_index(_cell_index_name(spec))
    _workload, system, _fault, _recorder, _ladder = _build(spec)
    system.run()
    reference = system.state_fingerprint()
    checks = []
    for rung in index:
        _workload, system, _fault, _recorder, _ladder = _build(spec)
        system.restore_state(store.get(rung["key"]))
        done = system.launch()
        system.advance(stop_event=done)
        system.advance()
        checks.append({"rung": rung["rung"], "cycle": rung["cycle"],
                       "fingerprint_ok":
                           system.state_fingerprint() == reference})
    return {"reference": reference, "checks": checks,
            "ok": bool(checks) and all(c["fingerprint_ok"]
                                       for c in checks)}


# --------------------------------------------------------------- report


class CampaignReport:
    """Structured outcome of one campaign (JSON artifact + table rows)."""

    def __init__(self, params: Dict, cells: List[Dict],
                 elapsed_s: float = 0.0):
        self.schema_version = CAMPAIGN_SCHEMA_VERSION
        self.params = params
        self.cells = cells
        self.elapsed_s = elapsed_s
        # Aggregate-metrics snapshot from the run's MetricsRegistry
        # (set by run_campaign when an observed bus is active).
        self.obsv: Optional[Dict] = None
        # Versioned durable-state enumeration section (set by
        # run_campaign when crash_states is on): per-cell payloads from
        # repro.crashstates.checker.check_cell.
        self.crash_states: Optional[Dict] = None

    @property
    def total_trials(self) -> int:
        return sum(cell["trials"] for cell in self.cells)

    @property
    def total_failures(self) -> int:
        return sum(len(cell["failures"]) for cell in self.cells)

    @property
    def consistent(self) -> bool:
        return self.total_failures == 0

    @property
    def crash_states_ok(self) -> bool:
        """True when no enumerated durable state failed (vacuously true
        without a crash_states section)."""
        if self.crash_states is None:
            return True
        return all(cell["consistent"]
                   for cell in self.crash_states["cells"])

    def violation_kinds(self) -> List[str]:
        kinds = {violation["kind"] for cell in self.cells
                 for failure in cell["failures"]
                 for violation in failure["violations"]}
        return sorted(kinds)

    def rows(self) -> List[Dict]:
        """Flat per-cell summaries for the harness table renderer."""
        rows = []
        for cell in self.cells:
            shrunk = cell.get("shrink")
            rows.append({
                "workload": cell["workload"],
                "design": cell["design"],
                "trials": cell["trials"],
                "failures": len(cell["failures"]),
                "violation_kinds": ",".join(cell["violation_kinds"]) or "-",
                "minimal_cycle": (shrunk["minimal_cycle"]
                                  if shrunk else None),
            })
        return rows

    def to_dict(self) -> Dict:
        payload = {
            "schema_version": self.schema_version,
            "params": self.params,
            "elapsed_s": self.elapsed_s,
            "total_trials": self.total_trials,
            "total_failures": self.total_failures,
            "consistent": self.consistent,
            "violation_kinds": self.violation_kinds(),
            "cells": self.cells,
        }
        if self.crash_states is not None:
            payload["crash_states"] = self.crash_states
            payload["crash_states_ok"] = self.crash_states_ok
        if self.obsv is not None:
            payload["obsv"] = self.obsv
        return payload

    def fingerprint(self) -> str:
        """Content hash of the report's deterministic payload.

        Wall-clock fields (``elapsed_s``, the crashstates ``timings``)
        and the metrics snapshot are stripped, so two campaigns with
        identical parameters and ``--seed`` produce byte-identical
        fingerprints -- the reproducibility contract ``validate --seed``
        prints and tests pin.
        """
        def strip(value):
            if isinstance(value, dict):
                return {key: strip(item) for key, item in value.items()
                        if key not in ("elapsed_s", "timings", "obsv")}
            if isinstance(value, list):
                return [strip(item) for item in value]
            return value

        blob = json.dumps(strip(self.to_dict()), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    def __repr__(self) -> str:
        status = "OK" if self.consistent else (
            f"{self.total_failures} FAILURES {self.violation_kinds()}")
        return (f"CampaignReport({len(self.cells)} cells, "
                f"{self.total_trials} trials: {status})")


# ------------------------------------------------------------- campaign


def _cell_rng(seed: int, workload: str, design: str,
              round_index: int) -> random.Random:
    # String seeding is stable across processes and Python runs
    # (unlike hash()), so every cell's sample is reproducible.
    return random.Random(f"{seed}:{workload}:{design}:{round_index}")


#: Crash cycles enumerated per cell when crash_states is on: a seeded
#: sample of the cycles the trial rounds already tried.
_CRASH_STATE_MAX_CYCLES = 12
#: Rung-ladder target for the crashstates canonical run when the
#: campaign itself runs unladdered.
_CRASH_STATE_RUNGS = 16


def run_campaign(workloads: Sequence[str], designs: Sequence[str],
                 planner: str = "stratified", fault: str = "power-cut",
                 budget: int = 200, seed: int = 42,
                 n_threads: int = 2, fases_per_thread: int = 10,
                 log_mode: str = "undo", shrink: bool = True,
                 executor=None,
                 progress: Optional[Callable[[str], None]] = None,
                 snapshot_dir: Optional[str] = None,
                 snapshot_every: int = 0,
                 snapshot_rungs: int = 0,
                 batch: int = 0,
                 crash_states: bool = False,
                 image_budget: int = 64) -> CampaignReport:
    """Run a full campaign over the ``workloads x designs`` grid.

    ``budget`` is the trial budget *per cell*.  ``executor`` is a
    :class:`repro.harness.ParallelExecutor` (or anything with its
    ``map``); ``None`` runs serially -- the package never constructs a
    harness object itself, so the dependency points one way only.

    With ``snapshot_every > 0`` and a ``snapshot_dir``, the profiling
    pass doubles as the canonical laddered run per cell, and each trial
    restores the nearest rung at or before its crash cycle instead of
    simulating from cycle 0 -- O(segment) per trial instead of O(run).

    ``snapshot_rungs > 0`` sizes the ladder per cell instead: each cell
    gets ``snapshot_every = persists // snapshot_rungs`` from a quick
    unladdered probe, so persist-dense and persist-sparse cells both
    land ~``snapshot_rungs`` rungs (a grid-wide interval gives one cell
    tails too long to matter and another a capture bill too high to
    amortise).  Overrides ``snapshot_every``.

    With ``crash_states`` on, every cell additionally runs the
    durable-state enumeration oracle (:mod:`repro.crashstates`): a
    seeded sample of the cell's tried crash cycles is re-acquired by
    rung-restore, the design's formal model enumerates up to
    ``image_budget`` durable images per cycle, and recovery must
    converge from every one.  Results land in the report's versioned
    ``crash_states`` section; :attr:`CampaignReport.crash_states_ok`
    gates on them.

    ``batch > 0`` turns on cell-affine batched execution: trials ship
    as chunks of up to ``batch`` specs per (cell, chunk) task through
    :meth:`ParallelExecutor.map_batched` (or run through
    :func:`run_trial_batch` in-process when there is no executor), and
    workers serve each chunk from a resident system instead of
    rebuilding per trial; the profiling/probe passes fan out over
    cells through the executor too.  Outcomes are byte-identical to
    the trial-at-a-time path -- batching changes only where the work
    runs and what it costs.
    """
    started = time.perf_counter()
    planner_obj = planner_by_name(planner)
    bus = get_bus()
    cells: List[Tuple[str, str]] = [
        (workload, design) for workload in workloads for design in designs]
    bus.emit("campaign_start", workloads=list(workloads),
             designs=list(designs), planner=planner, fault=fault,
             budget=budget)

    def say(message: str) -> None:
        log.info("%s", message)
        if progress is not None:
            progress(message)

    cell_every: Dict[Tuple[str, str], int] = {}

    def base_spec(workload: str, design: str) -> TrialSpec:
        every = cell_every.get((workload, design), snapshot_every)
        return TrialSpec(workload=workload, design=design, fault=fault,
                         crash_cycle=0, n_threads=n_threads,
                         fases_per_thread=fases_per_thread, seed=seed,
                         log_mode=log_mode, snapshot_every=every,
                         snapshot_dir=snapshot_dir)

    def profile_cells(specs: List[TrialSpec]) -> List[RunProfile]:
        """Profiles are pure functions of their spec, so in batch mode
        the per-cell canonical runs fan out over the executor (rungs
        land in the shared on-disk store either way).  Batch-mode
        profiling seeds the profiling process's rung cache so trials
        that stay in that process never re-read what it just wrote; a
        pool worker that gets the cell without the seed falls back to
        the store read, nothing worse."""
        profiler = profile_cell_seeding if batch else profile_cell
        if batch and executor is not None and len(specs) > 1:
            return executor.map(
                profiler, specs,
                describe=lambda s: f"profile {s.workload}/{s.design}")
        return [profiler(spec) for spec in specs]

    if snapshot_rungs:
        say(f"sizing ladders: ~{snapshot_rungs} rungs per cell")
        probes = profile_cells([
            replace(base_spec(workload, design), snapshot_every=0,
                    snapshot_dir=None)
            for workload, design in cells])
        for (workload, design), probe in zip(cells, probes):
            cell_every[(workload, design)] = max(
                1, len(probe.persist_cycles) // snapshot_rungs)

    def fan_out(specs: List[TrialSpec]) -> List[Dict]:
        if not specs:
            return []
        if batch:
            if executor is not None:
                return executor.map_batched(
                    run_trial_batch, specs, key=_batch_key,
                    chunk_size=batch, describe=_describe_batch)
            return run_trial_batch(specs)
        if executor is not None:
            return executor.map(run_trial, specs, describe=_describe_spec)
        return [run_trial(spec) for spec in specs]

    say(f"profiling {len(cells)} cells "
        f"({len(workloads)} workloads x {len(designs)} designs)")
    profiles: Dict[Tuple[str, str], RunProfile] = {}
    for (workload, design), profile in zip(
            cells, profile_cells([base_spec(workload, design)
                                  for workload, design in cells])):
        profiles[(workload, design)] = profile
        bus.emit("cell_profile", workload=workload, design=design,
                 total_cycles=profile.total_cycles)

    # The adaptive planner wants a feedback round; the others spend
    # their whole budget at once.
    rounds = 2 if planner == "adaptive" else 1
    tried: Dict[Tuple[str, str], set] = {cell: set() for cell in cells}
    results: Dict[Tuple[str, str], List[Dict]] = {cell: [] for cell in cells}
    failures: Dict[Tuple[str, str], List[Dict]] = {cell: [] for cell in cells}

    for round_index in range(rounds):
        round_budget = budget // rounds
        if round_index == rounds - 1:
            round_budget = budget - round_budget * (rounds - 1)
        specs: List[TrialSpec] = []
        for workload, design in cells:
            cell = (workload, design)
            rng = _cell_rng(seed, workload, design, round_index)
            cycles = planner_obj.plan(
                profiles[cell], round_budget, rng,
                failures=[f["crash_cycle"] for f in failures[cell]])
            fresh = [c for c in cycles if c not in tried[cell]]
            tried[cell].update(fresh)
            specs.extend(replace(base_spec(workload, design),
                                 crash_cycle=cycle) for cycle in fresh)
        say(f"round {round_index + 1}/{rounds}: {len(specs)} trials")
        bus.emit("round_start", round=round_index + 1, rounds=rounds,
                 n_trials=len(specs))
        for spec, outcome in zip(specs, fan_out(specs)):
            cell = (spec.workload, spec.design)
            results[cell].append(outcome)
            bus.emit("trial_finish", workload=spec.workload,
                     design=spec.design, crash_cycle=spec.crash_cycle,
                     consistent=outcome["consistent"],
                     violations=len(outcome["violations"]),
                     restored_from_cycle=outcome["restored_from_cycle"])
            if not outcome["consistent"]:
                failures[cell].append(outcome)
                for violation in outcome["violations"]:
                    bus.emit("oracle_violation", workload=spec.workload,
                             design=spec.design,
                             crash_cycle=spec.crash_cycle,
                             violation_kind=violation["kind"],
                             cycle=violation.get("cycle",
                                                 spec.crash_cycle))

    cell_reports: List[Dict] = []
    for workload, design in cells:
        cell = (workload, design)
        cell_failures = sorted(failures[cell],
                               key=lambda f: f["crash_cycle"])
        shrink_payload = None
        if shrink and cell_failures:
            shrink_payload = _shrink_cell(
                base_spec(workload, design), cell_failures, say)
            bus.emit("shrink_finish", workload=workload, design=design,
                     earliest_cycle=cell_failures[0]["crash_cycle"],
                     minimal_cycle=shrink_payload["minimal_cycle"],
                     trials=shrink_payload.get("trials", 0))
        cell_reports.append({
            "workload": workload,
            "design": design,
            "fault": fault,
            "total_cycles": profiles[cell].total_cycles,
            "trials": len(results[cell]),
            "restored_trials": sum(
                1 for outcome in results[cell]
                if outcome.get("restored_from_cycle") is not None),
            "failures": cell_failures,
            "violation_kinds": sorted({
                violation["kind"] for failure in cell_failures
                for violation in failure["violations"]}),
            "shrink": shrink_payload,
        })

    crash_states_payload = None
    if crash_states:
        # Imported here, not at module top: crashstates builds on this
        # module, so the dependency must stay one-way at import time.
        from ..crashstates.checker import (CRASH_STATES_SCHEMA_VERSION,
                                           check_cell)
        cs_cells: List[Dict] = []
        for workload, design in cells:
            cell = (workload, design)
            cycles = sorted(tried[cell])
            rng = random.Random(
                f"{seed}:{workload}:{design}:crashstates")
            if len(cycles) > _CRASH_STATE_MAX_CYCLES:
                cycles = sorted(rng.sample(cycles,
                                           _CRASH_STATE_MAX_CYCLES))
            every = cell_every.get(cell, snapshot_every) or max(
                1, len(profiles[cell].persist_cycles)
                // _CRASH_STATE_RUNGS)
            spec = replace(base_spec(workload, design),
                           snapshot_every=every, snapshot_dir=None)
            say(f"crash-states {workload}/{design}: "
                f"{len(cycles)} cycles, budget {image_budget}")
            payload = check_cell(spec, cycles, image_budget=image_budget,
                                 shrink=shrink)
            cs_cells.append(payload)
            say(f"crash-states {workload}/{design}: "
                f"{payload.get('images_checked', 0)} images, "
                f"{payload.get('images_failed', 0)} failed")
        crash_states_payload = {
            "schema_version": CRASH_STATES_SCHEMA_VERSION,
            "image_budget": image_budget,
            "max_cycles_per_cell": _CRASH_STATE_MAX_CYCLES,
            "cells": cs_cells,
        }

    report = CampaignReport(
        params={
            "workloads": list(workloads), "designs": list(designs),
            "planner": planner, "fault": fault, "budget": budget,
            "seed": seed, "n_threads": n_threads,
            "fases_per_thread": fases_per_thread, "log_mode": log_mode,
            "shrink": shrink, "snapshot_every": snapshot_every,
            "snapshot_rungs": snapshot_rungs, "batch": batch,
            "crash_states": crash_states, "image_budget": image_budget,
            "cell_snapshot_every": {
                f"{workload}/{design}": every
                for (workload, design), every in sorted(cell_every.items())},
            "snapshot_dir": snapshot_dir,
        },
        cells=cell_reports,
        elapsed_s=time.perf_counter() - started,
    )
    report.crash_states = crash_states_payload
    bus.emit("campaign_finish", cells=len(cells),
             trials=report.total_trials, failures=report.total_failures,
             consistent=report.consistent, elapsed_s=report.elapsed_s)
    if bus.registry is not None:
        report.obsv = bus.registry.snapshot()
    say(f"campaign done: {report!r}")
    return report


def _shrink_cell(base: TrialSpec, cell_failures: List[Dict], say) -> Dict:
    """Shrink a cell's earliest failing cycle to a minimal reproducer."""
    earliest = cell_failures[0]["crash_cycle"]
    outcomes: Dict[int, Dict] = {earliest: cell_failures[0]}

    def fails(cycle: int) -> bool:
        outcome = run_trial(replace(base, crash_cycle=cycle))
        outcomes[cycle] = outcome
        return not outcome["consistent"]

    shrunk = shrink_crash_cycle(fails, earliest)
    minimal = outcomes.get(shrunk.minimal_cycle)
    if minimal is None:  # minimal == earliest and it was never re-run
        minimal = outcomes[earliest]
    say(f"shrunk {base.workload}/{base.design} failure: cycle "
        f"{earliest} -> {shrunk.minimal_cycle} "
        f"({shrunk.trials} bisection trials)")
    payload = shrunk.to_dict()
    payload["minimal_violations"] = minimal["violations"]
    return payload
