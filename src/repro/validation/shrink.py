"""Shrinking: reduce a failing crash cycle to a minimal reproducer.

With the seed fixed, a trial is a pure function of its crash cycle, so
the cycle domain can be searched directly.  ``shrink_crash_cycle`` runs
a binary search for the *failure frontier*: the earliest cycle at which
the failure appears, under the (usually true, always checked) heuristic
that the trial keeps failing from the first failing cycle onward -- a
torn log entry, for instance, fails from the moment the entry goes live
until its FASE commits.  Failure is not guaranteed monotonic in the
cycle domain, so the result is the smallest failing cycle the bisection
*witnessed*, never worse than the input; every probe is recorded so a
report can show its work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    original_cycle: int
    minimal_cycle: int
    trials: int
    probes: List[Tuple[int, bool]] = field(default_factory=list)

    @property
    def reduced(self) -> bool:
        return self.minimal_cycle < self.original_cycle

    def to_dict(self) -> dict:
        return {
            "original_cycle": self.original_cycle,
            "minimal_cycle": self.minimal_cycle,
            "trials": self.trials,
            "reduced": self.reduced,
            "probes": [list(probe) for probe in self.probes],
        }


def shrink_crash_cycle(fails: Callable[[int], bool], failing_cycle: int,
                       lowest: int = 1,
                       max_trials: int = 64) -> ShrinkResult:
    """Bisect ``[lowest, failing_cycle]`` for the earliest failing cycle.

    ``fails(cycle)`` must be deterministic (fixed seed) and must be True
    at ``failing_cycle``; that cycle is trusted, not re-run.  The search
    maintains "``high`` fails" as its invariant and never returns a
    cycle it did not observe failing.
    """
    if failing_cycle < lowest:
        raise ValueError("failing cycle below the search floor")
    probes: List[Tuple[int, bool]] = []
    low, high = lowest, failing_cycle
    while low < high and len(probes) < max_trials:
        mid = (low + high) // 2
        failed = bool(fails(mid))
        probes.append((mid, failed))
        if failed:
            high = mid
        else:
            low = mid + 1
    return ShrinkResult(original_cycle=failing_cycle, minimal_cycle=high,
                        trials=len(probes), probes=probes)
