"""Canonical persist-event histories for the validation oracle.

The cycle-domain tracer records everything the persist-order oracle
needs -- PMC acceptance instants, speculation-buffer automaton
transitions, per-core FASE lifecycle spans -- but as renderer-oriented
Chrome trace tuples.  This module normalises that stream into typed
:class:`HistoryEvent` records the oracle replays, and provides small
constructors for hand-crafting known-bad histories in tests (the
fixtures the oracle's own regression suite is built from).

Event kinds mirror the PMC's three input classes (§5.1: ``WriteBack``,
``Read``, ``Persist`` messages) plus two observability-only kinds:
``detection`` (the speculation buffer reached ``Misspeculation`` for a
block, i.e. the hardware caught the violation) and ``fase`` (one
attempt of a FASE on a core, with its outcome).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from ..sim.trace import PHASE_COMPLETE

WRITEBACK = "writeback"
READ = "read"
PERSIST = "persist"
DETECTION = "detection"
FASE = "fase"
FLUSH = "flush"
FENCE = "fence"

KINDS = (WRITEBACK, READ, PERSIST, DETECTION, FASE, FLUSH, FENCE)


class HistoryEvent(NamedTuple):
    """One normalised event of a persist history.

    ``cycle`` is the event's time in core cycles: PMC *acceptance* time
    for writebacks/persists, arrival time for reads, detection time for
    detections, and the attempt's start for FASE spans (whose ``end``
    carries the completion cycle).

    A ``NamedTuple`` rather than a frozen dataclass: campaigns build one
    instance per traced PMC event, and tuple construction is what keeps
    :func:`events_to_history` off the profile.  ``kind`` is trusted to
    be one of :data:`KINDS` -- build events through the constructors
    below rather than by hand.
    """

    kind: str
    cycle: int
    block: Optional[int] = None
    core: Optional[int] = None
    spec_id: int = 0
    fase: Optional[int] = None
    outcome: str = ""
    attempt: int = 1
    end: Optional[int] = None

    def to_dict(self) -> Dict:
        return dict(self._asdict())


# ----------------------------------------------------- test constructors


def writeback(block: int, cycle: int) -> HistoryEvent:
    """An LLC writeback accepted by the PMC (starts monitoring)."""
    return HistoryEvent(WRITEBACK, cycle, block=block)


def read(block: int, cycle: int) -> HistoryEvent:
    """A regular-path PM read arriving at the PMC."""
    return HistoryEvent(READ, cycle, block=block)


def persist(block: int, cycle: int, core: int = 0,
            spec_id: int = 0) -> HistoryEvent:
    """A persist-path store accepted by the PMC (spec-ID optional)."""
    return HistoryEvent(PERSIST, cycle, block=block, core=core,
                        spec_id=spec_id)


def detection(block: int, cycle: int, spec_id: int = 0) -> HistoryEvent:
    """The speculation buffer flagged the block at ``cycle`` -- the
    hardware detected (and the runtime will recover) the violation."""
    return HistoryEvent(DETECTION, cycle, block=block, spec_id=spec_id)


def flush(block: int, cycle: int, core: int = 0) -> HistoryEvent:
    """An explicit cache-line flush (clwb-class) accepted at ``cycle``.

    Ordering-only: the durable-state models use flush instants to
    attribute a device-level writeback to the core (and hence the open
    epoch) that flushed it.  The persist-order oracle ignores them.
    """
    return HistoryEvent(FLUSH, cycle, block=block, core=core)


def fence(core: int, cycle: int) -> HistoryEvent:
    """A durability fence (sfence/dfence/spec-barrier) retired at
    ``cycle`` on ``core``.  Ordering-only, like :func:`flush`."""
    return HistoryEvent(FENCE, cycle, core=core)


def fase_span(core: int, fase: int, start: int, end: int,
              outcome: str = "commit", attempt: int = 1) -> HistoryEvent:
    """One attempt of FASE ``fase`` on ``core`` over ``[start, end]``."""
    if end < start:
        raise ValueError("FASE span ends before it starts")
    return HistoryEvent(FASE, start, core=core, fase=fase,
                        outcome=outcome, attempt=attempt, end=end)


# ----------------------------------------------------------- extraction


def history_from_recorder(recorder) -> List[HistoryEvent]:
    """Normalise a :class:`repro.sim.TraceRecorder`'s buffered events.

    Only the event classes the oracle understands are kept; everything
    else (counters, persist-path latency spans, non-misspeculation
    automaton transitions) is presentation-only and skipped.  The
    returned list preserves recording order, which for per-core events
    is that core's issue order -- the stream order the intra-thread
    check relies on.
    """
    return events_to_history(recorder.events())


def events_to_history(events) -> List[HistoryEvent]:
    """:func:`history_from_recorder` over raw recorder tuples.

    The mapping is stateless per event, so a history may be assembled
    piecewise: ``events_to_history(a) + events_to_history(b)`` equals
    ``events_to_history(a + b)``.  The resident campaign path relies on
    this to reuse one converted prefix across every trial restored from
    the same rung.
    """
    history: List[HistoryEvent] = []
    append = history.append
    # HistoryEvent is constructed directly (not via the constructors
    # above): this loop runs once per traced event per trial, and the
    # extra call frame per event was measurable at campaign scale.
    for phase, track, name, cat, ts, dur, args in events:
        args = args or {}
        if cat == "pmc":
            if name == "writeback-accept":
                append(HistoryEvent(WRITEBACK, ts, args["block"]))
            elif name == "pm-read":
                append(HistoryEvent(READ, ts, args["block"]))
            elif name == "persist-accept":
                append(HistoryEvent(PERSIST, ts, args["block"],
                                    args.get("core", 0),
                                    args.get("spec_id", 0)))
        elif cat == "order":
            if name == "flush":
                append(HistoryEvent(FLUSH, ts, args["block"],
                                    args.get("core", 0)))
            elif name == "fence":
                append(HistoryEvent(FENCE, ts, core=args.get("core", 0)))
        elif cat == "spec-buffer" and name.endswith("->Misspeculation"):
            append(HistoryEvent(DETECTION, ts, args["block"],
                                spec_id=args.get("spec_id", 0)))
        elif (cat == "fase" and phase == PHASE_COMPLETE
                and track.startswith("core")):
            append(HistoryEvent(FASE, ts, core=int(track[len("core"):]),
                                fase=args.get("fase", -1),
                                outcome=args.get("outcome", ""),
                                attempt=args.get("attempt", 1),
                                end=ts + dur))
    return history


def truncate_history(history: List[HistoryEvent],
                     horizon: int) -> List[HistoryEvent]:
    """Drop events that had not *happened* by cycle ``horizon``.

    A power cut at ``horizon`` makes later-accepted writebacks/persists
    never durable (their device updates were still scheduled), so the
    oracle must not reason about them.  FASE spans are kept whenever
    they were *recorded* (attempt completion is what the tracer logs, so
    a span in the buffer always finished before the crash; its nominal
    ``end`` may exceed the crash cycle by the tracer's 1-cycle minimum
    span width).
    """
    return [event for event in history
            if event.kind == FASE or event.cycle <= horizon]


def durable_prefix_at(history: List[HistoryEvent],
                      cycle: int) -> List[HistoryEvent]:
    """The point-event prefix that had *happened* by ``cycle``, inclusive.

    A fence retiring exactly at the crash cycle counts as retired, and a
    persist accepted exactly at the crash cycle counts as durable (ADR:
    acceptance is the durability point, §8.1) -- hence ``<=``, matching
    :func:`truncate_history` and the speculation window's own inclusive
    boundary (``now - inserted >= window`` expires the entry).  FASE
    spans are interval events, not point events, and are excluded; use
    :func:`truncate_history` when spans should ride along.
    """
    return [event for event in history
            if event.kind != FASE and event.cycle <= cycle]


def history_from_dicts(rows) -> List[HistoryEvent]:
    """Rebuild a typed history from ``HistoryEvent.to_dict()`` rows.

    The loader for JSON litmus fixtures (``tests/crashstates/litmus/``):
    each row is a mapping with at least ``kind`` and ``cycle``; the
    remaining fields default exactly as on :class:`HistoryEvent`.
    """
    events: List[HistoryEvent] = []
    for row in rows:
        kind = row["kind"]
        if kind not in KINDS:
            raise ValueError(f"unknown history event kind: {kind!r}")
        events.append(HistoryEvent(
            kind, row["cycle"], block=row.get("block"),
            core=row.get("core"), spec_id=row.get("spec_id", 0),
            fase=row.get("fase"), outcome=row.get("outcome", ""),
            attempt=row.get("attempt", 1), end=row.get("end")))
    return events
