"""Canonical persist-event histories for the validation oracle.

The cycle-domain tracer records everything the persist-order oracle
needs -- PMC acceptance instants, speculation-buffer automaton
transitions, per-core FASE lifecycle spans -- but as renderer-oriented
Chrome trace tuples.  This module normalises that stream into typed
:class:`HistoryEvent` records the oracle replays, and provides small
constructors for hand-crafting known-bad histories in tests (the
fixtures the oracle's own regression suite is built from).

Event kinds mirror the PMC's three input classes (§5.1: ``WriteBack``,
``Read``, ``Persist`` messages) plus two observability-only kinds:
``detection`` (the speculation buffer reached ``Misspeculation`` for a
block, i.e. the hardware caught the violation) and ``fase`` (one
attempt of a FASE on a core, with its outcome).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from ..sim.trace import PHASE_COMPLETE

WRITEBACK = "writeback"
READ = "read"
PERSIST = "persist"
DETECTION = "detection"
FASE = "fase"

KINDS = (WRITEBACK, READ, PERSIST, DETECTION, FASE)


@dataclass(frozen=True)
class HistoryEvent:
    """One normalised event of a persist history.

    ``cycle`` is the event's time in core cycles: PMC *acceptance* time
    for writebacks/persists, arrival time for reads, detection time for
    detections, and the attempt's start for FASE spans (whose ``end``
    carries the completion cycle).
    """

    kind: str
    cycle: int
    block: Optional[int] = None
    core: Optional[int] = None
    spec_id: int = 0
    fase: Optional[int] = None
    outcome: str = ""
    attempt: int = 1
    end: Optional[int] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown history event kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("event cycle must be >= 0")

    def to_dict(self) -> Dict:
        return asdict(self)


# ----------------------------------------------------- test constructors


def writeback(block: int, cycle: int) -> HistoryEvent:
    """An LLC writeback accepted by the PMC (starts monitoring)."""
    return HistoryEvent(WRITEBACK, cycle, block=block)


def read(block: int, cycle: int) -> HistoryEvent:
    """A regular-path PM read arriving at the PMC."""
    return HistoryEvent(READ, cycle, block=block)


def persist(block: int, cycle: int, core: int = 0,
            spec_id: int = 0) -> HistoryEvent:
    """A persist-path store accepted by the PMC (spec-ID optional)."""
    return HistoryEvent(PERSIST, cycle, block=block, core=core,
                        spec_id=spec_id)


def detection(block: int, cycle: int, spec_id: int = 0) -> HistoryEvent:
    """The speculation buffer flagged the block at ``cycle`` -- the
    hardware detected (and the runtime will recover) the violation."""
    return HistoryEvent(DETECTION, cycle, block=block, spec_id=spec_id)


def fase_span(core: int, fase: int, start: int, end: int,
              outcome: str = "commit", attempt: int = 1) -> HistoryEvent:
    """One attempt of FASE ``fase`` on ``core`` over ``[start, end]``."""
    if end < start:
        raise ValueError("FASE span ends before it starts")
    return HistoryEvent(FASE, start, core=core, fase=fase,
                        outcome=outcome, attempt=attempt, end=end)


# ----------------------------------------------------------- extraction


def history_from_recorder(recorder) -> List[HistoryEvent]:
    """Normalise a :class:`repro.sim.TraceRecorder`'s buffered events.

    Only the event classes the oracle understands are kept; everything
    else (counters, persist-path latency spans, non-misspeculation
    automaton transitions) is presentation-only and skipped.  The
    returned list preserves recording order, which for per-core events
    is that core's issue order -- the stream order the intra-thread
    check relies on.
    """
    history: List[HistoryEvent] = []
    for phase, track, name, cat, ts, dur, args in recorder.events():
        args = args or {}
        if cat == "pmc":
            if name == "writeback-accept":
                history.append(writeback(args["block"], ts))
            elif name == "pm-read":
                history.append(read(args["block"], ts))
            elif name == "persist-accept":
                history.append(persist(args["block"], ts,
                                       core=args.get("core", 0),
                                       spec_id=args.get("spec_id", 0)))
        elif cat == "spec-buffer" and name.endswith("->Misspeculation"):
            history.append(detection(args["block"], ts,
                                     spec_id=args.get("spec_id", 0)))
        elif (cat == "fase" and phase == PHASE_COMPLETE
                and track.startswith("core")):
            history.append(fase_span(int(track[len("core"):]),
                                     args.get("fase", -1), ts, ts + dur,
                                     outcome=args.get("outcome", ""),
                                     attempt=args.get("attempt", 1)))
    return history


def truncate_history(history: List[HistoryEvent],
                     horizon: int) -> List[HistoryEvent]:
    """Drop events that had not *happened* by cycle ``horizon``.

    A power cut at ``horizon`` makes later-accepted writebacks/persists
    never durable (their device updates were still scheduled), so the
    oracle must not reason about them.  FASE spans are kept whenever
    they were *recorded* (attempt completion is what the tracer logs, so
    a span in the buffer always finished before the crash; its nominal
    ``end`` may exceed the crash cycle by the tracer's 1-cycle minimum
    span width).
    """
    return [event for event in history
            if event.kind == FASE or event.cycle <= horizon]
