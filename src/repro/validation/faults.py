"""Fault models for crash-consistency campaigns.

A fault model decides *what goes wrong* at a trial's crash cycle; the
planner decides *when*.  Every model funnels through hooks the simulator
already exposes -- config overrides, :meth:`PersistPath.set_core_extra`,
:meth:`InterruptController.raise_misspeculation`, and the persisted
device snapshot -- so the campaign never reaches into component
internals.

Models:

``power-cut``
    The plain §2.1 failure: stop the simulation at the crash cycle and
    keep exactly what ADR preserved.

``virtual-misspec``
    §4.4's virtual power failure: a synthetic misspeculation interrupt
    is raised at the crash cycle (through the OS path, as hardware
    would), the run then continues to completion, and the campaign
    checks the runtime's abort/retry machinery converged to a fully
    consistent image.

``persist-delay``
    Perturb one core's persist-path latency (the §8.4 asymmetric-ring
    hook) and power-cut as usual: recovery must not depend on the
    lucky timing of the unperturbed ring.

``window-expiry``
    Pin the speculation window far below the §8.1 rule so speculation-
    buffer entries expire constantly, exercising the lazy-expiry
    machinery; crash consistency must not lean on entries staying live.

``torn-log``
    The deliberate ordering bug (a *negative control*, excluded from
    :data:`DEFAULT_FAULTS`): drop the newest live undo-log entry from
    the persisted image, simulating a FASE data store that persisted
    before its log entry.  Recovery then cannot roll that store back,
    so any crash cycle with an open FASE must fail validation -- this is
    the fixture the shrinking and reporting machinery is proven on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..core.events import MisspeculationEvent
from ..runtime.undo_log import UndoLogLayout, unpack_stamp


class FaultModel:
    """Base fault: hooks are no-ops; subclasses override what they need."""

    name = "power-cut"
    #: When True the run continues past the crash cycle to completion
    #: (virtual failures recover in place; real ones stop the machine).
    run_to_completion = False

    def config_overrides(self) -> Dict:
        """Extra ``table3_config`` overrides for systems under this fault."""
        return {}

    def arm(self, system) -> None:
        """Called after build, before the run starts."""

    def at_crash(self, system, crash_cycle: int) -> None:
        """Called when the simulation reaches the crash cycle."""

    def mutate_snapshot(self, snapshot: Dict[int, int],
                        n_threads: int) -> List[str]:
        """Tamper with the persisted image post-crash; returns notes
        describing what was done (empty for honest faults)."""
        return []


class PowerCutFault(FaultModel):
    name = "power-cut"


class VirtualMisspecFault(FaultModel):
    """Raise a synthetic misspeculation interrupt at the crash cycle.

    The event targets the lowest data block of the run's heap -- which
    block is irrelevant to the runtime (§6.2's recovery is conservative:
    every in-FASE thread is flagged regardless of address), but it must
    be a *mapped* address so the OS reverse map relays the interrupt.
    """

    name = "virtual-misspec"
    run_to_completion = True

    def __init__(self, kind: str = "store"):
        if kind not in ("load", "store"):
            raise ValueError(f"unknown misspeculation kind {kind!r}")
        self.kind = kind

    def at_crash(self, system, crash_cycle: int) -> None:
        block = min(system.program.initial_heap) >> 6
        event = MisspeculationEvent(self.kind, block, core_id=0,
                                    time=system.env.now)
        system.interrupts.raise_misspeculation(event, system.env.now)


class PersistDelayFault(FaultModel):
    """Add fixed extra persist-path latency to one core, then power-cut."""

    name = "persist-delay"

    def __init__(self, core_id: int = 0, extra_cycles: int = 200):
        self.core_id = core_id
        self.extra_cycles = extra_cycles

    def arm(self, system) -> None:
        core = min(self.core_id, system.config.n_cores - 1)
        system.persist_path.set_core_extra(core, self.extra_cycles)


class WindowExpiryFault(FaultModel):
    """Shrink the speculation window to barely one ring traversal.

    §8.1's rule gives ``n_cores x 20 ns``; 25 ns keeps the window legal
    (> one idle traversal) while making entries expire almost
    immediately, so the campaign exercises the expiry paths constantly.
    """

    name = "window-expiry"

    def __init__(self, window_ns: float = 25.0):
        self.window_ns = window_ns

    def config_overrides(self) -> Dict:
        return {"spec_window_ns": self.window_ns}


class TornLogFault(FaultModel):
    """Deliberate bug: un-persist the newest live undo-log entry.

    The undo protocol's first ordering requirement is *entry durable
    before its data store persists*; deleting a live entry's stamped
    word from the snapshot is exactly what a broken ordering point would
    leave behind.  Recovery skips the (now invalid) entry, the data
    mutation survives un-rolled-back, and the workload's structural
    check fails -- at every crash cycle where some thread held an open
    log scope, which is what makes the failure shrinkable.
    """

    name = "torn-log"

    def mutate_snapshot(self, snapshot: Dict[int, int],
                        n_threads: int) -> List[str]:
        notes = []
        for thread_id in range(n_threads):
            layout = UndoLogLayout(thread_id)
            epoch = snapshot.get(layout.epoch_addr, 0)
            live = 0
            for index in range(layout.max_entries):
                stamped = snapshot.get(layout.entry_target_addr(index))
                if stamped is None or unpack_stamp(stamped)[0] != epoch:
                    break
                live += 1
            if live:
                address = layout.entry_target_addr(live - 1)
                snapshot.pop(address, None)
                notes.append(
                    f"dropped undo-log entry {live - 1} of thread "
                    f"{thread_id} (stamp word 0x{address:x})")
                break  # one torn entry is enough to break recovery
        return notes


_FAULT_TYPES: Dict[str, Type[FaultModel]] = {
    fault.name: fault
    for fault in (PowerCutFault, VirtualMisspecFault, PersistDelayFault,
                  WindowExpiryFault, TornLogFault)
}

#: The honest fault models a full campaign cycles through by default
#: (``torn-log`` is a negative control and must be asked for by name).
DEFAULT_FAULTS = ("power-cut", "virtual-misspec", "persist-delay",
                  "window-expiry")

FAULT_NAMES = tuple(sorted(_FAULT_TYPES))


def fault_by_name(name: str, **kwargs) -> FaultModel:
    """Factory keyed on the stable fault names (campaign specs carry the
    name, not the object, so trials stay cheap to pickle)."""
    if name not in _FAULT_TYPES:
        raise KeyError(f"unknown fault model {name!r}; "
                       f"choose from {sorted(_FAULT_TYPES)}")
    return _FAULT_TYPES[name](**kwargs)
