"""Campaign planners: which crash cycles a campaign tries.

*Rethinking PM Crash Consistency in the CXL Era* argues crash-state
enumeration must be systematic, not ad hoc; these planners make the
choice of crash points an explicit, seeded policy over a
:class:`RunProfile` of the uninterrupted run:

``exhaustive``
    Every cycle in ``[1, total)`` -- or, over budget, an evenly spaced
    comb across the whole run (the densest uniform coverage the budget
    affords).

``stratified``
    Equal-share sampling from the three phases where crashes have
    structurally different consequences: *inside a FASE* (undo/redo
    rollback must fire), *at a commit point* (the epoch-bump ordering
    edge), and *during the drain* (cores done, persistence in flight).
    Within each phase the candidates are the profiled run's persist
    acceptance boundaries -- the cycles where the persisted image
    actually changes -- so no budget goes to duplicate crash states.
    Empty strata donate their share to the rest.

``adaptive``
    Stratified exploration with half the budget, then the other half
    clustered around known-failing cycles (from a previous round or the
    current one) -- the planner equivalent of "shrink the neighborhood".

All planners draw from a caller-provided :class:`random.Random`, so a
campaign seed reproduces the exact trial set.
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Half-width (cycles) of the "at-commit" stratum around each commit.
COMMIT_HALO = 20

#: Half-width (cycles) of the neighborhood the adaptive planner samples
#: around a known-failing cycle.
FAILURE_HALO = 50


@dataclass
class RunProfile:
    """Phase structure of one uninterrupted run (fixed seed).

    ``fase_intervals`` are ``(start, end)`` core-cycle spans of FASE
    attempts (any core), ``commit_cycles`` the commit times from the
    runtime's commit log, and ``issue_end`` the cycle the last core
    finished issuing -- everything after it up to ``total_cycles`` is
    the persistence drain.  ``persist_cycles`` are the PMC acceptance
    cycles of persists/writebacks: the persisted image only changes at
    those boundaries, so they are exactly the distinct crash states of
    the run and planners sample them first.
    """

    total_cycles: int
    fase_intervals: List[Tuple[int, int]] = field(default_factory=list)
    commit_cycles: List[int] = field(default_factory=list)
    issue_end: int = 0
    persist_cycles: List[int] = field(default_factory=list)

    def phase_of(self, cycle: int) -> str:
        """Classify a cycle (at-commit wins over inside-fase: the halo
        around the epoch bump is the sharper invariant edge)."""
        for commit in self.commit_cycles:
            if abs(cycle - commit) <= COMMIT_HALO:
                return "at-commit"
        for start, end in self.fase_intervals:
            if start <= cycle < end:
                return "inside-fase"
        if cycle >= self.issue_end:
            return "during-drain"
        return "between-fases"

    def stratum_cycles(self) -> Dict[str, List[int]]:
        """Candidate crash cycles of each stratum, deduplicated.

        When the profile knows the persist acceptance boundaries, each
        stratum is exactly its classified boundaries: crashing anywhere
        between two acceptances yields the same persisted image, so
        boundary cycles enumerate the *distinct* crash states and the
        budget is never spent on duplicates.  A stratum with no
        boundaries (and any profile without them) falls back to uniform
        cycle ranges.
        """
        strata: Dict[str, List[int]] = {
            "inside-fase": [], "at-commit": [], "during-drain": []}
        last = max(1, self.total_cycles - 1)
        # Same classification as :meth:`phase_of`, but over sorted
        # commits / merged intervals with bisect: profiles carry
        # thousands of persist boundaries and hundreds of commits, and
        # the linear scan per boundary made planning a campaign-level
        # cost (O(boundaries x commits)).
        commits = sorted(self.commit_cycles)
        merged: List[List[int]] = []
        for start, end in sorted(self.fase_intervals):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        starts = [span[0] for span in merged]
        for boundary in self.persist_cycles:
            if not 1 <= boundary <= last:
                continue
            hit = bisect_left(commits, boundary)
            if ((hit < len(commits)
                    and commits[hit] - boundary <= COMMIT_HALO)
                    or (hit and boundary - commits[hit - 1] <= COMMIT_HALO)):
                strata["at-commit"].append(boundary)
                continue
            span = bisect_right(starts, boundary) - 1
            if span >= 0 and boundary < merged[span][1]:
                strata["inside-fase"].append(boundary)
            elif boundary >= self.issue_end:
                strata["during-drain"].append(boundary)
        if not strata["at-commit"]:
            for commit in self.commit_cycles:
                strata["at-commit"].extend(
                    cycle for cycle in range(commit - COMMIT_HALO,
                                             commit + COMMIT_HALO + 1)
                    if 1 <= cycle <= last)
        committed = set(strata["at-commit"])
        if not strata["inside-fase"]:
            for start, end in self.fase_intervals:
                strata["inside-fase"].extend(
                    cycle for cycle in range(max(1, start),
                                             min(end, last + 1))
                    if cycle not in committed)
        if not strata["during-drain"]:
            strata["during-drain"] = [
                cycle for cycle in range(max(1, self.issue_end), last + 1)
                if cycle not in committed]
        return {name: sorted(set(cycles))
                for name, cycles in strata.items()}


def _unique_sorted(cycles: Sequence[int], last: int) -> List[int]:
    return sorted({cycle for cycle in cycles if 1 <= cycle <= last})


class Planner:
    """Base planner; ``plan`` returns sorted unique crash cycles."""

    name = "base"

    def plan(self, profile: RunProfile, budget: int,
             rng: random.Random,
             failures: Sequence[int] = ()) -> List[int]:
        raise NotImplementedError


class ExhaustivePlanner(Planner):
    name = "exhaustive"

    def plan(self, profile: RunProfile, budget: int,
             rng: random.Random,
             failures: Sequence[int] = ()) -> List[int]:
        last = max(1, profile.total_cycles - 1)
        if last <= budget:
            return list(range(1, last + 1))
        # Evenly spaced comb: deterministic, budget-many, endpoints in.
        step = last / budget
        return _unique_sorted(
            (round(step * (index + 1)) for index in range(budget)), last)


class StratifiedPlanner(Planner):
    name = "stratified"

    def plan(self, profile: RunProfile, budget: int,
             rng: random.Random,
             failures: Sequence[int] = ()) -> List[int]:
        last = max(1, profile.total_cycles - 1)
        strata = {name: cycles for name, cycles
                  in profile.stratum_cycles().items() if cycles}
        if not strata:
            return ExhaustivePlanner().plan(profile, budget, rng)
        picks: List[int] = []
        remaining = budget
        # Smallest stratum first so undersized ones donate leftover
        # budget to the bigger ones instead of wasting it.
        for index, (name, cycles) in enumerate(
                sorted(strata.items(), key=lambda item: len(item[1]))):
            share = remaining // (len(strata) - index)
            take = min(share, len(cycles))
            picks.extend(rng.sample(cycles, take))
            remaining -= take
        return _unique_sorted(picks, last)


class AdaptivePlanner(Planner):
    name = "adaptive"

    def plan(self, profile: RunProfile, budget: int,
             rng: random.Random,
             failures: Sequence[int] = ()) -> List[int]:
        last = max(1, profile.total_cycles - 1)
        if not failures:
            return StratifiedPlanner().plan(profile, budget, rng)
        explore = StratifiedPlanner().plan(profile, budget // 2, rng)
        exploit: List[int] = []
        refine_budget = budget - len(explore)
        per_failure = max(1, refine_budget // len(failures))
        for failing_cycle in failures:
            low = max(1, failing_cycle - FAILURE_HALO)
            high = min(last, failing_cycle + FAILURE_HALO)
            for _ in range(per_failure):
                exploit.append(rng.randint(low, high))
        return _unique_sorted(explore + exploit, last)


_PLANNER_TYPES = {planner.name: planner for planner in
                  (ExhaustivePlanner, StratifiedPlanner, AdaptivePlanner)}

PLANNER_NAMES = tuple(sorted(_PLANNER_TYPES))


def planner_by_name(name: str) -> Planner:
    if name not in _PLANNER_TYPES:
        raise KeyError(f"unknown planner {name!r}; "
                       f"choose from {sorted(_PLANNER_TYPES)}")
    return _PLANNER_TYPES[name]()
