"""Crash-consistency validation: campaigns, fault models, and the
persist-order oracle (see ``docs/VALIDATION.md``)."""

from .campaign import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignReport,
    TrialSpec,
    profile_cell,
    run_campaign,
    run_trial,
    snapshot_cell,
    verify_cell,
)
from .faults import (
    DEFAULT_FAULTS,
    FAULT_NAMES,
    FaultModel,
    PersistDelayFault,
    PowerCutFault,
    TornLogFault,
    VirtualMisspecFault,
    WindowExpiryFault,
    fault_by_name,
)
from .history import (
    HistoryEvent,
    detection,
    fase_span,
    history_from_recorder,
    persist,
    read,
    truncate_history,
    writeback,
)
from .oracle import (
    FASE_ATOMICITY,
    INTRA_THREAD_ORDER,
    SPEC_ID_ORDER,
    STALE_READ,
    VIOLATION_KINDS,
    PersistOrderOracle,
    Violation,
)
from .planners import (
    PLANNER_NAMES,
    AdaptivePlanner,
    ExhaustivePlanner,
    Planner,
    RunProfile,
    StratifiedPlanner,
    planner_by_name,
)
from .shrink import ShrinkResult, shrink_crash_cycle

__all__ = [
    "AdaptivePlanner", "CAMPAIGN_SCHEMA_VERSION", "CampaignReport",
    "DEFAULT_FAULTS", "ExhaustivePlanner", "FASE_ATOMICITY",
    "FAULT_NAMES", "FaultModel", "HistoryEvent", "INTRA_THREAD_ORDER",
    "PLANNER_NAMES", "PersistDelayFault", "PersistOrderOracle",
    "Planner", "PowerCutFault", "RunProfile", "SPEC_ID_ORDER",
    "STALE_READ", "ShrinkResult", "StratifiedPlanner", "TornLogFault",
    "TrialSpec", "VIOLATION_KINDS", "Violation", "VirtualMisspecFault",
    "WindowExpiryFault", "detection", "fase_span", "fault_by_name",
    "history_from_recorder", "persist", "planner_by_name",
    "profile_cell", "read", "run_campaign", "run_trial",
    "snapshot_cell", "verify_cell",
    "shrink_crash_cycle", "truncate_history", "writeback",
]
