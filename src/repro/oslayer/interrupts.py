"""The misspeculation interrupt path (§6.1.1).

Hardware detects a violation, stores the physical address into an
OS-designated space, and raises a special interrupt.  The OS handler
reads the address, finds the owning process through the reverse map,
and relays the signal to that process's registered failure-atomic
runtime handler.  Interrupts for addresses no process owns are counted
and dropped (a real kernel would log them).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.events import MisspeculationEvent
from ..sim import Counter
from .process import ReverseMap, SimProcess

Handler = Callable[[MisspeculationEvent, int], None]


class InterruptController:
    """OS interrupt delivery for misspeculation events."""

    def __init__(self, reverse_map: ReverseMap = None):
        self.reverse_map = reverse_map or ReverseMap()
        self._handlers: Dict[int, Handler] = {}
        # The designated space the hardware writes addresses into; kept
        # as a bounded trace for inspection.
        self.designated_space: List[int] = []
        self.stats = Counter()

    def register_process(self, process: SimProcess, handler: Handler) -> None:
        """A failure-atomic runtime registers its PID and handler
        (§6.1.2's registration requirement)."""
        self.reverse_map.register(process)
        self._handlers[process.pid] = handler

    def unregister_process(self, pid: int) -> None:
        self.reverse_map.unregister(pid)
        self._handlers.pop(pid, None)

    def raise_misspeculation(self, event: MisspeculationEvent,
                             now: int) -> bool:
        """The hardware interrupt; returns True if a runtime was signalled."""
        self.designated_space.append(event.physical_address)
        if len(self.designated_space) > 64:
            del self.designated_space[0]
        self.stats.add("interrupts")
        self.stats.add(f"interrupts_{event.kind}")
        process = self.reverse_map.lookup(event.physical_address)
        if process is None:
            self.stats.add("unowned_interrupts")
            return False
        handler = self._handlers.get(process.pid)
        if handler is None:
            self.stats.add("handlerless_interrupts")
            return False
        handler(event, now)
        self.stats.add("relayed_interrupts")
        return True

    def capture_state(self) -> dict:
        # Handlers and the reverse map are closures over live objects;
        # they are re-registered when the restored system is rebuilt, so
        # only the architectural trace is captured.
        return {"designated_space": list(self.designated_space),
                "stats": self.stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        self.designated_space = list(state["designated_space"])
        self.stats.restore_state(state["stats"])
