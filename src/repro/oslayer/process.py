"""OS-side process bookkeeping (§6.1.1).

The OS must map the physical address the hardware reports on a
misspeculation back to the process running the failure-atomic program,
so it can relay the interrupt to the right runtime.  :class:`ReverseMap`
is that physical-address -> process-ID table; :class:`SimProcess` is the
unit it maps to.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class SimProcess:
    """One failure-atomic process: a PID plus its registered PM ranges."""

    def __init__(self, pid: int, name: str = ""):
        if pid < 0:
            raise ValueError("pid must be non-negative")
        self.pid = pid
        self.name = name or f"proc{pid}"
        self.ranges: List[Tuple[int, int]] = []

    def map_range(self, start: int, end: int) -> None:
        if end <= start:
            raise ValueError(f"empty range [{start:#x}, {end:#x})")
        self.ranges.append((start, end))

    def owns(self, addr: int) -> bool:
        return any(start <= addr < end for start, end in self.ranges)

    def __repr__(self) -> str:
        return f"SimProcess(pid={self.pid}, ranges={len(self.ranges)})"


class ReverseMap:
    """Physical-address -> PID lookup the OS keeps for misspeculation
    interrupts (§6.1.1)."""

    def __init__(self) -> None:
        self._processes: List[SimProcess] = []

    def register(self, process: SimProcess) -> None:
        for existing in self._processes:
            if existing.pid == process.pid:
                raise ValueError(f"pid {process.pid} already registered")
        self._processes.append(process)

    def unregister(self, pid: int) -> None:
        self._processes = [p for p in self._processes if p.pid != pid]

    def lookup(self, addr: int) -> Optional[SimProcess]:
        for process in self._processes:
            if process.owns(addr):
                return process
        return None

    def __len__(self) -> int:
        return len(self._processes)


class ContextSwitcher:
    """Round-robin software-thread scheduling over cores, virtualising the
    per-core spec-ID registers across switches (§5.2.2).

    The throughput experiments pin one thread per core; this class exists
    to exercise (and test) the save/restore contract when threads
    oversubscribe cores.
    """

    def __init__(self, spec_ids, n_cores: int):
        self.spec_ids = spec_ids
        self.n_cores = n_cores
        # core -> thread currently scheduled on it (None == idle).
        self.running: List[Optional[int]] = [None] * n_cores
        self.switches = 0

    def schedule(self, core_id: int, thread_id: int) -> Optional[int]:
        """Put ``thread_id`` on ``core_id``; returns the descheduled
        thread (whose spec-ID gets banked), if any."""
        previous = self.running[core_id]
        if previous is not None:
            self.spec_ids.save(core_id, previous)
        self.spec_ids.restore(core_id, thread_id)
        self.running[core_id] = thread_id
        self.switches += 1
        return previous
