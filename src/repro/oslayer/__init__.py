"""Simulated OS layer: interrupt relay and process bookkeeping."""

from .interrupts import InterruptController
from .process import ContextSwitcher, ReverseMap, SimProcess

__all__ = ["ContextSwitcher", "InterruptController", "ReverseMap",
           "SimProcess"]
