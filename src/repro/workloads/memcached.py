"""Memcached (Table 4): in-memory key-value store under Mnemosyne [14, 45].

GET/SET over a striped-lock hash table whose values are 1024 B (the
paper's Memcached data size) -- a SET rewrites all 128 value words plus
metadata inside one FASE, producing the largest write sets of any
benchmark; a GET streams the 128 words through the cache hierarchy.

Like Vacation, this runs under Mnemosyne durable *transactions* (the
paper evaluates Memcached "in Mnemosyne"), so FASEs carry no locks and
PMEM-Spec stores are untagged; keys are partitioned per thread so the
fixed trace is interleaving-safe (DESIGN.md).  The lock-based
store-misspeculation machinery is exercised by the hashmap benchmark
and the synthetic probes instead.

Value encoding: on generation ``g``, word ``i`` of a value holds
``g * 256 + i``; the entry's metadata word holds ``g``.  Crash
invariant: all 128 words carry the metadata generation -- any torn SET
that recovery failed to undo shows up as a generation mismatch.
"""

from __future__ import annotations

from typing import Dict, List

from .base import TraceRecorder, Workload

VALUE_WORDS = 128          # 1024 bytes
ENTRY_WORDS = VALUE_WORDS + 8


class Memcached(Workload):
    name = "memcached"
    description = "In-memory key-value store (Mnemosyne)"
    default_fases = 30

    uses_locks = False

    def __init__(self, seed: int = 42, keys_per_thread: int = 32,
                 set_fraction: float = 0.4):
        super().__init__(seed)
        self.keys_per_thread = keys_per_thread
        self.set_fraction = set_fraction
        self._generation = 0

    def setup(self, n_threads: int) -> None:
        self.n_keys = self.keys_per_thread * n_threads
        self.entries: List[int] = []
        for key in range(self.n_keys):
            entry = self.heap.alloc(ENTRY_WORDS * 8, align=64,
                                    label="entry")
            self.entries.append(entry)
            self.init_word(self._meta_addr(key), 0)
            for i in range(VALUE_WORDS):
                self.init_word(self._value_addr(key, i), i)  # gen 0

    def _meta_addr(self, key: int) -> int:
        return self.entries[key]

    def _value_addr(self, key: int, index: int) -> int:
        return self.entries[key] + (8 + index) * 8

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        # Keys partitioned per thread (trace coherence, DESIGN.md).
        key = (thread_id * self.keys_per_thread
               + self.rng.randrange(self.keys_per_thread))
        if self.rng.random() < self.set_fraction:
            self._generation += 1
            gen = self._generation
            recorder.read(self._meta_addr(key))
            recorder.compute(20)                    # hash + serialise
            for i in range(VALUE_WORDS):
                recorder.write(self._value_addr(key, i), gen * 256 + i)
            recorder.write(self._meta_addr(key), gen)
            return f"set:{key}@{gen}"
        recorder.read(self._meta_addr(key))
        for i in range(0, VALUE_WORDS, 8):          # one read per block
            recorder.read(self._value_addr(key, i))
        recorder.compute(12)
        return f"get:{key}"

    def n_locks(self) -> int:
        return 0

    def think_cycles(self) -> int:
        return 300

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        violations = []
        for key in range(self.n_keys):
            gen = image.get(self._meta_addr(key), 0)
            for i in range(VALUE_WORDS):
                expected = gen * 256 + i
                actual = image.get(self._value_addr(key, i), i)
                if actual != expected:
                    violations.append(
                        f"key {key} word {i}: generation mismatch "
                        f"(meta gen {gen}, word holds {actual})")
                    break
        return violations
