"""TATP (Table 4): the update-location transaction [30, 37].

The Telecom Application Transaction Processing benchmark's
``UPDATE_LOCATION`` transaction: look the subscriber up by id and write
its VLR location.  Subscribers are range-partitioned across threads (the
standard TATP partitioning) with a lock per partition; each FASE reads
the subscriber record and writes one field -- short transactions with a
little more read work than the hashmap.

Record layout (4 words): ``s_id, bit_x, msc_location, vlr_location``.
Crash invariant: ``s_id`` fields are immutable and every
``vlr_location`` must be a value some update actually wrote
(``LOC_BASE + s_id * LOC_SPACE + seq``).
"""

from __future__ import annotations

from typing import Dict, List

from .base import TraceRecorder, Workload

RECORD_WORDS = 8           # 4 used, padded to a 64-byte block
LOC_BASE = 7_000_000_000
LOC_SPACE = 100_000


class TATP(Workload):
    name = "tatp"
    description = "Update-location transaction in TATP"
    default_fases = 60

    def __init__(self, seed: int = 42, subscribers_per_thread: int = 512):
        super().__init__(seed)
        self.subscribers_per_thread = subscribers_per_thread
        self._seq = 0

    def setup(self, n_threads: int) -> None:
        self.tables: List[int] = []
        total = 0
        for tid in range(n_threads):
            base = self.heap.alloc(
                self.subscribers_per_thread * RECORD_WORDS * 8,
                align=64, label=f"subscribers{tid}")
            self.tables.append(base)
            for row in range(self.subscribers_per_thread):
                s_id = total + row
                addr = self._record(tid, row)
                self.init_word(self.word(addr, 0), s_id + 1)
                self.init_word(self.word(addr, 1), self.rng.randrange(2))
                self.init_word(self.word(addr, 2),
                               LOC_BASE + (s_id + 1) * LOC_SPACE)
                self.init_word(self.word(addr, 3),
                               LOC_BASE + (s_id + 1) * LOC_SPACE)
            total += self.subscribers_per_thread

    def _record(self, thread_id: int, row: int) -> int:
        return self.tables[thread_id] + row * RECORD_WORDS * 8

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        row = self.rng.randrange(self.subscribers_per_thread)
        addr = self._record(thread_id, row)
        self._seq = (self._seq + 1) % LOC_SPACE
        recorder.lock(thread_id)
        s_id = recorder.read(self.word(addr, 0))
        recorder.read(self.word(addr, 1))          # bit_x predicate
        recorder.compute(14)                       # index lookup cost
        recorder.write(self.word(addr, 3),
                       LOC_BASE + s_id * LOC_SPACE + self._seq,
                       shared=False)
        recorder.unlock(thread_id)
        return f"update_location:{s_id}"

    def n_locks(self) -> int:
        return self.n_threads

    def think_cycles(self) -> int:
        return 400

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        violations = []
        total = 0
        for tid in range(self.n_threads):
            for row in range(self.subscribers_per_thread):
                s_id = total + row + 1
                addr = self._record(tid, row)
                if image.get(self.word(addr, 0), 0) != s_id:
                    violations.append(f"subscriber {s_id}: s_id clobbered")
                location = image.get(self.word(addr, 3), 0)
                if not (LOC_BASE + s_id * LOC_SPACE <= location
                        < LOC_BASE + (s_id + 1) * LOC_SPACE):
                    violations.append(
                        f"subscriber {s_id}: foreign vlr_location "
                        f"{location}")
            total += self.subscribers_per_thread
        return violations
