"""Hashmap (Table 4): read/update values in a hashmap [DPO].

A fixed-size open-addressed table shared by all threads; buckets are
striped across per-stripe locks.  A FASE is either a lookup (read-only)
or an update writing the entry's (value, generation) pair under the
stripe lock -- another *short-FASE* benchmark.

Cross-thread WAW dependencies are real here: two threads updating the
same key serialise on the stripe lock, which is exactly the
happens-before order PMEM-Spec's spec-IDs must carry to the PM
controller (§5.2.2) -- the store-misspeculation machinery is live on
this workload.

Crash invariant: every entry's ``value`` must encode its key
(``value // GEN_SPACE == key``) and its ``gen`` word must equal
``value % GEN_SPACE`` -- a torn update (value new, gen old) that
recovery failed to roll back is caught immediately.  Because updates
hold the stripe lock, the pair is valid under any serialisation order.
"""

from __future__ import annotations

from typing import Dict, List

from .base import TraceRecorder, Workload

GEN_SPACE = 100_000


class Hashmap(Workload):
    name = "hashmap"
    description = "Read/update values in a hashmap"
    default_fases = 60

    def __init__(self, seed: int = 42, n_keys: int = 2048,
                 n_stripes: int = 64, update_fraction: float = 0.5):
        super().__init__(seed)
        self.n_keys = n_keys
        self.n_stripes = n_stripes
        self.update_fraction = update_fraction
        self._generation = 0

    def setup(self, n_threads: int) -> None:
        # Entry i: [value word, gen word]; entries packed two per block.
        self.table = self.alloc_words(self.n_keys * 2, label="table")
        for key in range(self.n_keys):
            self.init_word(self._value_addr(key), key * GEN_SPACE)
            self.init_word(self._gen_addr(key), 0)

    def _value_addr(self, key: int) -> int:
        return self.word(self.table, key * 2)

    def _gen_addr(self, key: int) -> int:
        return self.word(self.table, key * 2 + 1)

    def _stripe(self, key: int) -> int:
        return key % self.n_stripes

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        key = self.rng.randrange(self.n_keys)
        stripe = self._stripe(key)
        if self.rng.random() < self.update_fraction:
            self._generation += 1
            gen = self._generation % GEN_SPACE
            recorder.lock(stripe)
            recorder.read(self._value_addr(key))
            recorder.compute(10)
            recorder.write(self._value_addr(key), key * GEN_SPACE + gen)
            recorder.write(self._gen_addr(key), gen)
            recorder.unlock(stripe)
            return f"update:{key}"
        recorder.lock(stripe)
        recorder.read(self._value_addr(key))
        recorder.read(self._gen_addr(key))
        recorder.compute(6)
        recorder.unlock(stripe)
        return f"lookup:{key}"

    def n_locks(self) -> int:
        return self.n_stripes

    def think_cycles(self) -> int:
        return 400

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        violations = []
        for key in range(self.n_keys):
            value = image.get(self._value_addr(key), 0)
            gen = image.get(self._gen_addr(key), 0)
            if value // GEN_SPACE != key:
                violations.append(
                    f"key {key}: value {value} does not encode the key")
            if value % GEN_SPACE != gen:
                violations.append(
                    f"key {key}: torn update (value gen {value % GEN_SPACE}"
                    f" != gen word {gen})")
        return violations
