"""Concurrent Queue (Table 4): insert/delete nodes in a queue [DPO].

Each FASE is an enqueue or a dequeue -- two or three PM writes under a
single global lock, i.e. the *short* FASEs for which §8.2.1 reports no
PMEM-Spec win (the end-of-FASE durability barrier dominates).

Trace-coherence substitution (see DESIGN.md): this reproduction replays
fixed traces, so FASE payload values are computed at generation time.
A single shared head/tail counter would make the trace's values depend
on a specific runtime interleaving; instead each thread operates its
own ring while all threads contend on the one global queue lock.  The
contention and FASE shape -- what the timing comparison is sensitive to
-- match the shared-queue benchmark; the data layout is partitioned so
the trace is valid under any lock-acquisition order.

Layout per ring: monotonically increasing ``head``/``tail`` counters and
``capacity`` slots; the element for logical slot ``k`` is ``MAGIC + k``,
so the crash invariant can verify every in-queue slot exactly.
"""

from __future__ import annotations

from typing import Dict, List

from .base import TraceRecorder, Workload

MAGIC = 1_000_000


class ConcurrentQueue(Workload):
    name = "queue"
    description = "Insert/delete nodes in a queue"
    default_fases = 60

    def __init__(self, seed: int = 42, capacity: int = 1024):
        super().__init__(seed)
        self.capacity = capacity

    def setup(self, n_threads: int) -> None:
        self.head_addrs: List[int] = []
        self.tail_addrs: List[int] = []
        self.slot_bases: List[int] = []
        prefill = self.capacity // 2
        for tid in range(n_threads):
            head = self.alloc_words(8, label=f"head{tid}")
            tail = self.alloc_words(8, label=f"tail{tid}")
            slots = self.alloc_words(self.capacity, label=f"slots{tid}")
            self.head_addrs.append(head)
            self.tail_addrs.append(tail)
            self.slot_bases.append(slots)
            self.init_word(head, 0)
            self.init_word(tail, prefill)
            for k in range(prefill):
                self.init_word(self.word(slots, k % self.capacity),
                               MAGIC + k)

    def _slot(self, thread_id: int, k: int) -> int:
        return self.word(self.slot_bases[thread_id], k % self.capacity)

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        head_addr = self.head_addrs[thread_id]
        tail_addr = self.tail_addrs[thread_id]
        recorder.lock(0)
        head = recorder.read(head_addr)
        tail = recorder.read(tail_addr)
        recorder.compute(6)
        do_enqueue = self.rng.random() < 0.5
        if (do_enqueue and tail - head < self.capacity) or head >= tail:
            recorder.write(self._slot(thread_id, tail), MAGIC + tail,
                           shared=False)
            recorder.write(tail_addr, tail + 1, shared=False)
            label = "enqueue"
        else:
            value = recorder.read(self._slot(thread_id, head))
            recorder.compute(2)
            recorder.write(self._slot(thread_id, head), 0, shared=False)
            recorder.write(head_addr, head + 1, shared=False)
            label = f"dequeue:{value}"
        recorder.unlock(0)
        return label

    def n_locks(self) -> int:
        return 1

    def think_cycles(self) -> int:
        return 500

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        violations = []
        for tid in range(self.n_threads):
            head = image.get(self.head_addrs[tid], 0)
            tail = image.get(self.tail_addrs[tid], 0)
            if head > tail:
                violations.append(f"ring {tid}: head {head} > tail {tail}")
            if tail - head > self.capacity:
                violations.append(f"ring {tid}: over capacity")
            for k in range(head, tail):
                value = image.get(self._slot(tid, k), 0)
                if value != MAGIC + k:
                    violations.append(
                        f"ring {tid} slot {k}: expected {MAGIC + k}, "
                        f"found {value}")
        return violations
