"""Workload inspector CLI.

Usage::

    python -m repro.workloads                 # list benchmarks
    python -m repro.workloads tpcc            # profile + one FASE's IR
    python -m repro.workloads tpcc --flavor pmemspec   # lowered dump
    python -m repro.workloads tpcc --flavor x86 --fase 2

Shows what a benchmark's FASEs actually look like: the abstract-IR op
profile, and (with ``--flavor``) the disassembled machine code the
compiler emits for a chosen design.
"""

from __future__ import annotations

import argparse
import sys

from ..compiler import fase_profile, lower_fase
from ..isa import disassemble_fase
from ..telemetry import console
from . import BENCHMARKS, workload_by_name


def list_benchmarks() -> None:
    console("Table 4 benchmarks:")
    for name, cls in BENCHMARKS.items():
        kind = "locks" if cls.uses_locks else "transactions"
        console(f"  {name:<12} {cls.description}  [{kind}]")


def inspect(name: str, flavor: str, fase_index: int, threads: int,
            seed: int) -> None:
    workload = workload_by_name(name, seed=seed)
    program = workload.build(threads, max(fase_index + 1, 5))
    fases = program.threads[0].fases
    fase = fases[min(fase_index, len(fases) - 1)]

    console(f"{name}: {program.n_threads} threads x "
            f"{len(fases)} FASEs, {program.n_locks} locks, "
            f"{len(program.initial_heap)} initialised words")
    total_ops = sum(len(f) for t in program.threads for f in t.fases)
    console(f"average ops/FASE: {total_ops / program.total_fases:.1f}")
    console()
    profile = fase_profile(fase)
    console(f"FASE {fase.fase_id} ({fase.label}): {profile}")
    console()
    if flavor:
        lowered = lower_fase(fase, 0, flavor, epoch=fase_index)
        console(disassemble_fase(lowered))
    else:
        for op in fase.ops:
            console(f"  {op!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Inspect the Table 4 benchmark generators.")
    parser.add_argument("benchmark", nargs="?",
                        choices=sorted(BENCHMARKS))
    parser.add_argument("--flavor", default=None,
                        choices=("x86", "hops", "strand", "pmemspec"),
                        help="disassemble the lowering for this design")
    parser.add_argument("--fase", type=int, default=0,
                        help="which of thread 0's FASEs to show")
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    if args.benchmark is None:
        list_benchmarks()
        return 0
    inspect(args.benchmark, args.flavor, args.fase, args.threads,
            args.seed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
