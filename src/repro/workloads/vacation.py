"""Vacation (Table 4): OLTP travel-reservation system from STAMP, run
under Mnemosyne-style durable transactions [7, 45].

A reservation transaction is *long and read-heavy*: it scans candidate
cars/flights/rooms across large tables (most of these queries miss the
LLC and become PM loads -- the access pattern §8.2.2 says makes HOPS pay
its bloom-filter tax), picks the cheapest (compute), then writes a
reservation record and updates the customer row.

Transactions carry no locks (Mnemosyne transactions serialise through
the STM, and reservations/customers are partitioned per thread so the
fixed trace stays interleaving-safe -- see DESIGN.md).

Crash invariant: each customer's ``n_reservations`` counter must match
the number of fully-written reservation records it owns (record stamp +
price + resource all present), which a torn transaction violates unless
recovery rolled it back.
"""

from __future__ import annotations

from typing import Dict, List

from .base import TraceRecorder, Workload

TABLE_WORDS = 1 << 21          # 16 MiB per resource table: beyond the LLC
QUERIES_PER_KIND = 4
RESERVATION_WORDS = 8
CUSTOMER_WORDS = 8
STAMP = 9_000_000


class Vacation(Workload):
    name = "vacation"
    description = "OLTP travel reservation system (Mnemosyne)"
    uses_locks = False
    default_fases = 40

    def __init__(self, seed: int = 42, customers_per_thread: int = 64,
                 max_reservations: int = 512):
        super().__init__(seed)
        self.customers_per_thread = customers_per_thread
        self.max_reservations = max_reservations

    def setup(self, n_threads: int) -> None:
        # Three big, sparsely-touched resource tables (cars/flights/rooms):
        # reads scatter over them, so nearly every query is a PM load.
        self.tables = [self.alloc_words(TABLE_WORDS, label=kind)
                       for kind in ("cars", "flights", "rooms")]
        self.customer_bases: List[int] = []
        self.reservation_bases: List[int] = []
        self._cursor = [0] * n_threads
        for tid in range(n_threads):
            customers = self.heap.alloc(
                self.customers_per_thread * CUSTOMER_WORDS * 8, align=64,
                label=f"customers{tid}")
            reservations = self.heap.alloc(
                self.max_reservations * RESERVATION_WORDS * 8, align=64,
                label=f"reservations{tid}")
            self.customer_bases.append(customers)
            self.reservation_bases.append(reservations)
            for row in range(self.customers_per_thread):
                addr = customers + row * CUSTOMER_WORDS * 8
                self.init_word(self.word(addr, 0), tid * 1000 + row + 1)
                self.init_word(self.word(addr, 1), 0)   # n_reservations

    def _customer(self, tid: int, row: int) -> int:
        return self.customer_bases[tid] + row * CUSTOMER_WORDS * 8

    def _reservation(self, tid: int, index: int) -> int:
        return (self.reservation_bases[tid]
                + (index % self.max_reservations) * RESERVATION_WORDS * 8)

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        row = self.rng.randrange(self.customers_per_thread)
        customer = self._customer(thread_id, row)
        best_price = 0
        # Query phase: scan random candidates in each resource table.
        for kind, table in enumerate(self.tables):
            for _ in range(QUERIES_PER_KIND):
                slot = self.rng.randrange(TABLE_WORDS)
                price = recorder.read(self.word(table, slot))
                recorder.compute(3)
                best_price = max(best_price, price % 997)
        recorder.compute(25)   # pick the cheapest / build the itinerary
        # Update phase.
        index = self._cursor[thread_id]
        self._cursor[thread_id] += 1
        reservation = self._reservation(thread_id, index)
        count = recorder.read(self.word(customer, 1))
        recorder.write(self.word(customer, 1), count + 1)
        recorder.write(self.word(reservation, 0), STAMP + index)
        recorder.write(self.word(reservation, 1), best_price + 1)
        recorder.write(self.word(reservation, 2), thread_id * 1000 + row + 1)
        return f"reserve:{thread_id}/{index}"

    def n_locks(self) -> int:
        return 0

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        violations = []
        for tid in range(self.n_threads):
            total = 0
            for row in range(self.customers_per_thread):
                total += image.get(
                    self.word(self._customer(tid, row), 1), 0)
            for index in range(total):
                reservation = self._reservation(tid, index)
                stamp = image.get(self.word(reservation, 0), 0)
                price = image.get(self.word(reservation, 1), 0)
                owner = image.get(self.word(reservation, 2), 0)
                if stamp != STAMP + index or price == 0 or owner == 0:
                    violations.append(
                        f"thread {tid}: reservation {index} counted but "
                        f"torn (stamp={stamp}, price={price}, "
                        f"owner={owner})")
        return violations
