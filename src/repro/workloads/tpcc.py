"""TPC-C (Table 4): the new-order transaction [4, 30].

One warehouse district per thread (the standard TPC-C partitioning).  A
new-order FASE, under the district lock:

1. reads the warehouse tax and district record, increments the
   district's ``next_o_id`` (1 write);
2. inserts an order record (4 words written);
3. for 2-5 order lines: reads the item's district stock, decrements the
   quantity (restocking below the threshold) and writes a packed
   2-word order-line record.

This is the paper's *long*-FASE OLTP microbenchmark: the most PM writes
per transaction of the lock-based workloads, spread over several cache
blocks.

Crash invariants: every order id below the district's ``next_o_id`` has
a complete, committed order record (o_id stamp matches); stock
quantities stay within the restock window; order-line counts match
their order header.
"""

from __future__ import annotations

from typing import Dict, List

from .base import TraceRecorder, Workload

N_ITEMS = 256
MAX_ORDERS = 4096
MAX_LINES = 5
ORDER_WORDS = 8
LINE_WORDS = 2    # packed: 4 lines per block
STOCK_WORDS = 1   # packed: 8 items per block
STOCK_INIT = 1_000_000
ORDER_STAMP = 5_000_000


class TPCC(Workload):
    name = "tpcc"
    description = "New-order transaction in TPCC"
    default_fases = 40

    def __init__(self, seed: int = 42):
        super().__init__(seed)

    def setup(self, n_threads: int) -> None:
        self.warehouse = self.alloc_words(8, label="warehouse")
        self.init_word(self.warehouse, 7)        # tax rate
        self.district_next: List[int] = []
        self.stock_bases: List[int] = []
        self.order_bases: List[int] = []
        self.line_bases: List[int] = []
        for tid in range(n_threads):
            next_addr = self.alloc_words(8, label=f"district{tid}")
            self.init_word(next_addr, 0)
            stock = self.heap.alloc(N_ITEMS * STOCK_WORDS * 8, align=64,
                                    label=f"stock{tid}")
            for item in range(N_ITEMS):
                self.init_word(stock + item * STOCK_WORDS * 8, STOCK_INIT)
            orders = self.heap.alloc(MAX_ORDERS * ORDER_WORDS * 8,
                                     align=64, label=f"orders{tid}")
            lines = self.heap.alloc(
                MAX_ORDERS * MAX_LINES * LINE_WORDS * 8 // 4, align=64,
                label=f"lines{tid}")
            self.district_next.append(next_addr)
            self.stock_bases.append(stock)
            self.order_bases.append(orders)
            self.line_bases.append(lines)
        self._line_cursor = [0] * n_threads

    def _order_addr(self, tid: int, o_id: int) -> int:
        return self.order_bases[tid] + (o_id % MAX_ORDERS) * ORDER_WORDS * 8

    def _stock_addr(self, tid: int, item: int) -> int:
        return self.stock_bases[tid] + item * STOCK_WORDS * 8

    def _line_addr(self, tid: int, index: int) -> int:
        capacity = MAX_ORDERS * MAX_LINES // 4
        return self.line_bases[tid] + (index % capacity) * LINE_WORDS * 8

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        n_lines = self.rng.randint(2, MAX_LINES)
        recorder.lock(thread_id)
        recorder.read(self.warehouse)                       # tax
        o_id = recorder.read(self.district_next[thread_id])
        recorder.compute(10)
        recorder.write(self.district_next[thread_id], o_id + 1,
                       shared=False)

        order = self._order_addr(thread_id, o_id)
        recorder.write(self.word(order, 0), ORDER_STAMP + o_id,
                       shared=False)
        recorder.write(self.word(order, 1), n_lines, shared=False)
        recorder.write(self.word(order, 2), thread_id + 1, shared=False)
        recorder.write(self.word(order, 3), 1, shared=False)              # committed flag

        first_line = self._line_cursor[thread_id]
        for line in range(n_lines):
            item = self.rng.randrange(N_ITEMS)
            stock_addr = self._stock_addr(thread_id, item)
            quantity = self.rng.randint(1, 10)
            stock = recorder.read(stock_addr)
            recorder.compute(4)
            new_stock = stock - quantity
            if new_stock < 10:
                new_stock += 91                              # restock rule
            recorder.write(stock_addr, new_stock, shared=False)
            line_addr = self._line_addr(thread_id, first_line + line)
            recorder.write(self.word(line_addr, 0), ORDER_STAMP + o_id,
                           shared=False)
            recorder.write(self.word(line_addr, 1),
                           (item + 1) * 100 + quantity, shared=False)
        self._line_cursor[thread_id] += n_lines
        recorder.unlock(thread_id)
        return f"new_order:{o_id}({n_lines} lines)"

    def n_locks(self) -> int:
        return self.n_threads

    def think_cycles(self) -> int:
        return 500

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        violations = []
        for tid in range(self.n_threads):
            next_o = image.get(self.district_next[tid], 0)
            if next_o > MAX_ORDERS:
                violations.append(f"district {tid}: next_o_id overflow")
                continue
            for o_id in range(next_o):
                order = self._order_addr(tid, o_id)
                stamp = image.get(self.word(order, 0), 0)
                committed = image.get(self.word(order, 3), 0)
                if stamp != ORDER_STAMP + o_id or committed != 1:
                    violations.append(
                        f"district {tid}: order {o_id} allocated by "
                        f"next_o_id but record torn "
                        f"(stamp={stamp}, committed={committed})")
            for item in range(N_ITEMS):
                stock = image.get(self._stock_addr(tid, item), STOCK_INIT)
                if stock < 10 or stock > STOCK_INIT:
                    violations.append(
                        f"district {tid}: stock {item} out of range "
                        f"({stock})")
        return violations
