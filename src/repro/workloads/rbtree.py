"""RB-Tree (Table 4): insert/delete entries in a red-black tree [DPO].

A textbook (CLRS) red-black tree with parent pointers lives in
persistent memory; every node access during insert, delete, rotation
and fixup is recorded through the tracer, so FASEs are long (dozens of
PM reads and 5-20 PM writes) -- the opposite end of the FASE-length
spectrum from Queue/Hashmap.

Trace-coherence substitution (see DESIGN.md): each thread owns a tree
(guarded by its own lock) so the fixed trace is valid under any runtime
interleaving; FASE shape matches the shared-tree microbenchmark.

Node layout (5 words): ``key, color, left, right, parent``; address 0 is
nil.  The crash validator walks the recovered tree and checks every
red-black invariant: BST order, no red node with a red child, equal
black height on all root-to-nil paths, parent-pointer symmetry, and
acyclicity.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .base import TraceRecorder, Workload

RED = 1
BLACK = 0
NIL = 0

KEY, COLOR, LEFT, RIGHT, PARENT = range(5)
NODE_WORDS = 8  # 5 used; padded to a 64-byte block


class _TreeView:
    """Recorder-mediated access to one tree's nodes."""

    def __init__(self, recorder: TraceRecorder, root_addr: int):
        self.rec = recorder
        self.root_addr = root_addr

    # Field accessors ------------------------------------------------------
    def get(self, node: int, fld: int) -> int:
        return self.rec.read(node + fld * 8)

    def put(self, node: int, fld: int, value: int) -> None:
        # Trees are per-thread: escape analysis proves these private.
        self.rec.write(node + fld * 8, value, shared=False)

    def root(self) -> int:
        return self.rec.read(self.root_addr)

    def set_root(self, node: int) -> None:
        self.rec.write(self.root_addr, node, shared=False)

    # Rotations ------------------------------------------------------------
    def rotate_left(self, x: int) -> None:
        y = self.get(x, RIGHT)
        yl = self.get(y, LEFT)
        self.put(x, RIGHT, yl)
        if yl != NIL:
            self.put(yl, PARENT, x)
        xp = self.get(x, PARENT)
        self.put(y, PARENT, xp)
        if xp == NIL:
            self.set_root(y)
        elif self.get(xp, LEFT) == x:
            self.put(xp, LEFT, y)
        else:
            self.put(xp, RIGHT, y)
        self.put(y, LEFT, x)
        self.put(x, PARENT, y)

    def rotate_right(self, x: int) -> None:
        y = self.get(x, LEFT)
        yr = self.get(y, RIGHT)
        self.put(x, LEFT, yr)
        if yr != NIL:
            self.put(yr, PARENT, x)
        xp = self.get(x, PARENT)
        self.put(y, PARENT, xp)
        if xp == NIL:
            self.set_root(y)
        elif self.get(xp, RIGHT) == x:
            self.put(xp, RIGHT, y)
        else:
            self.put(xp, LEFT, y)
        self.put(y, RIGHT, x)
        self.put(x, PARENT, y)

    # Insert ---------------------------------------------------------------
    def insert(self, node: int, key: int) -> None:
        parent = NIL
        cursor = self.root()
        while cursor != NIL:
            parent = cursor
            cursor = self.get(cursor, LEFT) if key < self.get(
                cursor, KEY) else self.get(cursor, RIGHT)
        self.put(node, KEY, key)
        self.put(node, COLOR, RED)
        self.put(node, LEFT, NIL)
        self.put(node, RIGHT, NIL)
        self.put(node, PARENT, parent)
        if parent == NIL:
            self.set_root(node)
        elif key < self.get(parent, KEY):
            self.put(parent, LEFT, node)
        else:
            self.put(parent, RIGHT, node)
        self._insert_fixup(node)

    def _insert_fixup(self, z: int) -> None:
        while True:
            zp = self.get(z, PARENT)
            if zp == NIL or self.get(zp, COLOR) != RED:
                break
            zpp = self.get(zp, PARENT)
            if zpp == NIL:
                break
            if zp == self.get(zpp, LEFT):
                uncle = self.get(zpp, RIGHT)
                if uncle != NIL and self.get(uncle, COLOR) == RED:
                    self.put(zp, COLOR, BLACK)
                    self.put(uncle, COLOR, BLACK)
                    self.put(zpp, COLOR, RED)
                    z = zpp
                else:
                    if z == self.get(zp, RIGHT):
                        z = zp
                        self.rotate_left(z)
                        zp = self.get(z, PARENT)
                        zpp = self.get(zp, PARENT)
                    self.put(zp, COLOR, BLACK)
                    self.put(zpp, COLOR, RED)
                    self.rotate_right(zpp)
            else:
                uncle = self.get(zpp, LEFT)
                if uncle != NIL and self.get(uncle, COLOR) == RED:
                    self.put(zp, COLOR, BLACK)
                    self.put(uncle, COLOR, BLACK)
                    self.put(zpp, COLOR, RED)
                    z = zpp
                else:
                    if z == self.get(zp, LEFT):
                        z = zp
                        self.rotate_right(z)
                        zp = self.get(z, PARENT)
                        zpp = self.get(zp, PARENT)
                    self.put(zp, COLOR, BLACK)
                    self.put(zpp, COLOR, RED)
                    self.rotate_left(zpp)
        root = self.root()
        if root != NIL and self.get(root, COLOR) != BLACK:
            self.put(root, COLOR, BLACK)

    # Delete ---------------------------------------------------------------
    def find(self, key: int) -> int:
        cursor = self.root()
        while cursor != NIL:
            ckey = self.get(cursor, KEY)
            if key == ckey:
                return cursor
            cursor = self.get(cursor, LEFT) if key < ckey else self.get(
                cursor, RIGHT)
        return NIL

    def _minimum(self, node: int) -> int:
        while True:
            left = self.get(node, LEFT)
            if left == NIL:
                return node
            node = left

    def _transplant(self, u: int, v: int) -> None:
        up = self.get(u, PARENT)
        if up == NIL:
            self.set_root(v)
        elif u == self.get(up, LEFT):
            self.put(up, LEFT, v)
        else:
            self.put(up, RIGHT, v)
        if v != NIL:
            self.put(v, PARENT, up)

    def delete(self, z: int) -> None:
        y = z
        y_color = self.get(y, COLOR)
        zl, zr = self.get(z, LEFT), self.get(z, RIGHT)
        if zl == NIL:
            x, xp = zr, self.get(z, PARENT)
            self._transplant(z, zr)
        elif zr == NIL:
            x, xp = zl, self.get(z, PARENT)
            self._transplant(z, zl)
        else:
            y = self._minimum(zr)
            y_color = self.get(y, COLOR)
            x = self.get(y, RIGHT)
            if self.get(y, PARENT) == z:
                xp = y
            else:
                xp = self.get(y, PARENT)
                self._transplant(y, x)
                self.put(y, RIGHT, zr)
                self.put(zr, PARENT, y)
            self._transplant(z, y)
            zl = self.get(z, LEFT)
            self.put(y, LEFT, zl)
            self.put(zl, PARENT, y)
            self.put(y, COLOR, self.get(z, COLOR))
        if y_color == BLACK:
            self._delete_fixup(x, xp)

    def _delete_fixup(self, x: int, xp: int) -> None:
        while x != self.root() and (
                x == NIL or self.get(x, COLOR) == BLACK):
            if xp == NIL:
                break
            if x == self.get(xp, LEFT):
                w = self.get(xp, RIGHT)
                if w != NIL and self.get(w, COLOR) == RED:
                    self.put(w, COLOR, BLACK)
                    self.put(xp, COLOR, RED)
                    self.rotate_left(xp)
                    w = self.get(xp, RIGHT)
                if w == NIL:
                    x, xp = xp, self.get(xp, PARENT)
                    continue
                wl, wr = self.get(w, LEFT), self.get(w, RIGHT)
                wl_black = wl == NIL or self.get(wl, COLOR) == BLACK
                wr_black = wr == NIL or self.get(wr, COLOR) == BLACK
                if wl_black and wr_black:
                    self.put(w, COLOR, RED)
                    x, xp = xp, self.get(xp, PARENT)
                else:
                    if wr_black:
                        if wl != NIL:
                            self.put(wl, COLOR, BLACK)
                        self.put(w, COLOR, RED)
                        self.rotate_right(w)
                        w = self.get(xp, RIGHT)
                        wr = self.get(w, RIGHT)
                    self.put(w, COLOR, self.get(xp, COLOR))
                    self.put(xp, COLOR, BLACK)
                    if wr != NIL:
                        self.put(wr, COLOR, BLACK)
                    self.rotate_left(xp)
                    x = self.root()
                    xp = NIL
            else:
                w = self.get(xp, LEFT)
                if w != NIL and self.get(w, COLOR) == RED:
                    self.put(w, COLOR, BLACK)
                    self.put(xp, COLOR, RED)
                    self.rotate_right(xp)
                    w = self.get(xp, LEFT)
                if w == NIL:
                    x, xp = xp, self.get(xp, PARENT)
                    continue
                wl, wr = self.get(w, LEFT), self.get(w, RIGHT)
                wl_black = wl == NIL or self.get(wl, COLOR) == BLACK
                wr_black = wr == NIL or self.get(wr, COLOR) == BLACK
                if wl_black and wr_black:
                    self.put(w, COLOR, RED)
                    x, xp = xp, self.get(xp, PARENT)
                else:
                    if wl_black:
                        if wr != NIL:
                            self.put(wr, COLOR, BLACK)
                        self.put(w, COLOR, RED)
                        self.rotate_left(w)
                        w = self.get(xp, LEFT)
                        wl = self.get(w, LEFT)
                    self.put(w, COLOR, self.get(xp, COLOR))
                    self.put(xp, COLOR, BLACK)
                    if wl != NIL:
                        self.put(wl, COLOR, BLACK)
                    self.rotate_right(xp)
                    x = self.root()
                    xp = NIL
        if x != NIL and self.get(x, COLOR) != BLACK:
            self.put(x, COLOR, BLACK)


class _SilentRecorder:
    """A recorder that mutates the image without recording ops (init)."""

    def __init__(self, image):
        self.image = image

    def read(self, addr):
        return self.image.get(addr, 0)

    def write(self, addr, value, shared=True):
        self.image[addr] = value


class RBTree(Workload):
    name = "rbtree"
    description = "Insert/delete entries in a Red-Black tree"
    default_fases = 40

    def __init__(self, seed: int = 42, initial_keys: int = 128,
                 key_space: int = 4096, pool_size: int = 512):
        super().__init__(seed)
        self.initial_keys = initial_keys
        self.key_space = key_space
        self.pool_size = pool_size

    def setup(self, n_threads: int) -> None:
        self.roots: List[int] = []
        self.pools: List[List[int]] = []
        self.live_keys: List[Dict[int, int]] = []  # key -> node addr
        for tid in range(n_threads):
            root_addr = self.alloc_words(8, label=f"root{tid}")
            self.init_word(root_addr, NIL)
            pool = [self.heap.alloc(NODE_WORDS * 8, align=64,
                                    label=f"nodes{tid}")
                    for _ in range(self.pool_size)]
            self.roots.append(root_addr)
            self.pools.append(list(reversed(pool)))
            self.live_keys.append({})
            # Initial population (init phase, not traced).
            view = _TreeView(_SilentRecorder(self.image), root_addr)
            count = 0
            while count < self.initial_keys:
                key = self.rng.randrange(self.key_space)
                if key in self.live_keys[tid]:
                    continue
                node = self.pools[tid].pop()
                view.insert(node, key)
                self.live_keys[tid][key] = node
                count += 1

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        view = _TreeView(recorder, self.roots[thread_id])
        live = self.live_keys[thread_id]
        pool = self.pools[thread_id]
        do_insert = (self.rng.random() < 0.5 and pool) or not live
        recorder.lock(thread_id)
        if do_insert:
            key = self.rng.randrange(self.key_space)
            while key in live:
                key = self.rng.randrange(self.key_space)
            node = pool.pop()
            recorder.compute(12)
            view.insert(node, key)
            live[key] = node
            label = f"insert:{key}"
        else:
            key = self.rng.choice(sorted(live))
            node = view.find(key)
            recorder.compute(12)
            view.delete(node)
            pool.append(live.pop(key))
            label = f"delete:{key}"
        recorder.unlock(thread_id)
        return label

    def n_locks(self) -> int:
        return self.n_threads

    def think_cycles(self) -> int:
        return 300

    # ------------------------------------------------------------ validate

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        violations = []
        for tid, root_addr in enumerate(self.roots):
            violations.extend(self._check_tree(image, tid, root_addr))
        return violations

    def _check_tree(self, image: Dict[int, int], tid: int,
                    root_addr: int) -> List[str]:
        problems: List[str] = []
        root = image.get(root_addr, NIL)
        if root == NIL:
            return problems
        if image.get(root + COLOR * 8, BLACK) == RED:
            problems.append(f"tree {tid}: red root")
        seen: Set[int] = set()
        black_heights: Set[int] = set()

        def walk(node: int, lo: Optional[int], hi: Optional[int],
                 black: int) -> None:
            if node == NIL:
                black_heights.add(black)
                return
            if node in seen:
                problems.append(f"tree {tid}: cycle at node 0x{node:x}")
                return
            seen.add(node)
            key = image.get(node + KEY * 8, 0)
            color = image.get(node + COLOR * 8, BLACK)
            left = image.get(node + LEFT * 8, NIL)
            right = image.get(node + RIGHT * 8, NIL)
            if lo is not None and key <= lo:
                problems.append(f"tree {tid}: BST violation at key {key}")
            if hi is not None and key >= hi:
                problems.append(f"tree {tid}: BST violation at key {key}")
            for child, side in ((left, "left"), (right, "right")):
                if child != NIL:
                    if image.get(child + PARENT * 8, NIL) != node:
                        problems.append(
                            f"tree {tid}: broken parent pointer under "
                            f"key {key} ({side})")
                    if color == RED and image.get(
                            child + COLOR * 8, BLACK) == RED:
                        problems.append(
                            f"tree {tid}: red-red at key {key}")
            next_black = black + (1 if color == BLACK else 0)
            walk(left, lo, key, next_black)
            walk(right, key, hi, next_black)

        walk(root, None, None, 0)
        if len(black_heights) > 1:
            problems.append(
                f"tree {tid}: unequal black heights {sorted(black_heights)}")
        return problems
