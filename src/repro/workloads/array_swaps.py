"""Array Swaps (Table 4): random swaps of array elements [DPO].

A persistent array is partitioned across threads; each FASE swaps two
random elements of the thread's partition under the partition lock.
Swaps permute values, so the crash invariant is exact: after recovery,
each partition must hold the same *multiset* of values it started with
(a torn swap -- one element updated, the other not -- duplicates one
value and loses another, which recovery must have rolled back).
"""

from __future__ import annotations

from typing import Dict, List

from .base import TraceRecorder, Workload


class ArraySwaps(Workload):
    name = "array_swaps"
    description = "Random swaps of array elements"
    default_fases = 60

    def __init__(self, seed: int = 42, elements_per_thread: int = 256):
        super().__init__(seed)
        self.elements_per_thread = elements_per_thread

    def setup(self, n_threads: int) -> None:
        self.partitions: List[int] = []
        for tid in range(n_threads):
            base = self.alloc_words(self.elements_per_thread,
                                    label=f"partition{tid}")
            self.partitions.append(base)
            for index in range(self.elements_per_thread):
                # Distinct initial values so multiset checks are sharp.
                self.init_word(self.word(base, index),
                               tid * self.elements_per_thread + index + 1)

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        base = self.partitions[thread_id]
        # Both elements live in one cache block: the paper's
        # microbenchmark FASEs update 64 B of data (§8.1).
        block = self.rng.randrange(self.elements_per_thread // 8)
        i = block * 8 + self.rng.randrange(8)
        j = block * 8 + self.rng.randrange(8)
        while j == i:
            j = block * 8 + self.rng.randrange(8)
        recorder.lock(thread_id)
        a = recorder.read(self.word(base, i))
        b = recorder.read(self.word(base, j))
        recorder.compute(8)
        recorder.write(self.word(base, i), b, shared=False)
        recorder.write(self.word(base, j), a, shared=False)
        recorder.unlock(thread_id)
        return f"swap[{i},{j}]"

    def n_locks(self) -> int:
        return self.n_threads

    def think_cycles(self) -> int:
        return 300

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        violations = []
        for tid, base in enumerate(self.partitions):
            expected = sorted(
                tid * self.elements_per_thread + index + 1
                for index in range(self.elements_per_thread))
            actual = sorted(
                image.get(self.word(base, index), 0)
                for index in range(self.elements_per_thread))
            if actual != expected:
                missing = set(expected) - set(actual)
                violations.append(
                    f"partition {tid}: multiset changed "
                    f"(missing {sorted(missing)[:4]}...)")
        return violations
