"""The Table 4 benchmarks plus the §8.4 synthetic misspeculation probes."""

from .array_swaps import ArraySwaps
from .base import TraceRecorder, Workload
from .hashmap import Hashmap
from .memcached import Memcached
from .queue import ConcurrentQueue
from .rbtree import RBTree
from .synthetic import LoadMisspecProbe, StoreMisspecProbe
from .tatp import TATP
from .tpcc import TPCC
from .vacation import Vacation

# The paper's Table 4, in figure order.
BENCHMARKS = {
    "array_swaps": ArraySwaps,
    "queue": ConcurrentQueue,
    "hashmap": Hashmap,
    "rbtree": RBTree,
    "tatp": TATP,
    "tpcc": TPCC,
    "vacation": Vacation,
    "memcached": Memcached,
}


def workload_by_name(name: str, seed: int = 42) -> Workload:
    """Factory for Table 4 benchmarks (harness entry point)."""
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"choose from {sorted(BENCHMARKS)}")
    return BENCHMARKS[name](seed=seed)


__all__ = [
    "ArraySwaps", "BENCHMARKS", "ConcurrentQueue", "Hashmap",
    "LoadMisspecProbe", "Memcached", "RBTree", "StoreMisspecProbe",
    "TATP", "TPCC", "TraceRecorder", "Vacation", "Workload",
    "workload_by_name",
]
