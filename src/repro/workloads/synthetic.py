"""Synthetic misspeculation probes (§8.4).

The paper reports zero misspeculation across all benchmarks and
describes a hand-written program that *can* trigger PM load
misspeculation only under an unrealistically slow persist path.  These
two probes reproduce that study:

* :class:`LoadMisspecProbe` -- the §8.4 recipe: update a block, issue
  conflicting loads to the same cache sets to push it all the way out of
  the (deliberately tiny) hierarchy, then reload it from PM before the
  store's persist-path message lands.  Under
  :meth:`LoadMisspecProbe.recommended_config` (a ~100x persist path) the
  WriteBack-Read-Persist pattern fires; at the paper's 20 ns it never
  does.
* :class:`StoreMisspecProbe` -- Figure 7's WAW race: two threads update
  one shared word inside a critical section placed mid-FASE (so the
  durability barrier does not serialise the persists), with one core's
  persist path artificially congested.  The slow core's persist arrives
  after the fast core's later-ID persist: inter-thread persist-order
  violation, detected by the spec-ID check.

Both probes exist to *exercise the detection and recovery machinery*;
their throughput is meaningless.
"""

from __future__ import annotations

from typing import Dict, List

from ..config import SystemConfig, table3_config
from .base import TraceRecorder, Workload


class LoadMisspecProbe(Workload):
    """Stale-read generator: store, evict via set conflicts, reload.

    Thread 0 is the *writer*: each round it stores the shared victim
    block and reads conflicting blocks so the dirty victim is evicted
    all the way out of the (deliberately tiny) hierarchy -- its LLC
    writeback starts PMC monitoring.  The other threads are *probers*:
    they churn the same cache sets and then reload the victim; with a
    slow persist path the writer's store is still in flight, so the
    reload fetches stale data from PM and the PMC observes the full
    ``WriteBack - Read - Persist`` pattern (Figure 6a).

    The prober's FASE is read-only on purpose: an aborted probe retries
    against the (by then cached) block and commits, so recovery
    converges.  Keeping the racing store and the racing reload in one
    FASE instead produces a *recovery livelock* under lazy recovery --
    every retry re-creates the race against its own in-flight persist --
    which the misspeculation tests demonstrate separately.
    """

    name = "load_misspec_probe"
    description = "Synthetic stale-read (PM load misspeculation) trigger"
    default_fases = 10

    def __init__(self, seed: int = 42, conflict_loads: int = 8):
        super().__init__(seed)
        self.conflict_loads = conflict_loads

    @staticmethod
    def recommended_config(n_threads: int = 2,
                           slow_path: bool = True) -> SystemConfig:
        """Tiny caches (evictions within a handful of accesses) and, when
        ``slow_path``, a persist path two orders of magnitude slower than
        the regular path -- the §8.4 'unrealistic' regime."""
        return table3_config(
            n_cores=n_threads,
            l1_size_bytes=64 * 4, l1_ways=4,       # one L1 set
            l2_size_bytes=64 * 8, l2_ways=8,       # one LLC set
            persist_path_ns=2500.0 if slow_path else 20.0,
            spec_buffer_entries=16,
        )

    def setup(self, n_threads: int) -> None:
        if n_threads < 2:
            raise ValueError("the probe needs a writer and a prober")
        self.victim = self.heap.alloc_block(label="victim")
        self.init_word(self.victim, 0)
        self.conflicts: List[List[int]] = []
        for tid in range(n_threads):
            blocks = [self.heap.alloc_block(label=f"conflict{tid}")
                      for _ in range(self.conflict_loads)]
            for block in blocks:
                self.init_word(block, 1)
            self.conflicts.append(blocks)
        self._round = 0

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        if thread_id == 0:
            self._round += 1
            recorder.write(self.victim, self._round)
            for block in self.conflicts[0][:4]:
                recorder.read(block)     # push the victim out of own L1
            recorder.lock(0)
            recorder.unlock(0)           # serialise: evictions land
            return f"write:{self._round}"
        for block in self.conflicts[thread_id]:
            recorder.read(block)         # churn the shared LLC set
        recorder.lock(thread_id)
        recorder.unlock(thread_id)       # serialise: evictions land
        recorder.read(self.victim)       # the potentially-stale reload
        return "probe"

    def n_locks(self) -> int:
        return self.n_threads

    def think_cycles(self) -> int:
        # Longer than the speculation window so one round's monitoring
        # state never bleeds into the next round's write-allocate fetch.
        return 12_000

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        value = image.get(self.victim, 0)
        if not 0 <= value <= self._round:
            return [f"victim: impossible round counter {value}"]
        return []


class StoreMisspecProbe(Workload):
    """Inter-thread persist-order (WAW) violation generator (Figure 7).

    The critical section sits mid-FASE, so the FASE-end spec-barrier does
    not serialise the racing persists; this deliberately violates the
    "barrier before unlock" discipline real runtimes follow, which is
    exactly what makes the race window real.
    """

    name = "store_misspec_probe"
    description = "Synthetic inter-thread persist-order violation trigger"
    default_fases = 20

    def __init__(self, seed: int = 42):
        super().__init__(seed)

    @staticmethod
    def recommended_config(n_threads: int = 2) -> SystemConfig:
        return table3_config(n_cores=n_threads, spec_buffer_entries=16)

    @staticmethod
    def slow_core_extra_cycles() -> int:
        """Extra persist-path latency for core 0: long enough that core
        0's persist arrives after core 1's later-ID persist, short enough
        that the reordering still lands inside the speculation window."""
        return 100

    def setup(self, n_threads: int) -> None:
        self.shared = self.heap.alloc_block(label="shared")
        self.init_word(self.shared, 1)
        self.privates = []
        for tid in range(n_threads):
            private = self.heap.alloc_block(label=f"private{tid}")
            self.init_word(private, 0)
            self.privates.append(private)
        self._seq = [0] * n_threads

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        self._seq[thread_id] += 1
        value = (thread_id + 1) * 1_000_000 + self._seq[thread_id]
        # Mid-FASE critical section: lock, racing WAW store, unlock ...
        recorder.lock(0)
        recorder.read(self.shared)
        recorder.write(self.shared, value)
        recorder.unlock(0)
        # ... then unrelated tail work before the durability barrier.
        recorder.compute(30)
        recorder.write(self.privates[thread_id], self._seq[thread_id])
        return f"waw:{value}"

    def n_locks(self) -> int:
        return 1

    def think_cycles(self) -> int:
        return 10

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        value = image.get(self.shared, 0)
        if value == 0:
            return ["shared word lost"]
        return []
