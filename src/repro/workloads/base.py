"""Workload framework.

Each benchmark of the paper's Table 4 is a :class:`Workload`: a
deterministic generator that builds a real persistent data structure
over the simulated heap and emits one :class:`~repro.isa.Program` whose
FASEs perform the benchmark's operations.  The generator runs the data
structure *functionally* while recording the PM reads/writes each FASE
performs, so traces carry true addresses and values -- which is what
lets the crash-injection tests check real structural invariants after
recovery (:meth:`Workload.validate_recovered`).

The paper's microbenchmarks run 8 threads x 100K FASEs with 64 B of
data per FASE; a pure-Python DES cannot afford 800K FASEs per run, so
``fases_per_thread`` scales the count (throughput is reported per
second, making runs of different lengths comparable).  This substitution
is recorded in DESIGN.md.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..isa import Compute, Fase, IROp, Program, ThreadProgram
from ..runtime.heap import PersistentHeap, WORD_BYTES


class TraceRecorder:
    """Collects one FASE's abstract ops while mutating a functional image."""

    def __init__(self, image: Dict[int, int]):
        self.image = image
        self.ops: List[IROp] = []

    def read(self, addr: int) -> int:
        from ..isa import PRead
        self.ops.append(PRead(addr))
        return self.image.get(addr, 0)

    def write(self, addr: int, value: int, shared: bool = True) -> None:
        if not isinstance(value, int) or value < 0:
            raise ValueError(f"PM values must be non-negative ints: {value}")
        from ..isa import PWrite
        self.ops.append(PWrite(addr, value, shared=shared))
        self.image[addr] = value

    def compute(self, cycles: int) -> None:
        self.ops.append(Compute(cycles))

    def lock(self, lock_id: int) -> None:
        from ..isa import LockAcquire
        self.ops.append(LockAcquire(lock_id))

    def unlock(self, lock_id: int) -> None:
        from ..isa import LockRelease
        self.ops.append(LockRelease(lock_id))


class Workload:
    """Base class for the Table 4 benchmarks."""

    name = "workload"
    description = ""
    uses_locks = True
    default_fases = 60

    def __init__(self, seed: int = 42):
        self.seed = seed
        self.rng = random.Random(seed)
        self.heap = PersistentHeap()
        # The functional image shared by every recorder; after build() it
        # holds the expected no-failure final state.
        self.image: Dict[int, int] = {}

    # ------------------------------------------------------------- builders

    def build(self, n_threads: int = 8,
              fases_per_thread: Optional[int] = None) -> Program:
        """Generate the Program: init phase, then per-thread FASE streams."""
        fases_per_thread = fases_per_thread or self.default_fases
        if n_threads < 1 or fases_per_thread < 1:
            raise ValueError("need at least one thread and one FASE")
        self.n_threads = n_threads
        self.setup(n_threads)
        initial = dict(self.image)
        threads = []
        fase_counter = 0
        for tid in range(n_threads):
            fases = []
            for _ in range(fases_per_thread):
                recorder = TraceRecorder(self.image)
                label = self.generate_fase(recorder, tid)
                fases.append(Fase(fase_counter, recorder.ops,
                                  label=label or ""))
                fase_counter += 1
            threads.append(ThreadProgram(tid, fases,
                                         think_cycles=self.think_cycles()))
        return Program(self.name, threads, n_locks=self.n_locks(),
                       initial_heap=initial)

    # ------------------------------------------------------------ overrides

    def setup(self, n_threads: int) -> None:
        """Allocate and initialise the persistent structures (the
        single-threaded init phase the paper excludes from timing)."""
        raise NotImplementedError

    def generate_fase(self, recorder: TraceRecorder, thread_id: int) -> str:
        """Record one benchmark operation; returns an optional label."""
        raise NotImplementedError

    def n_locks(self) -> int:
        return 0

    def think_cycles(self) -> int:
        """Inter-FASE computation (application think time)."""
        return 40

    def validate_recovered(self, image: Dict[int, int]) -> List[str]:
        """Check structural invariants on a crash-recovered data image;
        returns human-readable violations (empty == consistent)."""
        raise NotImplementedError

    # -------------------------------------------------------------- helpers

    def alloc_words(self, n: int, label: str = "") -> int:
        return self.heap.alloc_words(n, label=label)

    def init_word(self, addr: int, value: int) -> None:
        self.image[addr] = value

    def word(self, base: int, index: int) -> int:
        return base + index * WORD_BYTES
