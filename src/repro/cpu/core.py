"""The core timing model.

A :class:`Core` executes one software thread's lowered FASE stream as a
DES process.  The model is deliberately simple but keeps exactly the
behaviours the paper's comparison is sensitive to:

* compute batches into a single timeout (an 8-wide OoO core is far from
  memory-bound on ALU work);
* loads block for their cache/PM latency (hits are synchronous, PM
  misses yield an event);
* stores, CLWBs and SFENCEs occupy store-queue entries; a full queue
  stalls the core (§8.2.1);
* fences stall for whatever the active design says;
* the speculation-buffer overflow pause (§5.3) gates every op;
* lazy recovery checks the misspeculation flag at the FASE commit point
  (just before the outermost unlock), eager recovery at every op
  boundary; aborts roll back via the undo log and re-execute the FASE
  (§6.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..compiler import LoweredFase, LoweredThread, lower_rollback
from ..isa import (
    Clwb,
    Comp,
    Dfence,
    FaseBegin,
    FaseEnd,
    JoinStrand,
    Ld,
    Lock,
    MirrorOld,
    NewStrand,
    Ofence,
    Sfence,
    SpecAssign,
    SpecBarrier,
    SpecRevoke,
    St,
    StrandBarrier,
    Unlock,
)
from ..sim import Counter
from ..sim.resources import OccupancyQueue
from .store_queue import StoreQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..system import System

COMMIT = "commit"
ABORT = "abort"


class Core:
    """One core running one thread's lowered program."""

    def __init__(self, system: "System", core_id: int,
                 thread: LoweredThread):
        self.system = system
        self.env = system.env
        self.core_id = core_id
        self.thread = thread
        self.store_queue = StoreQueue(system.config, core_id)
        # Outstanding PM-miss loads (memory-level parallelism): an OoO
        # core overlaps independent misses up to its MSHR budget and only
        # blocks when the budget is exhausted; dependence is enforced
        # coarsely at lock boundaries and FASE ends.
        self._misses = OccupancyQueue(capacity=system.config.mlp_misses,
                                      name=f"mlp[{core_id}]")
        self.stats = Counter()
        self.held_locks: List[int] = []
        self.finish_time = None
        # Progress through the thread's FASE list; part of the snapshot
        # (the FASE boundary is the core's only safe capture point, so
        # this cursor plus plain data is the whole resume state).
        self._fase_cursor = 0

    def _loads_settled(self, now: int) -> int:
        """Time by which every outstanding PM-miss load has returned."""
        return self._misses.drain_complete_time(now)

    def _count_stale(self, event) -> None:
        if event.value.stale:
            self.stats.add("stale_loads")

    # ------------------------------------------------------------ main loop

    def run(self):
        """DES process body: execute every FASE (with retries), then stop.

        The top of the loop is the core's *park point*: between FASEs it
        holds no locks and has no undo state, so the snapshot ladder may
        park it here (``park_point`` returns an event to wait on) while
        the rest of the machine quiesces for a capture.  A restored core
        resumes from ``_fase_cursor`` with an already-finished core
        falling straight through (``finish_time`` survives the restore).
        """
        while self._fase_cursor < len(self.thread.fases):
            park = self.system.park_point(self)
            if park is not None:
                yield park
                continue
            fase = self.thread.fases[self._fase_cursor]
            yield from self._run_fase_with_retries(fase)
            self._fase_cursor += 1
            if self.thread.think_cycles:
                yield self.env.timeout(self.thread.think_cycles)
        if self.finish_time is None:
            self.finish_time = self.env.now
        return self.env.now

    def capture_state(self) -> dict:
        return {"fase_cursor": self._fase_cursor,
                "finish_time": self.finish_time,
                "held_locks": list(self.held_locks),
                "stats": self.stats.capture_state(),
                "store_queue": self.store_queue.capture_state(),
                "misses": self._misses.capture_state()}

    def restore_state(self, state: dict) -> None:
        self._fase_cursor = state["fase_cursor"]
        self.finish_time = state["finish_time"]
        self.held_locks = list(state["held_locks"])
        self.stats.restore_state(state["stats"])
        self.store_queue.restore_state(state["store_queue"])
        self._misses.restore_state(state["misses"])

    def _run_fase_with_retries(self, fase: LoweredFase):
        trace = self.env.trace
        track = f"core{self.core_id}"
        attempt = 0
        while True:
            attempt += 1
            started = self.env.now
            if trace.enabled and attempt > 1:
                trace.instant(track, "fase-re-execute", started,
                              args={"fase": fase.fase_id,
                                    "attempt": attempt}, cat="fase")
            outcome = yield from self._execute(fase.ops)
            if outcome == COMMIT:
                self.stats.add("fases_committed")
                if trace.enabled:
                    trace.complete(
                        track, f"FASE {fase.fase_id}", started,
                        max(self.env.now - started, 1),
                        args={"fase": fase.fase_id, "outcome": "commit",
                              "attempt": attempt}, cat="fase")
                return
            if trace.enabled:
                trace.complete(
                    track, f"FASE {fase.fase_id}", started,
                    max(self.env.now - started, 1),
                    args={"fase": fase.fase_id, "outcome": "abort",
                          "attempt": attempt}, cat="fase")
                trace.instant(track, "fase-abort", self.env.now,
                              args={"fase": fase.fase_id}, cat="fase")
            yield from self._abort_and_rollback(fase)
            self.stats.add("fase_retries")

    def _abort_and_rollback(self, fase: LoweredFase):
        """The abort handler (§6.2.1): undo writes, truncate, release."""
        runtime = self.system.runtime
        writes = runtime.fase_abort(self.core_id, self.env.now)
        rollback_ops = lower_rollback(writes, self.core_id, fase.flavor,
                                      log_mode=fase.log_mode)
        outcome = yield from self._execute(rollback_ops,
                                           abortable=False)
        assert outcome == COMMIT
        # Release any locks the aborted FASE still holds so the retry
        # (and other threads) can make progress.
        while self.held_locks:
            lock_id = self.held_locks.pop()
            self.system.locks[lock_id].release(self.core_id)
        self.stats.add("rollback_writes", len(writes))

    # ------------------------------------------------------------- executor

    def _execute(self, ops, abortable: bool = True):
        """Run a machine-op list; returns COMMIT or ABORT.

        This loop runs once per *instruction* -- by far the hottest
        Python in the simulator -- so it binds its collaborators to
        locals and dispatches on exact op class identity (all machine
        ops are final classes) rather than isinstance chains.  Timing
        behaviour is identical to the straightforward version.
        """
        env = self.env
        system = self.system
        design = system.design
        runtime = system.runtime
        stall = system.stall
        stats_add = self.stats.add
        store_queue = self.store_queue
        core_id = self.core_id
        eager = runtime.recovery_mode == "eager"
        delay = 0
        for op in ops:
            stats_add("instructions")
            t = env.now + delay
            # Speculation-buffer overflow pauses every core (§5.3).
            release = stall.resume_at
            if release > t:
                stats_add("spec_stall_cycles", release - t)
                delay += release - t
                t = release
            if abortable and eager and runtime.must_abort(
                    core_id, at_boundary=False):
                yield env.timeout(delay)
                stats_add("eager_aborts")
                return ABORT

            kind = op.__class__
            if kind is Comp:
                delay += op.cycles
            elif kind is St:
                value = op.value
                if op.log_of is not None:
                    value = system.image.read(op.log_of)
                    runtime.log_write(core_id, op.log_of, value)
                done = design.store(core_id, op.addr, value, t,
                                    to_pm=op.to_pm, kind=op.kind,
                                    shared=op.shared)
                accept = store_queue.push(t, done - t)
                delay += max(1, accept - t)
            elif kind is Ld:
                result = system.hierarchy.load(core_id, op.addr, t)
                if result.event is None:
                    delay = result.done - env.now
                else:
                    # PM miss: overlap it (MLP) instead of blocking; the
                    # fill happens via the event's callback at `done`.
                    stats_add("pm_loads")
                    accept = self._misses.push(t, result.done)
                    if accept > t:
                        stats_add("mlp_stall_cycles", accept - t)
                    delay += max(1, accept - t)
                    result.event.add_callback(self._count_stale)
            elif kind is MirrorOld:
                runtime.log_write(core_id, op.addr,
                                  system.image.read(op.addr))
            elif kind is Clwb:
                done = design.clwb(core_id, op.addr, t)
                accept = store_queue.push(t, done - t)
                delay += max(1, accept - t)
            elif kind is Sfence:
                store_queue.push(t, 1)
                delay += max(1, design.sfence(core_id, t) - t)
            elif kind is Ofence:
                delay += max(1, design.ofence(core_id, t) - t)
            elif kind is Dfence:
                delay += max(1, design.dfence(core_id, t) - t)
            elif kind is SpecBarrier:
                delay += max(1, design.spec_barrier(core_id, t) - t)
            elif kind is SpecAssign:
                delay += max(1, design.spec_assign(core_id, t) - t)
            elif kind is SpecRevoke:
                delay += max(1, design.spec_revoke(core_id, t) - t)
            elif kind is NewStrand:
                delay += max(1, design.new_strand(core_id, t) - t)
            elif kind is StrandBarrier:
                delay += max(1, design.strand_barrier(core_id, t) - t)
            elif kind is JoinStrand:
                delay += max(1, design.join_strand(core_id, t) - t)
            elif kind is Lock:
                # Entering a critical section depends on prior loads.
                delay = max(delay, self._loads_settled(t) - env.now)
                yield env.timeout(delay)
                delay = 0
                yield system.locks[op.lock_id].acquire(core_id)
                self.held_locks.append(op.lock_id)
                handoff = system.lock_network.transfer_cost(
                    op.lock_id, core_id)
                after = design.on_lock_op(core_id, env.now + handoff)
                delay = after - env.now
                stats_add("lock_acquires")
            elif kind is Unlock:
                # Lazy recovery's check site: just before releasing the
                # outermost lock (§6.2.1).
                if (abortable and len(self.held_locks) == 1
                        and runtime.must_abort(core_id,
                                               at_boundary=True)):
                    yield env.timeout(delay)
                    stats_add("lazy_aborts")
                    return ABORT
                release_at = max(design.on_lock_op(core_id, t),
                                 self._loads_settled(t))
                delay = release_at - env.now
                yield env.timeout(delay)
                delay = 0
                self.held_locks.remove(op.lock_id)
                system.locks[op.lock_id].release(core_id)
            elif kind is FaseBegin:
                runtime.fase_begin(core_id, op.fase_id, t)
            elif kind is FaseEnd:
                # The FASE's result depends on every load it issued.
                delay = max(delay, self._loads_settled(t) - env.now)
                yield env.timeout(delay)
                delay = 0
                if abortable and runtime.must_abort(core_id,
                                                    at_boundary=True):
                    stats_add("lazy_aborts")
                    return ABORT
                runtime.fase_commit(core_id, env.now)
            else:  # pragma: no cover - lowering emits nothing else
                raise TypeError(f"core cannot execute {op!r}")
        if delay:
            yield env.timeout(delay)
        return COMMIT
