"""The per-core store queue (Table 3: 32 entries).

Stores (and, in the x86 designs, CLWB/SFENCE ops, §8.2.1) occupy an
entry from commit until the operation completes against the memory
system; entries complete independently (the queue is an occupancy
limit, not a serial pipe).  A full queue back-pressures the core -- one
of the main stall sources the paper's comparison turns on -- and fences
wait for :meth:`drain_complete_time`.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..sim import Counter
from ..sim.resources import OccupancyQueue


class StoreQueue:
    """Bounded commit-side queue; entries finish at caller-supplied times."""

    def __init__(self, config: SystemConfig, core_id: int):
        self.core_id = core_id
        self.capacity = config.store_queue_entries
        self._queue = OccupancyQueue(capacity=self.capacity,
                                     name=f"sq[{core_id}]")
        self.stats = Counter()

    def push(self, now: int, service: int) -> int:
        """Occupy an entry until ``now + service``; returns the admission
        time (``> now`` means the queue was full and the core stalls)."""
        accept = self._queue.push(now, now + max(1, service))
        self.stats.add("pushes")
        if accept > now:
            self.stats.add("full_stalls")
            self.stats.add("full_stall_cycles", accept - now)
        return accept

    def drain_complete_time(self, now: int) -> int:
        """When every currently-queued operation has completed (what a
        fence must wait for)."""
        return self._queue.drain_complete_time(now)

    def occupancy(self, now: int) -> int:
        return self._queue.occupancy(now)

    def capture_state(self) -> dict:
        return {"queue": self._queue.capture_state(),
                "stats": self.stats.capture_state()}

    def restore_state(self, state: dict) -> None:
        self._queue.restore_state(state["queue"])
        self.stats.restore_state(state["stats"])
