"""CPU timing model: cores and store queues."""

from .core import ABORT, COMMIT, Core
from .store_queue import StoreQueue

__all__ = ["ABORT", "COMMIT", "Core", "StoreQueue"]
