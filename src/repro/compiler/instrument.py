"""Critical-section analysis (§5.2.2's compiler support).

The PMEM-Spec compiler identifies critical sections in the program IR so
the lowering can insert ``spec-assign`` right after each lock acquire
and ``spec-revoke`` right before the matching release.  The analysis is
purely structural: a critical section is the span protected by the
*outermost* lock (nested locks extend the same tagged span -- the thread
already holds an ID).

The same analysis reports which PWrite ops are lock-protected (the
stores the lowering will tag) and, for Figure 2-style comparisons,
counts the annotation burden each flavor imposes.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..isa import Compute, Fase, LockAcquire, LockRelease, PRead, PWrite


class CriticalSectionInfo:
    """Analysis result for one FASE."""

    def __init__(self, fase: Fase):
        self.fase = fase
        # Index spans [acquire_index, release_index] of outermost sections.
        self.sections: List[tuple] = []
        # Indices of PWrite ops inside some critical section.
        self.protected_writes: Set[int] = set()
        self._analyse()

    def _analyse(self) -> None:
        depth = 0
        section_start = None
        for index, op in enumerate(self.fase.ops):
            if isinstance(op, LockAcquire):
                if depth == 0:
                    section_start = index
                depth += 1
            elif isinstance(op, LockRelease):
                depth -= 1
                if depth == 0:
                    self.sections.append((section_start, index))
                    section_start = None
            elif isinstance(op, PWrite) and depth > 0:
                self.protected_writes.add(index)

    @property
    def has_critical_section(self) -> bool:
        return bool(self.sections)

    def in_section(self, index: int) -> bool:
        return any(start <= index <= end for start, end in self.sections)


def analyse_fase(fase: Fase) -> CriticalSectionInfo:
    return CriticalSectionInfo(fase)


def annotation_burden(fase: Fase, flavor: str) -> Dict[str, int]:
    """How many ordering annotations a programmer (or compiler) must place
    in this FASE under each model -- the Figure 2 comparison.

    * ``x86``: one SFENCE per log group plus the data-durability and
      epoch-bump fences, and one CLWB per dirty line flushed;
    * ``hops``: one ofence per log group plus the final ofence/dfence
      pair -- custom instructions, but no flushes;
    * ``pmemspec``: exactly one spec-barrier (the point of the paper) --
      spec-assign/revoke are compiler-inserted, not programmer burden.
    """
    n_writes = len(fase.writes)
    distinct_data_blocks = len({addr >> 6 for addr in fase.writes})
    log_blocks = max(1, (n_writes * 16 + 63) // 64)
    # One fence per log group (>= one per dirtied block run) + the
    # data-durability fence + the epoch-bump fence.
    groups = max(1, distinct_data_blocks)
    if flavor == "x86":
        flushes = distinct_data_blocks + log_blocks + 1  # +1: epoch word
        return {"fences": groups + 2, "flushes": flushes,
                "programmer_visible": groups + 2 + flushes}
    if flavor == "hops":
        return {"fences": groups + 2, "flushes": 0,
                "programmer_visible": groups + 2}
    if flavor == "pmemspec":
        return {"fences": 1, "flushes": 0, "programmer_visible": 1}
    if flavor == "strand":
        # NewStrand + persist_barrier per group, plus join + dfence --
        # the heaviest annotation burden (§9: StrandWeaver "requir[es]
        # programmers to denote creating and joining strands").
        return {"fences": 2 * groups + 2, "flushes": 0,
                "programmer_visible": 2 * groups + 2}
    raise ValueError(f"unknown flavor {flavor!r}")


def fase_profile(fase: Fase) -> Dict[str, int]:
    """Static op profile used by reports and workload sanity tests."""
    return {
        "preads": fase.count(PRead),
        "pwrites": fase.count(PWrite),
        "computes": fase.count(Compute),
        "locks": fase.count(LockAcquire),
        "distinct_write_blocks": len({a >> 6 for a in fase.writes}),
    }
