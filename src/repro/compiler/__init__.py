"""Compiler: critical-section analysis and per-design lowering."""

from .instrument import (
    CriticalSectionInfo,
    analyse_fase,
    annotation_burden,
    fase_profile,
)
from .lowering import (
    FLAVORS,
    LoweredFase,
    LoweredProgram,
    LoweredThread,
    LoweringError,
    lower_fase,
    lower_program,
    lower_rollback,
)

__all__ = [
    "CriticalSectionInfo", "FLAVORS", "LoweredFase", "LoweredProgram",
    "LoweredThread", "LoweringError", "analyse_fase", "annotation_burden",
    "fase_profile", "lower_fase", "lower_program", "lower_rollback",
]
