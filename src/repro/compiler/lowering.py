"""Lowering: one abstract program -> per-design machine-op streams.

This is the compiler/runtime-library half of the HW/SW codesign: the
*same* unannotated program body is combined with the undo-logging
protocol of :mod:`repro.runtime.undo_log` and the ordering primitives of
the target design (Figure 2):

========== =============================================================
flavor      per-FASE ordering ops emitted
========== =============================================================
``x86``     CLWB per dirty line + SFENCE per ordering point (one per
            undo-log group, one after the data, one after the epoch
            bump).
``hops``    ofence after the log and after the data; one dfence at the
            end of the FASE.
``pmemspec`` exactly one spec-barrier at the end; spec-assign /
            spec-revoke are compiler-inserted around critical sections.
``strand``  NewStrand + persist-barrier per log group (groups drain as
            independent strands), JoinStrand before the commit record,
            one dfence at the end (the StrandWeaver extension).
========== =============================================================

DPO executes the ``x86`` flavor unchanged (§8.1: "shares the same
benchmarks with the Intel X86 design").

Orthogonally to the flavor, ``log_mode`` selects the crash-consistency
protocol: ``"undo"`` (default, write-time logging as above) or
``"redo"`` (volatile in-place updates + commit-time replay; see
:mod:`repro.runtime.redo_log`), the latter only on writeback-dropping
flavors.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..isa import (
    Clwb,
    Comp,
    Compute,
    Dfence,
    Fase,
    FaseBegin,
    FaseEnd,
    JoinStrand,
    Ld,
    Lock,
    LockAcquire,
    LockRelease,
    MachineOp,
    MirrorOld,
    NewStrand,
    Ofence,
    PRead,
    Program,
    PWrite,
    Sfence,
    SpecAssign,
    SpecBarrier,
    SpecRevoke,
    St,
    StrandBarrier,
    Unlock,
    block_base,
)
from ..runtime.redo_log import commit_word_addr
from ..runtime.undo_log import UndoLogLayout, stamp_target

LOG_MODES = ("undo", "redo")

FLAVORS = ("x86", "hops", "pmemspec", "strand")


class LoweringError(ValueError):
    """Raised for programs the lowering cannot handle."""


class LoweredFase:
    """One FASE's machine ops: the unit a core executes and re-executes."""

    __slots__ = ("fase", "thread_id", "ops", "flavor", "log_mode")

    def __init__(self, fase: Fase, thread_id: int, ops: List[MachineOp],
                 flavor: str, log_mode: str = "undo"):
        self.fase = fase
        self.thread_id = thread_id
        self.ops = ops
        self.flavor = flavor
        self.log_mode = log_mode

    @property
    def fase_id(self) -> int:
        return self.fase.fase_id

    def count(self, op_type: type) -> int:
        return sum(1 for op in self.ops if isinstance(op, op_type))

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return (f"LoweredFase(fase={self.fase_id}, tid={self.thread_id}, "
                f"ops={len(self.ops)}, flavor={self.flavor})")


class LoweredThread:
    __slots__ = ("thread_id", "fases", "think_cycles")

    def __init__(self, thread_id: int, fases: List[LoweredFase],
                 think_cycles: int):
        self.thread_id = thread_id
        self.fases = fases
        self.think_cycles = think_cycles


class LoweredProgram:
    __slots__ = ("program", "flavor", "threads")

    def __init__(self, program: Program, flavor: str,
                 threads: List[LoweredThread]):
        self.program = program
        self.flavor = flavor
        self.threads = threads

    @property
    def total_ops(self) -> int:
        return sum(len(f) for t in self.threads for f in t.fases)


def _split_fase(fase: Fase) -> Tuple[List[int], Sequence, List[int]]:
    """Leading lock acquires, body ops, trailing lock releases."""
    ops = fase.ops
    lead = 0
    while lead < len(ops) and isinstance(ops[lead], LockAcquire):
        lead += 1
    trail = len(ops)
    while trail > lead and isinstance(ops[trail - 1], LockRelease):
        trail -= 1
    leading = [op.lock_id for op in ops[:lead]]
    trailing = [op.lock_id for op in ops[trail:]]
    return leading, ops[lead:trail], trailing


def _clwb_blocks(addresses) -> List[int]:
    """Distinct block base addresses, in first-touch order."""
    seen = set()
    blocks = []
    for addr in addresses:
        base = block_base(addr)
        if base not in seen:
            seen.add(base)
            blocks.append(base)
    return blocks


def lower_fase(fase: Fase, thread_id: int, flavor: str,
               epoch: int = 0, log_mode: str = "undo") -> LoweredFase:
    """Lower one FASE for one design flavor.

    ``epoch`` is the FASE's position in its thread's stream: the log
    stamps entries with it and the commit bumps it (see
    :mod:`repro.runtime.undo_log` / :mod:`repro.runtime.redo_log`).

    ``log_mode="redo"`` keeps uncommitted data volatile and replays it
    at commit; it is only sound on designs that drop LLC dirty
    writebacks (uncommitted cache lines must never persist), so the
    ``x86`` flavor -- whose writebacks go to PM -- rejects it."""
    if flavor not in FLAVORS:
        raise LoweringError(f"unknown flavor {flavor!r}")
    if log_mode not in LOG_MODES:
        raise LoweringError(f"unknown log mode {log_mode!r}")
    if log_mode == "redo" and flavor == "x86":
        raise LoweringError(
            "redo logging needs writeback-dropping hardware; the x86 "
            "flavor persists LLC writebacks, leaking uncommitted data")
    layout = UndoLogLayout(thread_id)
    writes = fase.writes
    leading, body, trailing = _split_fase(fase)
    tagged = flavor == "pmemspec" and bool(leading)

    ops: List[MachineOp] = [FaseBegin(fase.fase_id)]
    for lock_id in leading:
        ops.append(Lock(lock_id))
    if tagged:
        ops.append(SpecAssign())

    # ---- body with write-time undo logging --------------------------------
    # Real undo-logging runtimes (Mnemosyne, ATLAS) do not know the write
    # set up front: each transactional write appends its undo record and
    # makes the log durable *before* the data store.  We batch maximal
    # runs of consecutive writes to one cache block into a single log
    # group (one ordering point per dirtied block), which is what gives
    # the x86 baseline its per-write SFENCE tax on long transactions
    # (§8.2.1) while PMEM-Spec needs no per-write ordering at all.
    def emit_redo_group(run: List[PWrite]) -> None:
        nonlocal log_index
        for write in run:
            ops.append(Ld(write.addr))
            ops.append(MirrorOld(write.addr))
            ops.append(St(layout.entry_old_addr(log_index), write.value,
                          kind="log"))
            ops.append(St(layout.entry_target_addr(log_index),
                          stamp_target(epoch, write.addr), kind="log"))
            log_index += 1
        # No ordering point at all: the FIFO persistence channel already
        # orders entries before the commit word; the in-place update
        # stays volatile until the commit replay.
        for write in run:
            ops.append(St(write.addr, write.value, to_pm=False,
                          kind="data", shared=write.shared))

    def emit_log_group(run: List[PWrite]) -> None:
        nonlocal log_index
        if log_mode == "redo":
            emit_redo_group(run)
            return
        entry_addrs = []
        if flavor == "strand":
            # Each log group is its own strand: groups drain in parallel.
            ops.append(NewStrand())
        for write in run:
            ops.append(Ld(write.addr))
            # Old value first, stamped target last: the stamp is the
            # entry's validity marker (self-validating entries need no
            # separate count word -- see repro.runtime.undo_log).
            ops.append(St(layout.entry_old_addr(log_index), kind="log",
                          log_of=write.addr))
            ops.append(St(layout.entry_target_addr(log_index),
                          stamp_target(epoch, write.addr), kind="log"))
            entry_addrs.append(layout.entry_old_addr(log_index))
            log_index += 1
        if flavor == "x86":
            for base in _clwb_blocks(entry_addrs):
                ops.append(Clwb(base))
            ops.append(Sfence())
        elif flavor == "hops":
            ops.append(Ofence())
        elif flavor == "strand":
            # Intra-strand order (log before data), no stall.
            ops.append(StrandBarrier())
        # pmemspec: the persist path already orders log before data.
        for write in run:
            ops.append(St(write.addr, write.value, kind="data",
                          shared=write.shared))

    log_index = 0
    depth = len(leading)
    run: List[PWrite] = []
    for op in body:
        if isinstance(op, PWrite):
            if run and block_base(run[-1].addr) != block_base(op.addr):
                emit_log_group(run)
                run = []
            run.append(op)
            continue
        if run:
            emit_log_group(run)
            run = []
        if isinstance(op, PRead):
            ops.append(Ld(op.addr))
        elif isinstance(op, Compute):
            ops.append(Comp(op.cycles))
        elif isinstance(op, LockAcquire):
            ops.append(Lock(op.lock_id))
            depth += 1
            if flavor == "pmemspec" and depth == 1:
                ops.append(SpecAssign())
        elif isinstance(op, LockRelease):
            if flavor == "pmemspec" and depth == 1:
                ops.append(SpecRevoke())
            depth -= 1
            ops.append(Unlock(op.lock_id))
        else:
            raise LoweringError(f"cannot lower {op!r}")
    if run:
        emit_log_group(run)

    # ---- commit: make data durable, then bump the epoch -------------------
    if writes and log_mode == "redo":
        # Commit word -> in-place replay -> epoch bump, all carried in
        # order by the FIFO channel; one durability barrier at the end.
        ops.append(St(commit_word_addr(thread_id), epoch, kind="commit"))
        final = fase.final_values()
        shared_map = {op_.addr: op_.shared for op_ in fase.ops
                      if isinstance(op_, PWrite)}
        for addr in writes:
            ops.append(St(addr, final[addr], kind="data",
                          shared=shared_map.get(addr, True)))
        ops.append(St(layout.epoch_addr, epoch + 1, kind="commit"))
        if flavor in ("hops", "strand"):
            ops.append(Dfence())
        else:
            ops.append(SpecBarrier())
    elif writes:
        if flavor == "x86":
            for base in _clwb_blocks(writes):
                ops.append(Clwb(base))
            ops.append(Sfence())
            ops.append(St(layout.epoch_addr, epoch + 1, kind="commit"))
            ops.append(Clwb(layout.epoch_addr))
            ops.append(Sfence())
        elif flavor == "hops":
            ops.append(Ofence())
            ops.append(St(layout.epoch_addr, epoch + 1, kind="commit"))
            ops.append(Dfence())
        elif flavor == "strand":
            # The epoch bump must follow every strand of this FASE.
            ops.append(JoinStrand())
            ops.append(St(layout.epoch_addr, epoch + 1, kind="commit"))
            ops.append(Dfence())
        else:
            ops.append(St(layout.epoch_addr, epoch + 1, kind="commit"))
            ops.append(SpecBarrier())

    if tagged:
        ops.append(SpecRevoke())
    for lock_id in reversed(trailing):
        ops.append(Unlock(lock_id))
    ops.append(FaseEnd(fase.fase_id))
    return LoweredFase(fase, thread_id, ops, flavor, log_mode=log_mode)


def lower_rollback(writes, thread_id: int, flavor: str,
                   log_mode: str = "undo") -> List[MachineOp]:
    """Machine ops for the abort handler: re-write the old values (newest
    first) and make the rollback durable so the FASE can restart against
    clean PM state.

    The log is deliberately *not* truncated: undo application is
    idempotent, so leaving the entries live keeps recovery correct even
    if the machine crashes anywhere around the abort/retry.

    Under redo logging nothing uncommitted ever persisted, so rollback
    only restores the *volatile* view (cache-only stores, no barrier)."""
    ops: List[MachineOp] = []
    if log_mode == "redo":
        return [St(addr, old_value, to_pm=False, kind="rollback")
                for addr, old_value in writes]
    for addr, old_value in writes:
        ops.append(St(addr, old_value, kind="rollback"))
    if not writes:
        return ops
    if flavor == "x86":
        for base in _clwb_blocks([addr for addr, _ in writes]):
            ops.append(Clwb(base))
        ops.append(Sfence())
    elif flavor in ("hops", "strand"):
        ops.append(Dfence())
    else:
        ops.append(SpecBarrier())
    return ops


# Lowering is a pure function of (program, flavor, log_mode), its
# output is never mutated at runtime (machine ops are init-only value
# objects), and campaign-style callers lower the *same* program once per
# trial -- memoise on the program instance so the memo lives exactly as
# long as its program.  A module-level WeakKeyDictionary cannot do this:
# the cached LoweredProgram holds a strong reference back to its key, so
# the value pins the key and every program ever lowered (plus its whole
# machine-op stream) stays reachable for the life of the process.
_MEMO_ATTR = "_lowered_by_flavor"


def clear_lowered_memo(program: Program) -> None:
    """Drop ``program``'s lowering memo (test hook)."""
    program.__dict__.pop(_MEMO_ATTR, None)


def lower_program(program: Program, flavor: str,
                  log_mode: str = "undo") -> LoweredProgram:
    """Lower every thread of a workload program.

    Epochs count only *writing* FASEs: read-only FASEs emit no commit
    (nothing to make durable), so they must not consume an epoch number
    -- otherwise a later FASE would stamp entries with a value the
    persisted epoch word can never reach and recovery would ignore its
    undo records.
    """
    per_program = program.__dict__.setdefault(_MEMO_ATTR, {})
    cached = per_program.get((flavor, log_mode))
    if cached is not None:
        return cached
    threads = []
    for thread in program.threads:
        fases = []
        epoch = 0
        for fase in thread.fases:
            fases.append(lower_fase(fase, thread.thread_id, flavor,
                                    epoch=epoch, log_mode=log_mode))
            if fase.writes:
                epoch += 1
        threads.append(LoweredThread(thread.thread_id, fases,
                                     thread.think_cycles))
    lowered = LoweredProgram(program, flavor, threads)
    per_program[(flavor, log_mode)] = lowered
    return lowered
