"""Trace disassembly: human-readable dumps of lowered machine code.

Useful for debugging lowering changes and for the documentation
examples; :func:`disassemble_fase` renders one FASE's op stream with
addresses annotated by region (data / log / epoch word), and
:func:`compare_flavors` renders several lowerings side by side (the
Figure 2 view)."""

from __future__ import annotations

from typing import Iterable, List

from .instructions import (
    FaseBegin,
    FaseEnd,
    Ld,
    MachineOp,
    St,
    describe,
    is_barrier,
)


def _region(addr: int) -> str:
    # Imported lazily: repro.runtime imports repro.isa at package load.
    from ..runtime.heap import is_log_address, thread_of_log_address
    if is_log_address(addr):
        return f"log[t{thread_of_log_address(addr)}]"
    return "data"


def render_op(op: MachineOp) -> str:
    """One op as a disassembly line."""
    if isinstance(op, St):
        tags = [op.kind, _region(op.addr)]
        if op.log_of is not None:
            tags.append(f"old-of 0x{op.log_of:x}")
        if op.kind == "data" and not op.shared:
            tags.append("private")
        return f"st    0x{op.addr:x}, {op.value}   ; {', '.join(tags)}"
    if isinstance(op, Ld):
        return f"ld    0x{op.addr:x}         ; {_region(op.addr)}"
    if isinstance(op, (FaseBegin, FaseEnd)):
        return f"--- {describe(op)} ---"
    text = describe(op)
    if is_barrier(op):
        return text.upper()
    return text


def disassemble(ops: Iterable[MachineOp]) -> List[str]:
    """Render an op stream as disassembly lines."""
    return [render_op(op) for op in ops]


def disassemble_fase(lowered) -> str:
    """Render a :class:`~repro.compiler.LoweredFase` with a header."""
    header = (f"; fase {lowered.fase_id} thread {lowered.thread_id} "
              f"flavor {lowered.flavor} ({len(lowered.ops)} ops)")
    return "\n".join([header] + disassemble(lowered.ops))


def compare_flavors(fase, thread_id: int = 0, epoch: int = 0,
                    flavors: Iterable[str] = ("x86", "hops", "pmemspec"),
                    width: int = 44) -> str:
    """Side-by-side disassembly of one FASE under several flavors."""
    from ..compiler import lower_fase
    columns = {flavor: disassemble(
        lower_fase(fase, thread_id, flavor, epoch=epoch).ops)
        for flavor in flavors}
    depth = max(len(lines) for lines in columns.values())
    header = "".join(f"{flavor:<{width}}" for flavor in columns)
    rows = [header, "-" * (width * len(columns))]
    for index in range(depth):
        row = ""
        for lines in columns.values():
            cell = lines[index] if index < len(lines) else ""
            if len(cell) >= width:
                cell = cell[:width - 2] + ".."
            row += f"{cell:<{width}}"
        rows.append(row.rstrip())
    return "\n".join(rows)
