"""Program containers: FASEs, thread programs, whole workload programs.

A workload (``repro.workloads``) produces one :class:`Program`: a set of
per-thread instruction streams expressed in the abstract IR, structured
as a sequence of :class:`Fase` (failure-atomic section) instances with
optional computation between them.  The compiler
(:mod:`repro.compiler.lowering`) turns each FASE into design-specific
machine ops; a core re-executes exactly that lowered list when the FASE
aborts after misspeculation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .instructions import (
    Compute,
    IROp,
    LockAcquire,
    LockRelease,
    PRead,
    PWrite,
)


class ProgramError(ValueError):
    """Raised for ill-formed programs (unbalanced locks, bad addresses)."""


class Fase:
    """One failure-atomic section: the unit of abort/re-execution.

    ``ops`` is the abstract IR body.  ``writes`` (derived) lists the
    distinct persistent byte addresses the body stores to, in first-write
    order -- the undo log needs them, and recovery validation diffs them.
    """

    __slots__ = ("fase_id", "ops", "label")

    def __init__(self, fase_id: int, ops: Sequence[IROp], label: str = ""):
        self.fase_id = fase_id
        self.ops = list(ops)
        self.label = label
        self._validate()

    def _validate(self) -> None:
        held: List[int] = []
        for op in self.ops:
            if isinstance(op, LockAcquire):
                if op.lock_id in held:
                    raise ProgramError(
                        f"FASE {self.fase_id}: recursive lock {op.lock_id}")
                held.append(op.lock_id)
            elif isinstance(op, LockRelease):
                if not held or held[-1] != op.lock_id:
                    raise ProgramError(
                        f"FASE {self.fase_id}: unbalanced release of lock "
                        f"{op.lock_id}")
                held.pop()
        if held:
            raise ProgramError(
                f"FASE {self.fase_id}: locks {held} never released")

    @property
    def writes(self) -> List[int]:
        seen = set()
        ordered = []
        for op in self.ops:
            if isinstance(op, PWrite) and op.addr not in seen:
                seen.add(op.addr)
                ordered.append(op.addr)
        return ordered

    @property
    def reads(self) -> List[int]:
        seen = set()
        ordered = []
        for op in self.ops:
            if isinstance(op, PRead) and op.addr not in seen:
                seen.add(op.addr)
                ordered.append(op.addr)
        return ordered

    def final_values(self) -> Dict[int, int]:
        """addr -> last value written by this FASE (commit effect)."""
        values: Dict[int, int] = {}
        for op in self.ops:
            if isinstance(op, PWrite):
                values[op.addr] = op.value
        return values

    def count(self, op_type: type) -> int:
        return sum(1 for op in self.ops if isinstance(op, op_type))

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        return (f"Fase(id={self.fase_id}, ops={len(self.ops)}, "
                f"label={self.label!r})")


class ThreadProgram:
    """The work of one simulated thread: FASEs with optional think time."""

    __slots__ = ("thread_id", "fases", "think_cycles")

    def __init__(self, thread_id: int, fases: Sequence[Fase],
                 think_cycles: int = 0):
        if think_cycles < 0:
            raise ProgramError("negative think_cycles")
        self.thread_id = thread_id
        self.fases = list(fases)
        self.think_cycles = think_cycles

    @property
    def total_ops(self) -> int:
        return sum(len(fase) for fase in self.fases)

    def __repr__(self) -> str:
        return (f"ThreadProgram(tid={self.thread_id}, "
                f"fases={len(self.fases)})")


class Program:
    """A complete multi-threaded persistent workload.

    ``initial_heap`` maps persistent addresses to their pre-run values
    (the single-threaded initialisation phase the paper excludes from
    throughput measurement).  ``n_locks`` sizes the lock table.
    """

    def __init__(self, name: str, threads: Sequence[ThreadProgram],
                 n_locks: int = 0,
                 initial_heap: Optional[Dict[int, int]] = None):
        self.name = name
        self.threads = list(threads)
        self.n_locks = n_locks
        self.initial_heap = dict(initial_heap or {})
        self._validate()

    def _validate(self) -> None:
        if not self.threads:
            raise ProgramError("program has no threads")
        tids = [t.thread_id for t in self.threads]
        if sorted(tids) != list(range(len(tids))):
            raise ProgramError(f"thread ids must be 0..n-1, got {tids}")
        max_lock = -1
        for thread in self.threads:
            for fase in thread.fases:
                for op in fase.ops:
                    if isinstance(op, (LockAcquire, LockRelease)):
                        max_lock = max(max_lock, op.lock_id)
        if max_lock >= self.n_locks:
            raise ProgramError(
                f"lock id {max_lock} used but n_locks={self.n_locks}")

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    @property
    def total_fases(self) -> int:
        return sum(len(t.fases) for t in self.threads)

    def expected_final_heap(self,
                            fase_order: Iterable[Fase]) -> Dict[int, int]:
        """Fold FASE effects over the initial heap in the given commit
        order; used by functional-correctness checks."""
        heap = dict(self.initial_heap)
        for fase in fase_order:
            heap.update(fase.final_values())
        return heap

    def __repr__(self) -> str:
        return (f"Program({self.name!r}, threads={self.n_threads}, "
                f"fases={self.total_fases})")


def sequential_reference_heap(program: Program) -> Dict[int, int]:
    """Reference final heap if threads ran one after another.

    Only meaningful for workloads whose FASE effects commute across
    threads (each of our microbenchmarks partitions or locks its data);
    crash/recovery tests use it as the no-failure oracle.
    """
    order: List[Fase] = []
    for thread in program.threads:
        order.extend(thread.fases)
    return program.expected_final_heap(order)


def op_histogram(program: Program) -> Dict[str, int]:
    """Count abstract ops by type across the whole program."""
    names = {PRead: "pread", PWrite: "pwrite", Compute: "compute",
             LockAcquire: "lock_acquire", LockRelease: "lock_release"}
    counts = {name: 0 for name in names.values()}
    for thread in program.threads:
        for fase in thread.fases:
            for op in fase.ops:
                counts[names[type(op)]] += 1
    return counts
