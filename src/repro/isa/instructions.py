"""Instruction definitions.

Two layers mirror the paper's software stack:

* **Abstract IR** -- what an unannotated persistent program says: reads and
  writes to persistent memory, computation, lock operations, and
  failure-atomic section (FASE) boundaries.  Workloads emit this layer;
  it carries *no* persistency annotations (Figure 2's "leave the program
  almost as-is" ideal).
* **Machine ops** -- what a core executes after the compiler lowers the IR
  for a given design: plain loads/stores plus the per-design ordering
  primitives (CLWB/SFENCE for IntelX86 and DPO, OFENCE/DFENCE for HOPS,
  SPEC_BARRIER/SPEC_ASSIGN/SPEC_REVOKE for PMEM-Spec).

Addresses are byte addresses on a 64-byte cache-block grid; ``block_of``
maps an address to its block number.
"""

from __future__ import annotations

from typing import Optional

CACHE_BLOCK_BYTES = 64


def block_of(addr: int) -> int:
    """Cache-block number containing byte address ``addr``."""
    return addr >> 6


def block_base(addr: int) -> int:
    """First byte address of the block containing ``addr``."""
    return addr & ~(CACHE_BLOCK_BYTES - 1)


# --------------------------------------------------------------------------
# Abstract IR (design-independent)
# --------------------------------------------------------------------------

class IROp:
    """Base class for abstract program operations."""

    __slots__ = ()


class PRead(IROp):
    """Read from persistent memory."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"PRead(0x{self.addr:x})"


class PWrite(IROp):
    """Write to persistent memory (undo-logged inside a FASE).

    ``shared`` marks the target as potentially visible to other threads.
    Writes a compiler can prove thread-private (escape analysis over
    per-thread allocations) carry ``shared=False``; PMEM-Spec's lowering
    skips spec-ID tagging for them since no inter-thread persist order
    exists to violate (§5.2.2).
    """

    __slots__ = ("addr", "value", "shared")

    def __init__(self, addr: int, value: int, shared: bool = True):
        self.addr = addr
        self.value = value
        self.shared = shared

    def __repr__(self) -> str:
        return f"PWrite(0x{self.addr:x}, {self.value})"


class Compute(IROp):
    """Local (non-memory) work measured in core cycles."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        if cycles < 0:
            raise ValueError("negative compute cycles")
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Compute({self.cycles})"


class LockAcquire(IROp):
    """Acquire a named program lock (enters a critical section)."""

    __slots__ = ("lock_id",)

    def __init__(self, lock_id: int):
        self.lock_id = lock_id

    def __repr__(self) -> str:
        return f"LockAcquire({self.lock_id})"


class LockRelease(IROp):
    """Release a named program lock (exits a critical section)."""

    __slots__ = ("lock_id",)

    def __init__(self, lock_id: int):
        self.lock_id = lock_id

    def __repr__(self) -> str:
        return f"LockRelease({self.lock_id})"


# --------------------------------------------------------------------------
# Machine ops (design-specific, produced by the compiler)
# --------------------------------------------------------------------------

class MachineOp:
    """Base class for lowered machine operations."""

    __slots__ = ()

    mnemonic = "nop"


class Ld(MachineOp):
    """Load: travels the regular path (caches, then PM on miss)."""

    __slots__ = ("addr",)

    mnemonic = "ld"

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"Ld(0x{self.addr:x})"


class St(MachineOp):
    """Store.  ``to_pm`` marks a persistent-memory store; ``kind`` tags
    its role ('data', 'log', 'commit') for statistics and log replay.

    ``log_of`` marks an undo-log *old-value* store: its value is not
    known at compile time, so the executing core resolves it by reading
    the architectural value of address ``log_of`` at execution time and
    reports the pair to the failure-atomic runtime.
    """

    __slots__ = ("addr", "value", "to_pm", "kind", "log_of", "shared")

    mnemonic = "st"

    def __init__(self, addr: int, value: int = 0, to_pm: bool = True,
                 kind: str = "data", log_of: Optional[int] = None,
                 shared: bool = True):
        self.addr = addr
        self.value = value
        self.to_pm = to_pm
        self.kind = kind
        self.log_of = log_of
        self.shared = shared

    def __repr__(self) -> str:
        return f"St(0x{self.addr:x}, {self.value}, kind={self.kind})"


class Clwb(MachineOp):
    """Cache-line write-back: pushes the line toward the PM controller
    without invalidating it.  Occupies a store-queue entry (see §8.2.1)."""

    __slots__ = ("addr",)

    mnemonic = "clwb"

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"Clwb(0x{self.addr:x})"


class Sfence(MachineOp):
    """x86 store fence: stalls the core until prior CLWBs complete."""

    __slots__ = ()

    mnemonic = "sfence"

    def __repr__(self) -> str:
        return "Sfence()"


class Ofence(MachineOp):
    """HOPS ordering fence: epoch boundary, asynchronous (non-blocking)."""

    __slots__ = ()

    mnemonic = "ofence"

    def __repr__(self) -> str:
        return "Ofence()"


class Dfence(MachineOp):
    """HOPS durability fence: blocks until this core's persist buffer drains."""

    __slots__ = ()

    mnemonic = "dfence"

    def __repr__(self) -> str:
        return "Dfence()"


class SpecBarrier(MachineOp):
    """PMEM-Spec durability barrier: blocks until all prior persist-path
    stores of this core have reached the PM controller (ADR domain)."""

    __slots__ = ()

    mnemonic = "spec_barrier"

    def __repr__(self) -> str:
        return "SpecBarrier()"


class SpecAssign(MachineOp):
    """PMEM-Spec: read the global speculation-ID counter into the core's
    spec-ID register and atomically increment it (critical-section entry)."""

    __slots__ = ()

    mnemonic = "spec_assign"

    def __repr__(self) -> str:
        return "SpecAssign()"


class SpecRevoke(MachineOp):
    """PMEM-Spec: clear the core's spec-ID register (critical-section exit)."""

    __slots__ = ()

    mnemonic = "spec_revoke"

    def __repr__(self) -> str:
        return "SpecRevoke()"


class MirrorOld(MachineOp):
    """Runtime bookkeeping op (redo logging): record the current value of
    ``addr`` in the runtime's volatile undo mirror so an abort can
    restore the cached view.  Free at execution time -- the value was
    just loaded by the preceding Ld."""

    __slots__ = ("addr",)

    mnemonic = "mirror_old"

    def __init__(self, addr: int):
        self.addr = addr

    def __repr__(self) -> str:
        return f"MirrorOld(0x{self.addr:x})"


class NewStrand(MachineOp):
    """StrandWeaver: begin a new strand -- clears persist-order
    dependencies so the new strand's persists may drain concurrently
    with older strands (Gogte et al., ISCA'20)."""

    __slots__ = ()

    mnemonic = "new_strand"

    def __repr__(self) -> str:
        return "NewStrand()"


class StrandBarrier(MachineOp):
    """StrandWeaver persist-barrier: orders persists *within* the
    current strand only; never stalls the core."""

    __slots__ = ()

    mnemonic = "strand_barrier"

    def __repr__(self) -> str:
        return "StrandBarrier()"


class JoinStrand(MachineOp):
    """StrandWeaver: join -- subsequent persists are ordered after every
    outstanding strand (used before the commit record); the durability
    wait happens at the following strand-aware dfence."""

    __slots__ = ()

    mnemonic = "join_strand"

    def __repr__(self) -> str:
        return "JoinStrand()"


class Comp(MachineOp):
    """Lowered computation: ``cycles`` of non-memory core work."""

    __slots__ = ("cycles",)

    mnemonic = "comp"

    def __init__(self, cycles: int):
        self.cycles = cycles

    def __repr__(self) -> str:
        return f"Comp({self.cycles})"


class Lock(MachineOp):
    """Acquire program lock ``lock_id`` (simulated futex)."""

    __slots__ = ("lock_id",)

    mnemonic = "lock"

    def __init__(self, lock_id: int):
        self.lock_id = lock_id

    def __repr__(self) -> str:
        return f"Lock({self.lock_id})"


class Unlock(MachineOp):
    """Release program lock ``lock_id``."""

    __slots__ = ("lock_id",)

    mnemonic = "unlock"

    def __init__(self, lock_id: int):
        self.lock_id = lock_id

    def __repr__(self) -> str:
        return f"Unlock({self.lock_id})"


class FaseBegin(MachineOp):
    """Runtime hook: a failure-atomic section starts (clears the thread's
    misspeculation flag, opens an undo-log scope)."""

    __slots__ = ("fase_id",)

    mnemonic = "fase_begin"

    def __init__(self, fase_id: int):
        self.fase_id = fase_id

    def __repr__(self) -> str:
        return f"FaseBegin({self.fase_id})"


class FaseEnd(MachineOp):
    """Runtime hook: FASE commit point (checks the misspeculation flag --
    lazy recovery aborts here -- then truncates the undo log)."""

    __slots__ = ("fase_id",)

    mnemonic = "fase_end"

    def __init__(self, fase_id: int):
        self.fase_id = fase_id

    def __repr__(self) -> str:
        return f"FaseEnd({self.fase_id})"


MEMORY_OPS = (Ld, St, Clwb)
FENCE_OPS = (Sfence, Ofence, Dfence, SpecBarrier, StrandBarrier)


def is_barrier(op: MachineOp) -> bool:
    """True for any ordering/durability primitive (Figure 2 counting)."""
    return isinstance(op, FENCE_OPS)


def describe(op: MachineOp) -> str:
    """Short human-readable description used by trace dumps."""
    addr: Optional[int] = getattr(op, "addr", None)
    if addr is not None:
        return f"{op.mnemonic} 0x{addr:x}"
    return op.mnemonic
