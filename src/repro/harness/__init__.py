"""Experiment harness: per-figure drivers, sweeps, and reporting."""

from .artifacts import diff_artifacts, load_artifact, save_artifact
from .configs import (
    BASELINE,
    BENCHMARK_ORDER,
    DESIGNS,
    default_config,
    format_table3,
    table3_rows,
)
from .experiments import (
    figure2_annotation_burden,
    figure9,
    figure10,
    figure10_summary,
    figure11,
    figure12,
    lazy_vs_eager_recovery,
    misspeculation_rates,
    naive_tagging_ablation,
    undo_vs_redo_ablation,
)
from .report import (
    format_bar_chart,
    format_misspec_table,
    format_normalized_table,
    format_series,
    format_timeseries,
    sparkline,
)
from .retry import DEFAULT_POLICY, SERVICE_POLICY, RetryPolicy
from .runner import normalized_throughput
from .sweep import (
    STRUCTURAL_FIELDS,
    ParallelExecutor,
    RunSpec,
    Sweep,
    SweepError,
    SweepResult,
    WorkerTaskError,
    build_spec_system,
    execute_spec,
    fork_warm_starts,
    plan_batches,
    structural_mismatches,
)

__all__ = [
    "BASELINE", "diff_artifacts", "load_artifact", "save_artifact",
    "BENCHMARK_ORDER", "DESIGNS",
    "default_config", "figure9", "figure10", "figure10_summary",
    "figure11", "figure12", "format_bar_chart", "format_misspec_table",
    "format_normalized_table", "format_series", "format_table3",
    "format_timeseries", "sparkline", "execute_spec",
    "figure2_annotation_burden",
    "lazy_vs_eager_recovery", "misspeculation_rates",
    "ParallelExecutor", "RunSpec", "STRUCTURAL_FIELDS", "Sweep",
    "SweepError", "SweepResult", "build_spec_system", "fork_warm_starts",
    "structural_mismatches", "undo_vs_redo_ablation",
    "naive_tagging_ablation", "normalized_throughput",
    "table3_rows",
    "DEFAULT_POLICY", "SERVICE_POLICY", "RetryPolicy",
    "WorkerTaskError", "plan_batches",
]
