"""The paper's experiments, one entry point per table/figure.

Every function returns plain data (dictionaries of normalised
throughput or event counts) and leaves rendering to
:mod:`repro.harness.report`; the benchmarks in ``benchmarks/`` and the
CLI (``python -m repro.harness``) both call these.

``scale`` multiplies the per-thread FASE counts: 1.0 is the default
test-friendly size; larger values tighten the statistics at the cost of
runtime (the paper runs 100K FASEs per thread on gem5 -- see DESIGN.md
for the scaling substitution).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..persistency import design_by_name
from ..sim import geomean
from ..system import build_system
from ..workloads import (
    BENCHMARKS,
    LoadMisspecProbe,
    StoreMisspecProbe,
    workload_by_name,
)
from .configs import BASELINE, BENCHMARK_ORDER, DESIGNS, default_config
from .runner import compare_designs, normalized_throughput


def _fases(benchmark: str, scale: float) -> int:
    return max(5, round(BENCHMARKS[benchmark].default_fases * scale))


def figure9(n_threads: int = 8, scale: float = 1.0, seed: int = 42,
            designs: Sequence[str] = DESIGNS,
            benchmarks: Sequence[str] = BENCHMARK_ORDER,
            config: Optional[SystemConfig] = None
            ) -> Dict[str, Dict[str, float]]:
    """Figure 9: normalised throughput, all designs, 8-core system."""
    rows: Dict[str, Dict[str, float]] = {}
    for benchmark in benchmarks:
        results = compare_designs(
            benchmark, designs, n_threads,
            fases_per_thread=_fases(benchmark, scale), seed=seed,
            config=config)
        rows[benchmark] = normalized_throughput(results)
    return rows


def figure10(core_counts: Sequence[int] = (16, 32, 64), scale: float = 1.0,
             seed: int = 42, designs: Sequence[str] = DESIGNS,
             benchmarks: Sequence[str] = BENCHMARK_ORDER
             ) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Figure 10: the same comparison at 16/32/64 cores."""
    return {cores: figure9(n_threads=cores, scale=scale, seed=seed,
                           designs=designs, benchmarks=benchmarks)
            for cores in core_counts}


def figure10_summary(results: Dict[int, Dict[str, Dict[str, float]]]
                     ) -> Dict[int, Dict[str, float]]:
    """Geomean per design per core count (the margins §8.3.1 quotes)."""
    summary: Dict[int, Dict[str, float]] = {}
    for cores, rows in results.items():
        summary[cores] = {
            design: geomean([rows[b][design] for b in rows])
            for design in next(iter(rows.values()))}
    return summary


def figure11(buffer_sizes: Sequence[int] = (1, 2, 4, 8, 16),
             n_threads: int = 8, scale: float = 1.0, seed: int = 42,
             benchmarks: Sequence[str] = BENCHMARK_ORDER
             ) -> Dict[int, float]:
    """Figure 11: PMEM-Spec average throughput vs speculation-buffer
    size, normalised to the largest (overflow-free) size.

    Runs with the *paper's* compiler behaviour (§5.2.2: every store in a
    critical section is tagged) -- the buffer pressure that makes this
    figure interesting comes from those tagged persists; this repo's
    escape-analysis refinement is evaluated separately as an ablation.
    """
    throughput: Dict[int, float] = {}
    for size in buffer_sizes:
        config = default_config(n_cores=n_threads,
                                spec_buffer_entries=size,
                                extra={"tag_private_stores": 1})
        per_benchmark = []
        for benchmark in benchmarks:
            workload = workload_by_name(benchmark, seed=seed)
            program = workload.build(n_threads, _fases(benchmark, scale))
            system = build_system(program, design_by_name("PMEM-Spec"),
                                  config)
            per_benchmark.append(system.run().throughput)
        throughput[size] = geomean(per_benchmark)
    top = throughput[max(buffer_sizes)]
    return {size: value / top for size, value in throughput.items()}


def figure12(latencies_ns: Sequence[float] = (20, 40, 60, 80, 100),
             n_threads: int = 8, scale: float = 1.0, seed: int = 42,
             benchmarks: Sequence[str] = BENCHMARK_ORDER
             ) -> Dict[float, Dict[str, float]]:
    """Figure 12: geomean throughput of HOPS and PMEM-Spec (normalised
    to the IntelX86 baseline) as the persist-path latency grows."""
    out: Dict[float, Dict[str, float]] = {}
    for latency in latencies_ns:
        config = default_config(n_cores=n_threads,
                                persist_path_ns=float(latency))
        rows = figure9(n_threads=n_threads, scale=scale, seed=seed,
                       designs=("IntelX86", "HOPS", "PMEM-Spec"),
                       benchmarks=benchmarks, config=config)
        out[latency] = {
            design: geomean([rows[b][design] for b in rows])
            for design in ("HOPS", "PMEM-Spec")}
    return out


def misspeculation_rates(n_threads: int = 8, scale: float = 1.0,
                         seed: int = 42) -> List[Dict]:
    """§8.4: misspeculation counts.

    Every Table 4 benchmark under the default configuration (expected:
    zero), plus the two synthetic probes that force each violation kind
    (expected: detections with successful recovery), plus the load probe
    at the paper's 20 ns latency (expected: zero again).
    """
    rows: List[Dict] = []

    def record(workload_name, config_name, result):
        rows.append({
            "workload": workload_name,
            "config": config_name,
            "load_misspec": result.load_misspeculations,
            "store_misspec": result.store_misspeculations,
            "stale_loads": result.stale_loads,
            "aborts": result.fases_aborted,
            "commits": result.fases_committed,
        })

    for benchmark in BENCHMARK_ORDER:
        workload = workload_by_name(benchmark, seed=seed)
        program = workload.build(n_threads, _fases(benchmark, scale))
        system = build_system(program, design_by_name("PMEM-Spec"),
                              default_config(n_cores=n_threads))
        record(benchmark, "table3", system.run())

    probe = LoadMisspecProbe(seed=seed)
    program = probe.build(2, max(5, round(10 * scale)))
    system = build_system(program, design_by_name("PMEM-Spec"),
                          LoadMisspecProbe.recommended_config(2, True))
    record(probe.name, "125x path", system.run())

    probe = LoadMisspecProbe(seed=seed)
    program = probe.build(2, max(5, round(10 * scale)))
    system = build_system(program, design_by_name("PMEM-Spec"),
                          LoadMisspecProbe.recommended_config(2, False))
    record(probe.name, "20ns path", system.run())

    probe = StoreMisspecProbe(seed=seed)
    program = probe.build(2, max(5, round(20 * scale)))
    system = build_system(program, design_by_name("PMEM-Spec"),
                          StoreMisspecProbe.recommended_config(2))
    system.persist_path.set_core_extra(
        0, StoreMisspecProbe.slow_core_extra_cycles())
    record(probe.name, "congested ring", system.run())
    return rows


def lazy_vs_eager_recovery(scale: float = 1.0, seed: int = 42) -> Dict:
    """Ablation (§6.2): recovery-scheme cost under forced misspeculation.

    Runs the store-misspeculation probe under both recovery modes and
    reports cycles and abort counts.
    """
    out = {}
    for mode in ("lazy", "eager"):
        probe = StoreMisspecProbe(seed=seed)
        program = probe.build(2, max(10, round(30 * scale)))
        system = build_system(program, design_by_name("PMEM-Spec"),
                              StoreMisspecProbe.recommended_config(2),
                              recovery_mode=mode)
        system.persist_path.set_core_extra(
            0, StoreMisspecProbe.slow_core_extra_cycles())
        result = system.run()
        out[mode] = {"cycles": result.cycles,
                     "aborts": result.fases_aborted,
                     "store_misspec": result.store_misspeculations,
                     "commits": result.fases_committed}
    return out


def undo_vs_redo_ablation(n_threads: int = 4, scale: float = 1.0,
                          seed: int = 42,
                          benchmarks: Sequence[str] = ("hashmap", "tpcc",
                                                       "memcached"),
                          designs: Sequence[str] = ("PMEM-Spec", "HOPS")
                          ) -> Dict[str, Dict[str, float]]:
    """Ablation: undo vs redo logging on the writeback-dropping designs.

    Redo needs no intra-FASE ordering points at all under a FIFO
    persistence channel (see :mod:`repro.runtime.redo_log`), at the cost
    of commit-time replay stores; this reports the throughput ratio.
    """
    out: Dict[str, Dict[str, float]] = {}
    for benchmark in benchmarks:
        row: Dict[str, float] = {}
        for design in designs:
            for log_mode in ("undo", "redo"):
                workload = workload_by_name(benchmark, seed=seed)
                program = workload.build(n_threads,
                                         _fases(benchmark, scale))
                system = build_system(program, design_by_name(design),
                                      default_config(n_cores=n_threads),
                                      log_mode=log_mode)
                row[f"{design}/{log_mode}"] = system.run().throughput
            row[f"{design}_redo_speedup"] = (
                row[f"{design}/redo"] / row[f"{design}/undo"])
        out[benchmark] = row
    return out


def figure2_annotation_burden(benchmarks: Sequence[str] = ("queue",
                                                           "tpcc"),
                              seed: int = 42) -> Dict[str, Dict[str, float]]:
    """Figure 2, quantified: average programmer-visible ordering
    annotations per FASE under each model's ISA."""
    from ..compiler import annotation_burden
    out: Dict[str, Dict[str, float]] = {}
    for benchmark in benchmarks:
        workload = workload_by_name(benchmark, seed=seed)
        program = workload.build(2, 10)
        totals = {"x86": 0, "hops": 0, "strand": 0, "pmemspec": 0}
        count = 0
        for thread in program.threads:
            for fase in thread.fases:
                if not fase.writes:
                    continue
                count += 1
                for flavor in totals:
                    totals[flavor] += annotation_burden(
                        fase, flavor)["programmer_visible"]
        out[benchmark] = {flavor: total / max(1, count)
                          for flavor, total in totals.items()}
    return out


def naive_tagging_ablation(n_threads: int = 8, scale: float = 1.0,
                           seed: int = 42,
                           benchmarks: Sequence[str] = ("array_swaps",
                                                        "rbtree", "tpcc")
                           ) -> Dict[str, Dict[str, float]]:
    """Ablation: spec-tagging *every* critical-section store (a compiler
    without escape analysis) vs tagging only provably-shared ones.
    Reports normalised throughput and buffer overflows."""
    out: Dict[str, Dict[str, float]] = {}
    for benchmark in benchmarks:
        row = {}
        for label, extra in (("escape-analysis", {}),
                             ("naive", {"tag_private_stores": 1})):
            workload = workload_by_name(benchmark, seed=seed)
            program = workload.build(n_threads, _fases(benchmark, scale))
            config = default_config(n_cores=n_threads, extra=dict(extra))
            system = build_system(program, design_by_name("PMEM-Spec"),
                                  config)
            result = system.run()
            row[label] = result.throughput
            row[f"{label}_overflows"] = float(result.spec_buffer_overflows)
        row["slowdown"] = row["escape-analysis"] / row["naive"]
        out[benchmark] = row
    return out
