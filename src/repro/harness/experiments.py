"""The paper's experiments, one entry point per table/figure.

Every function builds a declarative :class:`~repro.harness.sweep.Sweep`
and hands it to a :class:`~repro.harness.sweep.ParallelExecutor`; each
accepts an optional ``executor`` argument (default: in-process serial,
no cache) so the CLI's ``--jobs``/``--no-cache`` flags and the
benchmark drivers can share one pool and one result cache across
figures.  Results are plain data (dictionaries of normalised
throughput or event counts); rendering lives in
:mod:`repro.harness.report`.

``scale`` multiplies the per-thread FASE counts: 1.0 is the default
test-friendly size; larger values tighten the statistics at the cost of
runtime (the paper runs 100K FASEs per thread on gem5 -- see DESIGN.md
for the scaling substitution).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..config import SystemConfig
from ..sim import geomean
from ..workloads import (
    BENCHMARKS,
    LoadMisspecProbe,
    StoreMisspecProbe,
)
from .configs import BASELINE, BENCHMARK_ORDER, DESIGNS, default_config
from .runner import normalized_throughput
from .sweep import ParallelExecutor, RunSpec, Sweep


def _fases(benchmark: str, scale: float) -> int:
    return max(5, round(BENCHMARKS[benchmark].default_fases * scale))


def _executor(executor: Optional[ParallelExecutor]) -> ParallelExecutor:
    return executor if executor is not None else ParallelExecutor(jobs=1)


def figure9(n_threads: int = 8, scale: float = 1.0, seed: int = 42,
            designs: Sequence[str] = DESIGNS,
            benchmarks: Sequence[str] = BENCHMARK_ORDER,
            config: Optional[SystemConfig] = None,
            executor: Optional[ParallelExecutor] = None
            ) -> Dict[str, Dict[str, float]]:
    """Figure 9: normalised throughput, all designs, 8-core system."""
    sweep = Sweep.grid(
        benchmarks=benchmarks, designs=designs, n_threads=n_threads,
        seeds=seed, config=config,
        fases_per_thread={b: _fases(b, scale) for b in benchmarks},
        name="fig9")
    table = _executor(executor).run(sweep).table(
        lambda spec: spec.benchmark, lambda spec: spec.design)
    return {benchmark: normalized_throughput(results)
            for benchmark, results in table.items()}


def figure10(core_counts: Sequence[int] = (16, 32, 64), scale: float = 1.0,
             seed: int = 42, designs: Sequence[str] = DESIGNS,
             benchmarks: Sequence[str] = BENCHMARK_ORDER,
             executor: Optional[ParallelExecutor] = None
             ) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Figure 10: the same comparison at 16/32/64 cores.

    One sweep covers the whole cores x benchmarks x designs grid, so a
    parallel executor overlaps cells across core counts too.
    """
    sweep = Sweep.grid(
        benchmarks=benchmarks, designs=designs,
        n_threads=list(core_counts), seeds=seed,
        fases_per_thread={b: _fases(b, scale) for b in benchmarks},
        name="fig10")
    done = _executor(executor).run(sweep)
    out: Dict[int, Dict[str, Dict[str, float]]] = {}
    for cores in core_counts:
        table = done.filter(lambda s, c=cores: s.n_threads == c).table(
            lambda spec: spec.benchmark, lambda spec: spec.design)
        out[cores] = {benchmark: normalized_throughput(results)
                      for benchmark, results in table.items()}
    return out


def figure10_summary(results: Dict[int, Dict[str, Dict[str, float]]]
                     ) -> Dict[int, Dict[str, float]]:
    """Geomean per design per core count (the margins §8.3.1 quotes)."""
    summary: Dict[int, Dict[str, float]] = {}
    for cores, rows in results.items():
        summary[cores] = {
            design: geomean([rows[b][design] for b in rows])
            for design in next(iter(rows.values()))}
    return summary


def figure11(buffer_sizes: Sequence[int] = (1, 2, 4, 8, 16),
             n_threads: int = 8, scale: float = 1.0, seed: int = 42,
             benchmarks: Sequence[str] = BENCHMARK_ORDER,
             executor: Optional[ParallelExecutor] = None
             ) -> Dict[int, float]:
    """Figure 11: PMEM-Spec average throughput vs speculation-buffer
    size, normalised to the largest (overflow-free) size.

    Runs with the *paper's* compiler behaviour (§5.2.2: every store in a
    critical section is tagged) -- the buffer pressure that makes this
    figure interesting comes from those tagged persists; this repo's
    escape-analysis refinement is evaluated separately as an ablation.
    """
    specs = [
        RunSpec(benchmark=benchmark, design="PMEM-Spec",
                n_threads=n_threads,
                fases_per_thread=_fases(benchmark, scale), seed=seed,
                config_overrides={"spec_buffer_entries": size,
                                  "extra": {"tag_private_stores": 1}})
        for size in buffer_sizes for benchmark in benchmarks]
    done = _executor(executor).run(Sweep(specs, name="fig11"))
    by_size = done.table(
        lambda spec: spec.config_overrides["spec_buffer_entries"],
        lambda spec: spec.benchmark)
    throughput = {
        size: geomean([result.throughput for result in row.values()])
        for size, row in by_size.items()}
    top = throughput[max(buffer_sizes)]
    return {size: value / top for size, value in throughput.items()}


def figure12(latencies_ns: Sequence[float] = (20, 40, 60, 80, 100),
             n_threads: int = 8, scale: float = 1.0, seed: int = 42,
             benchmarks: Sequence[str] = BENCHMARK_ORDER,
             executor: Optional[ParallelExecutor] = None
             ) -> Dict[float, Dict[str, float]]:
    """Figure 12: geomean throughput of HOPS and PMEM-Spec (normalised
    to the IntelX86 baseline) as the persist-path latency grows."""
    designs = ("IntelX86", "HOPS", "PMEM-Spec")
    specs = [
        RunSpec(benchmark=benchmark, design=design, n_threads=n_threads,
                fases_per_thread=_fases(benchmark, scale), seed=seed,
                config_overrides={"persist_path_ns": float(latency)})
        for latency in latencies_ns
        for benchmark in benchmarks
        for design in designs]
    done = _executor(executor).run(Sweep(specs, name="fig12"))
    out: Dict[float, Dict[str, float]] = {}
    for latency in latencies_ns:
        table = done.filter(
            lambda s, l=float(latency):
            s.config_overrides["persist_path_ns"] == l
        ).table(lambda spec: spec.benchmark, lambda spec: spec.design)
        rows = {benchmark: normalized_throughput(results)
                for benchmark, results in table.items()}
        out[latency] = {
            design: geomean([rows[b][design] for b in rows])
            for design in ("HOPS", "PMEM-Spec")}
    return out


def misspeculation_rates(n_threads: int = 8, scale: float = 1.0,
                         seed: int = 42,
                         executor: Optional[ParallelExecutor] = None
                         ) -> List[Dict]:
    """§8.4: misspeculation counts.

    Every Table 4 benchmark under the default configuration (expected:
    zero), plus the two synthetic probes that force each violation kind
    (expected: detections with successful recovery), plus the load probe
    at the paper's 20 ns latency (expected: zero again).
    """
    specs = [RunSpec(benchmark=benchmark, design="PMEM-Spec",
                     n_threads=n_threads,
                     fases_per_thread=_fases(benchmark, scale), seed=seed,
                     label="table3")
             for benchmark in BENCHMARK_ORDER]
    specs.append(RunSpec(
        benchmark=LoadMisspecProbe.name, design="PMEM-Spec", n_threads=2,
        fases_per_thread=max(5, round(10 * scale)), seed=seed,
        config=LoadMisspecProbe.recommended_config(2, True),
        label="125x path"))
    specs.append(RunSpec(
        benchmark=LoadMisspecProbe.name, design="PMEM-Spec", n_threads=2,
        fases_per_thread=max(5, round(10 * scale)), seed=seed,
        config=LoadMisspecProbe.recommended_config(2, False),
        label="20ns path"))
    specs.append(RunSpec(
        benchmark=StoreMisspecProbe.name, design="PMEM-Spec", n_threads=2,
        fases_per_thread=max(5, round(20 * scale)), seed=seed,
        config=StoreMisspecProbe.recommended_config(2),
        core_extra_cycles=(0, StoreMisspecProbe.slow_core_extra_cycles()),
        label="congested ring"))

    done = _executor(executor).run(Sweep(specs, name="misspec"))
    return [{
        "workload": spec.benchmark,
        "config": spec.label,
        "load_misspec": result.load_misspeculations,
        "store_misspec": result.store_misspeculations,
        "stale_loads": result.stale_loads,
        "aborts": result.fases_aborted,
        "commits": result.fases_committed,
    } for spec, result in done]


def lazy_vs_eager_recovery(scale: float = 1.0, seed: int = 42,
                           executor: Optional[ParallelExecutor] = None
                           ) -> Dict:
    """Ablation (§6.2): recovery-scheme cost under forced misspeculation.

    Runs the store-misspeculation probe under both recovery modes and
    reports cycles and abort counts.
    """
    specs = [RunSpec(
        benchmark=StoreMisspecProbe.name, design="PMEM-Spec", n_threads=2,
        fases_per_thread=max(10, round(30 * scale)), seed=seed,
        config=StoreMisspecProbe.recommended_config(2),
        core_extra_cycles=(0, StoreMisspecProbe.slow_core_extra_cycles()),
        recovery_mode=mode, label=mode) for mode in ("lazy", "eager")]
    done = _executor(executor).run(Sweep(specs, name="recovery-ablation"))
    return {spec.recovery_mode: {"cycles": result.cycles,
                                 "aborts": result.fases_aborted,
                                 "store_misspec":
                                     result.store_misspeculations,
                                 "commits": result.fases_committed}
            for spec, result in done}


def undo_vs_redo_ablation(n_threads: int = 4, scale: float = 1.0,
                          seed: int = 42,
                          benchmarks: Sequence[str] = ("hashmap", "tpcc",
                                                       "memcached"),
                          designs: Sequence[str] = ("PMEM-Spec", "HOPS"),
                          executor: Optional[ParallelExecutor] = None
                          ) -> Dict[str, Dict[str, float]]:
    """Ablation: undo vs redo logging on the writeback-dropping designs.

    Redo needs no intra-FASE ordering points at all under a FIFO
    persistence channel (see :mod:`repro.runtime.redo_log`), at the cost
    of commit-time replay stores; this reports the throughput ratio.
    """
    specs = [RunSpec(benchmark=benchmark, design=design,
                     n_threads=n_threads,
                     fases_per_thread=_fases(benchmark, scale), seed=seed,
                     log_mode=log_mode)
             for benchmark in benchmarks
             for design in designs
             for log_mode in ("undo", "redo")]
    done = _executor(executor).run(Sweep(specs, name="log-ablation"))
    table = done.table(lambda spec: spec.benchmark,
                       lambda spec: f"{spec.design}/{spec.log_mode}")
    out: Dict[str, Dict[str, float]] = {}
    for benchmark, results in table.items():
        row = {key: result.throughput for key, result in results.items()}
        for design in designs:
            row[f"{design}_redo_speedup"] = (
                row[f"{design}/redo"] / row[f"{design}/undo"])
        out[benchmark] = row
    return out


def figure2_annotation_burden(benchmarks: Sequence[str] = ("queue",
                                                           "tpcc"),
                              seed: int = 42) -> Dict[str, Dict[str, float]]:
    """Figure 2, quantified: average programmer-visible ordering
    annotations per FASE under each model's ISA."""
    from ..compiler import annotation_burden
    from ..workloads import workload_by_name
    out: Dict[str, Dict[str, float]] = {}
    for benchmark in benchmarks:
        workload = workload_by_name(benchmark, seed=seed)
        program = workload.build(2, 10)
        totals = {"x86": 0, "hops": 0, "strand": 0, "pmemspec": 0}
        count = 0
        for thread in program.threads:
            for fase in thread.fases:
                if not fase.writes:
                    continue
                count += 1
                for flavor in totals:
                    totals[flavor] += annotation_burden(
                        fase, flavor)["programmer_visible"]
        out[benchmark] = {flavor: total / max(1, count)
                          for flavor, total in totals.items()}
    return out


def naive_tagging_ablation(n_threads: int = 8, scale: float = 1.0,
                           seed: int = 42,
                           benchmarks: Sequence[str] = ("array_swaps",
                                                        "rbtree", "tpcc"),
                           executor: Optional[ParallelExecutor] = None
                           ) -> Dict[str, Dict[str, float]]:
    """Ablation: spec-tagging *every* critical-section store (a compiler
    without escape analysis) vs tagging only provably-shared ones.
    Reports normalised throughput and buffer overflows."""
    modes = (("escape-analysis", {}),
             ("naive", {"tag_private_stores": 1}))
    specs = [RunSpec(benchmark=benchmark, design="PMEM-Spec",
                     n_threads=n_threads,
                     fases_per_thread=_fases(benchmark, scale), seed=seed,
                     config_overrides={"extra": dict(extra)}, label=label)
             for benchmark in benchmarks for label, extra in modes]
    done = _executor(executor).run(Sweep(specs, name="tagging-ablation"))
    table = done.table(lambda spec: spec.benchmark,
                       lambda spec: spec.label)
    out: Dict[str, Dict[str, float]] = {}
    for benchmark, results in table.items():
        row: Dict[str, float] = {}
        for label, result in results.items():
            row[label] = result.throughput
            row[f"{label}_overflows"] = float(result.spec_buffer_overflows)
        row["slowdown"] = row["escape-analysis"] / row["naive"]
        out[benchmark] = row
    return out
