"""Declarative experiment sweeps and the parallel executor.

This module is the single request surface for every simulation the
harness runs.  A :class:`RunSpec` names one cell of the paper's
evaluation grid -- benchmark, design, thread count, FASE count, seed,
configuration -- and a :class:`Sweep` is an ordered collection of specs
(usually a cartesian grid).  :class:`ParallelExecutor` turns a sweep
into a :class:`SweepResult`:

* specs fan out over a ``multiprocessing`` pool (``jobs > 1``) while
  results always come back in sweep order, so ``jobs=1`` and ``jobs=N``
  produce bit-identical payloads;
* each spec's result is cached on disk (one artifact JSON per spec,
  keyed by a content hash of the resolved spec), so re-running an
  unchanged sweep is free;
* a spec whose worker dies is retried serially in the parent; only if
  the serial retry fails too does the executor raise, with the worker
  traceback attached.

Per-spec wall-clock timing and cache provenance land in
``SimResult.stats["executor"]``; that section is host-specific and is
deliberately excluded from ``SimResult.to_dict()`` so serialised
results stay deterministic.

Observability: every sweep narrates itself onto the current
:mod:`repro.obsv.bus` -- ``sweep_start``, ``cache_hit``/``cache_miss``,
``spec_start`` (worker-side), ``spec_finish``/``spec_error``
(authoritative, parent-side), ``sweep_finish`` -- and the legacy
``progress`` string callback is now a thin adapter over those same
events.  Workers reach the parent's bus through a multiprocessing
queue installed by the pool initializer (fork start-method only); the
parent drains and merges, so the log stays a single ordered stream.
Events are wall-clock-side bookkeeping: an enabled bus leaves every
``SimResult`` payload bit-identical.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..config import SystemConfig
from ..obsv.bus import (
    Bus,
    EventBus,
    QueueEmitter,
    drain_queue,
    get_bus,
    set_bus,
)
from ..persistency import design_by_name
from ..system import RESULT_SCHEMA_VERSION, SimResult, build_system
from ..telemetry import current_context, get_logger, run_context, seed_context
from ..workloads import (
    BENCHMARKS,
    LoadMisspecProbe,
    StoreMisspecProbe,
)
from .artifacts import load_artifact, save_artifact
from .configs import default_config
from .retry import DEFAULT_POLICY, RetryPolicy

# Synthetic §8.4 probes are runnable through the sweep API even though
# they are not Table 4 benchmarks.
PROBES = {
    LoadMisspecProbe.name: LoadMisspecProbe,
    StoreMisspecProbe.name: StoreMisspecProbe,
}

log = get_logger("harness.sweep")


def _workload_class(name: str):
    if name in BENCHMARKS:
        return BENCHMARKS[name]
    if name in PROBES:
        return PROBES[name]
    raise ValueError(
        f"unknown benchmark {name!r}; choose from "
        f"{sorted(BENCHMARKS) + sorted(PROBES)}")


# --------------------------------------------------------------- RunSpec


@dataclass(frozen=True)
class RunSpec:
    """One simulation request: a single cell of an evaluation grid.

    ``config`` is the *base* configuration (default: Table 3 with
    ``n_threads`` cores); ``config_overrides`` are field replacements
    applied on top of it (``spec_buffer_entries``, ``persist_path_ns``,
    ``extra``, ...).  The resolved configuration's ``n_cores`` MUST
    equal ``n_threads`` -- threads are pinned 1:1 to cores and the old
    ``run_benchmark`` behaviour of silently rewriting a caller-supplied
    config is a bug this class refuses to reproduce.  Pass a matching
    config, or override ``n_cores`` explicitly.

    ``label`` is a free-form tag carried through to results (used by
    the misspeculation/ablation tables); it does not affect the cache
    key.
    """

    benchmark: str
    design: str
    n_threads: int = 8
    fases_per_thread: Optional[int] = None
    seed: int = 42
    config: Optional[SystemConfig] = None
    config_overrides: Mapping[str, object] = field(default_factory=dict)
    recovery_mode: str = "lazy"
    log_mode: str = "undo"
    # (core_id, extra_cycles) applied to the persist path after build --
    # the §8.4 congested-ring probe and the recovery ablation use this.
    core_extra_cycles: Optional[Tuple[int, int]] = None
    label: str = ""

    def __post_init__(self):
        self.validate()

    # ------------------------------------------------------- validation

    def validate(self) -> None:
        _workload_class(self.benchmark)
        try:
            design_by_name(self.design)
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.fases_per_thread is not None and self.fases_per_thread < 1:
            raise ValueError("fases_per_thread must be >= 1")
        if self.recovery_mode not in ("lazy", "eager"):
            raise ValueError(f"unknown recovery_mode {self.recovery_mode!r}")
        if self.log_mode not in ("undo", "redo"):
            raise ValueError(f"unknown log_mode {self.log_mode!r}")
        cfg = self.resolved_config()
        if cfg.n_cores != self.n_threads:
            raise ValueError(
                f"config.n_cores={cfg.n_cores} disagrees with "
                f"n_threads={self.n_threads}: threads are pinned 1:1 to "
                f"cores.  Pass a config built for {self.n_threads} cores "
                f"(or add n_cores={self.n_threads} to config_overrides); "
                f"RunSpec never rewrites a caller-supplied config.")

    # ------------------------------------------------------- resolution

    def resolved_config(self) -> SystemConfig:
        """The base config plus overrides (what the simulation uses)."""
        base = (self.config if self.config is not None
                else default_config(n_cores=self.n_threads))
        if self.config_overrides:
            base = base.with_overrides(**dict(self.config_overrides))
        base.validate()
        return base

    def resolved_fases(self) -> int:
        if self.fases_per_thread is not None:
            return self.fases_per_thread
        return _workload_class(self.benchmark).default_fases

    # ---------------------------------------------------- serialisation

    def to_dict(self) -> Dict:
        """Canonical JSON-ready form (fases and config fully resolved)."""
        return {
            "benchmark": self.benchmark,
            "design": self.design,
            "n_threads": self.n_threads,
            "fases_per_thread": self.resolved_fases(),
            "seed": self.seed,
            "config": dataclasses.asdict(self.resolved_config()),
            "recovery_mode": self.recovery_mode,
            "log_mode": self.log_mode,
            "core_extra_cycles": (list(self.core_extra_cycles)
                                  if self.core_extra_cycles else None),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RunSpec":
        config = payload.get("config")
        extra = payload.get("core_extra_cycles")
        return cls(
            benchmark=payload["benchmark"],
            design=payload["design"],
            n_threads=payload.get("n_threads", 8),
            fases_per_thread=payload.get("fases_per_thread"),
            seed=payload.get("seed", 42),
            config=SystemConfig(**config) if config else None,
            recovery_mode=payload.get("recovery_mode", "lazy"),
            log_mode=payload.get("log_mode", "undo"),
            core_extra_cycles=tuple(extra) if extra else None,
            label=payload.get("label", ""),
        )

    def cache_key(self) -> str:
        """Content hash of everything that determines the result.

        Covers the resolved spec (benchmark, design, threads, fases,
        seed, full resolved config, recovery/log mode, persist-path
        perturbations) plus the result schema version, so a schema bump
        invalidates stale cache entries.  ``label`` is presentation-only
        and excluded.
        """
        payload = self.to_dict()
        del payload["label"]
        payload["schema_version"] = RESULT_SCHEMA_VERSION
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        tag = f" [{self.label}]" if self.label else ""
        return (f"{self.benchmark}/{self.design} x{self.n_threads} "
                f"seed={self.seed}{tag}")


# ----------------------------------------------------------------- Sweep


class Sweep:
    """An ordered collection of :class:`RunSpec` (usually a grid)."""

    def __init__(self, specs: Iterable[RunSpec], name: str = "sweep"):
        self.specs: List[RunSpec] = list(specs)
        self.name = name

    @classmethod
    def grid(cls,
             benchmarks: Sequence[str],
             designs: Sequence[str],
             n_threads: Union[int, Sequence[int]] = 8,
             seeds: Union[int, Sequence[int]] = 42,
             fases_per_thread: Union[None, int,
                                     Mapping[str, int]] = None,
             config: Optional[SystemConfig] = None,
             config_overrides: Optional[Mapping[str, object]] = None,
             recovery_mode: str = "lazy",
             log_mode: str = "undo",
             name: str = "grid") -> "Sweep":
        """Cartesian product in deterministic order: thread counts
        outermost, then benchmarks, then designs, then seeds (the order
        Figures 9 and 10 print in).  ``fases_per_thread`` may be a
        single int, a per-benchmark mapping, or ``None`` (workload
        defaults)."""
        thread_list = ([n_threads] if isinstance(n_threads, int)
                       else list(n_threads))
        seed_list = [seeds] if isinstance(seeds, int) else list(seeds)

        def fases_for(benchmark: str) -> Optional[int]:
            if isinstance(fases_per_thread, Mapping):
                return fases_per_thread.get(benchmark)
            return fases_per_thread

        specs = [
            RunSpec(benchmark=benchmark, design=design, n_threads=threads,
                    fases_per_thread=fases_for(benchmark), seed=seed,
                    config=config,
                    config_overrides=dict(config_overrides or {}),
                    recovery_mode=recovery_mode, log_mode=log_mode)
            for threads in thread_list
            for benchmark in benchmarks
            for design in designs
            for seed in seed_list
        ]
        return cls(specs, name=name)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __getitem__(self, index: int) -> RunSpec:
        return self.specs[index]

    def __add__(self, other: "Sweep") -> "Sweep":
        return Sweep(self.specs + list(other),
                     name=f"{self.name}+{getattr(other, 'name', 'sweep')}")

    def __repr__(self) -> str:
        return f"Sweep({self.name}: {len(self.specs)} specs)"


# ----------------------------------------------------------- SweepResult


class SweepResult:
    """Ordered (spec, result) pairs plus executor-level statistics."""

    def __init__(self, specs: Sequence[RunSpec],
                 results: Sequence[SimResult], stats: Dict):
        if len(specs) != len(results):
            raise ValueError("specs and results length mismatch")
        self.specs = list(specs)
        self.results = list(results)
        self.stats = stats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[Tuple[RunSpec, SimResult]]:
        return iter(zip(self.specs, self.results))

    def __getitem__(self, index: int) -> SimResult:
        return self.results[index]

    def filter(self, predicate: Callable[[RunSpec], bool]) -> "SweepResult":
        kept = [(s, r) for s, r in self if predicate(s)]
        return SweepResult([s for s, _ in kept], [r for _, r in kept],
                           dict(self.stats))

    def table(self, row_key: Callable[[RunSpec], object],
              col_key: Callable[[RunSpec], object]
              ) -> "Dict[object, Dict[object, SimResult]]":
        """Group results into ``{row: {col: SimResult}}`` (insertion
        order follows the sweep order)."""
        out: Dict[object, Dict[object, SimResult]] = {}
        for spec, result in self:
            out.setdefault(row_key(spec), {})[col_key(spec)] = result
        return out

    def __repr__(self) -> str:
        return (f"SweepResult({len(self)} runs, "
                f"{self.stats.get('cache_hits', 0)} cached, "
                f"{self.stats.get('elapsed_s', 0.0):.1f}s)")


# -------------------------------------------------------------- executor


class SweepError(RuntimeError):
    """A spec failed in a worker AND in the serial retry."""

    def __init__(self, spec: RunSpec, message: str,
                 worker_traceback: str = ""):
        detail = f"spec {spec.describe()} failed: {message}"
        if worker_traceback:
            detail += f"\n--- worker traceback ---\n{worker_traceback}"
        super().__init__(detail)
        self.spec = spec
        self.worker_traceback = worker_traceback


class WorkerTaskError(RuntimeError):
    """A worker-side failure the retry policy declined to re-run."""


def _error_tail(error: str, limit: int = 200) -> str:
    """The last non-blank line of a traceback string, for events."""
    lines = [line for line in str(error).strip().splitlines() if line]
    tail = lines[-1] if lines else str(error)
    return tail[:limit]


def _retry_serial(policy: RetryPolicy, bus: Bus, label: str,
                  worker_error: str, action: Callable,
                  sleep: Callable[[float], None] = time.sleep):
    """Re-run a failed worker task serially, as the policy allows.

    Emits one ``task_retry`` event -- attempt number, backoff delay,
    error tail -- before *every* re-execution; the pre-PR 8 silent
    serial fallback is gone.  Returns ``action()``'s value on the
    first success.  When attempts are exhausted the last in-parent
    exception re-raises; when the policy allows no retry at all (or
    rules the failure non-retryable) a :class:`WorkerTaskError`
    carrying the worker traceback raises instead.
    """
    attempt = 1           # the worker execution already failed
    error = worker_error
    while policy.should_retry(attempt):
        delay = policy.delay_s(attempt)
        bus.emit("task_retry", label=label, attempt=attempt + 1,
                 delay_s=round(delay, 3), error=_error_tail(error))
        if delay:
            sleep(delay)
        try:
            return action()
        except Exception as exc:
            attempt += 1
            error = str(exc)
            if not policy.should_retry(attempt, exc):
                raise
    raise WorkerTaskError(
        f"{label}: worker failed and policy allows no retry\n"
        f"--- worker traceback ---\n{worker_error}")


def plan_batches(items: Sequence, key: Optional[Callable] = None,
                 chunk_size: Optional[int] = None) -> List[List[int]]:
    """Affinity-batched chunk plan: item indexes per (group, chunk).

    The chunking rule behind :meth:`ParallelExecutor.map_batched`,
    exposed so other schedulers (the service's work-stealing pool)
    produce *identical* chunks for identical inputs -- which is what
    makes journaled chunk outcomes reusable across runs.  Items with
    equal ``key`` stay contiguous; ``chunk_size`` caps items per chunk
    (``None``/``0`` ships each whole group as one chunk).
    """
    groups: Dict[object, List[int]] = {}
    for index, item in enumerate(items):
        group = key(item) if key is not None else None
        groups.setdefault(group, []).append(index)
    batches: List[List[int]] = []
    for indices in groups.values():
        step = chunk_size or len(indices)
        for start in range(0, len(indices), step):
            batches.append(indices[start:start + step])
    return batches


def build_spec_system(spec: RunSpec, tracer=None, metrics=None,
                      scheduler=None):
    """Build (but do not run) the fully wired system for one spec.

    ``scheduler`` selects the event-queue implementation (see
    :data:`repro.sim.SCHEDULERS`); it is an execution detail -- results
    are identical either way -- so it is not part of the spec and does
    not perturb the sweep cache key.
    """
    workload = _workload_class(spec.benchmark)(seed=spec.seed)
    program = workload.build(spec.n_threads, spec.resolved_fases())
    system = build_system(program, design_by_name(spec.design),
                          spec.resolved_config(),
                          recovery_mode=spec.recovery_mode,
                          log_mode=spec.log_mode,
                          tracer=tracer, metrics=metrics,
                          scheduler=scheduler)
    if spec.core_extra_cycles is not None:
        core_id, cycles = spec.core_extra_cycles
        system.persist_path.set_core_extra(core_id, cycles)
    return system


def execute_spec(spec: RunSpec, tracer=None, metrics=None) -> SimResult:
    """Run one spec to completion.

    ``tracer`` / ``metrics`` (a :class:`repro.sim.TraceRecorder` /
    :class:`repro.sim.MetricsCollector`) opt the run into observability;
    both default to off, which is what the sweep cache assumes -- traced
    runs bypass the executor entirely (see the CLI ``trace`` command)."""
    return build_spec_system(spec, tracer=tracer, metrics=metrics).run()


# ------------------------------------------------------ warm-start forks


#: Config fields that shape captured state (counts, capacities,
#: geometries).  A snapshot only restores into a system whose config
#: agrees on all of these; the remaining (timing) fields are free to
#: vary, which is what makes warm-start forking across latency sweeps
#: possible.
STRUCTURAL_FIELDS = (
    "n_cores", "store_queue_entries", "issue_width", "mlp_misses",
    "l1_size_bytes", "l1_ways", "l2_size_bytes", "l2_ways",
    "pmc_read_queue", "pmc_write_queue", "pmc_banks", "pmc_write_banks",
    "spec_buffer_entries", "n_pm_controllers", "ordered_noc",
    "persist_path_lanes", "hops_bloom_bits", "hops_bloom_hashes",
    "hops_persist_buffer_entries", "dpo_persist_buffer_entries",
)


def structural_mismatches(base: SystemConfig,
                          variant: SystemConfig) -> List[str]:
    """Structural fields on which the two configs disagree."""
    return [name for name in STRUCTURAL_FIELDS
            if getattr(base, name) != getattr(variant, name)]


def fork_warm_starts(base: RunSpec, variants: Sequence[RunSpec],
                     snapshot_every: int, rung_index: int = 0
                     ) -> Tuple[SimResult, List[SimResult]]:
    """Run ``base`` once with an in-memory snapshot ladder, then fork
    each variant from the chosen rung and simulate only the tail.

    Every variant must share the base's program identity (benchmark,
    design, threads, FASE count, seed, log mode) and structural config
    fields; timing fields (latencies, frequencies) are free to differ --
    the restored state is purely dynamic, so the variant's tail runs
    under the variant's latencies.  The result is a *warm-start
    approximation*: the prefix up to the fork rung ran under the base
    config.  Use it for sweep exploration (ranking, trend-spotting), and
    re-run the interesting cells cold for publishable numbers.

    Returns ``(base_result, variant_results)`` in variant order.
    """
    from ..snapshot import SnapshotError, SnapshotLadder
    if snapshot_every < 1:
        raise ValueError("snapshot_every must be >= 1 for warm forks")
    base_config = base.resolved_config()
    for variant in variants:
        for field_name in ("benchmark", "design", "n_threads", "seed",
                           "log_mode", "recovery_mode"):
            if getattr(variant, field_name) != getattr(base, field_name):
                raise SnapshotError(
                    f"warm fork {variant.describe()} changes "
                    f"{field_name}; forks may only vary timing fields")
        if variant.resolved_fases() != base.resolved_fases():
            raise SnapshotError(
                f"warm fork {variant.describe()} changes fases_per_thread")
        mismatches = structural_mismatches(base_config,
                                           variant.resolved_config())
        if mismatches:
            raise SnapshotError(
                f"warm fork {variant.describe()} changes structural "
                f"config fields {mismatches}; snapshots only restore "
                f"across timing changes")

    base_system = build_spec_system(base)
    ladder = SnapshotLadder(base_system, snapshot_every,
                            keep_in_memory=True).install()
    base_result = base_system.run()
    if not ladder.rungs:
        raise SnapshotError(
            f"base run {base.describe()} captured no rungs (interval "
            f"{snapshot_every} longer than the run?); nothing to fork")
    rung = ladder.rungs[rung_index]

    results: List[SimResult] = []
    for variant in variants:
        system = build_spec_system(variant)
        SnapshotLadder(system, snapshot_every, capture=False).install()
        system.restore_state(rung["payload"])
        done = system.launch()
        system.advance(stop_event=done)
        system.advance()
        result = system.result()
        result.stats["warm_fork"] = {"rung_cycle": rung["cycle"],
                                     "rung": rung["rung"]}
        results.append(result)
    return base_result, results


# Worker-side alias (kept for pickling stability and old imports).
_execute_spec = execute_spec


def reset_worker_signals() -> None:
    """Restore default signal dispositions in a forked worker.

    The CLI installs SIGINT/SIGTERM handlers that raise into the
    *parent's* dispatch loop for a graceful unwind; a forked worker
    inherits them, which breaks ``Pool.terminate()`` -- the worker's
    main thread can sit in an uninterruptible semaphore wait (or catch
    the raised exception as an ordinary task failure) and outlive the
    pool, deadlocking the parent's ``join()``.  Workers therefore go
    back to ``SIG_DFL`` for SIGTERM (so terminate() kills them) and
    ignore SIGINT (a Ctrl-C is the parent's to handle; it tears the
    pool down explicitly)."""
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / platform quirks
        pass


def _pool_initializer(queue, context_fields: Dict[str, str]) -> None:
    """Runs once in each pool worker: install a queue-backed bus and
    the parent's run context, so events (and log records) emitted deep
    inside a worker carry the parent's correlation IDs.  Only wired up
    under the ``fork`` start method (queue inheritance)."""
    reset_worker_signals()
    if queue is not None:
        set_bus(QueueEmitter(queue))
    seed_context(context_fields)


def _pool_worker(item: Tuple[int, RunSpec]):
    index, spec = item
    start = time.perf_counter()
    try:
        with run_context(spec_hash=spec.cache_key()[:12]):
            get_bus().emit("spec_start", index=index,
                           describe=spec.describe())
            result = _execute_spec(spec)
        return index, "ok", result.to_dict(), time.perf_counter() - start
    except Exception:
        return (index, "err", traceback.format_exc(),
                time.perf_counter() - start)


def _map_worker(item: Tuple[int, Callable, object]):
    index, fn, arg = item
    start = time.perf_counter()
    try:
        get_bus().emit("task_start", index=index, label=f"item {index}")
        return index, "ok", fn(arg), time.perf_counter() - start
    except Exception:
        return (index, "err", traceback.format_exc(),
                time.perf_counter() - start)


def _batch_worker(item: Tuple[int, Callable, list]):
    index, fn, chunk = item
    start = time.perf_counter()
    try:
        get_bus().emit("batch_start", index=index,
                       label=f"batch {index}", size=len(chunk))
        return index, "ok", fn(chunk), time.perf_counter() - start
    except Exception:
        return (index, "err", traceback.format_exc(),
                time.perf_counter() - start)


def _pool_channel(context, ship: bool):
    """(queue, initializer, initargs) for a pool: a real event channel
    when ``ship`` is on and the platform forks workers (queue
    inheritance needs fork); an inert initializer otherwise, so the
    worker still gets the parent's run context."""
    queue = None
    if ship and context.get_start_method() == "fork":
        queue = context.Queue()
    return queue, _pool_initializer, (queue, current_context())


class _ProgressAdapter:
    """Backward-compat shim: turns ``spec_finish``/``spec_error`` (and
    ``task_*``) events back into the legacy one-line-per-item progress
    strings, so existing ``progress=callable`` users see the exact
    output they always did -- the callback is now just another bus
    subscriber."""

    _HOW = {"cache": "cached", "retry": "serial retry",
            "degraded": "serial (no pool)"}

    def __init__(self, callback: Callable[[str], None], total: int,
                 describe: Optional[Callable[[int], str]] = None):
        self.callback = callback
        self.total = total
        self.describe = describe
        self.done = 0

    def __call__(self, event: Dict) -> None:
        kind = event.get("kind")
        if kind in ("spec_finish", "task_finish", "batch_finish"):
            how = (self._HOW.get(event.get("source"))
                   or f"{event.get('elapsed_s', 0.0):.1f}s")
        elif kind in ("spec_error", "task_error"):
            how = "error"
        else:
            return
        self.done += 1
        label = event.get("describe") or event.get("label") or ""
        self.callback(f"[{self.done}/{self.total}] {label} ({how})")


class _SweepTally:
    """Bus subscriber accumulating the end-of-sweep statistics (cache
    provenance, retries, per-spec wall time) from the event stream
    itself -- the summary line and ``SweepResult.stats`` report what
    the events say, not a parallel set of hand-kept counters."""

    def __init__(self):
        self.cache_hits = 0
        self.cache_misses = 0
        self.retries = 0
        self.errors = 0
        self.busy_s = 0.0
        self.spec_walls: List[float] = []

    def __call__(self, event: Dict) -> None:
        kind = event.get("kind")
        if kind == "cache_hit":
            self.cache_hits += 1
        elif kind == "cache_miss":
            self.cache_misses += 1
        elif kind in ("spec_finish", "task_finish"):
            elapsed = float(event.get("elapsed_s") or 0.0)
            if not event.get("cache_hit"):
                self.busy_s += elapsed
                self.spec_walls.append(elapsed)
            if event.get("retried"):
                self.retries += 1
        elif kind in ("spec_error", "task_error"):
            self.errors += 1

    def wall_mean_max(self) -> Tuple[float, float]:
        if not self.spec_walls:
            return 0.0, 0.0
        return (sum(self.spec_walls) / len(self.spec_walls),
                max(self.spec_walls))


#: Distinguishes "no result yet" from a legitimate ``None`` result in
#: :meth:`ParallelExecutor.map`'s OSError fallback.
_UNSET = object()


class ParallelExecutor:
    """Executes sweeps; the only way experiments run simulations.

    ``jobs`` is the worker-process count (``None`` = ``os.cpu_count()``,
    ``1`` = in-process serial).  ``cache_dir`` enables the per-spec
    result cache (``None`` disables it).  ``progress`` is an optional
    ``callable(str)`` invoked once per completed spec -- implemented as
    a subscription on the event bus (see :class:`_ProgressAdapter`).
    ``bus`` pins the event bus this executor publishes to; the default
    resolves :func:`repro.obsv.bus.get_bus` at each ``run()``/``map()``
    so the CLI's ``--events-out`` scope is picked up automatically.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache_dir: Optional[str] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 bus: Optional[Bus] = None,
                 retry: Optional[RetryPolicy] = None):
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.cache_dir = cache_dir
        self.progress = progress
        self.bus = bus
        #: Worker-failure recovery policy shared with the service pool
        #: (:mod:`repro.harness.retry`); the default reproduces the
        #: historical behaviour -- one immediate serial retry -- but
        #: narrated through ``task_retry`` events instead of silently.
        self.retry = retry if retry is not None else DEFAULT_POLICY

    def _resolve_bus(self) -> Tuple[Bus, bool]:
        """(bus to publish on, whether it is externally observed).

        With no external bus the executor still runs a private
        :class:`EventBus` so the progress adapter and the stats tally
        are fed from real events; privately-generated events are
        dropped at the end of the call (and no worker queue is set up).
        """
        bus = self.bus if self.bus is not None else get_bus()
        if bus.enabled:
            return bus, True
        return EventBus(), False

    # ------------------------------------------------------------ cache

    def _cache_path(self, spec: RunSpec) -> str:
        return os.path.join(self.cache_dir, f"{spec.cache_key()}.json")

    def _cache_load(self, spec: RunSpec) -> Optional[SimResult]:
        if self.cache_dir is None:
            return None
        path = self._cache_path(spec)
        if not os.path.exists(path):
            return None
        try:
            document = load_artifact(path)
        except (ValueError, json.JSONDecodeError, OSError):
            return None
        payload = document["data"]
        if payload.get("schema_version") != RESULT_SCHEMA_VERSION:
            return None
        return SimResult.from_dict(payload)

    def _cache_store(self, spec: RunSpec, result: SimResult) -> None:
        if self.cache_dir is None:
            return
        save_artifact(self.cache_dir, spec.cache_key(), result.to_dict(),
                      meta={"spec": spec.to_dict()})

    # -------------------------------------------------------------- run

    def run(self, sweep: Union[Sweep, RunSpec, Iterable[RunSpec]]
            ) -> SweepResult:
        """Execute every spec; results come back in sweep order."""
        if isinstance(sweep, RunSpec):
            specs = [sweep]
        else:
            specs = list(sweep)
        started = time.perf_counter()
        results: List[Optional[SimResult]] = [None] * len(specs)
        timings: List[Dict] = [dict() for _ in specs]
        bus, external = self._resolve_bus()
        tally = _SweepTally()
        adapter = (_ProgressAdapter(self.progress, len(specs))
                   if self.progress is not None else None)
        bus.subscribe(tally)
        if adapter is not None:
            bus.subscribe(adapter)

        def finish(index: int, elapsed: float, cache_hit: bool,
                   retried: bool, source: str) -> None:
            """One authoritative parent-side spec_finish per spec."""
            timings[index] = {"cache_hit": int(cache_hit),
                              "elapsed_s": elapsed,
                              "retried": int(retried)}
            bus.emit(
                "spec_finish", index=index,
                describe=specs[index].describe(), elapsed_s=elapsed,
                cache_hit=cache_hit, retried=retried, source=source,
                cycles=(results[index].cycles
                        if results[index] is not None else 0))
            log.debug("%s done (%s, %.1fs)", specs[index].describe(),
                      source, elapsed)

        try:
            bus.emit("sweep_start", n_specs=len(specs), jobs=self.jobs)
            misses: List[int] = []
            for index, spec in enumerate(specs):
                cached = self._cache_load(spec)
                if cached is not None:
                    results[index] = cached
                    bus.emit("cache_hit", index=index,
                             describe=spec.describe())
                    finish(index, 0.0, True, False, "cache")
                else:
                    bus.emit("cache_miss", index=index,
                             describe=spec.describe())
                    misses.append(index)

            if misses and self.jobs > 1 and len(misses) > 1:
                self._run_pool(specs, misses, results, timings, bus,
                               finish, ship=external)
            else:
                for index in misses:
                    spec = specs[index]
                    start = time.perf_counter()
                    bus.emit("spec_start", index=index,
                             describe=spec.describe())
                    try:
                        results[index] = _execute_spec(spec)
                    except Exception as exc:
                        bus.emit("spec_error", index=index,
                                 describe=spec.describe(),
                                 error=str(exc))
                        raise SweepError(spec, str(exc)) from exc
                    self._cache_store(spec, results[index])
                    finish(index, time.perf_counter() - start, False,
                           False, "serial")

            elapsed = time.perf_counter() - started
            # The summary -- both the stats dict and the log line --
            # is derived from the event stream (the tally subscriber),
            # so the events are the single source of truth.
            stats = {
                "jobs": self.jobs,
                "n_specs": len(specs),
                "cache_hits": tally.cache_hits,
                "cache_misses": tally.cache_misses,
                "retries": tally.retries,
                "elapsed_s": elapsed,
            }
            bus.emit("sweep_finish", n_specs=len(specs),
                     cache_hits=tally.cache_hits,
                     cache_misses=tally.cache_misses,
                     retries=tally.retries, elapsed_s=elapsed,
                     busy_s=tally.busy_s, jobs=self.jobs)
            wall_mean, wall_max = tally.wall_mean_max()
            log.info(
                "sweep done: %d specs in %.1fs (%d cached, %d simulated, "
                "%d retried, jobs=%d, spec wall mean/max "
                "%.1f/%.1fs)", len(specs), elapsed, tally.cache_hits,
                tally.cache_misses, tally.retries, self.jobs,
                wall_mean, wall_max)
        finally:
            bus.unsubscribe(tally)
            if adapter is not None:
                bus.unsubscribe(adapter)
        if bus.registry is not None:
            stats["obsv"] = bus.registry.snapshot()
        for index, result in enumerate(results):
            info = dict(timings[index])
            info["jobs"] = self.jobs
            result.stats["executor"] = info
        return SweepResult(specs, results, stats)

    # -------------------------------------------------------------- map

    def map(self, fn: Callable, items: Sequence,
            describe: Optional[Callable[[object], str]] = None) -> List:
        """Apply a picklable ``fn`` to every item, in order.

        The generic sibling of :meth:`run` for non-``RunSpec`` work (the
        validation campaign's crash trials fan out through this): same
        pool/serial split, same per-item serial retry with the worker
        traceback attached on a second failure, same OSError degradation
        to serial -- but no disk cache and plain return values instead of
        :class:`SimResult`.  ``fn`` and each item must survive pickling
        when ``jobs > 1``.
        """
        items = list(items)
        results: List = [_UNSET] * len(items)
        bus, external = self._resolve_bus()
        adapter = (_ProgressAdapter(self.progress, len(items))
                   if self.progress is not None else None)
        if adapter is not None:
            bus.subscribe(adapter)

        def label(index: int) -> str:
            return (describe(items[index]) if describe is not None
                    else f"item {index}")

        def finish(index: int, elapsed: float, source: str) -> None:
            bus.emit("task_finish", index=index, label=label(index),
                     elapsed_s=elapsed, source=source)

        def run_serial(index: int, source: str = "serial") -> None:
            start = time.perf_counter()
            results[index] = fn(items[index])
            finish(index, time.perf_counter() - start, source)

        try:
            if self.jobs > 1 and len(items) > 1:
                work = [(index, fn, item)
                        for index, item in enumerate(items)]
                queue = None
                try:
                    context = multiprocessing.get_context()
                    queue, initializer, initargs = _pool_channel(
                        context, external)
                    with context.Pool(
                            processes=min(self.jobs, len(work)),
                            initializer=initializer,
                            initargs=initargs) as pool:
                        for index, status, payload, elapsed in \
                                pool.imap_unordered(_map_worker, work):
                            drain_queue(queue, bus)
                            if status == "ok":
                                results[index] = payload
                                finish(index, elapsed, "pool")
                                continue
                            try:
                                _retry_serial(
                                    self.retry, bus, label(index),
                                    payload,
                                    lambda index=index: run_serial(
                                        index, "retry"))
                            except Exception as exc:
                                bus.emit("task_error", index=index,
                                         label=label(index),
                                         error=str(exc))
                                raise RuntimeError(
                                    f"map item {index} failed in the "
                                    f"worker and in serial retry: "
                                    f"{exc}\n"
                                    f"--- worker traceback ---\n"
                                    f"{payload}") from exc
                except OSError:
                    log.warning("no process pool available; map "
                                "degrades to serial")
                    for index in range(len(items)):
                        if results[index] is _UNSET:
                            run_serial(index, "degraded")
                finally:
                    drain_queue(queue, bus)
            else:
                for index in range(len(items)):
                    run_serial(index)
        finally:
            if adapter is not None:
                bus.unsubscribe(adapter)
        return results

    # ------------------------------------------------------ map_batched

    def map_batched(self, fn: Callable, items: Sequence,
                    key: Optional[Callable[[object], object]] = None,
                    chunk_size: Optional[int] = None,
                    describe: Optional[Callable[[Sequence], str]] = None
                    ) -> List:
        """Affinity-batched fan-out: one task per (group, chunk).

        ``fn`` is a *batch* function: it receives a list of items and
        must return a list of results of the same length, in order.
        ``key`` groups items (all items with equal keys land in the
        same chunks -- the campaign groups crash trials by cell so a
        worker can keep the cell's system resident across the chunk);
        ``chunk_size`` caps items per shipped task (``None``/``0``
        ships each whole group as one task).  Results come back in the
        original item order.

        Pool conventions match :meth:`map` -- per-chunk serial retry in
        the parent on a worker failure, OSError degradation to serial
        -- but the bus carries one ``batch_start``/``batch_finish`` per
        chunk instead of one ``task_*`` pair per item: collapsing the
        per-item pickle round-trips into one per chunk is the point.
        """
        items = list(items)
        batches = plan_batches(items, key=key, chunk_size=chunk_size)
        results: List = [_UNSET] * len(items)
        bus, external = self._resolve_bus()
        adapter = (_ProgressAdapter(self.progress, len(batches))
                   if self.progress is not None else None)
        if adapter is not None:
            bus.subscribe(adapter)

        def chunk_items(batch_index: int) -> list:
            return [items[i] for i in batches[batch_index]]

        def label(batch_index: int) -> str:
            chunk = chunk_items(batch_index)
            return (describe(chunk) if describe is not None
                    else f"batch {batch_index} (x{len(chunk)})")

        def install(batch_index: int, payload) -> None:
            indices = batches[batch_index]
            if (not isinstance(payload, (list, tuple))
                    or len(payload) != len(indices)):
                raise RuntimeError(
                    f"batched fn returned "
                    f"{len(payload) if hasattr(payload, '__len__') else payload!r} "
                    f"result(s) for a {len(indices)}-item batch")
            for index, value in zip(indices, payload):
                results[index] = value

        def finish(batch_index: int, elapsed: float, source: str) -> None:
            bus.emit("batch_finish", index=batch_index,
                     label=label(batch_index),
                     size=len(batches[batch_index]), elapsed_s=elapsed,
                     source=source)

        def run_serial(batch_index: int, source: str = "serial") -> None:
            start = time.perf_counter()
            install(batch_index, fn(chunk_items(batch_index)))
            finish(batch_index, time.perf_counter() - start, source)

        try:
            if self.jobs > 1 and len(batches) > 1:
                work = [(batch_index, fn, chunk_items(batch_index))
                        for batch_index in range(len(batches))]
                queue = None
                try:
                    context = multiprocessing.get_context()
                    queue, initializer, initargs = _pool_channel(
                        context, external)
                    with context.Pool(
                            processes=min(self.jobs, len(work)),
                            initializer=initializer,
                            initargs=initargs) as pool:
                        for batch_index, status, payload, elapsed in \
                                pool.imap_unordered(_batch_worker, work):
                            drain_queue(queue, bus)
                            if status == "ok":
                                install(batch_index, payload)
                                finish(batch_index, elapsed, "pool")
                                continue
                            try:
                                _retry_serial(
                                    self.retry, bus,
                                    label(batch_index), payload,
                                    lambda batch_index=batch_index:
                                        run_serial(batch_index, "retry"))
                            except Exception as exc:
                                bus.emit("task_error", index=batch_index,
                                         label=label(batch_index),
                                         error=str(exc))
                                raise RuntimeError(
                                    f"batch {batch_index} failed in the "
                                    f"worker and in serial retry: "
                                    f"{exc}\n"
                                    f"--- worker traceback ---\n"
                                    f"{payload}") from exc
                except OSError:
                    log.warning("no process pool available; batched map "
                                "degrades to serial")
                    for batch_index in range(len(batches)):
                        if any(results[i] is _UNSET
                               for i in batches[batch_index]):
                            run_serial(batch_index, "degraded")
                finally:
                    drain_queue(queue, bus)
            else:
                for batch_index in range(len(batches)):
                    run_serial(batch_index)
        finally:
            if adapter is not None:
                bus.unsubscribe(adapter)
        return results

    def _run_pool(self, specs: Sequence[RunSpec], misses: Sequence[int],
                  results: List[Optional[SimResult]],
                  timings: List[Dict], bus: Bus, finish,
                  ship: bool = False) -> None:
        """Fan the cache misses out over a process pool.

        Worker-side events (``spec_start`` and anything emitted deeper)
        travel back over a multiprocessing queue and are merged into
        ``bus`` as results stream in; the authoritative ``spec_finish``
        for each spec is emitted parent-side by ``finish``.
        """
        work = [(index, specs[index]) for index in misses]
        queue = None
        try:
            context = multiprocessing.get_context()
            queue, initializer, initargs = _pool_channel(context, ship)
            with context.Pool(processes=min(self.jobs, len(work)),
                              initializer=initializer,
                              initargs=initargs) as pool:
                outcomes = pool.imap_unordered(_pool_worker, work)
                for index, status, payload, elapsed in outcomes:
                    drain_queue(queue, bus)
                    if status == "ok":
                        results[index] = SimResult.from_dict(payload)
                        self._cache_store(specs[index], results[index])
                        finish(index, elapsed, False, False, "pool")
                        continue
                    # Worker failed: re-run serially in the parent as
                    # the retry policy allows, so a flaky worker cannot
                    # sink the sweep; exhausting the policy surfaces
                    # both tracebacks.
                    start = time.perf_counter()
                    bus.emit("spec_start", index=index,
                             describe=specs[index].describe())

                    def rerun(index=index):
                        return _execute_spec(specs[index])

                    try:
                        results[index] = _retry_serial(
                            self.retry, bus, specs[index].describe(),
                            payload, rerun)
                    except Exception as exc:
                        bus.emit("spec_error", index=index,
                                 describe=specs[index].describe(),
                                 error=str(exc))
                        raise SweepError(specs[index], str(exc),
                                         worker_traceback=payload) from exc
                    self._cache_store(specs[index], results[index])
                    finish(index, time.perf_counter() - start, False,
                           True, "retry")
        except OSError:
            # No process pool available (restricted environments):
            # degrade to serial for the whole remainder.
            for index in misses:
                if results[index] is not None:
                    continue
                start = time.perf_counter()
                bus.emit("spec_start", index=index,
                         describe=specs[index].describe())
                try:
                    results[index] = _execute_spec(specs[index])
                except Exception as exc:
                    bus.emit("spec_error", index=index,
                             describe=specs[index].describe(),
                             error=str(exc))
                    raise SweepError(specs[index], str(exc)) from exc
                self._cache_store(specs[index], results[index])
                finish(index, time.perf_counter() - start, False,
                       False, "degraded")
        finally:
            drain_queue(queue, bus)
