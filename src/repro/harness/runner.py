"""Post-processing helpers for completed runs.

The pre-sweep drivers that used to live here (``run_benchmark``,
``compare_designs``, ``full_comparison``) spent one release as
``DeprecationWarning`` shims and are now gone: build a
:class:`repro.harness.sweep.RunSpec` / :class:`repro.harness.sweep.Sweep`
and run it through :class:`repro.harness.sweep.ParallelExecutor`, which
parallelises, caches, and validates its inputs.

Only :func:`normalized_throughput` remains: it is a pure
post-processing helper with no overlapping call shape.
"""

from __future__ import annotations

from typing import Dict

from ..system import SimResult
from .configs import BASELINE


def normalized_throughput(results: Dict[str, SimResult],
                          baseline: str = BASELINE) -> Dict[str, float]:
    """Throughput of each design relative to the baseline design."""
    base = results[baseline].throughput
    if base <= 0:
        raise ValueError(f"baseline {baseline} produced no throughput")
    return {design: result.throughput / base
            for design, result in results.items()}
