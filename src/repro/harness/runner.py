"""Single-run and comparison drivers used by every experiment."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..config import SystemConfig
from ..persistency import design_by_name
from ..system import SimResult, build_system
from ..workloads import workload_by_name
from .configs import BASELINE, BENCHMARK_ORDER, DESIGNS, default_config


def run_benchmark(benchmark: str, design: str, n_threads: int = 8,
                  fases_per_thread: Optional[int] = None, seed: int = 42,
                  config: Optional[SystemConfig] = None,
                  recovery_mode: str = "lazy") -> SimResult:
    """Run one (benchmark, design) pair to completion."""
    workload = workload_by_name(benchmark, seed=seed)
    if fases_per_thread is None:
        fases_per_thread = workload.default_fases
    program = workload.build(n_threads, fases_per_thread)
    cfg = config or default_config(n_cores=n_threads)
    if cfg.n_cores != n_threads:
        cfg = cfg.with_overrides(n_cores=n_threads)
    system = build_system(program, design_by_name(design), cfg,
                          recovery_mode=recovery_mode)
    return system.run()


def compare_designs(benchmark: str, designs: Iterable[str] = DESIGNS,
                    n_threads: int = 8,
                    fases_per_thread: Optional[int] = None, seed: int = 42,
                    config: Optional[SystemConfig] = None
                    ) -> Dict[str, SimResult]:
    """Run one benchmark under several designs (same workload seed)."""
    return {design: run_benchmark(benchmark, design, n_threads,
                                  fases_per_thread, seed, config)
            for design in designs}


def normalized_throughput(results: Dict[str, SimResult],
                          baseline: str = BASELINE) -> Dict[str, float]:
    """Throughput of each design relative to the baseline design."""
    base = results[baseline].throughput
    if base <= 0:
        raise ValueError(f"baseline {baseline} produced no throughput")
    return {design: result.throughput / base
            for design, result in results.items()}


def full_comparison(n_threads: int = 8,
                    fases_per_thread: Optional[int] = None, seed: int = 42,
                    config: Optional[SystemConfig] = None,
                    benchmarks: Iterable[str] = BENCHMARK_ORDER,
                    designs: Iterable[str] = DESIGNS
                    ) -> Dict[str, Dict[str, SimResult]]:
    """Every benchmark under every design: the Figure 9/10 grid."""
    return {benchmark: compare_designs(benchmark, designs, n_threads,
                                       fases_per_thread, seed, config)
            for benchmark in benchmarks}
