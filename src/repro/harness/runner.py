"""Legacy single-run and comparison drivers (deprecated shims).

Every entry point here predates the declarative sweep API and now
delegates to :class:`repro.harness.sweep.RunSpec` /
:class:`repro.harness.sweep.ParallelExecutor` with ``jobs=1``, emitting
a :class:`DeprecationWarning`.  New code should build a
:class:`~repro.harness.sweep.Sweep` and run it through an executor --
that path parallelises, caches, and validates its inputs.

Only :func:`normalized_throughput` remains first-class: it is a pure
post-processing helper with no overlapping call shape.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Optional

from ..config import SystemConfig
from ..system import SimResult
from .configs import BASELINE, BENCHMARK_ORDER, DESIGNS
from .sweep import ParallelExecutor, RunSpec, Sweep


def _deprecated(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; build a repro.harness.RunSpec/Sweep and "
        f"run it through ParallelExecutor instead",
        DeprecationWarning, stacklevel=3)


def _reconcile_config(config: Optional[SystemConfig], n_threads: int,
                      caller: str) -> Optional[SystemConfig]:
    """Old behaviour: silently rewrite config.n_cores to n_threads.
    RunSpec refuses that, so the shim warns loudly before rewriting."""
    if config is not None and config.n_cores != n_threads:
        warnings.warn(
            f"{caller}: config.n_cores={config.n_cores} disagrees with "
            f"n_threads={n_threads}; rewriting n_cores to match.  "
            f"RunSpec raises ValueError on this mismatch -- pass a "
            f"config built for {n_threads} cores.",
            UserWarning, stacklevel=4)
        return config.with_overrides(n_cores=n_threads)
    return config


def run_benchmark(benchmark: str, design: str, n_threads: int = 8,
                  fases_per_thread: Optional[int] = None, seed: int = 42,
                  config: Optional[SystemConfig] = None,
                  recovery_mode: str = "lazy") -> SimResult:
    """Deprecated: run one (benchmark, design) pair to completion."""
    _deprecated("run_benchmark")
    spec = RunSpec(benchmark=benchmark, design=design, n_threads=n_threads,
                   fases_per_thread=fases_per_thread, seed=seed,
                   config=_reconcile_config(config, n_threads,
                                            "run_benchmark"),
                   recovery_mode=recovery_mode)
    return ParallelExecutor(jobs=1).run(spec)[0]


def compare_designs(benchmark: str, designs: Iterable[str] = DESIGNS,
                    n_threads: int = 8,
                    fases_per_thread: Optional[int] = None, seed: int = 42,
                    config: Optional[SystemConfig] = None
                    ) -> Dict[str, SimResult]:
    """Deprecated: one benchmark under several designs (same seed)."""
    _deprecated("compare_designs")
    config = _reconcile_config(config, n_threads, "compare_designs")
    sweep = Sweep([RunSpec(benchmark=benchmark, design=design,
                           n_threads=n_threads,
                           fases_per_thread=fases_per_thread, seed=seed,
                           config=config)
                   for design in designs], name="compare_designs")
    done = ParallelExecutor(jobs=1).run(sweep)
    return {spec.design: result for spec, result in done}


def normalized_throughput(results: Dict[str, SimResult],
                          baseline: str = BASELINE) -> Dict[str, float]:
    """Throughput of each design relative to the baseline design."""
    base = results[baseline].throughput
    if base <= 0:
        raise ValueError(f"baseline {baseline} produced no throughput")
    return {design: result.throughput / base
            for design, result in results.items()}


def full_comparison(n_threads: int = 8,
                    fases_per_thread: Optional[int] = None, seed: int = 42,
                    config: Optional[SystemConfig] = None,
                    benchmarks: Iterable[str] = BENCHMARK_ORDER,
                    designs: Iterable[str] = DESIGNS
                    ) -> Dict[str, Dict[str, SimResult]]:
    """Deprecated: every benchmark under every design (Fig 9/10 grid)."""
    _deprecated("full_comparison")
    config = _reconcile_config(config, n_threads, "full_comparison")
    sweep = Sweep([RunSpec(benchmark=benchmark, design=design,
                           n_threads=n_threads,
                           fases_per_thread=fases_per_thread, seed=seed,
                           config=config)
                   for benchmark in benchmarks for design in designs],
                  name="full_comparison")
    done = ParallelExecutor(jobs=1).run(sweep)
    out: Dict[str, Dict[str, SimResult]] = {}
    for spec, result in done:
        out.setdefault(spec.benchmark, {})[spec.design] = result
    return out
