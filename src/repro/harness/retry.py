"""One retry policy for every fan-out path in the repo.

Before the service existed, each executor invented its own recovery
story: :class:`ParallelExecutor` silently re-ran a failed worker task
once in the parent, and that was the whole policy.  The service's
work-stealing pool needs more -- bounded attempts, exponential backoff
with jitter, a predicate for which exceptions are worth retrying at
all -- and two divergent retry mechanisms is exactly the kind of
drift that produces "works in the sweep, hangs in the service" bugs.

:class:`RetryPolicy` is the single shared object.  It is deliberately
*passive*: it answers "should attempt N+1 happen?" and "how long to
wait first?", while the caller owns the loop, the clock, and the
``task_retry`` event it must emit before re-running (silent retries
are a bug this module exists to end).

Determinism: ``jitter`` defaults to 0 so the default policy is a pure
function of the attempt number.  Callers that want jitter pass a
seeded :class:`random.Random`; the policy never touches global RNG
state (sweep results must stay bit-identical regardless of retries).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["RetryPolicy", "DEFAULT_POLICY", "SERVICE_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` counts *executions*, not retries: the default of 2
    means "one retry after the first failure" -- exactly the historical
    :class:`ParallelExecutor` behaviour.  ``base_delay_s`` is the wait
    before attempt 2; each further attempt multiplies it by
    ``multiplier`` and caps at ``max_delay_s``.  ``jitter`` widens each
    delay to ``delay * uniform(1 - jitter, 1 + jitter)`` when an RNG is
    supplied.  ``retryable`` filters exceptions: ``None`` retries
    everything the caller bothered to catch.
    """

    max_attempts: int = 2
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.0
    retryable: Optional[Callable[[BaseException], bool]] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def should_retry(self, attempt: int,
                     exc: Optional[BaseException] = None) -> bool:
        """May attempt ``attempt + 1`` happen?  ``attempt`` is the
        1-based count of executions that have already failed."""
        if attempt >= self.max_attempts:
            return False
        if exc is not None and self.retryable is not None:
            return bool(self.retryable(exc))
        return True

    def delay_s(self, attempt: int,
                rng: Optional[random.Random] = None) -> float:
        """Seconds to wait before attempt ``attempt + 1`` (``attempt``
        failures so far).  Deterministic unless an RNG is passed."""
        if attempt < 1 or self.base_delay_s == 0.0:
            return 0.0
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                    self.max_delay_s)
        if rng is not None and self.jitter:
            delay *= rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)
        return delay


#: The historical executor behaviour: one immediate serial retry.
DEFAULT_POLICY = RetryPolicy(max_attempts=2, base_delay_s=0.0)

#: What the service pool runs by default: three attempts, 0.5s/1s
#: backoff -- enough to ride out a transient (OOM-killed worker, a
#: snapshot store being rewritten underneath) without stalling a
#: straggler task for long.
SERVICE_POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.5,
                             max_delay_s=10.0)
